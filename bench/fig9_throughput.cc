// Figure 9: put throughput over time with one client joining per second at
// 400 K requests/s each, for REP1, REP3 and SRS32, next to the baseline
// systems' saturated throughput (paper §6.3).
//
// Expected shape: REP1 steps 400K -> 800K -> 1200K -> ~1.5M; REP3 plateaus
// at ~2x lower; SRS32 at ~4.3x lower; memcached/Cocytus reference lines sit
// near the bottom, Dare between REP3 and SRS32.
#include "bench/bench_util.h"
#include "src/baselines/baselines.h"

namespace {

void RunScheme(const char* label, ring::MemgestDescriptor desc) {
  using namespace ring;
  RingOptions o = bench::PaperCluster(/*clients=*/4, /*spares=*/0, 17);
  // Fig. 9's load generators are lightweight senders that sustain 400 K
  // puts/s each (unlike Fig. 11's full YCSB client; see EXPERIMENTS.md).
  o.params.client_put_byte_ns = 0.0;
  o.params.client_base_ns = 1800;
  RingCluster cluster(o);
  auto g = *cluster.CreateMemgest(desc);
  workload::YcsbSpec spec;
  spec.num_keys = 2000;
  spec.get_fraction = 0.0;  // put throughput
  spec.zipfian = false;   // uniform keys: Fig. 9 is a plain put stream

  std::vector<std::unique_ptr<workload::OpenLoopDriver>> drivers;
  for (uint32_t i = 0; i < 4; ++i) {
    workload::OpenLoopDriver::Options opt;
    opt.rate_per_sec = 400'000;
    opt.memgest = g;
    opt.spec = spec;
    opt.seed = 31 + i;
    drivers.push_back(
        std::make_unique<workload::OpenLoopDriver>(&cluster, i, opt));
  }
  // One client starts per second (paper: "every second a new client is
  // created"); sampled every 250 ms.
  std::printf("%s:\n", label);
  uint64_t last_completed = 0;
  for (int quarter = 0; quarter < 18; ++quarter) {
    const double t = quarter * 0.25;
    if (quarter % 4 == 0 && quarter / 4 < 4) {
      drivers[quarter / 4]->Start();
    }
    cluster.RunFor(250 * ring::sim::kMillisecond);
    uint64_t completed = 0;
    for (auto& d : drivers) {
      completed += d->completed();
    }
    std::printf("  t=%4.2fs  throughput %8.0f req/s\n", t + 0.25,
                static_cast<double>(completed - last_completed) / 0.25);
    last_completed = completed;
  }
  // Traced slice at saturation: where a put's time goes once all four
  // clients are loaded. Runs after the measured window so the throughput
  // numbers above are identical to an untraced run.
  auto& hub = cluster.simulator().hub();
  hub.EnableTracing(true);
  cluster.RunFor(50 * ring::sim::kMillisecond);
  hub.EnableTracing(false);
  bench::PrintBreakdownRow("  saturated put",
                           bench::TracedBreakdown(cluster, "put"));
  hub.tracer().Clear();
  for (auto& d : drivers) {
    d->Stop();
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace ring;
  std::printf("# Figure 9: put throughput, +1 client@400K/s per second, 1 KiB values\n");
  RunScheme("REP1", MemgestDescriptor::Replicated(1));
  RunScheme("REP3", MemgestDescriptor::Replicated(3));
  RunScheme("SRS32", MemgestDescriptor::ErasureCoded(3, 2));

  std::printf("reference lines (saturated put throughput):\n");
  std::vector<std::unique_ptr<baselines::BaselineSystem>> systems;
  systems.push_back(baselines::MakeMemcached());
  systems.push_back(baselines::MakeDare(3));
  systems.push_back(baselines::MakeCocytus());
  for (auto& system : systems) {
    std::printf("  %-22s %8.0f req/s\n", system->name().c_str(),
                system->MaxPutThroughput());
  }
  return 0;
}
