// Figure 16: Availability (number of nines) of SRS codes with different
// parameters (Appendix A.3).
//
// Interval availability over one year, counting only the fully-healthy state
// as available. Paper's observations: all schemes fall below ~3.4 nines,
// wider stripes are less available, and the SRS(2,1,s) family is the most
// available at ~3.35 nines.
#include <cstdio>

#include "src/reliability/models.h"
#include "src/srs/srs_code.h"

int main() {
  ring::reliability::Environment env;
  std::printf("# Figure 16: interval availability of SRS(k,m,s), 1 year\n");
  std::printf("%-12s %-8s %-14s %s\n", "code", "stretch", "availability",
              "nines");
  for (uint32_t k = 2; k <= 5; ++k) {
    for (uint32_t m = 1; m < k; ++m) {
      for (uint32_t s = k; s <= 8; ++s) {
        auto code = ring::srs::SrsCode::Create(k, m, s);
        if (!code.ok()) {
          continue;
        }
        ring::reliability::SrsModel model(*code, env);
        const double a = model.IntervalAvailability(1.0);
        std::printf("SRS(%u,%u,%u)   %-8u %-14.10f %6.2f%s\n", k, m, s, s, a,
                    ring::reliability::Nines(a),
                    s == k ? "   <- RS base" : "");
      }
      std::printf("\n");
    }
  }
  return 0;
}
