// Ablation: SRS stripe unit (chunk cell size).
//
// The stripe unit U trades recovery parallelism against per-segment
// overhead: a 64 KiB block split into U-sized mini-stripe segments needs
// 64Ki/U decode rounds (each gathering k source reads). Larger units mean
// fewer, bigger transfers — until a unit exceeds typical object sizes and
// stops spreading load. DESIGN.md picks 4 KiB as the default.
#include "bench/bench_util.h"

#include "src/common/hash.h"

namespace {

ring::Key VictimKey(uint32_t shard, int i) {
  for (int salt = 0;; ++salt) {
    ring::Key k = "su" + std::to_string(i) + "-" + std::to_string(salt);
    if (ring::KeyShard(k, 3) == shard) {
      return k;
    }
  }
}

}  // namespace

int main() {
  using namespace ring;
  std::printf("# Ablation: recovery latency of a 64 KiB SRS(3,2) block vs "
              "stripe unit\n");
  for (uint64_t unit : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
    Samples samples;
    for (int rep = 0; rep < 4; ++rep) {
      RingOptions o = bench::PaperCluster(1, 1, 500 + rep);
      o.stripe_unit = unit;
      RingCluster cluster(o);
      auto g = *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));
      const Key key = VictimKey(1, rep);
      (void)cluster.Put(key, MakePatternBuffer(64 * 1024, rep), g);
      cluster.KillNode(1, /*force_detect=*/true);
      auto& spare = cluster.server(5);
      cluster.RunUntilDone([&] { return spare.serving(); });
      cluster.client(0).RefreshConfigNow();
      auto& client = cluster.client(0);
      client.ResetStats();
      auto got = cluster.Get(key);
      if (got.ok() && !client.latencies().empty()) {
        samples.Add(client.latencies().values().back());
      }
    }
    std::printf("stripe unit %6llu B: 64 KiB recovery median %8.2f us\n",
                static_cast<unsigned long long>(unit), samples.Median());
  }
  return 0;
}
