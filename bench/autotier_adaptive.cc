// Adaptive tiering under a shifting hotspot: the policy subsystem
// (src/policy) against an all-Rep(3) baseline.
//
// 240 keys of 4 KiB live under a Zipf(0.99) distribution whose head rotates
// across the key space every 30 ms (workload::HotspotOffset — the
// deterministic hot→cold transition mode). The adaptive run starts all keys
// replicated and lets the AutoTierManager demote the cold majority to
// SRS(3,2) and chase the hotspot as it moves; the baseline keeps everything
// in Rep(3). Reported: cluster-memory/cost reduction and the latency impact
// on hot-key gets (the paper's multi-temperature economics, §2 use case 1 +
// Fig. 10, automated).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/policy/autotier.h"
#include "src/workload/drivers.h"
#include "src/workload/zipf.h"

namespace ring::bench {
namespace {

constexpr int kKeys = 240;
constexpr size_t kValueBytes = 4096;
constexpr uint64_t kHotCut = 24;   // ranks < kHotCut count as "hot" gets
constexpr uint64_t kShift = 80;    // hotspot rotation per phase
constexpr sim::SimTime kPhase = 30 * sim::kMillisecond;
constexpr int kPhases = 3;

Key KeyOf(int rank) { return "tier-" + std::to_string(rank); }

uint64_t ClusterLiveBytes(RingCluster& cluster) {
  uint64_t total = 0;
  for (net::NodeId n = 0; n < 5; ++n) {
    total += cluster.server(n).LiveBytes();
  }
  return total;
}

struct RunResult {
  uint64_t live_bytes = 0;          // converged cluster memory
  Samples hot_get_us;               // hot-rank get latencies, all phases
  uint64_t moves_completed = 0;
  uint64_t moves_scheduled = 0;
  uint64_t moves_aborted = 0;
  double realized_cost = 0.0;       // $/month per the tier price table
};

// One full shifting-hotspot run. `adaptive` enables the manager; both modes
// replay the identical closed-loop get sequence (same seed, same rotation
// schedule), so latency and memory numbers are directly comparable.
RunResult Run(bool adaptive) {
  RingCluster cluster(PaperCluster(/*clients=*/2, /*spares=*/0, /*seed=*/7));
  const MemgestId rep3 =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3, "REP3"));
  const MemgestId srs32 =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "SRS32"));

  policy::AutoTierOptions ao;
  ao.epoch_ns = 5 * sim::kMillisecond;
  ao.policy.hot_enter = 8.0;
  ao.policy.cold_enter = 2.0;
  ao.mover.moves_per_sec = 4000.0;
  ao.mover.client_index = 1;  // moves ride a separate client endpoint
  policy::AutoTierManager manager(
      &cluster,
      {policy::Tier{rep3, MemgestDescriptor::Replicated(3),
                    cost::PriceTable{}.hot},
       policy::Tier{srs32, MemgestDescriptor::ErasureCoded(3, 2),
                    cost::PriceTable{}.cool}},
      ao);

  const Buffer value = MakePatternBuffer(kValueBytes, 7);
  for (int i = 0; i < kKeys; ++i) {
    if (!cluster.Put(KeyOf(i), value, rep3).ok()) {
      std::fprintf(stderr, "preload failed\n");
      return {};
    }
  }
  if (adaptive) {
    manager.Start();
  }

  // Closed-loop gets; the Zipf head sits on rank HotspotOffset(now)/..., so
  // the hot set marches deterministically as simulated time passes.
  workload::ZipfGenerator zipf(kKeys, 0.99);
  Rng rng(11);
  RunResult out;
  auto& client = cluster.client(0);
  client.ResetStats();
  const sim::SimTime t0 = cluster.simulator().now();
  while (cluster.simulator().now() - t0 < kPhases * kPhase) {
    const uint64_t raw = zipf.Next(rng);
    const uint64_t offset = workload::HotspotOffset(
        cluster.simulator().now() - t0, kPhase, kShift);
    const int rank = static_cast<int>((raw + offset) % kKeys);
    if (!cluster.Get(KeyOf(rank)).ok()) {
      continue;
    }
    if (raw < kHotCut && !client.latencies().empty()) {
      out.hot_get_us.Add(client.latencies().values().back());
    }
  }
  // Let the last batch of re-tiering moves drain before measuring memory.
  cluster.RunFor(10 * sim::kMillisecond);

  out.live_bytes = ClusterLiveBytes(cluster);
  out.moves_scheduled = manager.mover().scheduled();
  out.moves_completed = manager.mover().completed();
  out.moves_aborted = manager.mover().aborted();
  out.realized_cost = manager.RealizedStorageCost();
  manager.Stop();

  // Spot-check integrity after all the background re-tiering.
  for (int i = 0; i < kKeys; i += 37) {
    auto got = cluster.Get(KeyOf(i));
    if (!got.ok() || *got != value) {
      std::fprintf(stderr, "integrity check failed for %s\n",
                   KeyOf(i).c_str());
    }
  }
  return out;
}

void Main() {
  std::printf(
      "Adaptive tiering vs all-Rep(3), shifting hotspot (%d keys x %zu B,\n"
      "Zipf head of %llu rotating by %llu keys every %llu ms, %d phases):\n\n",
      kKeys, kValueBytes, static_cast<unsigned long long>(kHotCut),
      static_cast<unsigned long long>(kShift),
      static_cast<unsigned long long>(kPhase / sim::kMillisecond), kPhases);

  const RunResult base = Run(/*adaptive=*/false);
  const RunResult tier = Run(/*adaptive=*/true);

  const double raw_bytes = static_cast<double>(kKeys) * kValueBytes;
  std::printf(
      "  all-Rep(3)  memory %9llu B (%.2fx raw)   hot-get p99 %7.2f us"
      "  (%zu hot gets)\n",
      static_cast<unsigned long long>(base.live_bytes),
      base.live_bytes / raw_bytes, base.hot_get_us.Percentile(99),
      base.hot_get_us.count());
  std::printf(
      "  adaptive    memory %9llu B (%.2fx raw)   hot-get p99 %7.2f us"
      "  (%zu hot gets)\n",
      static_cast<unsigned long long>(tier.live_bytes),
      tier.live_bytes / raw_bytes, tier.hot_get_us.Percentile(99),
      tier.hot_get_us.count());
  std::printf(
      "  moves: scheduled %llu, completed %llu, aborted %llu;"
      " realized storage+ops cost %.4f $/month\n",
      static_cast<unsigned long long>(tier.moves_scheduled),
      static_cast<unsigned long long>(tier.moves_completed),
      static_cast<unsigned long long>(tier.moves_aborted),
      tier.realized_cost);

  const double saving =
      100.0 * (1.0 - static_cast<double>(tier.live_bytes) /
                         static_cast<double>(base.live_bytes));
  const double p99_delta =
      100.0 * (tier.hot_get_us.Percentile(99) /
                   base.hot_get_us.Percentile(99) -
               1.0);
  std::printf(
      "\n  cluster-memory saving %.1f%% (target >= 30%%),"
      " hot-get p99 delta %+.1f%% (target within 10%%)\n",
      saving, p99_delta);
}

}  // namespace
}  // namespace ring::bench

int main() {
  ring::bench::Main();
  return 0;
}
