// Ablation: request availability through a node failure — replication vs
// erasure coding (paper §3.2: "systems using erasure codes are less
// available than ones using replication schemes in the presence of
// failures", because reads of lost blocks must wait for decoding).
//
// A steady closed-loop reader hits keys of the victim's shards; the harness
// reports the timeline of per-get latency around the failure: the outage
// window (detection + metadata recovery) and the post-recovery degradation
// (replica copy vs k-block decode per first touch).
#include "bench/bench_util.h"

#include "src/common/hash.h"

namespace {

ring::Key VictimKey(uint32_t shard, int i) {
  for (int salt = 0;; ++salt) {
    ring::Key k = "av" + std::to_string(i) + "-" + std::to_string(salt);
    if (ring::KeyShard(k, 3) == shard) {
      return k;
    }
  }
}

void Run(const char* label, ring::MemgestDescriptor desc) {
  using namespace ring;
  RingOptions o = bench::PaperCluster(1, /*spares=*/1, 811);
  o.params.client_retry_timeout_ns = 100 * sim::kMicrosecond;
  // Pure on-demand recovery: every first touch after the failure pays the
  // replica copy / erasure decode, which is what this ablation measures.
  o.background_data_recovery = false;
  RingCluster cluster(o);
  auto g = *cluster.CreateMemgest(desc);
  const int kKeys = 64;
  std::vector<Key> keys;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(VictimKey(1, i));
    (void)cluster.Put(keys.back(), MakePatternBuffer(4096, i), g);
  }
  auto& client = cluster.client(0);

  // Closed-loop gets; failure injected after 200 reads.
  std::printf("%s:\n", label);
  Samples before;
  Samples outage;
  Samples degraded;
  Samples steady;
  int reads = 0;
  bool killed = false;
  sim::SimTime kill_time = 0;
  sim::SimTime first_ok_after = 0;
  for (int i = 0; i < 1200; ++i) {
    if (reads == 200 && !killed) {
      cluster.KillNode(1, /*force_detect=*/true);
      kill_time = cluster.simulator().now();
      killed = true;
    }
    client.ResetStats();
    const bool ok = cluster.Get(keys[i % kKeys]).ok();
    const double lat = client.latencies().empty()
                           ? -1
                           : client.latencies().values().back();
    ++reads;
    if (!killed) {
      before.Add(lat);
    } else if (ok && first_ok_after == 0) {
      first_ok_after = cluster.simulator().now();
      degraded.Add(lat);
    } else if (ok && reads < 200 + 2 * kKeys) {
      degraded.Add(lat);  // first touches decode / copy on demand
    } else if (ok) {
      steady.Add(lat);
    } else {
      outage.Add(1);
    }
  }
  std::printf("  healthy get       median %8.2f us\n", before.Median());
  std::printf("  outage window     %8.1f us until first successful get\n",
              first_ok_after > kill_time
                  ? static_cast<double>(first_ok_after - kill_time) / 1000.0
                  : 0.0);
  std::printf("  degraded gets     median %8.2f us (on-demand recovery)\n",
              degraded.empty() ? 0.0 : degraded.Median());
  std::printf("  recovered gets    median %8.2f us\n\n",
              steady.empty() ? 0.0 : steady.Median());
}

}  // namespace

int main() {
  using namespace ring;
  std::printf(
      "# Ablation: availability through a coordinator failure, 4 KiB "
      "objects\n");
  Run("Rep(3)  (replica copy on demand)", MemgestDescriptor::Replicated(3));
  Run("SRS(3,2) (k-block decode on demand)",
      MemgestDescriptor::ErasureCoded(3, 2));
  Run("SRS(2,1) (2-block decode on demand)",
      MemgestDescriptor::ErasureCoded(2, 1));
  return 0;
}
