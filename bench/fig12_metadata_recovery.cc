// Figure 12: coordinator recovery latency versus recovered metadata size
// (paper §6.4).
//
// A coordinator is killed; the measured interval spans detection ->
// configuration replication -> reconnect -> metadata + log transfer ->
// volatile-hashtable rebuild (the six steps of §6.4). The paper reports a
// ~300 us median at ~1 MiB of metadata, scaling with metadata size.
#include "bench/bench_util.h"

#include "src/common/hash.h"

namespace {

// Key in the victim shard.
ring::Key VictimKey(uint32_t shard, uint32_t s, int i) {
  for (int salt = 0;; ++salt) {
    ring::Key k = "r" + std::to_string(i) + "-" + std::to_string(salt);
    if (ring::KeyShard(k, s) == shard) {
      return k;
    }
  }
}

}  // namespace

int main() {
  using namespace ring;
  std::printf("# Figure 12: metadata recovery latency vs metadata size\n");
  const uint32_t victim = 1;  // shard-1 coordinator (not the leader)
  // Entry counts chosen to land near the paper's x-axis labels
  // (kMetaEntryWireBytes = 96 B per entry).
  for (uint64_t entries : {938, 1024, 1195, 1536, 2219, 3584, 6315, 11776,
                           22699}) {
    Samples samples;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      RingOptions o = bench::PaperCluster(/*clients=*/1, /*spares=*/1,
                                          100 + rep);
      RingCluster cluster(o);
      auto g = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
      const Buffer value = MakePatternBuffer(64, rep);
      for (uint64_t i = 0; i < entries; ++i) {
        (void)cluster.Put(VictimKey(victim, 3, static_cast<int>(i)), value, g);
      }
      const uint64_t meta_bytes =
          cluster.server(victim).TotalMetadataBytes();
      cluster.KillNode(victim, /*force_detect=*/true);
      auto& spare = cluster.server(5);
      cluster.RunUntilDone([&] { return spare.serving(); });
      samples.Add(static_cast<double>(spare.last_recovery_ns()) / 1000.0);
      if (rep == 0) {
        std::printf("%8.0f KiB metadata: ",
                    static_cast<double>(meta_bytes) / 1024.0);
      }
    }
    std::printf("recovery median %8.1f us   p90 %8.1f us\n",
                samples.Median(), samples.Percentile(90));
  }
  return 0;
}
