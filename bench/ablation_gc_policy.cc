// Ablation: version garbage collection policy (paper §5.2).
//
// "Old versions are removed from the system periodically. It can be tuned
// to trigger removing of old versions of a key after every committed put."
// This harness overwrites a small key population many times with GC-on-commit
// versus GC-disabled and reports live memory and metadata growth.
#include "bench/bench_util.h"

namespace {

struct Footprint {
  double live_mib;
  double meta_kib;
};

Footprint Run(bool gc) {
  using namespace ring;
  RingOptions o = bench::PaperCluster(1, 0, 41);
  o.gc_old_versions = gc;
  RingCluster cluster(o);
  auto rep3 = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3));
  auto srs32 = *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2));
  const int kKeys = 20;
  const int kOverwrites = 40;
  for (int round = 0; round < kOverwrites; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      const MemgestId g = (i % 2 == 0) ? rep3 : srs32;
      (void)cluster.Put("gc-" + std::to_string(i),
                        MakePatternBuffer(2048, round * 100 + i), g);
    }
  }
  cluster.RunFor(10 * ring::sim::kMillisecond);
  uint64_t live = 0;
  uint64_t meta = 0;
  for (net::NodeId node = 0; node < 5; ++node) {
    live += cluster.server(node).LiveBytes();
    meta += cluster.server(node).TotalMetadataBytes();
  }
  return {static_cast<double>(live) / (1 << 20),
          static_cast<double>(meta) / 1024.0};
}

}  // namespace

int main() {
  std::printf("# Ablation: GC-on-commit vs no version GC\n");
  std::printf("# 20 keys x 2 KiB, overwritten 40x across Rep(3) and SRS(3,2)\n");
  const Footprint with_gc = Run(true);
  const Footprint without_gc = Run(false);
  std::printf("gc-on-commit:  live %7.2f MiB   metadata %8.1f KiB\n",
              with_gc.live_mib, with_gc.meta_kib);
  std::printf("gc-disabled:   live %7.2f MiB   metadata %8.1f KiB\n",
              without_gc.live_mib, without_gc.meta_kib);
  std::printf("growth factor: live %.1fx, metadata %.1fx\n",
              without_gc.live_mib / with_gc.live_mib,
              without_gc.meta_kib / with_gc.meta_kib);
  return 0;
}
