// Ablation: quorum vs fully-synchronous replication (paper §3.1).
//
// "Basic fully synchronous replication can tolerate r-1 failures, but the
// unavailability in case of failures is higher because of the synchronous
// communication with worker nodes." With a replica down and no spare to
// promote, quorum puts keep committing through the surviving majority while
// full-sync puts cannot commit at all.
#include "bench/bench_util.h"

#include "src/common/hash.h"

namespace {

ring::Key Shard0Key(int i) {
  for (int salt = 0;; ++salt) {
    ring::Key k = "q" + std::to_string(i) + "-" + std::to_string(salt);
    if (ring::KeyShard(k, 3) == 0) {
      return k;
    }
  }
}

}  // namespace

int main() {
  using namespace ring;
  std::printf("# Ablation: quorum vs full-sync Rep(r) commits (1 KiB puts, "
              "keys on shard 0)\n");
  for (uint32_t r : {2u, 3u, 4u}) {
    for (bool full_sync : {false, true}) {
      RingOptions o = bench::PaperCluster(1, /*spares=*/0, 77);
      // Bounded patience so a blocked put reports quickly.
      o.params.client_retry_timeout_ns = 2 * sim::kMillisecond;
      RingCluster cluster(o);
      auto desc = full_sync ? MemgestDescriptor::FullSyncReplicated(r)
                            : MemgestDescriptor::Replicated(r);
      auto g = *cluster.CreateMemgest(desc);
      auto& client = cluster.client(0);

      Samples healthy;
      for (int i = 0; i < 200; ++i) {
        client.ResetStats();
        if (cluster.Put(Shard0Key(i % 8), MakePatternBuffer(1024, i), g)
                .ok() &&
            !client.latencies().empty()) {
          healthy.Add(client.latencies().values().back());
        }
      }

      // Node 1 is the first replica of shard 0 for every r >= 2; with no
      // spare its slot stays dark.
      cluster.KillNode(1, /*force_detect=*/true);
      cluster.RunFor(2 * sim::kMillisecond);
      client.ResetStats();
      const Status s =
          cluster.Put(Shard0Key(100), MakePatternBuffer(1024, 9), g);
      const double after = client.latencies().empty()
                               ? -1.0
                               : client.latencies().values().back();
      std::printf(
          "Rep(%u) %-10s healthy put %6.2f us | put with a dead, "
          "unreplaced replica: %-9s (%.0f us)\n",
          r, full_sync ? "full-sync" : "quorum", healthy.Median(),
          s.ok() ? "commits" : s.ToString().c_str(), after);
    }
  }
  std::printf(
      "# quorum commits through the surviving majority (r >= 3); full-sync\n"
      "# (and quorum at r = 2) cannot commit until the replica is replaced\n"
      "# -- the paper's availability argument for quorum replication.\n");
  return 0;
}
