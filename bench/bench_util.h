// Shared helpers for the figure/table harnesses.
#ifndef RING_BENCH_BENCH_UTIL_H_
#define RING_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/hub.h"
#include "src/ring/cluster.h"
#include "src/workload/drivers.h"

namespace ring::bench {

// The paper's standard deployment: 5 nodes, 3 coordinators, 2 redundant
// (Fig. 3), plus spares/clients as needed by the experiment.
inline RingOptions PaperCluster(uint32_t clients = 1, uint32_t spares = 0,
                                uint64_t seed = 7) {
  RingOptions o;
  o.s = 3;
  o.d = 2;
  o.spares = spares;
  o.clients = clients;
  o.seed = seed;
  // Latency percentiles separate only with jitter enabled; retries are
  // disabled so that saturation does not trigger multicast storms.
  o.params.wire_jitter_ns = 400;
  o.params.client_retry_timeout_ns = 200 * sim::kMillisecond;
  return o;
}

// The seven memgests of §6.1 on one 5-node group.
struct PaperMemgests {
  MemgestId rep1, rep2, rep3, rep4, srs21, srs31, srs32;
};

inline PaperMemgests CreatePaperMemgests(RingCluster& cluster) {
  PaperMemgests m;
  m.rep1 = *cluster.CreateMemgest(MemgestDescriptor::Replicated(1, "REP1"));
  m.rep2 = *cluster.CreateMemgest(MemgestDescriptor::Replicated(2, "REP2"));
  m.rep3 = *cluster.CreateMemgest(MemgestDescriptor::Replicated(3, "REP3"));
  m.rep4 = *cluster.CreateMemgest(MemgestDescriptor::Replicated(4, "REP4"));
  m.srs21 = *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(2, 1, "SRS21"));
  m.srs31 = *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 1, "SRS31"));
  m.srs32 = *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "SRS32"));
  return m;
}

inline void PrintLatencyRow(const std::string& label, size_t size,
                            const Samples& s) {
  if (s.empty()) {
    std::printf("%-8s %6zu B    (no samples)\n", label.c_str(), size);
    return;
  }
  std::printf("%-8s %6zu B   median %7.2f us   p90 %7.2f us\n", label.c_str(),
              size, s.Median(), s.Percentile(90));
}

inline void PrintBreakdownRow(const std::string& label,
                              const obs::BreakdownMean& b) {
  std::printf("%-14s network %6.2f  coding %6.2f  cpu %6.2f  queue %6.2f  "
              "wait %6.2f  = %7.2f us end-to-end  (%llu ops)\n",
              label.c_str(), b.network_us, b.coding_us, b.cpu_us, b.queue_us,
              b.wait_us, b.total_us, static_cast<unsigned long long>(b.ops));
}

// Mean per-phase breakdown of the `opname` spans currently in the tracer.
inline obs::BreakdownMean TracedBreakdown(RingCluster& cluster,
                                          const char* opname) {
  return obs::MeanBreakdown(
      cluster.simulator().hub().tracer().OpBreakdowns(), opname);
}

// Runs one traced closed-loop put pass and prints its mean per-phase
// breakdown. Leaves tracing in the state it found it, with the tracer
// cleared, so surrounding measurements are unaffected.
inline void PrintTracedPutBreakdown(RingCluster& cluster,
                                    const std::string& label,
                                    MemgestId memgest, size_t size, int reps) {
  obs::Hub& hub = cluster.simulator().hub();
  const bool was_tracing = hub.tracing_enabled();
  hub.tracer().Clear();
  hub.EnableTracing(true);
  workload::ClosedLoopDriver driver(&cluster);
  driver.MeasurePutLatency(memgest, size, reps);
  hub.EnableTracing(was_tracing);
  PrintBreakdownRow(label, TracedBreakdown(cluster, "put"));
  hub.tracer().Clear();
}

}  // namespace ring::bench

#endif  // RING_BENCH_BENCH_UTIL_H_
