// Figure 8(a,b): latency of move(key, memgest) versus object size, by
// destination memgest (paper §6.2).
//
// Expected shape: only the destination matters (the source data is local);
// move-to-REP1 is flat in object size (no client resend, main-memory copy);
// moving into reliable schemes costs less than a direct put (the value does
// not cross the client link again).
#include "bench/bench_util.h"

int main() {
  using namespace ring;
  RingCluster cluster(bench::PaperCluster());
  const auto m = bench::CreatePaperMemgests(cluster);
  workload::ClosedLoopDriver driver(&cluster);

  const int reps = 500;
  std::printf("# Figure 8a/8b: move latency vs object size, by destination\n");
  const std::vector<std::pair<const char*, MemgestId>> destinations = {
      {"SRS32", m.srs32}, {"SRS31", m.srs31}, {"SRS21", m.srs21},
      {"REP4", m.rep4},   {"REP3", m.rep3},   {"REP2", m.rep2},
      {"REP1", m.rep1},
  };
  for (const auto& [label, dst] : destinations) {
    // Source is the reliable REP3 memgest unless it is the destination; the
    // paper notes the source scheme does not influence latency.
    const MemgestId src = (dst == m.rep3) ? m.rep1 : m.rep3;
    for (size_t size = 2; size <= 2048; size *= 2) {
      bench::PrintLatencyRow(std::string("move->") + label, size,
                             driver.MeasureMoveLatency(src, dst, size, reps));
    }
    std::printf("\n");
  }
  return 0;
}
