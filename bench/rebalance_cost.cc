// Rebalance cost (§13): what an online resize moves and what the foreground
// pays while it drains.
//
// A 6-coordinator cluster (s=6, d=2, two spares) is loaded with a fixed key
// population, then resized online through four back-to-back transitions —
// scale-out 6→7→8, scale-in 8→7→6 — while an open-loop prober issues gets
// against the same population. Per transition the harness reports the
// driver's drain stats (keys moved over the network vs re-encoded in place,
// bytes shipped, install count, scan rounds, drain wall-clock) and the
// foreground read latency observed *during* the drain against the quiet
// baseline measured before any resize — the "wall blip" of §13: migration
// traffic rides the policy mover's token bucket, so the p99 should move, if
// at all, by pacing, not by stalls.
//
// Run once per scheme: Rep(3) (payload bytes travel on every handover) and
// SRS(3,2) (handover re-encodes under the new geometry; only stripe-unit
// content moves). Emits BENCH_rebalance.json (override with argv[1]).
#include "bench/bench_util.h"

#include <string>
#include <vector>

#include "src/membership/rebalance.h"

namespace {

using namespace ring;

constexpr int kKeys = 1200;
constexpr size_t kValueBytes = 1024;
constexpr sim::SimTime kProbeGap = 50 * sim::kMicrosecond;

struct TransitionResult {
  const char* kind = nullptr;  // "scale_out" / "scale_in"
  uint32_t from_s = 0;
  uint32_t to_s = 0;
  membership::RebalanceStats stats;
  Samples during_us;  // probe latency while the drain was active
};

struct SchemeResult {
  const char* scheme = nullptr;
  Samples baseline_us;  // quiet-cluster probe latency, before any resize
  std::vector<TransitionResult> transitions;
  uint64_t probe_errors = 0;
};

SchemeResult Run(const char* scheme, MemgestDescriptor desc) {
  RingOptions o;
  o.s = 6;
  o.d = 2;
  o.spares = 2;
  o.clients = 2;
  o.seed = 1709;
  o.params.wire_jitter_ns = 400;
  RingCluster cluster(o);
  const MemgestId g = *cluster.CreateMemgest(desc);

  SchemeResult result;
  result.scheme = scheme;
  for (int i = 0; i < kKeys; ++i) {
    const Key key = "rb-" + std::to_string(i);
    if (!cluster.Put(key, MakePatternBuffer(kValueBytes, i), g).ok()) {
      std::fprintf(stderr, "%s: load put %d failed\n", scheme, i);
      return result;
    }
  }

  // Open-loop prober on the second client; the sample sink is swapped
  // between the baseline and per-transition buckets. Settle-window probes
  // land in a discard bucket so post-drain stragglers cannot pollute the
  // quiet baseline.
  Samples discard;
  Samples* sink = &result.baseline_us;
  int probe_seq = 0;
  auto probe = [&] {
    const Key key = "rb-" + std::to_string(probe_seq++ % kKeys);
    const sim::SimTime start = cluster.simulator().now();
    cluster.client(1).Get(key, [&result, &cluster, sink, start](GetResult r) {
      if (!r.status.ok()) {
        ++result.probe_errors;
        return;
      }
      sink->Add(static_cast<double>(cluster.simulator().now() - start) / 1e3);
    });
  };
  auto probe_for = [&](sim::SimTime duration) {
    const sim::SimTime until = cluster.simulator().now() + duration;
    while (cluster.simulator().now() < until) {
      probe();
      cluster.RunFor(kProbeGap);
    }
  };

  probe_for(10 * sim::kMillisecond);  // quiet baseline

  auto transition = [&](const char* kind, bool grow) {
    TransitionResult tr;
    tr.kind = kind;
    membership::RebalanceCoordinator coord(&cluster);
    const consensus::ClusterConfig& cfg =
        cluster.runtime().membership().ConfigView(
            cluster.runtime().leader_node());
    tr.from_s = cfg.s;
    tr.to_s = grow ? cfg.s + 1 : cfg.s - 1;
    const bool accepted =
        grow ? coord.AddServer(static_cast<net::NodeId>(cfg.FindSpare()))
             : coord.RemoveServer(cfg.s - 1);
    if (!accepted) {
      std::fprintf(stderr, "%s: %s %u->%u rejected\n", scheme, kind,
                   tr.from_s, tr.to_s);
      return;
    }
    sink = &tr.during_us;
    while (coord.active()) {
      probe();
      cluster.RunFor(kProbeGap);
    }
    sink = &discard;  // settle probes: keep the pump warm, record nothing
    if (coord.failed()) {
      std::fprintf(stderr, "%s: %s %u->%u FAILED to drain\n", scheme, kind,
                   tr.from_s, tr.to_s);
    }
    tr.stats = coord.stats();
    result.transitions.push_back(std::move(tr));
    probe_for(2 * sim::kMillisecond);  // let stragglers clear between runs
  };
  transition("scale_out", true);
  transition("scale_out", true);
  transition("scale_in", false);
  transition("scale_in", false);
  cluster.RunFor(5 * sim::kMillisecond);
  return result;
}

void PrintScheme(const SchemeResult& r) {
  std::printf("%s: baseline get p50 %.1f us, p99 %.1f us (%zu probes, %llu "
              "errors)\n",
              r.scheme, r.baseline_us.Percentile(50),
              r.baseline_us.Percentile(99), r.baseline_us.count(),
              static_cast<unsigned long long>(r.probe_errors));
  for (const TransitionResult& t : r.transitions) {
    const double ms =
        static_cast<double>(t.stats.end_ns - t.stats.start_ns) / 1e6;
    std::printf(
        "  %-9s s %u->%u: %5llu moved, %4llu re-encoded, %8llu bytes, "
        "%3llu rounds, %6.2f ms drain, during p50 %.1f us p99 %.1f us\n",
        t.kind, t.from_s, t.to_s,
        static_cast<unsigned long long>(t.stats.keys_moved),
        static_cast<unsigned long long>(t.stats.keys_reencoded),
        static_cast<unsigned long long>(t.stats.bytes_moved),
        static_cast<unsigned long long>(t.stats.scan_rounds), ms,
        t.during_us.empty() ? 0.0 : t.during_us.Percentile(50),
        t.during_us.empty() ? 0.0 : t.during_us.Percentile(99));
  }
}

void WriteJson(const char* path, const std::vector<SchemeResult>& results) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"rebalance_cost\",\n");
  std::fprintf(f, "  \"keys\": %d,\n  \"value_bytes\": %zu,\n", kKeys,
               kValueBytes);
  std::fprintf(f, "  \"cluster\": {\"s\": 6, \"d\": 2, \"spares\": 2},\n");
  std::fprintf(f, "  \"schemes\": [");
  for (size_t s = 0; s < results.size(); ++s) {
    const SchemeResult& r = results[s];
    std::fprintf(f, "%s\n    {\n      \"scheme\": \"%s\",\n",
                 s == 0 ? "" : ",", r.scheme);
    std::fprintf(f, "      \"probe_errors\": %llu,\n",
                 static_cast<unsigned long long>(r.probe_errors));
    std::fprintf(f,
                 "      \"baseline_get_p50_us\": %.2f,\n"
                 "      \"baseline_get_p99_us\": %.2f,\n",
                 r.baseline_us.Percentile(50), r.baseline_us.Percentile(99));
    std::fprintf(f, "      \"transitions\": [");
    for (size_t i = 0; i < r.transitions.size(); ++i) {
      const TransitionResult& t = r.transitions[i];
      std::fprintf(f, "%s\n        {\"kind\": \"%s\", \"from_s\": %u, "
                   "\"to_s\": %u,\n",
                   i == 0 ? "" : ",", t.kind, t.from_s, t.to_s);
      std::fprintf(
          f,
          "         \"keys_moved\": %llu, \"keys_reencoded\": %llu, "
          "\"bytes_moved\": %llu, \"installs\": %llu,\n",
          static_cast<unsigned long long>(t.stats.keys_moved),
          static_cast<unsigned long long>(t.stats.keys_reencoded),
          static_cast<unsigned long long>(t.stats.bytes_moved),
          static_cast<unsigned long long>(t.stats.installs));
      std::fprintf(
          f,
          "         \"scan_rounds\": %llu, \"migrates\": %llu, "
          "\"drain_ms\": %.3f,\n",
          static_cast<unsigned long long>(t.stats.scan_rounds),
          static_cast<unsigned long long>(t.stats.migrates_issued),
          static_cast<double>(t.stats.end_ns - t.stats.start_ns) / 1e6);
      std::fprintf(
          f,
          "         \"during_get_p50_us\": %.2f, "
          "\"during_get_p99_us\": %.2f}",
          t.during_us.empty() ? 0.0 : t.during_us.Percentile(50),
          t.during_us.empty() ? 0.0 : t.during_us.Percentile(99));
    }
    std::fprintf(f, "\n      ]\n    }");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<SchemeResult> results;
  results.push_back(Run("REP3", MemgestDescriptor::Replicated(3, "REP3")));
  results.push_back(
      Run("SRS32", MemgestDescriptor::ErasureCoded(3, 2, "SRS32")));
  for (const SchemeResult& r : results) {
    PrintScheme(r);
  }
  WriteJson(argc > 1 ? argv[1] : "BENCH_rebalance.json", results);
  return 0;
}
