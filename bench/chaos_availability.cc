// Chaos availability: unavailability windows per resilience scheme under a
// scripted fault schedule (paper §6 availability discussion, Fig. 10/16
// flavour, driven by the src/fault injector instead of clean Kill calls).
//
// A fixed-cadence open-loop prober issues gets against keys homed on the
// victim shard while the schedule plays out: a crash-recovery of the
// coordinator (the node restarts memory-less and rejoins), then a gray
// pause of whichever node serves the shard after failover. Probes that fail
// or stall mark the timeline "unavailable"; contiguous runs are reported as
// windows. Replication rides out the crash with a replica promotion;
// erasure coding pays decoding on first touch; Rep(1) keys on the victim
// are lost for good — the rejoined node comes back memory-less.
#include "bench/bench_util.h"

#include "src/common/hash.h"
#include "src/fault/fault.h"

namespace {

using namespace ring;

Key VictimKey(uint32_t shard, int i) {
  for (int salt = 0;; ++salt) {
    Key k = "ca" + std::to_string(i) + "-" + std::to_string(salt);
    if (KeyShard(k, 3) == shard) {
      return k;
    }
  }
}

struct Probe {
  sim::SimTime issued;
  sim::SimTime completed = 0;
  bool done = false;
  bool ok = false;
};

void Run(const char* label, MemgestDescriptor desc) {
  RingOptions o = bench::PaperCluster(/*clients=*/1, /*spares=*/1, 1307);
  // Fast failure handling so the crash window is dominated by the protocol,
  // not by a deliberately conservative detector; probes fail fast instead of
  // burning the full default retry budget.
  o.params.heartbeat_period_ns = 500 * sim::kMicrosecond;
  o.params.failure_timeout_ns = 2 * sim::kMillisecond;
  o.params.client_retry_timeout_ns = 200 * sim::kMicrosecond;
  o.params.client_retry_budget_ns = 3 * sim::kMillisecond;
  // The schedule: the shard-1 coordinator crashes at 5 ms and restarts
  // memory-less at 30 ms (rejoining via the spare/recovery path); at 60 ms
  // the promoted spare (node 5) suffers an 8 ms gray pause — alive on the
  // wire, making no progress — healed before the detector gives up on it.
  o.fault_plan = *fault::ParseFaultPlan(
      "crash node=1 at=5ms recover=30ms\n"
      "pause node=5 at=60ms resume=68ms");
  o.fault_seed = 1307;
  RingCluster cluster(o);
  auto g = *cluster.CreateMemgest(desc);

  const int kKeys = 32;
  std::vector<Key> keys;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(VictimKey(1, i));
    (void)cluster.Put(keys[i], MakePatternBuffer(1024, i), g);
  }

  // Open-loop probe stream: one get every 100 us for 100 ms.
  const sim::SimTime kProbeGap = 100 * sim::kMicrosecond;
  const sim::SimTime kHorizon = 100 * sim::kMillisecond;
  const sim::SimTime t0 = cluster.simulator().now();
  std::vector<Probe> probes;
  probes.reserve(kHorizon / kProbeGap + 1);
  auto& client = cluster.client(0);
  for (int i = 0; cluster.simulator().now() - t0 < kHorizon; ++i) {
    const size_t slot = probes.size();
    probes.push_back(Probe{cluster.simulator().now() - t0});
    client.Get(keys[i % kKeys],
               [&probes, slot, &cluster, t0](GetResult r) {
      probes[slot].done = true;
      probes[slot].ok = r.status.ok();
      probes[slot].completed = cluster.simulator().now() - t0;
    });
    cluster.RunFor(kProbeGap);
  }
  cluster.RunFor(50 * sim::kMillisecond);  // drain stragglers

  // A probe marks its issue instant unavailable if it failed outright or
  // stalled past the SLO (it had to ride out detection + failover before a
  // retry landed). Merge contiguous bad probes into windows.
  const sim::SimTime kSlo = 1 * sim::kMillisecond;
  struct Window {
    sim::SimTime start, end;
  };
  std::vector<Window> windows;
  int failed = 0;
  int stalled = 0;
  for (const Probe& p : probes) {
    const bool lost = !p.done || !p.ok;
    const bool slow = !lost && p.completed - p.issued > kSlo;
    if (!lost && !slow) {
      continue;
    }
    failed += lost ? 1 : 0;
    stalled += slow ? 1 : 0;
    if (!windows.empty() && p.issued - windows.back().end <= 2 * kProbeGap) {
      windows.back().end = p.issued;
    } else {
      windows.push_back(Window{p.issued, p.issued});
    }
  }
  sim::SimTime total = 0;
  sim::SimTime longest = 0;
  for (const Window& w : windows) {
    const sim::SimTime span = w.end - w.start + kProbeGap;
    total += span;
    longest = std::max(longest, span);
  }

  std::printf("%s:\n", label);
  std::printf("  probes %zu, failed %d, stalled(>1ms) %d, windows %zu\n",
              probes.size(), failed, stalled, windows.size());
  std::printf("  unavailable %7.2f ms total, longest window %7.2f ms\n",
              static_cast<double>(total) / 1e6,
              static_cast<double>(longest) / 1e6);
  for (const Window& w : windows) {
    std::printf("    [%7.2f, %7.2f] ms\n", static_cast<double>(w.start) / 1e6,
                static_cast<double>(w.end + kProbeGap) / 1e6);
  }
  const auto& f = cluster.runtime().injector()->counters();
  std::printf("  injected: crashes %llu, recoveries %llu, pauses %llu, "
              "deferred deliveries %llu\n\n",
              static_cast<unsigned long long>(f.crashes),
              static_cast<unsigned long long>(f.recoveries),
              static_cast<unsigned long long>(f.pauses),
              static_cast<unsigned long long>(f.deferred));
}

}  // namespace

int main() {
  std::printf(
      "# Chaos availability: crash-recovery at 5-30 ms + gray pause at "
      "60-68 ms,\n# 1 KiB objects on the victim shard, probe every 100 us\n\n");
  Run("Rep(3)   (replica promotion)", MemgestDescriptor::Replicated(3));
  Run("SRS(3,2) (decode on demand)", MemgestDescriptor::ErasureCoded(3, 2));
  Run("Rep(1)   (unreliable: lost for good, until rewritten)",
      MemgestDescriptor::Replicated(1));
  return 0;
}
