// Chaos availability: unavailability windows per resilience scheme under a
// scripted fault schedule (paper §6 availability discussion, Fig. 10/16
// flavour, driven by the src/fault injector instead of clean Kill calls).
//
// A fixed-cadence open-loop prober issues gets against keys homed on the
// victim shard while the schedule plays out: a crash-recovery of the
// coordinator (the node restarts memory-less and rejoins), then a gray
// pause of whichever node serves the shard after failover. The probe stream
// feeds the telemetry pipeline (client.ops_ok / client.op_latency_ns into
// 1 ms time-series windows); per-window goodput, error rate, and p50/p99
// come from TimeSeries::Slis, and unavailability windows are the SLI dips
// FindDips extracts — the same machinery `ringctl report` uses. Replication
// rides out the crash with a replica promotion; erasure coding pays
// decoding on first touch; Rep(1) keys on the victim are lost for good —
// the rejoined node comes back memory-less.
//
// Emits BENCH_chaos.json (override the path with argv[1]) with the full
// per-window SLI rows per scheme.
#include "bench/bench_util.h"

#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/fault/fault.h"
#include "src/obs/report.h"

namespace {

using namespace ring;

constexpr char kPlanSpec[] =
    "crash node=1 at=5ms recover=30ms\n"
    "pause node=5 at=60ms resume=68ms";

Key VictimKey(uint32_t shard, int i) {
  for (int salt = 0;; ++salt) {
    Key k = "ca" + std::to_string(i) + "-" + std::to_string(salt);
    if (KeyShard(k, 3) == shard) {
      return k;
    }
  }
}

struct SchemeResult {
  const char* label = nullptr;
  const char* scheme = nullptr;
  uint64_t window_ns = 0;
  size_t probes = 0;
  uint64_t failed = 0;  // probe callbacks that returned a non-ok status
  std::vector<obs::TimeSeries::SliWindow> rows;
  std::vector<obs::Dip> dips;
  fault::FaultInjector::Counters injected;
};

SchemeResult Run(const char* label, const char* scheme,
                 MemgestDescriptor desc) {
  RingOptions o = bench::PaperCluster(/*clients=*/1, /*spares=*/1, 1307);
  // Fast failure handling so the crash window is dominated by the protocol,
  // not by a deliberately conservative detector; probes fail fast instead of
  // burning the full default retry budget.
  o.params.heartbeat_period_ns = 500 * sim::kMicrosecond;
  o.params.failure_timeout_ns = 2 * sim::kMillisecond;
  o.params.client_retry_timeout_ns = 200 * sim::kMicrosecond;
  o.params.client_retry_budget_ns = 3 * sim::kMillisecond;
  // The schedule: the shard-1 coordinator crashes at 5 ms and restarts
  // memory-less at 30 ms (rejoining via the spare/recovery path); at 60 ms
  // the promoted spare (node 5) suffers an 8 ms gray pause — alive on the
  // wire, making no progress — healed before the detector gives up on it.
  o.fault_plan = *fault::ParseFaultPlan(kPlanSpec);
  o.fault_seed = 1307;
  RingCluster cluster(o);
  auto g = *cluster.CreateMemgest(desc);

  const int kKeys = 32;
  std::vector<Key> keys;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(VictimKey(1, i));
    (void)cluster.Put(keys[i], MakePatternBuffer(1024, i), g);
  }

  // Telemetry on after the setup puts: the windows carry the probe stream
  // only. 1 ms windows over a 100 ms horizon, capacity with drain slack.
  obs::Hub& hub = cluster.simulator().hub();
  obs::TimeSeries::Options tso;
  tso.window_ns = sim::kMillisecond;
  tso.capacity_windows = 256;
  hub.timeseries().Configure(tso);
  hub.timeseries().TrackSliDefaults();
  hub.EnableMetrics(true);
  hub.EnableTimeSeries(true);

  // Open-loop probe stream: one get every 100 us for 100 ms.
  const sim::SimTime kProbeGap = 100 * sim::kMicrosecond;
  const sim::SimTime kHorizon = 100 * sim::kMillisecond;
  const sim::SimTime t0 = cluster.simulator().now();
  SchemeResult result;
  result.label = label;
  result.scheme = scheme;
  result.window_ns = hub.timeseries().window_ns();
  auto& client = cluster.client(0);
  for (int i = 0; cluster.simulator().now() - t0 < kHorizon; ++i) {
    ++result.probes;
    client.Get(keys[i % kKeys], [&result](GetResult r) {
      if (!r.status.ok()) {
        ++result.failed;
      }
    });
    cluster.RunFor(kProbeGap);
  }
  cluster.RunFor(50 * sim::kMillisecond);  // drain stragglers

  // Windowed SLIs over the probe horizon only, clamped to the last window
  // the probe stream fully covered (the horizon ends mid-window because the
  // setup puts shifted t0; a partial window would read as a spurious dip,
  // and until_ns is window-inclusive). A window is unavailable when its
  // acked-probe rate falls below half the median — probes that fail
  // outright or stall past the window both starve ops_ok.
  obs::TimeSeries::SliOptions so;
  so.until_ns = (t0 + kHorizon) / result.window_ns * result.window_ns - 1;
  result.rows = hub.timeseries().Slis(so);
  result.dips = obs::FindDips(result.rows, result.window_ns);
  result.injected = cluster.runtime().injector()->counters();
  return result;
}

void PrintScheme(const SchemeResult& r) {
  uint64_t ok = 0;
  uint64_t err = 0;
  uint64_t unavailable = 0;
  uint64_t longest_ns = 0;
  for (const auto& row : r.rows) {
    ok += row.ops_ok;
    err += row.ops_err;
    unavailable += row.available ? 0 : 1;
  }
  for (const obs::Dip& d : r.dips) {
    longest_ns = std::max(longest_ns, d.end_ns - d.start_ns);
  }
  std::printf("%s:\n", r.label);
  std::printf("  probes %zu (%llu failed), %zu windows x %.1f ms: "
              "%llu acked, %llu errors\n",
              r.probes, static_cast<unsigned long long>(r.failed),
              r.rows.size(), static_cast<double>(r.window_ns) / 1e6,
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(err));
  std::printf("  unavailable %7.2f ms total, longest dip %7.2f ms\n",
              static_cast<double>(unavailable * r.window_ns) / 1e6,
              static_cast<double>(longest_ns) / 1e6);
  for (const obs::Dip& d : r.dips) {
    std::printf("    [%7.2f, %7.2f) ms  %s\n",
                static_cast<double>(d.start_ns) / 1e6,
                static_cast<double>(d.end_ns) / 1e6,
                d.recovered ? "recovered" : "NOT recovered");
  }
  std::printf("  injected: crashes %llu, recoveries %llu, pauses %llu, "
              "deferred deliveries %llu\n\n",
              static_cast<unsigned long long>(r.injected.crashes),
              static_cast<unsigned long long>(r.injected.recoveries),
              static_cast<unsigned long long>(r.injected.pauses),
              static_cast<unsigned long long>(r.injected.deferred));
}

void WriteJson(const char* path, const std::vector<SchemeResult>& results) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"chaos_availability\",\n");
  std::fprintf(f, "  \"plan\": \"crash node=1 at=5ms recover=30ms; "
                  "pause node=5 at=60ms resume=68ms\",\n");
  std::fprintf(f, "  \"probe_gap_us\": 100,\n  \"horizon_ms\": 100,\n");
  std::fprintf(f, "  \"schemes\": [");
  for (size_t s = 0; s < results.size(); ++s) {
    const SchemeResult& r = results[s];
    uint64_t unavailable = 0;
    uint64_t longest_ns = 0;
    for (const auto& row : r.rows) {
      unavailable += row.available ? 0 : 1;
    }
    for (const obs::Dip& d : r.dips) {
      longest_ns = std::max(longest_ns, d.end_ns - d.start_ns);
    }
    std::fprintf(f, "%s\n    {\n      \"scheme\": \"%s\",\n",
                 s == 0 ? "" : ",", r.scheme);
    std::fprintf(f, "      \"window_ms\": %.3f,\n",
                 static_cast<double>(r.window_ns) / 1e6);
    std::fprintf(f, "      \"probes\": %zu,\n      \"failed\": %llu,\n",
                 r.probes, static_cast<unsigned long long>(r.failed));
    std::fprintf(f, "      \"unavailable_ms\": %.3f,\n",
                 static_cast<double>(unavailable * r.window_ns) / 1e6);
    std::fprintf(f, "      \"longest_dip_ms\": %.3f,\n",
                 static_cast<double>(longest_ns) / 1e6);
    std::fprintf(f, "      \"windows\": [");
    for (size_t i = 0; i < r.rows.size(); ++i) {
      const auto& row = r.rows[i];
      std::fprintf(
          f,
          "%s\n        {\"t_ms\": %.3f, \"ops_ok\": %llu, \"ops_err\": %llu, "
          "\"goodput_per_sec\": %.0f, \"error_rate\": %.4f, "
          "\"p50_us\": %.1f, \"p99_us\": %.1f, \"available\": %s}",
          i == 0 ? "" : ",", static_cast<double>(row.start_ns) / 1e6,
          static_cast<unsigned long long>(row.ops_ok),
          static_cast<unsigned long long>(row.ops_err), row.goodput_per_sec,
          row.error_rate, static_cast<double>(row.p50_ns) / 1e3,
          static_cast<double>(row.p99_ns) / 1e3,
          row.available ? "true" : "false");
    }
    std::fprintf(f, "\n      ],\n      \"dips\": [");
    for (size_t i = 0; i < r.dips.size(); ++i) {
      const obs::Dip& d = r.dips[i];
      std::fprintf(f,
                   "%s\n        {\"start_ms\": %.3f, \"end_ms\": %.3f, "
                   "\"duration_ms\": %.3f, \"recovered\": %s}",
                   i == 0 ? "" : ",", static_cast<double>(d.start_ns) / 1e6,
                   static_cast<double>(d.end_ns) / 1e6,
                   static_cast<double>(d.end_ns - d.start_ns) / 1e6,
                   d.recovered ? "true" : "false");
    }
    std::fprintf(f,
                 "\n      ],\n      \"injected\": {\"crashes\": %llu, "
                 "\"recoveries\": %llu, \"pauses\": %llu, \"deferred\": "
                 "%llu}\n    }",
                 static_cast<unsigned long long>(r.injected.crashes),
                 static_cast<unsigned long long>(r.injected.recoveries),
                 static_cast<unsigned long long>(r.injected.pauses),
                 static_cast<unsigned long long>(r.injected.deferred));
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "# Chaos availability: crash-recovery at 5-30 ms + gray pause at "
      "60-68 ms,\n# 1 KiB objects on the victim shard, probe every 100 us, "
      "1 ms SLI windows\n\n");
  std::vector<SchemeResult> results;
  results.push_back(Run("Rep(3)   (replica promotion)", "rep3",
                        MemgestDescriptor::Replicated(3)));
  results.push_back(Run("SRS(3,2) (decode on demand)", "srs32",
                        MemgestDescriptor::ErasureCoded(3, 2)));
  results.push_back(Run("Rep(1)   (unreliable: lost for good, until "
                        "rewritten)",
                        "rep1", MemgestDescriptor::Replicated(1)));
  for (const SchemeResult& r : results) {
    PrintScheme(r);
  }
  WriteJson(argc > 1 ? argv[1] : "BENCH_chaos.json", results);
  return 0;
}
