// Simulator-core benchmark: events/sec of the discrete-event fast path.
//
// Drives the scheduler core (EventQueue + Task captures) with a fig9-style
// synthetic RPC mix: closed-loop clients, a request hop, a coordinator
// serve step, a fan-out of replica apply/ack hops, and a reply — every hop
// a scheduled event whose closure carries the op context (ids plus a
// fixed-size key image, sized to overflow Task's inline buffer exactly
// like protocol request captures do). Each op additionally parks retry/SLA
// timers 50-200 ms out that fire long after completion and no-op — the
// far-future population that client timeouts, heartbeats, and failure
// detectors pin in the queue of every fig-scale run. Two cores are timed
// in one process:
//
//   legacy  the pre-PR core reproduced by flags: one binary heap ordering
//           every pending event (EventQueue kHeap via RING_SIM_CORE=heap)
//           and a heap allocation per out-of-line capture (TaskPool boxed
//           mode) — so each microsecond-scale hop pays an O(log n) sift
//           across the parked-timer population plus malloc/free churn.
//   fast    the default core: calendar queue (near-future wheel + overflow
//           tier) + pooled captures.
//
// Both runs replay the identical (time, seq) schedule — the bench asserts
// the event counts and final clocks match — so the ratio isolates
// scheduler + allocator cost. No protocol logic, no per-event allocation,
// and no observability bookkeeping runs in the loop. Emits JSON on stdout
// (committed as BENCH_sim.json).
//
// Usage: sim_core [--quick] [--fast-only|--legacy-only]
// (--fast-only / --legacy-only run one core twice without the cross-check;
// they exist for profiling the schedulers in isolation.)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace {

using ring::sim::SimTime;
using ring::sim::Simulator;
using ring::sim::Task;
using ring::sim::TaskPool;

struct Config {
  const char* name;
  uint32_t servers;
  uint32_t clients;
  uint32_t keys;
  uint64_t ops;        // total completed operations
  uint32_t depth;      // outstanding ops per client (closed loop)
  uint32_t value_bytes;
  uint32_t replicas;   // replica apply/ack hops fanned out per op
  uint32_t timers;     // long timers parked per op: the chaos-hardened
                       // client arms a retry, a hedge, and an SLA probe per
                       // request plus a retransmit timer per replica (the
                       // large config adds a membership-probe timer on top)
};

struct ModeResult {
  uint64_t events = 0;
  SimTime final_now = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  uint64_t pool_hit_rate_pct = 0;
  size_t depth_high_water = 0;
};

// One closed-loop run of the synthetic RPC mix on a fresh simulator.
ModeResult RunOnce(const Config& cfg) {
  Simulator sim(/*seed=*/7);

  // Key images sized like real protocol keys; the op closures carry one by
  // value, putting them past Task's 48-byte inline buffer.
  std::vector<std::string> keys;
  keys.reserve(cfg.keys);
  for (uint32_t i = 0; i < cfg.keys; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key-%010u", i);
    keys.emplace_back(buf);
  }

  TaskPool::ResetStats();

  struct State {
    uint64_t issued = 0;
    uint64_t completed = 0;
  };
  State st;

  // Out-of-line op context: ids + key image (68 bytes > kInlineBytes).
  struct OpCtx {
    uint64_t id = 0;
    uint32_t client = 0;
    uint32_t coord = 0;
    uint64_t serve_ns = 0;
    char key[44] = {};
  };

  struct Issuer {
    Simulator* sim;
    const Config* cfg;
    std::vector<std::string>* keys;
    State* st;

    // Client issue -> request hop -> coordinator serve -> `replicas` x
    // (apply hop + ack hop) -> reply hop -> next op. Wire hops are
    // microsecond-scale (they live in the calendar wheel / near the heap
    // top); the parked timers land 50-200 ms out (overflow tier / deep in
    // the heap).
    void IssueOp(uint32_t client) {
      if (st->issued >= cfg->ops) {
        return;
      }
      OpCtx op;
      op.id = st->issued++;
      op.client = client;
      op.coord = static_cast<uint32_t>(op.id % cfg->servers);
      op.serve_ns = 1200 + 2ull * cfg->value_bytes;
      const std::string& key = (*keys)[op.id % keys->size()];
      std::memcpy(op.key, key.data(),
                  key.size() < sizeof(op.key) ? key.size() : sizeof(op.key));
      auto self = this;
      sim->After(600, Task([self, op] {
        // Parked far-future timers: retry at 200 ms plus evenly spread
        // probe timers, all no-ops by the time they fire.
        for (uint32_t t = 0; t < self->cfg->timers; ++t) {
          const uint64_t id = op.id;
          self->sim->After((200 - 50ull * (t % 4)) * ring::sim::kMillisecond,
                           Task([id] { (void)id; }));
        }
        self->sim->After(1700, Task([self, op] { self->ServeOp(op); }));
      }));
    }

    void ServeOp(const OpCtx& op) {
      auto self = this;
      sim->After(op.serve_ns, Task([self, op] {
        for (uint32_t r = 0; r < self->cfg->replicas; ++r) {
          uint64_t keysum = 0;
          std::memcpy(&keysum, op.key, sizeof(keysum));
          // Replica apply: a small inline capture, like the fabric's thin
          // doorbell events.
          self->sim->After(1500 + 10ull * r, Task([keysum] { (void)keysum; }));
          // Replica ack: identical hops complete in issue order, so the
          // last ack carries the reply leg.
          const bool last = r + 1 == self->cfg->replicas;
          self->sim->After(
              3000 + 10ull * r,
              last ? Task([self, op] {
                self->sim->After(1500, Task([self, op] {
                  ++self->st->completed;
                  self->IssueOp(op.client);  // closed loop
                }));
              })
                   : Task([self, op] { (void)op.id; }));
        }
      }));
    }
  };

  Issuer issuer{&sim, &cfg, &keys, &st};
  for (uint32_t c = 0; c < cfg.clients; ++c) {
    for (uint32_t d = 0; d < cfg.depth; ++d) {
      issuer.IssueOp(c);
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult r;
  r.events = sim.events_executed();
  r.final_now = sim.now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s
                                  : 0.0;
  r.pool_hit_rate_pct = TaskPool::stats().hit_rate_pct();
  r.depth_high_water = sim.queue().depth_high_water();
  if (st.completed != cfg.ops) {
    std::fprintf(stderr, "FATAL: %s completed %llu/%llu ops\n", cfg.name,
                 static_cast<unsigned long long>(st.completed),
                 static_cast<unsigned long long>(cfg.ops));
    std::exit(1);
  }
  return r;
}

ModeResult RunMode(const Config& cfg, bool legacy, int reps) {
  // EventQueue reads RING_SIM_CORE at construction; the pool flag is
  // per-thread state. Both selections happen before the Simulator exists
  // and no Tasks are alive across the toggle.
  if (legacy) {
    setenv("RING_SIM_CORE", "heap", 1);
  } else {
    unsetenv("RING_SIM_CORE");
  }
  TaskPool::set_boxed(legacy);
  // Each mode reports its fastest repetition: the simulated schedule is
  // deterministic, so reps differ only by host jitter (faults, frequency,
  // neighbours) and best-of-N is the steady-state cost.
  ModeResult best;
  for (int i = 0; i < reps; ++i) {
    ModeResult r = RunOnce(cfg);
    if (i == 0 || r.wall_s < best.wall_s) {
      best = r;
    }
  }
  TaskPool::set_boxed(false);
  unsetenv("RING_SIM_CORE");
  return best;
}

void PrintMode(const char* name, const ModeResult& r, bool last) {
  std::printf("      \"%s\": {\"events\": %llu, \"final_now_ns\": %llu, "
              "\"wall_s\": %.3f, \"events_per_sec\": %.0f, "
              "\"pool_hit_rate_pct\": %llu, \"queue_depth_high_water\": %zu}"
              "%s\n",
              name, static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.final_now), r.wall_s,
              r.events_per_sec,
              static_cast<unsigned long long>(r.pool_hit_rate_pct),
              r.depth_high_water, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool fast_only = false;
  bool legacy_only = false;
  for (int i = 1; i < argc; ++i) {
    quick = quick || std::strcmp(argv[i], "--quick") == 0;
    fast_only = fast_only || std::strcmp(argv[i], "--fast-only") == 0;
    legacy_only = legacy_only || std::strcmp(argv[i], "--legacy-only") == 0;
  }

  // "fig9" mirrors the paper's testbed scale (12 server nodes, saturating
  // clients); "large" stresses the far-future tier and capture allocator at
  // cluster scale (100 nodes, 1M keys).
  std::vector<Config> configs = {
      {"fig9", 12, 16, 100000, quick ? 40000u : 400000u, 8, 1024, 2, 5},
      {"large", 100, 32, 1000000, quick ? 30000u : 300000u, 4, 256, 2, 6},
  };

  std::printf("{\n  \"bench\": \"sim_core\",\n  \"configs\": [\n");
  bool first = true;
  const int reps = quick ? 1 : 3;
  for (const Config& cfg : configs) {
    const ModeResult legacy = RunMode(cfg, /*legacy=*/!fast_only, reps);
    const ModeResult fast = RunMode(cfg, /*legacy=*/legacy_only, reps);
    if (legacy.events != fast.events || legacy.final_now != fast.final_now) {
      std::fprintf(stderr,
                   "FATAL: schedulers diverged on %s: events %llu vs %llu, "
                   "final_now %llu vs %llu\n",
                   cfg.name, static_cast<unsigned long long>(legacy.events),
                   static_cast<unsigned long long>(fast.events),
                   static_cast<unsigned long long>(legacy.final_now),
                   static_cast<unsigned long long>(fast.final_now));
      return 1;
    }
    const double speedup =
        legacy.wall_s > 0 ? fast.events_per_sec / legacy.events_per_sec : 0.0;
    if (!first) {
      std::printf(",\n");
    }
    first = false;
    std::printf("    {\"name\": \"%s\", \"servers\": %u, \"clients\": %u, "
                "\"keys\": %u, \"ops\": %llu, \"replicas\": %u, "
                "\"timers_per_op\": %u,\n",
                cfg.name, cfg.servers, cfg.clients, cfg.keys,
                static_cast<unsigned long long>(cfg.ops), cfg.replicas,
                cfg.timers);
    std::printf("     \"modes\": {\n");
    PrintMode("legacy_heap_boxed", legacy, false);
    PrintMode("calendar_pooled", fast, true);
    std::printf("     },\n     \"schedule_identical\": true,\n"
                "     \"speedup\": %.2f}", speedup);
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
