// Ablation: memgest-group balancing (paper §5.4).
//
// A single memgest group loads nodes unevenly: redundant slots idle on
// get-mostly traffic, parity slots bottleneck puts, and replica placement
// piles onto a few coordinators. "To resolve these issues, we can create
// many memgest groups and assign them round-robin ... It allows balancing
// workload and memory on each node." This harness measures saturated put
// throughput and per-node CPU spread with 1 group versus s+d = 5 groups.
#include "bench/bench_util.h"

namespace {

struct Outcome {
  double throughput;
  double cpu_imbalance;  // max/min busy time across the 5 nodes
  double mem_imbalance;  // max/min stored bytes
};

Outcome Run(ring::MemgestDescriptor desc, uint32_t groups) {
  using namespace ring;
  RingOptions o = bench::PaperCluster(/*clients=*/4, /*spares=*/0, 19);
  o.groups = groups;
  o.params.client_put_byte_ns = 0.0;
  o.params.client_base_ns = 1800;
  RingCluster cluster(o);
  auto g = *cluster.CreateMemgest(desc);
  workload::YcsbSpec spec;
  spec.num_keys = 4000;
  spec.get_fraction = 0.0;
  spec.zipfian = false;
  std::vector<std::unique_ptr<workload::OpenLoopDriver>> drivers;
  for (uint32_t i = 0; i < 4; ++i) {
    workload::OpenLoopDriver::Options opt;
    opt.rate_per_sec = 500'000;
    opt.memgest = g;
    opt.spec = spec;
    opt.seed = 60 + i;
    drivers.push_back(
        std::make_unique<workload::OpenLoopDriver>(&cluster, i, opt));
    drivers.back()->Start();
  }
  cluster.RunFor(200 * sim::kMillisecond);
  uint64_t before = 0;
  std::vector<uint64_t> cpu_before(5);
  for (auto& d : drivers) {
    before += d->completed();
  }
  for (net::NodeId n = 0; n < 5; ++n) {
    cpu_before[n] = cluster.runtime().fabric().cpu(n).consumed_ns();
  }
  cluster.RunFor(400 * sim::kMillisecond);
  uint64_t after = 0;
  for (auto& d : drivers) {
    after += d->completed();
  }
  uint64_t cpu_min = ~0ULL;
  uint64_t cpu_max = 0;
  uint64_t mem_min = ~0ULL;
  uint64_t mem_max = 0;
  for (net::NodeId n = 0; n < 5; ++n) {
    const uint64_t cpu =
        cluster.runtime().fabric().cpu(n).consumed_ns() - cpu_before[n];
    cpu_min = std::min(cpu_min, cpu);
    cpu_max = std::max(cpu_max, cpu);
    const uint64_t mem = cluster.server(n).StoredBytes();
    mem_min = std::min(mem_min, std::max<uint64_t>(mem, 1));
    mem_max = std::max(mem_max, mem);
  }
  for (auto& d : drivers) {
    d->Stop();
  }
  return {static_cast<double>(after - before) / 0.4,
          static_cast<double>(cpu_max) / std::max<uint64_t>(cpu_min, 1),
          static_cast<double>(mem_max) / std::max<uint64_t>(mem_min, 1)};
}

}  // namespace

int main() {
  using namespace ring;
  std::printf("# Ablation: memgest-group balancing (saturated 1 KiB puts)\n");
  std::printf("%-9s %-8s %14s %18s %18s\n", "scheme", "groups", "put req/s",
              "cpu max/min", "memory max/min");
  struct Row {
    const char* name;
    MemgestDescriptor desc;
  };
  const Row rows[] = {
      {"REP3", MemgestDescriptor::Replicated(3)},
      {"SRS32", MemgestDescriptor::ErasureCoded(3, 2)},
  };
  for (const auto& row : rows) {
    for (uint32_t groups : {1u, 5u}) {
      const Outcome r = Run(row.desc, groups);
      std::printf("%-9s %-8u %14.0f %18.2f %18.2f\n", row.name, groups,
                  r.throughput, r.cpu_imbalance, r.mem_imbalance);
    }
  }
  std::printf(
      "# groups = s+d spreads coordinator/replica/parity roles round-robin\n"
      "# (§5.4), lifting the parity-node bottleneck of erasure-coded puts\n"
      "# and evening out memory.\n");
  return 0;
}
