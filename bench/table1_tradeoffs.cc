// Table 1 (§1): the storage-scheme trade-off table that motivates Ring.
//
//   Scheme   Reliability  Put latency  Put throughput  Storage cost
//   Simple   None         1x           1x              1x
//   Rep(3)   2 failures   2x           0.5x            3x
//   RS(3,2)  2 failures   3.4x         0.31x           1.66x
//
// Latency is a closed-loop 1 KiB put; throughput saturates the cluster with
// rate-driven clients; storage cost is the scheme's overhead factor.
#include "bench/bench_util.h"

namespace {

double SaturatedPutThroughput(ring::MemgestDescriptor desc) {
  using namespace ring;
  RingOptions o = bench::PaperCluster(/*clients=*/4, /*spares=*/0, 11);
  // Fig. 9-style lightweight load generators (see EXPERIMENTS.md).
  o.params.client_put_byte_ns = 0.0;
  o.params.client_base_ns = 1800;
  RingCluster cluster(o);
  auto g = *cluster.CreateMemgest(desc);
  workload::YcsbSpec spec;
  spec.num_keys = 2000;
  spec.get_fraction = 0.0;
  spec.zipfian = false;
  std::vector<std::unique_ptr<workload::OpenLoopDriver>> drivers;
  for (uint32_t i = 0; i < 4; ++i) {
    workload::OpenLoopDriver::Options opt;
    opt.rate_per_sec = 500'000;
    opt.memgest = g;
    opt.spec = spec;
    opt.seed = 100 + i;
    drivers.push_back(
        std::make_unique<workload::OpenLoopDriver>(&cluster, i, opt));
    drivers.back()->Start();
  }
  cluster.RunFor(200 * sim::kMillisecond);  // warm-up
  uint64_t before = 0;
  for (auto& d : drivers) {
    before += d->completed();
  }
  cluster.RunFor(400 * sim::kMillisecond);
  uint64_t after = 0;
  for (auto& d : drivers) {
    after += d->completed();
  }
  return static_cast<double>(after - before) / 0.4;
}

double PutLatencyUs(ring::MemgestDescriptor desc) {
  using namespace ring;
  RingCluster cluster(bench::PaperCluster());
  auto g = *cluster.CreateMemgest(desc);
  workload::ClosedLoopDriver driver(&cluster);
  return driver.MeasurePutLatency(g, 1024, 500).Median();
}

}  // namespace

int main() {
  using namespace ring;
  struct Row {
    const char* name;
    const char* reliability;
    MemgestDescriptor desc;
  };
  const Row rows[] = {
      {"Simple", "None", MemgestDescriptor::Replicated(1)},
      {"Rep(3)", "2 failures", MemgestDescriptor::Replicated(3)},
      {"RS(3,2)", "2 failures", MemgestDescriptor::ErasureCoded(3, 2)},
  };
  std::printf("# Table 1 (Section 1): scheme trade-offs, 1 KiB objects\n");
  std::printf("%-9s %-11s %-22s %-26s %s\n", "Scheme", "Reliability",
              "Put latency", "Put throughput", "Storage");
  double base_latency = 0;
  double base_tp = 0;
  for (const auto& row : rows) {
    const double lat = PutLatencyUs(row.desc);
    const double tp = SaturatedPutThroughput(row.desc);
    if (base_latency == 0) {
      base_latency = lat;
      base_tp = tp;
    }
    std::printf("%-9s %-11s %7.2f us (%4.2fx)     %9.0f req/s (%4.2fx)    %.2fx\n",
                row.name, row.reliability, lat, lat / base_latency, tp,
                tp / base_tp, row.desc.StorageOverhead());
  }
  std::printf("# paper:   Simple 1x/1x/1x, Rep(3) 2x/0.5x/3x, RS(3,2) 3.4x/0.31x/1.66x\n");
  return 0;
}
