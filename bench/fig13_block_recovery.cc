// Figure 13: on-demand recovery latency of erasure-coded blocks versus
// block size, for SRS(2,1,3), SRS(3,1,3) and SRS(3,2,3) (paper §6.4).
//
// Expected shape: latency grows with block size; SRS31 > SRS21 at equal
// size (k = 3 needs one more source block than k = 2); SRS32 ≈ SRS31 and
// slightly faster under a single failure (it can pick the best 3 of 4
// surviving blocks).
#include "bench/bench_util.h"

#include "src/common/hash.h"

namespace {

ring::Key VictimKey(uint32_t shard, uint32_t s, int i) {
  for (int salt = 0;; ++salt) {
    ring::Key k = "b" + std::to_string(i) + "-" + std::to_string(salt);
    if (ring::KeyShard(k, s) == shard) {
      return k;
    }
  }
}

}  // namespace

int main() {
  using namespace ring;
  std::printf("# Figure 13: block recovery latency vs recovered block size\n");
  struct SchemeDef {
    const char* label;
    MemgestDescriptor desc;
  };
  const SchemeDef schemes[] = {
      {"SRS21", MemgestDescriptor::ErasureCoded(2, 1)},
      {"SRS31", MemgestDescriptor::ErasureCoded(3, 1)},
      {"SRS32", MemgestDescriptor::ErasureCoded(3, 2)},
  };
  const uint32_t victim = 1;
  for (const auto& scheme : schemes) {
    for (size_t size = 512; size <= 65536; size *= 2) {
      Samples samples;
      const int reps = 5;
      const int keys_per_rep = 4;
      for (int rep = 0; rep < reps; ++rep) {
        RingCluster cluster(
            bench::PaperCluster(/*clients=*/1, /*spares=*/1, 300 + rep));
        auto g = *cluster.CreateMemgest(scheme.desc);
        std::vector<Key> keys;
        for (int i = 0; i < keys_per_rep; ++i) {
          keys.push_back(VictimKey(victim, 3, rep * keys_per_rep + i));
          (void)cluster.Put(keys.back(), MakePatternBuffer(size, i), g);
        }
        cluster.KillNode(victim, /*force_detect=*/true);
        auto& spare = cluster.server(5);
        cluster.RunUntilDone([&] { return spare.serving(); });
        // Clients have re-learned the configuration by the time recovery
        // latency is measured; exclude the stale-routing timeout.
        cluster.client(0).RefreshConfigNow();
        // Each first get triggers an on-demand decode at a parity node;
        // measured from the client request to the reconstructed reply, as
        // in the paper ("from receiving a request from the client to when
        // the block is fully recovered").
        for (const auto& key : keys) {
          auto& client = cluster.client(0);
          client.ResetStats();
          auto got = cluster.Get(key);
          if (got.ok() && !client.latencies().empty()) {
            samples.Add(client.latencies().values().back());
          }
        }
      }
      std::printf("%-6s %7zu B  recovery get: median %8.2f us  p90 %8.2f us\n",
                  scheme.label, size, samples.Median(),
                  samples.Percentile(90));
    }
    std::printf("\n");
  }
  return 0;
}
