// Figure 7(a,b): put latency of the seven memgests and the (shared) get
// latency, versus object size 2^1 .. 2^11 bytes (paper §6.1).
//
// Expected shape: REP1 lowest; REP2/REP3 close (one remote quorum ack);
// REP4 slightly above; SRS21 == SRS31 (both update one parity node);
// SRS32 highest (two parity updates + GF work); all get latencies identical
// across memgests (~5 us).
#include "bench/bench_util.h"

int main() {
  using namespace ring;
  RingCluster cluster(bench::PaperCluster());
  const auto m = bench::CreatePaperMemgests(cluster);
  workload::ClosedLoopDriver driver(&cluster);

  const int reps = 1000;  // paper: 5000; shape converges much earlier
  std::printf("# Figure 7a/7b: put/get latency vs object size\n");
  const std::vector<std::pair<const char*, MemgestId>> schemes = {
      {"SRS32", m.srs32}, {"SRS31", m.srs31}, {"SRS21", m.srs21},
      {"REP4", m.rep4},   {"REP3", m.rep3},   {"REP2", m.rep2},
      {"REP1", m.rep1},
  };
  for (const auto& [label, id] : schemes) {
    for (size_t size = 2; size <= 2048; size *= 2) {
      bench::PrintLatencyRow(std::string("put:") + label, size,
                             driver.MeasurePutLatency(id, size, reps));
    }
    std::printf("\n");
  }
  // Get latency is identical across memgests (same read algorithm, §6.1);
  // measure it on one and spot-check another.
  for (size_t size = 2; size <= 2048; size *= 2) {
    bench::PrintLatencyRow("get", size,
                           driver.MeasureGetLatency(m.rep1, size, reps));
  }
  std::printf("\n");
  bench::PrintLatencyRow("get:SRS32", 1024,
                         driver.MeasureGetLatency(m.srs32, 1024, reps));

  // Where the time goes: traced per-phase means for 1 KiB puts (network
  // flight + serialization, coding CPU, other CPU, queueing, quorum wait).
  std::printf("\n# per-phase put breakdown at 1024 B (means in us)\n");
  for (const auto& [label, id] : schemes) {
    bench::PrintTracedPutBreakdown(cluster, std::string("put:") + label, id,
                                   1024, 200);
  }
  return 0;
}
