// Figure 10: storage pricing for five SPC I/O traces under hot = Rep(3),
// cold = SRS(3,2,3) and simple = Rep(1) schemes, normalized to simple
// (paper §6.2).
//
// Expected shape: for the write-heavy Financial traces, cold is the most
// expensive (cool-tier op prices dominate; paper: "cold storage is 5.5x more
// expensive than simple ... 2x more than hot for Financial1"); for the
// read-dominated WebSearch traces the bars are closer and storage/transfer
// dominate, with cold's low capacity price paying off.
#include <cstdio>

#include "src/cost/pricing.h"
#include "src/workload/spc_trace.h"

int main() {
  using namespace ring;
  cost::PricingModel model;
  std::printf("# Figure 10: normalized storage price (simple = 1.0)\n");
  std::printf("%-12s %-8s %9s %9s %9s %9s %9s\n", "trace", "scheme", "write",
              "read", "transfer", "storage", "TOTAL");
  for (const auto& trace : workload::PaperTraceAggregates()) {
    for (const auto& c : model.NormalizedPrices(trace)) {
      std::printf("%-12s %-8s %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                  trace.name.c_str(), cost::SchemeName(c.scheme).c_str(),
                  c.write_cost, c.read_cost, c.transfer_cost, c.storage_cost,
                  c.total());
    }
    std::printf("\n");
  }
  return 0;
}
