// Figure 7(c): put and get latency of the comparator systems — memcached,
// Dare, RAMCloud (and the Cocytus numbers §6.1 quotes) — versus object size.
//
// Expected shape: memcached ~55 us both ops (kernel TCP, ~10x REP1);
// Dare get == Ring get (~5 us) and Dare put ≈ Ring REP3; RAMCloud put ~45 us
// (HDD-backed backups) with a low get; Cocytus two orders slower (§6.1:
// ~500 us gets, ~30x slower puts than Ring's SRS32).
#include <cstdio>

#include "src/baselines/baselines.h"

int main() {
  using namespace ring;
  const int reps = 300;
  std::printf("# Figure 7c: baseline system latencies vs object size\n");
  std::vector<std::unique_ptr<baselines::BaselineSystem>> systems;
  systems.push_back(baselines::MakeMemcached());
  systems.push_back(baselines::MakeDare(3));
  systems.push_back(baselines::MakeRamcloud(2));
  systems.push_back(baselines::MakeCocytus());
  for (auto& system : systems) {
    for (size_t size = 8; size <= 2048; size *= 4) {
      auto put = system->MeasurePutLatency(size, reps);
      auto get = system->MeasureGetLatency(size, reps);
      std::printf("%-22s %6zu B   put %8.2f us   get %8.2f us\n",
                  system->name().c_str(), size, put.Median(), get.Median());
    }
    std::printf("\n");
  }
  return 0;
}
