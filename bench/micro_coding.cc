// Microbenchmarks of the coding substrate (google-benchmark): GF(2^8)
// region operations, RS(k,m) encode/decode, SRS object encode, and parity
// delta updates. These are the kernels the paper's erasure-coded put path
// spends its CPU in ("RS codes are compute-bound", §6.1).
#include <benchmark/benchmark.h>

#include "src/common/bytes.h"
#include "src/gf/gf256.h"
#include "src/rs/rs_code.h"
#include "src/srs/srs_code.h"

namespace {

using namespace ring;

void BM_GfAddRegion(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Buffer src = MakePatternBuffer(n, 1);
  Buffer dst = MakePatternBuffer(n, 2);
  for (auto _ : state) {
    gf::AddRegion(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GfAddRegion)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_GfMulAddRegion(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Buffer src = MakePatternBuffer(n, 1);
  Buffer dst = MakePatternBuffer(n, 2);
  for (auto _ : state) {
    gf::MulAddRegion(0x57, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GfMulAddRegion)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_RsEncode(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  const size_t block = 64 * 1024;
  auto code = rs::RsCode::Create(k, m);
  std::vector<Buffer> data;
  for (uint32_t i = 0; i < k; ++i) {
    data.push_back(MakePatternBuffer(block, i));
  }
  std::vector<ByteSpan> spans(data.begin(), data.end());
  for (auto _ : state) {
    auto parity = code->Encode(spans);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          block);
}
BENCHMARK(BM_RsEncode)->Args({2, 1})->Args({3, 2})->Args({6, 3});

void BM_RsDecode(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  const size_t block = 64 * 1024;
  auto code = rs::RsCode::Create(k, m);
  std::vector<Buffer> data;
  for (uint32_t i = 0; i < k; ++i) {
    data.push_back(MakePatternBuffer(block, i));
  }
  std::vector<ByteSpan> spans(data.begin(), data.end());
  auto parity = code->Encode(spans);
  // Lose the first min(m, k) data blocks.
  std::vector<std::pair<uint32_t, ByteSpan>> available;
  for (uint32_t i = std::min(m, k); i < k; ++i) {
    available.emplace_back(i, ByteSpan(data[i]));
  }
  for (uint32_t j = 0; j < m; ++j) {
    available.emplace_back(k + j, ByteSpan(parity[j]));
  }
  for (auto _ : state) {
    auto recovered = code->RecoverData(available);
    benchmark::DoNotOptimize(recovered);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          block);
}
BENCHMARK(BM_RsDecode)->Args({2, 1})->Args({3, 2})->Args({6, 3});

void BM_SrsEncodeObject(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  const uint32_t s = static_cast<uint32_t>(state.range(2));
  auto code = srs::SrsCode::Create(k, m, s);
  const Buffer object = MakePatternBuffer(256 * 1024, 3);
  for (auto _ : state) {
    auto enc = code->EncodeObject(object);
    benchmark::DoNotOptimize(enc.parity_nodes.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          object.size());
}
BENCHMARK(BM_SrsEncodeObject)
    ->Args({3, 2, 3})
    ->Args({3, 2, 6})
    ->Args({2, 1, 8});

void BM_ParityDeltaUpdate(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  auto code = rs::RsCode::Create(3, 2);
  Buffer delta = MakePatternBuffer(block, 5);
  Buffer parity = MakePatternBuffer(block, 6);
  for (auto _ : state) {
    code->ApplyParityDelta(1, 2, delta, parity);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * block);
}
BENCHMARK(BM_ParityDeltaUpdate)->Arg(1024)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
