// Microbenchmarks of the coding substrate (google-benchmark): GF(2^8)
// region operations, RS(k,m) encode/decode, SRS object encode, and parity
// delta updates. These are the kernels the paper's erasure-coded put path
// spends its CPU in ("RS codes are compute-bound", §6.1).
//
// Multiply coefficients are randomized per iteration: a fixed constant lets
// the branch predictor and L1 flatter the scalar table walk (one hot row)
// and would skew calibration.
//
// Dispatch-path coverage: BM_GfMulAddRegion_<impl> variants are registered
// at startup for every kernel tier this build/CPU offers, so one JSON run
// (`--benchmark_format=json`, committed as BENCH_coding.json) records the
// scalar baseline next to the vectorized kernels.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/gf/gf256.h"
#include "src/rs/rs_code.h"
#include "src/srs/srs_code.h"

namespace {

using namespace ring;

// 257 entries (coprime with every power-of-two buffer count) cycled per
// iteration; excludes 0 and 1 so no iteration takes the memset/XOR fast path.
std::vector<uint8_t> MixedCoefficients() {
  ring::Rng rng(1234);
  std::vector<uint8_t> c(257);
  for (auto& v : c) {
    v = static_cast<uint8_t>(rng.NextU64() % 254 + 2);
  }
  return c;
}

void BM_GfAddRegion(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Buffer src = MakePatternBuffer(n, 1);
  Buffer dst = MakePatternBuffer(n, 2);
  for (auto _ : state) {
    gf::AddRegion(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(gf::RegionImplName(gf::ActiveRegionImpl()));
}
BENCHMARK(BM_GfAddRegion)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_GfMulAddRegion(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto coeffs = MixedCoefficients();
  Buffer src = MakePatternBuffer(n, 1);
  Buffer dst = MakePatternBuffer(n, 2);
  size_t i = 0;
  for (auto _ : state) {
    gf::MulAddRegion(coeffs[i++ % coeffs.size()], src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(gf::RegionImplName(gf::ActiveRegionImpl()));
}
BENCHMARK(BM_GfMulAddRegion)->Arg(1024)->Arg(65536)->Arg(1 << 20);

// Same kernel pinned to one dispatch tier; registered in main() for every
// tier available so the scalar baseline lands in the same JSON as the
// vectorized paths.
void BM_GfMulAddRegionImpl(benchmark::State& state, gf::RegionImpl impl) {
  const gf::RegionImpl prev = gf::ActiveRegionImpl();
  gf::SetRegionImpl(impl);
  const size_t n = static_cast<size_t>(state.range(0));
  const auto coeffs = MixedCoefficients();
  Buffer src = MakePatternBuffer(n, 1);
  Buffer dst = MakePatternBuffer(n, 2);
  size_t i = 0;
  for (auto _ : state) {
    gf::MulAddRegion(coeffs[i++ % coeffs.size()], src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
  gf::SetRegionImpl(prev);
}

// Fused multi-source accumulate vs. k sequential sweeps over dst.
void BM_GfMulAddRegionMulti(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const auto coeffs = MixedCoefficients();
  std::vector<Buffer> sources;
  std::vector<const uint8_t*> srcs;
  std::vector<uint8_t> cs;
  for (uint32_t i = 0; i < k; ++i) {
    sources.push_back(MakePatternBuffer(n, i));
    cs.push_back(coeffs[i]);
  }
  for (const auto& b : sources) {
    srcs.push_back(b.data());
  }
  Buffer dst = MakePatternBuffer(n, 99);
  for (auto _ : state) {
    gf::MulAddRegionMulti(cs, std::span<const uint8_t* const>(srcs), dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * k);
  state.SetLabel(gf::RegionImplName(gf::ActiveRegionImpl()));
}
BENCHMARK(BM_GfMulAddRegionMulti)->Args({65536, 3})->Args({65536, 6});

// Fused stripe encode (RsCode::EncodeInto, one pass over the k sources per
// parity block)...
void BM_RsEncodeFused(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  const size_t block = 64 * 1024;
  auto code = rs::RsCode::Create(k, m);
  std::vector<Buffer> data;
  for (uint32_t i = 0; i < k; ++i) {
    data.push_back(MakePatternBuffer(block, i));
  }
  std::vector<ByteSpan> spans(data.begin(), data.end());
  std::vector<Buffer> parity(m, Buffer(block));
  std::vector<MutableByteSpan> pspans(parity.begin(), parity.end());
  for (auto _ : state) {
    code->EncodeInto(spans, pspans);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          block);
  state.SetLabel(gf::RegionImplName(gf::ActiveRegionImpl()));
}
BENCHMARK(BM_RsEncodeFused)->Args({2, 1})->Args({3, 2})->Args({6, 3});

// ...vs. the pre-fusion shape: k*m full-buffer MulAddRegion sweeps.
void BM_RsEncodeNaive(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  const size_t block = 64 * 1024;
  auto code = rs::RsCode::Create(k, m);
  std::vector<Buffer> data;
  for (uint32_t i = 0; i < k; ++i) {
    data.push_back(MakePatternBuffer(block, i));
  }
  std::vector<Buffer> parity(m, Buffer(block));
  for (auto _ : state) {
    for (uint32_t j = 0; j < m; ++j) {
      std::fill(parity[j].begin(), parity[j].end(), 0);
      for (uint32_t i = 0; i < k; ++i) {
        gf::MulAddRegion(code->Coefficient(j, i), data[i], parity[j]);
      }
    }
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          block);
  state.SetLabel(gf::RegionImplName(gf::ActiveRegionImpl()));
}
BENCHMARK(BM_RsEncodeNaive)->Args({3, 2})->Args({6, 3});

void BM_RsDecode(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  const size_t block = 64 * 1024;
  auto code = rs::RsCode::Create(k, m);
  std::vector<Buffer> data;
  for (uint32_t i = 0; i < k; ++i) {
    data.push_back(MakePatternBuffer(block, i));
  }
  std::vector<ByteSpan> spans(data.begin(), data.end());
  auto parity = code->Encode(spans);
  // Lose the first min(m, k) data blocks.
  std::vector<std::pair<uint32_t, ByteSpan>> available;
  for (uint32_t i = std::min(m, k); i < k; ++i) {
    available.emplace_back(i, ByteSpan(data[i]));
  }
  for (uint32_t j = 0; j < m; ++j) {
    available.emplace_back(k + j, ByteSpan(parity[j]));
  }
  for (auto _ : state) {
    auto recovered = code->RecoverData(available);
    benchmark::DoNotOptimize(recovered);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * k *
                          block);
  state.SetLabel(gf::RegionImplName(gf::ActiveRegionImpl()));
}
BENCHMARK(BM_RsDecode)->Args({2, 1})->Args({3, 2})->Args({6, 3});

void BM_SrsEncodeObject(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t m = static_cast<uint32_t>(state.range(1));
  const uint32_t s = static_cast<uint32_t>(state.range(2));
  auto code = srs::SrsCode::Create(k, m, s);
  const Buffer object = MakePatternBuffer(256 * 1024, 3);
  for (auto _ : state) {
    auto enc = code->EncodeObject(object);
    benchmark::DoNotOptimize(enc.parity_nodes.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          object.size());
  state.SetLabel(gf::RegionImplName(gf::ActiveRegionImpl()));
}
BENCHMARK(BM_SrsEncodeObject)
    ->Args({3, 2, 3})
    ->Args({3, 2, 6})
    ->Args({2, 1, 8});

void BM_ParityDeltaUpdate(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  auto code = rs::RsCode::Create(3, 2);
  Buffer delta = MakePatternBuffer(block, 5);
  Buffer parity = MakePatternBuffer(block, 6);
  for (auto _ : state) {
    code->ApplyParityDelta(1, 2, delta, parity);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * block);
  state.SetLabel(gf::RegionImplName(gf::ActiveRegionImpl()));
}
BENCHMARK(BM_ParityDeltaUpdate)->Arg(1024)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  // One pinned-dispatch benchmark per kernel tier this host can run.
  const gf::RegionImpl prev = gf::ActiveRegionImpl();
  for (gf::RegionImpl impl : {gf::RegionImpl::kScalar, gf::RegionImpl::kSsse3,
                              gf::RegionImpl::kAvx2, gf::RegionImpl::kNeon}) {
    if (gf::SetRegionImpl(impl) != impl) {
      continue;
    }
    const std::string name =
        std::string("BM_GfMulAddRegion_") + gf::RegionImplName(impl);
    benchmark::RegisterBenchmark(name.c_str(), BM_GfMulAddRegionImpl, impl)
        ->Arg(65536);
  }
  gf::SetRegionImpl(prev);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
