// Ablation: why Stretched Reed-Solomon exists (paper §3.3).
//
// "The major problem in this mapping ... is the coupling between the hash
// key distribution and the number of data blocks k. ... when the storage
// scheme is changed to a different k, the keys need to be remapped and
// migrated." SRS decouples the two: every scheme uses `h(key) mod s`.
//
// This harness quantifies the cost SRS removes: the fraction of keys (and
// bytes) that change their home node when a key population moves between
// coding schemes under the classic mapping `h(key) mod k`, versus zero under
// SRS. It also prices the wire traffic of the classic migration against
// Ring's node-local move.
#include <cstdio>
#include <string>

#include "src/common/hash.h"

int main() {
  using namespace ring;
  const uint64_t kKeys = 200'000;
  const uint64_t kValueBytes = 1024;

  std::printf("# Ablation: scheme change with classic RS mapping vs SRS\n");
  std::printf("# %llu keys x %llu B values\n",
              static_cast<unsigned long long>(kKeys),
              static_cast<unsigned long long>(kValueBytes));
  std::printf("%-22s %-16s %-14s %s\n", "transition", "classic remapped",
              "bytes moved", "SRS remapped");

  struct Transition {
    uint32_t from_k;
    uint32_t to_k;
  };
  const Transition transitions[] = {{2, 3}, {3, 2}, {2, 4}, {3, 4}, {4, 5}};
  for (const auto& t : transitions) {
    uint64_t remapped = 0;
    for (uint64_t i = 0; i < kKeys; ++i) {
      const uint64_t h = HashKey("key-" + std::to_string(i));
      if (h % t.from_k != h % t.to_k) {
        ++remapped;
      }
    }
    std::printf("RS(%u,m) -> RS(%u,m)     %6.1f%%          %8.1f MiB     0\n",
                t.from_k, t.to_k,
                100.0 * static_cast<double>(remapped) / kKeys,
                static_cast<double>(remapped * kValueBytes) / (1 << 20));
  }
  std::printf(
      "\n# With SRS(k,m,s), every scheme shares h(key) mod s: a resilience\n"
      "# change is one local move (~5-15 us, Fig. 8) instead of migrating\n"
      "# the bulk of the key population across the network.\n");
  return 0;
}
