// Figure 11: single-client throughput of REP1, REP3, SRS21 and SRS32 under
// YCSB workloads with (get:put) ratios 100:0, 95:5, 50:50 and 0:100; the
// client doubles its request rate every second from 128K to 1024K req/s
// (paper §6.3; Zipfian keys, 8 B keys, 1 KiB values).
//
// Expected shape: all memgests share the same get-only throughput (~418 K);
// put-heavier mixes lower it; the single-threaded client is the bottleneck,
// so schemes differ only slightly (REP1 ~290 K at 0:100, others slightly
// below).
#include "bench/bench_util.h"

namespace {

void RunOne(const char* label, ring::RingCluster& cluster, ring::MemgestId g,
            double get_fraction) {
  using namespace ring;
  workload::YcsbSpec spec;
  spec.num_keys = 20'000;
  spec.get_fraction = get_fraction;
  spec.zipf_theta = 0.99;
  workload::OpenLoopDriver::Options opt;
  opt.rate_per_sec = 128'000;
  opt.memgest = g;
  opt.spec = spec;
  opt.seed = 57;
  workload::OpenLoopDriver driver(&cluster, 0, opt);
  workload::Preload(&cluster, spec, g, /*seed=*/3);

  driver.Start();
  std::printf("  %s (%3.0f%%:%3.0f%%):", label, get_fraction * 100,
              (1 - get_fraction) * 100);
  uint64_t last = 0;
  double rate = 128'000;
  for (int second = 0; second < 4; ++second) {
    cluster.RunFor(ring::sim::kSecond);
    const uint64_t completed = driver.completed();
    std::printf("  %7.0f", static_cast<double>(completed - last) / 1.0);
    last = completed;
    rate *= 2;
    driver.SetRate(rate);
  }
  driver.Stop();
  cluster.RunFor(10 * ring::sim::kMillisecond);
  std::printf("   req/s at 128K/256K/512K/1024K offered\n");
}

}  // namespace

int main() {
  using namespace ring;
  std::printf(
      "# Figure 11: single-client YCSB throughput (Zipfian, 1 KiB values)\n");
  const double ratios[] = {1.0, 0.95, 0.5, 0.0};
  struct SchemeDef {
    const char* label;
    MemgestDescriptor desc;
  };
  const SchemeDef schemes[] = {
      {"REP1", MemgestDescriptor::Replicated(1)},
      {"REP3", MemgestDescriptor::Replicated(3)},
      {"SRS21", MemgestDescriptor::ErasureCoded(2, 1)},
      {"SRS32", MemgestDescriptor::ErasureCoded(3, 2)},
  };
  for (const auto& scheme : schemes) {
    std::printf("%s:\n", scheme.label);
    for (double ratio : ratios) {
      // Fresh cluster per run keeps the measurements independent.
      RingCluster cluster(bench::PaperCluster(/*clients=*/1, 0, 23));
      auto g = *cluster.CreateMemgest(scheme.desc);
      RunOne(scheme.label, cluster, g, ratio);
    }
    std::printf("\n");
  }
  return 0;
}
