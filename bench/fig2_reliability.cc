// Figure 2: Reliability (number of nines) of Stretched Reed-Solomon coding
// with different parameters.
//
// For every base code RS(k,m) (k = 2..7, m < k) and every stretch factor
// s = k..8, prints the annual reliability in nines from the Appendix A.2
// Markov model. The paper's headline: each SRS(k,m,s) family forms a nearly
// vertical line (stretching keeps reliability roughly constant), and
// stretching sometimes *increases* reliability (e.g. SRS(3,2,6) > RS(3,2)).
#include <cstdio>

#include "src/reliability/models.h"
#include "src/srs/srs_code.h"

int main() {
  ring::reliability::Environment env;  // λ = 10/yr, 600 GiB, 40 Gb/s
  std::printf("# Figure 2: reliability of SRS(k,m,s) codes, 1-year mission\n");
  std::printf("# environment: lambda=%.1f/yr dataset=%.0fGiB B_N=%.0fGb/s\n",
              env.node_failure_rate, env.dataset_bytes / (1ULL << 30),
              env.network_bandwidth * 8 / 1e9);
  std::printf("%-12s %-8s %-14s %s\n", "code", "stretch", "reliability",
              "nines");
  for (uint32_t k = 2; k <= 7; ++k) {
    for (uint32_t m = 1; m < k; ++m) {
      for (uint32_t s = k; s <= 8; ++s) {
        auto code = ring::srs::SrsCode::Create(k, m, s);
        if (!code.ok()) {
          continue;
        }
        ring::reliability::SrsModel model(*code, env);
        const double r = model.Reliability(1.0);
        std::printf("SRS(%u,%u,%u)%s %-8u %-14.10f %6.2f%s\n", k, m, s,
                    k >= 10 ? "" : "  ", s, r, ring::reliability::Nines(r),
                    s == k ? "   <- RS base" : "");
      }
      std::printf("\n");
    }
  }
  return 0;
}
