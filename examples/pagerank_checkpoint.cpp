// Importance of the data (paper §2, use case 3): iterative computation
// whose intermediate state becomes more valuable every iteration, because
// losing it late forces recomputation from scratch.
//
// A toy PageRank keeps its rank vector in Ring. Early iterations live in
// the unreliable memgest (cheap to recompute); later iterations are raised
// to erasure-coded and finally replicated storage. A node failure at the
// end demonstrates that the expensive late state survives.
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/common/hash.h"
#include "src/ring/cluster.h"

using namespace ring;

namespace {

// Rank vector <-> value blob.
Buffer Pack(const std::vector<double>& ranks) {
  Buffer out(ranks.size() * sizeof(double));
  memcpy(out.data(), ranks.data(), out.size());
  return out;
}
std::vector<double> Unpack(const Buffer& blob) {
  std::vector<double> out(blob.size() / sizeof(double));
  memcpy(out.data(), blob.data(), blob.size());
  return out;
}

}  // namespace

int main() {
  RingOptions options;
  options.spares = 1;
  RingCluster cluster(options);
  const MemgestId scratch =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(1, "scratch"));
  const MemgestId coded =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 1, "coded"));
  const MemgestId durable =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3, "durable"));

  // A small ring-shaped graph (fitting).
  const int n = 64;
  std::vector<std::vector<int>> out_links(n);
  for (int v = 0; v < n; ++v) {
    out_links[v] = {(v + 1) % n, (v + 7) % n};
  }
  std::vector<double> ranks(n, 1.0 / n);

  const int iterations = 12;
  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<double> next(n, 0.15 / n);
    for (int v = 0; v < n; ++v) {
      for (int u : out_links[v]) {
        next[u] += 0.85 * ranks[v] / out_links[v].size();
      }
    }
    ranks = next;
    // Checkpoint with iteration-dependent resilience: the paper's
    // "dynamically increases the reliability of given KV pairs".
    const MemgestId tier =
        iter < 4 ? scratch : (iter < 9 ? coded : durable);
    const Status status = cluster.Put("pagerank:ranks", Pack(ranks), tier);
    std::printf("iter %2d checkpointed (%s) to %s\n", iter, status.ToString().c_str(),
                tier == scratch ? "Rep(1)" : tier == coded ? "SRS(3,1)"
                                                           : "Rep(3)");
  }

  // Disaster strikes the coordinator holding the checkpoint.
  const uint32_t coordinator = KeyShard("pagerank:ranks", cluster.s());
  cluster.KillNode(coordinator, /*force_detect=*/true);
  cluster.RunFor(10 * sim::kMillisecond);

  auto recovered = cluster.Get("pagerank:ranks");
  if (!recovered.ok()) {
    std::printf("checkpoint lost: %s\n",
                recovered.status().ToString().c_str());
    return 1;
  }
  const auto final_ranks = Unpack(*recovered);
  double sum = 0;
  for (double r : final_ranks) {
    sum += r;
  }
  std::printf(
      "after coordinator failure: checkpoint of iteration %d intact "
      "(rank mass %.6f)\n",
      iterations - 1, sum);
  std::printf("exact match with in-memory state: %s\n",
              *recovered == Pack(ranks) ? "yes" : "NO");
  return 0;
}
