// Multi-temperature data management (paper §2, use case 1).
//
// A warehouse tracks access frequency per key. Hot keys live in fast
// replicated storage; keys that cool down are transparently moved to
// low-overhead erasure-coded storage — and pulled back when they heat up.
// The example reports the memory saved versus keeping everything hot.
#include <cstdio>
#include <map>

#include "src/ring/cluster.h"

using namespace ring;

namespace {

uint64_t ClusterMemory(RingCluster& cluster) {
  uint64_t total = 0;
  for (net::NodeId node = 0; node < 5; ++node) {
    total += cluster.server(node).LiveBytes();
  }
  return total;
}

}  // namespace

int main() {
  RingCluster cluster(RingOptions{});
  const MemgestId hot =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3, "hot"));
  const MemgestId cold =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "cold"));

  // A working set of 120 items, 4 KiB each; only ~20 stay hot.
  const int items = 120;
  const size_t item_size = 4096;
  for (int i = 0; i < items; ++i) {
    cluster.Put("item:" + std::to_string(i),
                MakePatternBuffer(item_size, i), hot);
  }
  const uint64_t all_hot = ClusterMemory(cluster);

  // Temperature tracking: a trivial access counter (stand-in for the
  // multi-temperature schemes the paper cites).
  std::map<int, int> access_count;
  Rng rng(5);
  for (int op = 0; op < 2000; ++op) {
    const int item = static_cast<int>(rng.NextBelow(20));  // hot subset
    ++access_count[item];
    (void)cluster.Get("item:" + std::to_string(item));
  }

  // Cool-down pass: items below the threshold migrate to erasure coding.
  int moved = 0;
  for (int i = 0; i < items; ++i) {
    if (access_count[i] < 10) {
      if (cluster.Move("item:" + std::to_string(i), cold).ok()) {
        ++moved;
      }
    }
  }
  cluster.RunFor(10 * sim::kMillisecond);  // let GC notices drain
  const uint64_t tiered = ClusterMemory(cluster);

  std::printf("multi-temperature management of %d x %zu B items\n", items,
              item_size);
  std::printf("  all hot (Rep3):        %8.1f KiB cluster memory\n",
              all_hot / 1024.0);
  std::printf("  %3d items moved cold:  %8.1f KiB cluster memory\n", moved,
              tiered / 1024.0);
  std::printf("  saved: %.0f%%  (theoretical for 5/3 overhead: %.0f%%)\n",
              100.0 * (1.0 - static_cast<double>(tiered) / all_hot),
              100.0 * (1.0 - (20.0 * 3 + 100 * 5.0 / 3) / (120.0 * 3)));

  // Reheat: a cold item becomes popular again and moves back, still
  // strongly consistent throughout.
  (void)cluster.Move("item:100", hot);
  auto value = cluster.Get("item:100");
  std::printf("  reheated item:100 intact: %s\n",
              value.ok() && *value == MakePatternBuffer(item_size, 100)
                  ? "yes"
                  : "NO");
  return 0;
}
