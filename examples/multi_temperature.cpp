// Multi-temperature data management (paper §2, use case 1).
//
// A warehouse's keys have different temperatures: hot keys belong in fast
// replicated storage, cold keys in low-overhead erasure coding. Instead of
// hand-rolling access counters and migration loops, this example hands the
// problem to the adaptive resilience manager (src/policy): it watches the
// traffic, tracks per-key temperature in a count-min sketch, and issues
// rate-limited background moves between tiers — pulling keys back to
// replication when they heat up again, strongly consistent throughout.
#include <cstdio>
#include <string>

#include "src/policy/autotier.h"
#include "src/ring/cluster.h"

using namespace ring;

namespace {

uint64_t ClusterMemory(RingCluster& cluster) {
  uint64_t total = 0;
  for (net::NodeId node = 0; node < 5; ++node) {
    total += cluster.server(node).LiveBytes();
  }
  return total;
}

std::string ItemKey(int i) { return "item:" + std::to_string(i); }

}  // namespace

int main() {
  RingOptions options;
  options.clients = 2;  // client 1 carries the manager's background moves
  RingCluster cluster(options);
  const MemgestId hot =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3, "hot"));
  const MemgestId cold =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "cold"));

  // Tiers are listed hottest-first; each carries the cloud price sheet the
  // cost-objective mode would use (threshold mode is the default).
  policy::AutoTierOptions ao;
  ao.epoch_ns = 5 * sim::kMillisecond;
  ao.mover.client_index = 1;
  policy::AutoTierManager manager(
      &cluster,
      {policy::Tier{hot, MemgestDescriptor::Replicated(3),
                    cost::PriceTable{}.hot},
       policy::Tier{cold, MemgestDescriptor::ErasureCoded(3, 2),
                    cost::PriceTable{}.cool}},
      ao);

  // A working set of 120 items, 4 KiB each; only ~20 stay hot.
  const int items = 120;
  const size_t item_size = 4096;
  for (int i = 0; i < items; ++i) {
    (void)cluster.Put(ItemKey(i), MakePatternBuffer(item_size, i), hot);
  }
  const uint64_t all_hot = ClusterMemory(cluster);
  manager.Start();

  // Skewed traffic: a 20-item hot subset absorbs every get. The manager
  // sees the accesses through its client observers — no bookkeeping here.
  Rng rng(5);
  for (int op = 0; op < 2000; ++op) {
    const int item = static_cast<int>(rng.NextBelow(20));
    (void)cluster.Get(ItemKey(item));
    if (op % 100 == 99) {
      cluster.RunFor(sim::kMillisecond);  // idle gaps let epochs elapse
    }
  }
  cluster.RunFor(20 * sim::kMillisecond);  // drain moves + GC notices
  const uint64_t tiered = ClusterMemory(cluster);
  const auto& mover = manager.mover();

  std::printf("multi-temperature management of %d x %zu B items\n", items,
              item_size);
  std::printf("  all hot (Rep3):        %8.1f KiB cluster memory\n",
              all_hot / 1024.0);
  std::printf("  auto-tiered:           %8.1f KiB cluster memory"
              "  (%llu background moves, %llu aborted)\n",
              tiered / 1024.0,
              static_cast<unsigned long long>(mover.completed()),
              static_cast<unsigned long long>(mover.aborted()));
  std::printf("  saved: %.0f%%  (theoretical for 5/3 overhead: %.0f%%)\n",
              100.0 * (1.0 - static_cast<double>(tiered) / all_hot),
              100.0 * (1.0 - (20.0 * 3 + 100 * 5.0 / 3) / (120.0 * 3)));
  std::printf("  realized storage+ops cost: %.4f $/month\n",
              manager.RealizedStorageCost());

  // Reheat: a cold item becomes popular again; the manager notices the
  // temperature spike and promotes it back to replication on its own.
  for (int op = 0; op < 400; ++op) {
    (void)cluster.Get(ItemKey(100));
    if (op % 50 == 49) {
      cluster.RunFor(sim::kMillisecond);
    }
  }
  cluster.RunFor(20 * sim::kMillisecond);
  const MemgestId placement = manager.PlacementOf(ItemKey(100));
  auto value = cluster.Get(ItemKey(100));
  std::printf("  reheated item:100 -> %s tier, bytes intact: %s\n",
              placement == hot ? "hot" : "cold",
              value.ok() && *value == MakePatternBuffer(item_size, 100)
                  ? "yes"
                  : "NO");
  manager.Stop();
  return 0;
}
