// Trace replay: drive Ring with an SPC-format storage trace (paper §6.2's
// workloads) and let a temperature policy place blocks across memgests.
//
// Blocks (4 KiB pages addressed by LBA) start in cold erasure-coded storage;
// pages that get written repeatedly are promoted to the fast unreliable
// memgest and demoted again when they cool. The example reports the op mix,
// the resulting placement, and the memory overhead compared to all-hot.
#include <cstdio>
#include <map>
#include <sstream>

#include "src/ring/cluster.h"
#include "src/workload/spc_trace.h"

using namespace ring;

int main(int argc, char** argv) {
  const std::string trace_name = argc > 1 ? argv[1] : "Financial1";
  const uint64_t ops = 4000;
  const auto records = workload::SyntheticTrace(trace_name, ops, 11);
  if (records.empty()) {
    std::fprintf(stderr,
                 "unknown trace '%s' (try Financial1/2, WebSearch1/2/3)\n",
                 trace_name.c_str());
    return 1;
  }
  const auto agg = workload::Aggregate(trace_name, records);
  std::printf("replaying %s: %llu ops, %.0f%% writes, footprint %.1f GiB\n",
              trace_name.c_str(), static_cast<unsigned long long>(ops),
              agg.write_fraction() * 100,
              static_cast<double>(agg.footprint_bytes) / (1ULL << 30));

  RingCluster cluster(RingOptions{});
  const MemgestId hot =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3, "hot"));
  const MemgestId cold =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "cold"));

  // 4 KiB page cache over the trace's address space (bounded working set).
  auto page_key = [](uint64_t page) {
    std::ostringstream os;
    os << "page:" << page;
    return os.str();
  };
  std::map<uint64_t, int> write_heat;
  std::map<uint64_t, bool> is_hot;
  uint64_t kv_reads = 0;
  uint64_t kv_writes = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;

  for (const auto& rec : records) {
    const uint64_t page = rec.lba * 512 / 4096 % 4096;  // bounded key space
    const Key key = page_key(page);
    if (rec.opcode == 'W') {
      const int heat = ++write_heat[page];
      const MemgestId target = is_hot[page] ? hot : cold;
      (void)cluster.Put(key, MakePatternBuffer(4096, page), target);
      ++kv_writes;
      // Promote write-hot pages to fast storage.
      if (!is_hot[page] && heat >= 3) {
        if (cluster.Move(key, hot).ok()) {
          is_hot[page] = true;
          ++promotions;
        }
      }
    } else {
      auto value = cluster.Get(key);
      ++kv_reads;
      (void)value;  // cache miss (NotFound) is fine: cold page never written
    }
    // Periodic cool-down sweep.
    if ((kv_reads + kv_writes) % 1000 == 0) {
      for (auto& [p, heat] : write_heat) {
        if (is_hot[p] && heat < 2) {
          if (cluster.Move(page_key(p), cold).ok()) {
            is_hot[p] = false;
            ++demotions;
          }
        }
        heat = 0;  // decay
      }
    }
  }
  cluster.RunFor(10 * sim::kMillisecond);

  uint64_t live = 0;
  for (net::NodeId n = 0; n < 5; ++n) {
    live += cluster.server(n).LiveBytes();
  }
  uint64_t hot_pages = 0;
  for (const auto& [p, h] : is_hot) {
    hot_pages += h ? 1 : 0;
  }
  const uint64_t stored_pages = write_heat.size();
  std::printf("  KV ops: %llu writes, %llu reads\n",
              static_cast<unsigned long long>(kv_writes),
              static_cast<unsigned long long>(kv_reads));
  std::printf("  placement: %llu pages total, %llu hot (%llu promotions, "
              "%llu demotions)\n",
              static_cast<unsigned long long>(stored_pages),
              static_cast<unsigned long long>(hot_pages),
              static_cast<unsigned long long>(promotions),
              static_cast<unsigned long long>(demotions));
  const double all_hot_bytes = 3.0 * 4096 * stored_pages;
  std::printf("  cluster memory: %.1f KiB vs %.1f KiB all-hot (%.0f%% saved)\n",
              live / 1024.0, all_hot_bytes / 1024.0,
              100.0 * (1.0 - live / all_hot_bytes));
  return 0;
}
