// Temporary blob storage (paper §2, use case 4): write-modify-commit.
//
// Users upload picture blobs, apply filters, and then either commit or
// abandon them. Uncommitted blobs live in the unreliable memgest (1x
// memory, fastest puts); commit is a single ~µs move into erasure-coded
// storage. The example measures the memory footprint advantage the paper
// derives in §6.2 (S*t vs S*O*t before the commit decision).
#include <cstdio>
#include <string>
#include <vector>

#include "src/ring/cluster.h"

using namespace ring;

int main() {
  RingCluster cluster(RingOptions{});
  const MemgestId staging =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(1, "staging"));
  const MemgestId persistent =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "persistent"));

  struct Session {
    std::string blob;
    bool committed;
  };
  std::vector<Session> sessions;
  const size_t blob_size = 32 * 1024;
  const int uploads = 24;

  // Upload phase: blobs land in staging.
  for (int i = 0; i < uploads; ++i) {
    const std::string key = "blob:" + std::to_string(i);
    (void)cluster.Put(key, MakePatternBuffer(blob_size, i), staging);
    sessions.push_back({key, false});
  }
  uint64_t staged_bytes = 0;
  for (net::NodeId node = 0; node < 5; ++node) {
    staged_bytes += cluster.server(node).LiveBytes();
  }

  // Edit phase: filters rewrite some blobs in place (still staging).
  Rng rng(9);
  for (int i = 0; i < uploads; ++i) {
    if (rng.NextBernoulli(0.5)) {
      (void)cluster.Put(sessions[i].blob,
                        MakePatternBuffer(blob_size, 100 + i), staging);
    }
  }

  // Decision phase: two thirds commit (one move each), the rest expire via
  // session management.
  int committed = 0;
  auto& client = cluster.client(0);
  Samples move_latency;
  for (int i = 0; i < uploads; ++i) {
    if (i % 3 != 2) {
      client.ResetStats();
      (void)cluster.Move(sessions[i].blob, persistent);
      if (!client.latencies().empty()) {
        move_latency.Add(client.latencies().values().back());
      }
      sessions[i].committed = true;
      ++committed;
    } else {
      (void)cluster.Delete(sessions[i].blob);
    }
  }
  cluster.RunFor(10 * sim::kMillisecond);

  std::printf("blob store: %d uploads of %zu KiB\n", uploads,
              blob_size / 1024);
  std::printf("  staging memory (Rep1):          %7.0f KiB (1x overhead)\n",
              staged_bytes / 1024.0);
  std::printf("  if staged on Rep(3) instead:    %7.0f KiB\n",
              3.0 * uploads * blob_size / 1024.0);
  std::printf("  commit = one move request:      %7.2f us median\n",
              move_latency.Median());
  std::printf("  committed %d blobs; expired blobs deleted\n", committed);

  // Committed blobs are durable and byte-identical.
  int intact = 0;
  for (const auto& session : sessions) {
    if (!session.committed) {
      continue;
    }
    auto value = cluster.Get(session.blob);
    if (value.ok() && value->size() == blob_size) {
      ++intact;
    }
  }
  std::printf("  committed blobs readable after commit: %d/%d\n", intact,
              committed);
  return 0;
}
