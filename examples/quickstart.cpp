// Quickstart: spin up a simulated Ring cluster, create memgests with
// different resilience levels, and use the full per-key API — put, get,
// move, delete — from the paper's §5.
//
//   $ ./quickstart
#include <cstdio>

#include "src/common/hash.h"
#include "src/ring/cluster.h"

using namespace ring;

int main() {
  // 5 KVS nodes (3 coordinator shards + 2 redundant), 1 spare, 1 client —
  // the paper's Fig. 3 deployment.
  RingOptions options;
  options.s = 3;
  options.d = 2;
  options.spares = 1;
  options.clients = 1;
  RingCluster cluster(options);

  // Storage schemes (memgests): the user picks the trade-off per key.
  const MemgestId fast =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(1, "fast"));
  const MemgestId safe =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(3, "safe"));
  const MemgestId cheap =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "cheap"));

  std::printf("created memgests: fast=Rep(1) safe=Rep(3) cheap=SRS(3,2,3)\n");

  // put(key, object, memgestID): each key chooses its resilience.
  Status status = cluster.Put("session:42", "ephemeral token", fast);
  std::printf("put session:42 (fast): %s\n", status.ToString().c_str());
  status = cluster.Put("account:alice", "balance=1000", safe);
  std::printf("put account:alice (safe): %s\n", status.ToString().c_str());
  status = cluster.Put("archive:2017", "cold, erasure-coded blob", cheap);
  std::printf("put archive:2017 (cheap): %s\n", status.ToString().c_str());

  // get(key) needs no memgest argument — one consistent namespace.
  for (const char* key : {"session:42", "account:alice", "archive:2017"}) {
    auto value = cluster.Get(key);
    std::printf("get %-14s -> %s\n", key,
                value.ok() ? ToString(*value).c_str()
                           : value.status().ToString().c_str());
  }

  // move(key, memgestID): change a key's resilience in place, strongly
  // consistently, without re-sending the value.
  status = cluster.Move("session:42", safe);
  std::printf("moved session:42 from fast to safe storage: %s\n",
              status.ToString().c_str());

  // The value survives a coordinator failure now.
  const uint32_t coordinator = KeyShard("session:42", cluster.s());
  cluster.KillNode(coordinator, /*force_detect=*/true);
  cluster.RunFor(5 * sim::kMillisecond);
  auto survived = cluster.Get("session:42");
  std::printf("after killing its coordinator: get session:42 -> %s\n",
              survived.ok() ? ToString(*survived).c_str()
                            : survived.status().ToString().c_str());

  (void)cluster.Delete("session:42");
  std::printf("deleted session:42 -> get: %s\n",
              cluster.Get("session:42").status().ToString().c_str());

  std::printf("simulated time elapsed: %.3f ms\n",
              static_cast<double>(cluster.simulator().now()) / 1e6);
  return 0;
}
