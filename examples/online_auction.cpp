// Heavy updates (paper §2, use case 2): the last seconds of an online
// auction. The item's record takes millions of puts; moving it to the
// unreliable memgest multiplies sustainable update throughput, while a
// reliable backup version of the item bounds the loss window.
#include <cstdio>

#include "src/ring/cluster.h"
#include "src/workload/drivers.h"

using namespace ring;

namespace {

// Sustained put throughput against one key for `window` of simulated time.
double BidThroughput(RingCluster& cluster, MemgestId memgest,
                     sim::SimTime window) {
  workload::OpenLoopDriver::Options opt;
  opt.rate_per_sec = 600'000;  // frantic last-minute bidding
  opt.memgest = memgest;
  opt.spec.num_keys = 1;       // one auction item
  opt.spec.value_len = 256;    // current-price record
  opt.spec.get_fraction = 0.0;
  opt.seed = 77;
  workload::OpenLoopDriver driver(&cluster, 0, opt);
  driver.Start();
  cluster.RunFor(window / 5);  // warm-up
  const uint64_t before = driver.completed();
  cluster.RunFor(window);
  const uint64_t after = driver.completed();
  driver.Stop();
  cluster.RunFor(5 * sim::kMillisecond);
  return static_cast<double>(after - before) /
         (static_cast<double>(window) / 1e9);
}

}  // namespace

int main() {
  RingOptions options;
  options.clients = 1;
  options.params.client_retry_timeout_ns = 100 * sim::kMillisecond;
  // Lightweight bid front-end (many bidders behind one injector).
  options.params.client_base_ns = 900;
  options.params.client_put_byte_ns = 0.0;
  RingCluster cluster(options);
  const MemgestId reliable =
      *cluster.CreateMemgest(MemgestDescriptor::ErasureCoded(3, 2, "reliable"));
  const MemgestId unreliable =
      *cluster.CreateMemgest(MemgestDescriptor::Replicated(1, "unreliable"));

  const Key item = "auction:vintage-nic";
  (void)cluster.Put(item, "opening bid: 100", reliable);

  std::printf("online auction, final minute:\n");
  const double slow =
      BidThroughput(cluster, reliable, 400 * sim::kMillisecond);
  std::printf("  bids on SRS(3,2):        %8.0f puts/s\n", slow);

  // The operator sees the load spike and moves the item to Rep(1). A backup
  // version stays behind in reliable storage (Ring keeps versions in
  // different memgests; §2: "preserving previous reliable copies").
  (void)cluster.Put(item, "backup before spike", reliable);
  (void)cluster.Move(item, unreliable);
  const double fast =
      BidThroughput(cluster, unreliable, 400 * sim::kMillisecond);
  std::printf("  bids on Rep(1):        %8.0f puts/s  (%.1fx)\n", fast,
              fast / slow);

  // Auction closes: the final price moves back to reliable storage.
  (void)cluster.Move(item, reliable);
  auto final_price = cluster.Get(item);
  std::printf("  final record moved back to reliable storage: %s\n",
              final_price.ok() ? "committed" : "LOST");
  return 0;
}
