// Byte-level mapping between a data node's virtual address space and SRS
// stripe coordinates.
//
// An SRS(k,m,s) memgest stores each object wholly on its coordinator node
// (key shard), inside that node's virtual address space. The address space of
// every data node is striped into rows of l/s chunks of `stripe_unit` bytes;
// parity nodes mirror the same rows with l/k chunks each (one per
// mini-stripe). A write of [offset, offset+len) on data node n therefore
// touches a sequence of (mini-stripe, RS-block) segments; each segment has a
// single parity location (identical offset on every parity node) and a single
// coding coefficient column (its RS block).
//
// Coordinates:
//   row r     = node_addr / (U * l/s)
//   slot q    = (node_addr / U) % (l/s)
//   intra u   = node_addr % U
//   chunk c   = n * l/s + q,  rs block b = c / (l/k),  mini-stripe t = c % (l/k)
//   parity_addr = r * U * (l/k) + t * U + u        (same on every parity node)
#ifndef RING_SRC_SRS_ADDRESS_MAP_H_
#define RING_SRC_SRS_ADDRESS_MAP_H_

#include <cstdint>
#include <vector>

#include "src/srs/srs_code.h"

namespace ring::srs {

class SrsAddressMap {
 public:
  // stripe_unit: bytes per chunk cell (U). Must be > 0.
  SrsAddressMap(const SrsCode* code, uint64_t stripe_unit)
      : code_(code), unit_(stripe_unit) {}

  uint64_t stripe_unit() const { return unit_; }
  // Bytes per row on a data node / parity node.
  uint64_t data_row_bytes() const {
    return unit_ * code_->chunks_per_data_node();
  }
  uint64_t parity_row_bytes() const {
    return unit_ * code_->chunks_per_parity_node();
  }

  // One chunk-contiguous piece of a data-node byte range.
  struct Segment {
    uint64_t node_offset;    // where it lives on the data node
    uint64_t parity_offset;  // where its parity lives on every parity node
    uint32_t rs_block;       // coefficient column g[j][rs_block]
    uint32_t ministripe;
    uint64_t row;
    uint64_t length;
  };

  // Splits [offset, offset+length) of data node `node` into segments.
  std::vector<Segment> MapDataRange(uint32_t node, uint64_t offset,
                                    uint64_t length) const;

  // The parity address-space extent needed to cover a data extent (rounded up
  // to whole rows). Parity nodes are s/k times larger per row — the memory
  // imbalance the paper discusses in §5.4.
  uint64_t ParityExtent(uint64_t data_extent) const;

  // A block source for decoding one segment: either a surviving data chunk
  // (h_row in [0,k)) or a parity chunk (h_row in [k,k+m)).
  struct SourceLoc {
    bool is_parity;
    uint32_t node;     // data node id or parity node id
    uint64_t offset;   // byte offset in that node's (data|parity) space
    uint32_t h_row;    // row index for rs::RsCode::RecoverData
  };

  // All k+m potential sources for the mini-stripe covering `seg` (the failed
  // segment itself appears among them); callers filter out dead nodes and
  // feed >= k of these to RsCode::RecoverData.
  std::vector<SourceLoc> DecodeSources(const Segment& seg) const;

 private:
  const SrsCode* code_;
  uint64_t unit_;
};

}  // namespace ring::srs

#endif  // RING_SRC_SRS_ADDRESS_MAP_H_
