#include "src/srs/address_map.h"

#include <algorithm>
#include <cassert>

namespace ring::srs {

std::vector<SrsAddressMap::Segment> SrsAddressMap::MapDataRange(
    uint32_t node, uint64_t offset, uint64_t length) const {
  assert(node < code_->s());
  std::vector<Segment> out;
  const uint64_t ls = code_->chunks_per_data_node();
  const uint64_t row_bytes = unit_ * ls;
  uint64_t addr = offset;
  uint64_t remaining = length;
  while (remaining > 0) {
    const uint64_t row = addr / row_bytes;
    const uint64_t in_row = addr % row_bytes;
    const uint64_t slot = in_row / unit_;
    const uint64_t intra = in_row % unit_;
    const uint32_t chunk = static_cast<uint32_t>(node * ls + slot);
    const uint64_t piece = std::min(remaining, unit_ - intra);
    Segment seg;
    seg.node_offset = addr;
    seg.rs_block = code_->RsBlockOfChunk(chunk);
    seg.ministripe = code_->MinistripeOfChunk(chunk);
    seg.row = row;
    seg.parity_offset = row * parity_row_bytes() +
                        static_cast<uint64_t>(seg.ministripe) * unit_ + intra;
    seg.length = piece;
    out.push_back(seg);
    addr += piece;
    remaining -= piece;
  }
  return out;
}

uint64_t SrsAddressMap::ParityExtent(uint64_t data_extent) const {
  const uint64_t rows = (data_extent + data_row_bytes() - 1) / data_row_bytes();
  return rows * parity_row_bytes();
}

std::vector<SrsAddressMap::SourceLoc> SrsAddressMap::DecodeSources(
    const Segment& seg) const {
  std::vector<SourceLoc> out;
  const uint64_t ls = code_->chunks_per_data_node();
  const uint64_t intra = seg.parity_offset % unit_;
  for (uint32_t b = 0; b < code_->k(); ++b) {
    const uint32_t chunk = code_->DataChunk(b, seg.ministripe);
    const uint32_t node = code_->DataNodeOfChunk(chunk);
    const uint64_t slot = chunk - node * ls;
    SourceLoc loc;
    loc.is_parity = false;
    loc.node = node;
    loc.offset = seg.row * data_row_bytes() + slot * unit_ + intra;
    loc.h_row = b;
    out.push_back(loc);
  }
  for (uint32_t j = 0; j < code_->m(); ++j) {
    SourceLoc loc;
    loc.is_parity = true;
    loc.node = j;
    loc.offset = seg.parity_offset;
    loc.h_row = code_->k() + j;
    out.push_back(loc);
  }
  return out;
}

}  // namespace ring::srs
