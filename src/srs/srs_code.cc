#include "src/srs/srs_code.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/gf/gf256.h"

namespace ring::srs {

Result<SrsCode> SrsCode::Create(uint32_t k, uint32_t m, uint32_t s) {
  if (k < 1 || s < k || k + m > 255) {
    return InvalidArgumentError(
        "SRS(k,m,s) requires 1 <= k <= s and k+m <= 255");
  }
  RING_ASSIGN_OR_RETURN(rs::RsCode rs_code, rs::RsCode::Create(k, m));
  const uint32_t l = std::lcm(k, s);
  return SrsCode(k, m, s, l, std::move(rs_code));
}

gf::Matrix SrsCode::ExpandedMatrix() const {
  const uint32_t lk = l_ / k_;
  gf::Matrix h(l_ + m_ * lk, l_);
  // Identity block: data chunk rows.
  for (uint32_t c = 0; c < l_; ++c) {
    h.Set(c, c, 1);
  }
  // Parity rows: row l + j*lk + t covers chunks {b*lk + t} with coefficient
  // g[j][b]  (H o E with E_ij = I_{l/k}, Eqn. 3).
  for (uint32_t j = 0; j < m_; ++j) {
    for (uint32_t t = 0; t < lk; ++t) {
      for (uint32_t b = 0; b < k_; ++b) {
        h.Set(l_ + j * lk + t, b * lk + t, rs_.Coefficient(j, b));
      }
    }
  }
  return h;
}

SrsCode::Encoded SrsCode::EncodeObject(ByteSpan object) const {
  Encoded enc;
  enc.object_size = object.size();
  enc.chunk_size = (object.size() + l_ - 1) / l_;
  if (enc.chunk_size == 0) {
    enc.chunk_size = 1;  // degenerate empty object still occupies one stripe
  }
  // Padded chunk view of the object.
  std::vector<Buffer> chunks(l_, Buffer(enc.chunk_size, 0));
  for (uint32_t c = 0; c < l_; ++c) {
    const size_t begin = static_cast<size_t>(c) * enc.chunk_size;
    if (begin < object.size()) {
      const size_t n = std::min(enc.chunk_size, object.size() - begin);
      std::copy_n(object.begin() + begin, n, chunks[c].begin());
    }
  }
  // Data node payloads: node i owns chunks [i*l/s, (i+1)*l/s).
  const uint32_t ls = l_ / s_;
  enc.data_nodes.assign(s_, Buffer());
  for (uint32_t i = 0; i < s_; ++i) {
    enc.data_nodes[i].reserve(ls * enc.chunk_size);
    for (uint32_t q = 0; q < ls; ++q) {
      const Buffer& ch = chunks[i * ls + q];
      enc.data_nodes[i].insert(enc.data_nodes[i].end(), ch.begin(), ch.end());
    }
  }
  // Parity payloads: per mini-stripe t, parity chunk j over the k data
  // chunks {b*(l/k)+t}. Fused encode: each parity chunk is produced in one
  // pass over its k sources instead of k sweeps.
  const uint32_t lk = l_ / k_;
  enc.parity_nodes.assign(m_, Buffer(lk * enc.chunk_size));
  std::vector<const uint8_t*> srcs(k_);
  for (uint32_t j = 0; j < m_; ++j) {
    const std::span<const uint8_t> coeffs(rs_.generator().Row(j), k_);
    for (uint32_t t = 0; t < lk; ++t) {
      for (uint32_t b = 0; b < k_; ++b) {
        srcs[b] = chunks[DataChunk(b, t)].data();
      }
      gf::EncodeRegion(coeffs, std::span<const uint8_t* const>(srcs),
                       MutableByteSpan(
                           enc.parity_nodes[j].data() + t * enc.chunk_size,
                           enc.chunk_size));
    }
  }
  return enc;
}

Result<Buffer> SrsCode::DecodeObject(const Encoded& enc) const {
  const uint32_t ls = l_ / s_;
  const uint32_t lk = l_ / k_;
  const size_t cs = enc.chunk_size;

  auto data_alive = [&](uint32_t i) { return !enc.data_nodes[i].empty(); };
  auto parity_alive = [&](uint32_t j) { return !enc.parity_nodes[j].empty(); };

  // Assemble the l data chunks, decoding each mini-stripe that lost chunks.
  std::vector<Buffer> chunks(l_);
  for (uint32_t c = 0; c < l_; ++c) {
    const uint32_t node = DataNodeOfChunk(c);
    if (data_alive(node)) {
      const uint32_t q = c - node * ls;
      const uint8_t* src = enc.data_nodes[node].data() + q * cs;
      chunks[c].assign(src, src + cs);
    }
  }
  for (uint32_t t = 0; t < lk; ++t) {
    // Collect available blocks of mini-stripe t in RS index space.
    std::vector<std::pair<uint32_t, ByteSpan>> available;
    bool any_missing = false;
    for (uint32_t b = 0; b < k_; ++b) {
      const uint32_t c = DataChunk(b, t);
      if (!chunks[c].empty()) {
        available.emplace_back(b, ByteSpan(chunks[c]));
      } else {
        any_missing = true;
      }
    }
    if (!any_missing) {
      continue;
    }
    for (uint32_t j = 0; j < m_; ++j) {
      if (parity_alive(j)) {
        available.emplace_back(
            k_ + j,
            ByteSpan(enc.parity_nodes[j].data() + t * cs, cs));
      }
    }
    RING_ASSIGN_OR_RETURN(std::vector<Buffer> data, rs_.RecoverData(available));
    for (uint32_t b = 0; b < k_; ++b) {
      const uint32_t c = DataChunk(b, t);
      if (chunks[c].empty()) {
        chunks[c] = std::move(data[b]);
      }
    }
  }

  Buffer out;
  out.reserve(enc.object_size);
  for (uint32_t c = 0; c < l_ && out.size() < enc.object_size; ++c) {
    const size_t n = std::min(cs, enc.object_size - out.size());
    out.insert(out.end(), chunks[c].begin(), chunks[c].begin() + n);
  }
  return out;
}

bool SrsCode::CanRecover(
    const std::vector<uint32_t>& failed_data_nodes,
    const std::vector<uint32_t>& failed_parity_nodes) const {
  if (failed_parity_nodes.size() > m_) {
    return false;
  }
  const uint32_t lk = l_ / k_;
  const uint32_t ls = l_ / s_;
  // Per-mini-stripe erasure counts: parity losses hit every mini-stripe once;
  // a failed data node loses its l/s chunks, each in a distinct mini-stripe
  // (consecutive chunk range of length l/s <= l/k).
  std::vector<uint32_t> erased(lk, static_cast<uint32_t>(failed_parity_nodes.size()));
  for (uint32_t node : failed_data_nodes) {
    assert(node < s_);
    for (uint32_t q = 0; q < ls; ++q) {
      const uint32_t c = node * ls + q;
      if (++erased[MinistripeOfChunk(c)] > m_) {
        return false;
      }
    }
  }
  return true;
}

bool SrsCode::CanRecoverByRank(
    const std::vector<uint32_t>& failed_data_nodes,
    const std::vector<uint32_t>& failed_parity_nodes) const {
  const uint32_t lk = l_ / k_;
  const uint32_t ls = l_ / s_;
  std::vector<bool> data_failed(s_, false);
  for (uint32_t n : failed_data_nodes) {
    data_failed[n] = true;
  }
  std::vector<bool> parity_failed(m_, false);
  for (uint32_t n : failed_parity_nodes) {
    parity_failed[n] = true;
  }
  gf::Matrix hexp = ExpandedMatrix();
  std::vector<size_t> surviving;
  for (uint32_t c = 0; c < l_; ++c) {
    if (!data_failed[c / ls]) {
      surviving.push_back(c);
    }
  }
  for (uint32_t j = 0; j < m_; ++j) {
    if (parity_failed[j]) {
      continue;
    }
    for (uint32_t t = 0; t < lk; ++t) {
      surviving.push_back(l_ + j * lk + t);
    }
  }
  return hexp.SelectRows(surviving).Rank() == l_;
}

std::vector<double> SrsCode::ToleranceVector() const {
  const uint32_t n = s_ + m_;
  std::vector<double> f(n + 1, 0.0);
  f[0] = 1.0;
  for (uint32_t i = 1; i <= n; ++i) {
    uint64_t total = 0;
    uint64_t good = 0;
    // Enumerate all i-subsets of the n nodes (first s are data nodes).
    std::vector<uint32_t> subset(i);
    for (uint32_t j = 0; j < i; ++j) {
      subset[j] = j;
    }
    while (true) {
      ++total;
      std::vector<uint32_t> fd;
      std::vector<uint32_t> fp;
      for (uint32_t node : subset) {
        if (node < s_) {
          fd.push_back(node);
        } else {
          fp.push_back(node - s_);
        }
      }
      if (CanRecover(fd, fp)) {
        ++good;
      }
      // Next combination.
      int pos = static_cast<int>(i) - 1;
      while (pos >= 0 && subset[pos] == n - i + pos) {
        --pos;
      }
      if (pos < 0) {
        break;
      }
      ++subset[pos];
      for (uint32_t j = pos + 1; j < i; ++j) {
        subset[j] = subset[j - 1] + 1;
      }
    }
    f[i] = static_cast<double>(good) / static_cast<double>(total);
  }
  return f;
}

}  // namespace ring::srs
