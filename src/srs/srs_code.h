// Stretched Reed-Solomon SRS(k,m,s) codes — the paper's core coding
// contribution (§3.3).
//
// SRS(k,m,s) applies RS(k,m) coding but spreads the data over s >= k data
// nodes so that every scheme in a memgest group shares the single
// key-to-node mapping `h(key) mod s`. With l = lcm(k,s) chunks:
//   - data chunk c lives on data node c / (l/s),
//   - chunk c belongs to RS block b = c / (l/k) and "mini-stripe"
//     t = c mod (l/k); each mini-stripe is an independent RS(k,m) stripe of
//     the k chunks {b*(l/k)+t : b} plus one chunk per parity node,
//   - parity node j stores parity chunks {j*(l/k)+t : t} (Eqn. 2).
// SRS(k,m,k) degenerates to RS(k,m).
#ifndef RING_SRC_SRS_SRS_CODE_H_
#define RING_SRC_SRS_SRS_CODE_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/matrix/matrix.h"
#include "src/rs/rs_code.h"

namespace ring::srs {

class SrsCode {
 public:
  // Valid parameters: 1 <= k <= s, 0 <= m, k + m <= 255.
  static Result<SrsCode> Create(uint32_t k, uint32_t m, uint32_t s);

  uint32_t k() const { return k_; }
  uint32_t m() const { return m_; }
  uint32_t s() const { return s_; }
  // Total chunks per stripe: l = lcm(k, s).
  uint32_t l() const { return l_; }
  uint32_t chunks_per_data_node() const { return l_ / s_; }
  uint32_t chunks_per_parity_node() const { return l_ / k_; }
  // Number of independent RS(k,m) mini-stripes per stripe: l/k.
  uint32_t ministripes() const { return l_ / k_; }

  const rs::RsCode& rs() const { return rs_; }

  // Chunk geometry --------------------------------------------------------
  uint32_t DataNodeOfChunk(uint32_t c) const { return c / (l_ / s_); }
  uint32_t RsBlockOfChunk(uint32_t c) const { return c / (l_ / k_); }
  uint32_t MinistripeOfChunk(uint32_t c) const { return c % (l_ / k_); }
  // Inverse: the data chunk of RS block b within mini-stripe t.
  uint32_t DataChunk(uint32_t rs_block, uint32_t ministripe) const {
    return rs_block * (l_ / k_) + ministripe;
  }

  // The expanded coding matrix Hexp = H o E of size (l + l*m/k) x l
  // (paper Eqn. 2/3). Used for verification and rank-based recoverability.
  gf::Matrix ExpandedMatrix() const;

  // Whole-object coding ----------------------------------------------------
  struct Encoded {
    std::vector<Buffer> data_nodes;    // s payloads, l/s chunks each
    std::vector<Buffer> parity_nodes;  // m payloads, l/k chunks each
    size_t chunk_size = 0;
    size_t object_size = 0;
  };

  // Splits the object into l chunks (zero-padded to a multiple of l bytes)
  // and produces per-node payloads.
  Encoded EncodeObject(ByteSpan object) const;

  // Reconstructs the original object from per-node payloads where lost nodes
  // are empty buffers. Fails when the loss pattern is unrecoverable.
  Result<Buffer> DecodeObject(const Encoded& enc) const;

  // Failure analysis -------------------------------------------------------
  // Exact recoverability of a failed-node set: every mini-stripe is RS(k,m),
  // so the pattern is recoverable iff each mini-stripe loses at most m of
  // its k+m chunks.
  bool CanRecover(const std::vector<uint32_t>& failed_data_nodes,
                  const std::vector<uint32_t>& failed_parity_nodes) const;

  // Same question answered by rank(Hexp surviving rows) == l; O(l^3) — used
  // to cross-validate CanRecover in tests.
  bool CanRecoverByRank(const std::vector<uint32_t>& failed_data_nodes,
                        const std::vector<uint32_t>& failed_parity_nodes) const;

  // f[i] = fraction of i-node failure subsets (out of the s+m nodes) the
  // code tolerates, for i = 0..s+m (f[0] = 1). Exact enumeration; feeds the
  // Markov reliability model of Appendix A.2.
  std::vector<double> ToleranceVector() const;

  // Storage overhead factor (stored bytes / object bytes) = 1 + m/k.
  double StorageOverhead() const {
    return 1.0 + static_cast<double>(m_) / static_cast<double>(k_);
  }

 private:
  SrsCode(uint32_t k, uint32_t m, uint32_t s, uint32_t l, rs::RsCode rs_code)
      : k_(k), m_(m), s_(s), l_(l), rs_(std::move(rs_code)) {}

  uint32_t k_;
  uint32_t m_;
  uint32_t s_;
  uint32_t l_;
  rs::RsCode rs_;
};

}  // namespace ring::srs

#endif  // RING_SRC_SRS_SRS_CODE_H_
