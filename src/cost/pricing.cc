#include "src/cost/pricing.h"

namespace ring::cost {
namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// Storage overhead of each scheme (paper §1 table / §6.2).
double Overhead(Scheme scheme) {
  switch (scheme) {
    case Scheme::kHot:
      return 3.0;  // Rep(3)
    case Scheme::kCold:
      return 5.0 / 3.0;  // SRS(3,2,3)
    case Scheme::kSimple:
      return 1.0;  // Rep(1)
  }
  return 1.0;
}
}  // namespace

std::string SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kHot:
      return "hot";
    case Scheme::kCold:
      return "cold";
    case Scheme::kSimple:
      return "simple";
  }
  return "?";
}

CostBreakdown PricingModel::Price(
    Scheme scheme, const workload::TraceAggregates& trace) const {
  const TierPrices& tier =
      scheme == Scheme::kCold ? table_.cool : table_.hot;
  CostBreakdown out;
  out.scheme = scheme;
  out.trace = trace.name;

  // Writes: hot pays the hot-tier (replicated) put price; "simple ... is
  // assumed to be the same as for Rep(3), but with 3x cheaper puts, as they
  // are not replicated" (§6.2); cold pays the cool-tier put price.
  double write_price = tier.write_per_10k;
  if (scheme == Scheme::kSimple) {
    write_price = table_.hot.write_per_10k / 3.0;
  }
  out.write_cost =
      static_cast<double>(trace.writes) / 10'000.0 * write_price;
  out.read_cost = static_cast<double>(trace.reads) / 10'000.0 *
                  tier.read_per_10k;
  // Egress transfer for read bytes plus cool-tier retrieval charges.
  out.transfer_cost =
      static_cast<double>(trace.read_bytes) / kGiB * tier.transfer_gb +
      static_cast<double>(trace.read_bytes) / kGiB * tier.retrieval_gb;
  // One month of storage at constant capacity times the scheme's overhead.
  out.storage_cost = static_cast<double>(trace.footprint_bytes) / kGiB *
                     tier.storage_gb_month * Overhead(scheme);
  return out;
}

std::vector<CostBreakdown> PricingModel::NormalizedPrices(
    const workload::TraceAggregates& trace) const {
  const CostBreakdown simple = Price(Scheme::kSimple, trace);
  const double base = simple.total();
  std::vector<CostBreakdown> out;
  for (Scheme scheme : {Scheme::kHot, Scheme::kCold, Scheme::kSimple}) {
    CostBreakdown c = Price(scheme, trace);
    if (base > 0) {
      c.write_cost /= base;
      c.read_cost /= base;
      c.transfer_cost /= base;
      c.storage_cost /= base;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace ring::cost
