// Storage pricing model for Figure 10 (paper §6.2).
//
// The paper estimates the price of running the five SPC traces under three
// storage schemes — hot = Rep(3), cold = SRS(3,2,3), simple = Rep(1) — with
// operation and storage prices "obtained from Azure Blob Storage Pricing for
// Central US" (early 2018). Azure had no unreplicated scheme, so the paper
// assumes simple costs the same as Rep(3) but with 3x cheaper puts. Prices
// are normalized to the simple scheme, so only the ratios matter.
#ifndef RING_SRC_COST_PRICING_H_
#define RING_SRC_COST_PRICING_H_

#include <string>
#include <vector>

#include "src/workload/spc_trace.h"

namespace ring::cost {

enum class Scheme { kHot, kCold, kSimple };

std::string SchemeName(Scheme scheme);

// Prices for one storage tier.
struct TierPrices {
  double storage_gb_month;     // $ per GB-month of stored (raw) data
  double write_per_10k;        // $ per 10k write operations
  double read_per_10k;         // $ per 10k read operations
  double transfer_gb;          // $ per GB egress (data transfer)
  double retrieval_gb = 0.0;   // $ per GB read back (cool tiers)
};

// Azure Blob (Central US, early 2018, LRS) — hot vs cool tier.
struct PriceTable {
  TierPrices hot{0.0184, 0.050, 0.0040, 0.087, 0.00};
  TierPrices cool{0.0100, 0.100, 0.0100, 0.087, 0.01};
};

// One priced trace/scheme combination, broken into Fig. 10's stacked
// components.
struct CostBreakdown {
  Scheme scheme;
  std::string trace;
  double write_cost = 0.0;
  double read_cost = 0.0;
  double transfer_cost = 0.0;
  double storage_cost = 0.0;

  double operation_cost() const {
    return write_cost + read_cost + transfer_cost;
  }
  double total() const { return operation_cost() + storage_cost; }
};

class PricingModel {
 public:
  explicit PricingModel(PriceTable table = PriceTable{}) : table_(table) {}

  // Absolute cost of running `trace` for one month at constant capacity
  // under `scheme`.
  CostBreakdown Price(Scheme scheme,
                      const workload::TraceAggregates& trace) const;

  // All three schemes, normalized so that simple == 1 (the paper's y-axis).
  std::vector<CostBreakdown> NormalizedPrices(
      const workload::TraceAggregates& trace) const;

 private:
  PriceTable table_;
};

}  // namespace ring::cost

#endif  // RING_SRC_COST_PRICING_H_
