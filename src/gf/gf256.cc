#include "src/gf/gf256.h"

#include <array>
#include <cassert>

namespace ring::gf {
namespace {

struct Tables {
  // mul[a][b] = a*b. Row-major so MulRegion walks a single 256-byte row.
  std::array<std::array<uint8_t, 256>, 256> mul;
  std::array<uint8_t, 256> log;       // log[a] for a != 0, base = generator 2
  std::array<uint8_t, 512> exp;       // exp[i] = 2^i, doubled to skip mod 255
  std::array<uint8_t, 256> inv;       // inv[a] for a != 0

  Tables() {
    // Build exp/log from the generator alpha = 2.
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) {
        x ^= kPrimitivePoly;
      }
    }
    for (int i = 255; i < 512; ++i) {
      exp[i] = exp[i - 255];
    }
    log[0] = 0;  // undefined; never read on valid paths

    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        if (a == 0 || b == 0) {
          mul[a][b] = 0;
        } else {
          mul[a][b] = exp[log[a] + log[b]];
        }
      }
    }
    inv[0] = 0;  // undefined
    for (int a = 1; a < 256; ++a) {
      inv[a] = exp[255 - log[a]];
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint8_t Mul(uint8_t a, uint8_t b) { return T().mul[a][b]; }

uint8_t Div(uint8_t a, uint8_t b) {
  assert(b != 0 && "division by zero in GF(2^8)");
  if (a == 0) {
    return 0;
  }
  const auto& t = T();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

uint8_t Inv(uint8_t a) {
  assert(a != 0 && "inverse of zero in GF(2^8)");
  return T().inv[a];
}

uint8_t Pow(uint8_t a, uint32_t e) {
  if (e == 0) {
    return 1;
  }
  if (a == 0) {
    return 0;
  }
  const auto& t = T();
  const uint32_t l = (static_cast<uint32_t>(t.log[a]) * e) % 255;
  return t.exp[l];
}

void AddRegion(std::span<const uint8_t> src, std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  const size_t n = src.size();
  size_t i = 0;
  // Word-at-a-time XOR; memcpy-based to stay strict-aliasing clean.
  for (; i + 8 <= n; i += 8) {
    uint64_t a;
    uint64_t b;
    __builtin_memcpy(&a, src.data() + i, 8);
    __builtin_memcpy(&b, dst.data() + i, 8);
    b ^= a;
    __builtin_memcpy(dst.data() + i, &b, 8);
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void MulRegion(uint8_t c, std::span<const uint8_t> src,
               std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) {
    for (auto& b : dst) {
      b = 0;
    }
    return;
  }
  if (c == 1) {
    if (dst.data() != src.data()) {
      __builtin_memcpy(dst.data(), src.data(), src.size());
    }
    return;
  }
  const auto& row = T().mul[c];
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = row[src[i]];
  }
}

void MulAddRegion(uint8_t c, std::span<const uint8_t> src,
                  std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) {
    return;
  }
  if (c == 1) {
    AddRegion(src, dst);
    return;
  }
  const auto& row = T().mul[c];
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] ^= row[src[i]];
  }
}

}  // namespace ring::gf
