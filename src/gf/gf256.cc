#include "src/gf/gf256.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "src/gf/gf256_internal.h"

namespace ring::gf {

namespace internal {

Tables::Tables() {
  // Build exp/log from the generator alpha = 2.
  uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[i] = static_cast<uint8_t>(x);
    log[x] = static_cast<uint8_t>(i);
    x <<= 1;
    if (x & 0x100) {
      x ^= kPrimitivePoly;
    }
  }
  for (int i = 255; i < 512; ++i) {
    exp[i] = exp[i - 255];
  }
  log[0] = 0;  // undefined; never read on valid paths

  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      if (a == 0 || b == 0) {
        mul[a][b] = 0;
      } else {
        mul[a][b] = exp[log[a] + log[b]];
      }
    }
  }
  inv[0] = 0;  // undefined
  for (int a = 1; a < 256; ++a) {
    inv[a] = exp[255 - log[a]];
  }
  for (int c = 0; c < 256; ++c) {
    for (int n = 0; n < 16; ++n) {
      nib_lo[c][n] = mul[c][n];
      nib_hi[c][n] = mul[c][n << 4];
    }
  }
}

const Tables& T() {
  static const Tables tables;
  return tables;
}

namespace {

// --- Portable scalar kernels ------------------------------------------------

void ScalarAdd(const uint8_t* src, uint8_t* dst, size_t n) {
  size_t i = 0;
  // Word-at-a-time XOR; memcpy-based to stay strict-aliasing clean.
  for (; i + 8 <= n; i += 8) {
    uint64_t a;
    uint64_t b;
    __builtin_memcpy(&a, src + i, 8);
    __builtin_memcpy(&b, dst + i, 8);
    b ^= a;
    __builtin_memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void ScalarMul(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  const auto& row = T().mul[c];
  for (size_t i = 0; i < n; ++i) {
    dst[i] = row[src[i]];
  }
}

void ScalarMulAdd(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  const auto& row = T().mul[c];
  for (size_t i = 0; i < n; ++i) {
    dst[i] ^= row[src[i]];
  }
}

// Cache-blocked multi-source accumulate: the dst block stays L1-resident
// while every source streams through it once.
constexpr size_t kScalarFuseBlock = 4096;

void ScalarMulAddMulti(const uint8_t* coeffs, const uint8_t* const* srcs,
                       size_t nsrc, uint8_t* dst, size_t n) {
  for (size_t off = 0; off < n; off += kScalarFuseBlock) {
    const size_t len = n - off < kScalarFuseBlock ? n - off : kScalarFuseBlock;
    for (size_t s = 0; s < nsrc; ++s) {
      if (coeffs[s] == 1) {
        ScalarAdd(srcs[s] + off, dst + off, len);
      } else {
        ScalarMulAdd(coeffs[s], srcs[s] + off, dst + off, len);
      }
    }
  }
}

constexpr RegionKernels kScalar{ScalarAdd, ScalarMul, ScalarMulAdd,
                                ScalarMulAddMulti};

// --- Dispatch ---------------------------------------------------------------

struct Dispatch {
  const RegionKernels* kernels;
  RegionImpl impl;
};

Dispatch Select() {
#ifndef RING_GF_FORCE_SCALAR
  const char* force = std::getenv("RING_FORCE_SCALAR");
  const bool forced_scalar =
      force != nullptr && force[0] != '\0' && force[0] != '0';
  if (!forced_scalar) {
    if (const RegionKernels* k = Avx2Kernels()) {
      return {k, RegionImpl::kAvx2};
    }
    if (const RegionKernels* k = NeonKernels()) {
      return {k, RegionImpl::kNeon};
    }
    if (const RegionKernels* k = Ssse3Kernels()) {
      return {k, RegionImpl::kSsse3};
    }
  }
#endif
  return {&kScalar, RegionImpl::kScalar};
}

Dispatch& Active() {
  static Dispatch dispatch = Select();
  return dispatch;
}

}  // namespace

const RegionKernels& ScalarKernels() { return kScalar; }

}  // namespace internal

uint8_t Mul(uint8_t a, uint8_t b) { return internal::T().mul[a][b]; }

uint8_t Div(uint8_t a, uint8_t b) {
  assert(b != 0 && "division by zero in GF(2^8)");
  if (a == 0) {
    return 0;
  }
  const auto& t = internal::T();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

uint8_t Inv(uint8_t a) {
  assert(a != 0 && "inverse of zero in GF(2^8)");
  return internal::T().inv[a];
}

uint8_t Pow(uint8_t a, uint32_t e) {
  if (e == 0) {
    return 1;
  }
  if (a == 0) {
    return 0;
  }
  const auto& t = internal::T();
  const uint32_t l = (static_cast<uint32_t>(t.log[a]) * e) % 255;
  return t.exp[l];
}

RegionImpl ActiveRegionImpl() { return internal::Active().impl; }

const char* RegionImplName(RegionImpl impl) {
  switch (impl) {
    case RegionImpl::kScalar:
      return "scalar";
    case RegionImpl::kSsse3:
      return "ssse3";
    case RegionImpl::kAvx2:
      return "avx2";
    case RegionImpl::kNeon:
      return "neon";
  }
  return "unknown";
}

RegionImpl SetRegionImpl(RegionImpl impl) {
  const internal::RegionKernels* k = nullptr;
  switch (impl) {
    case RegionImpl::kScalar:
      k = &internal::ScalarKernels();
      break;
    case RegionImpl::kSsse3:
      k = internal::Ssse3Kernels();
      break;
    case RegionImpl::kAvx2:
      k = internal::Avx2Kernels();
      break;
    case RegionImpl::kNeon:
      k = internal::NeonKernels();
      break;
  }
  if (k != nullptr) {
    internal::Active() = {k, impl};
  }
  return internal::Active().impl;
}

void AddRegion(std::span<const uint8_t> src, std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  internal::Active().kernels->add(src.data(), dst.data(), dst.size());
}

void MulRegion(uint8_t c, std::span<const uint8_t> src,
               std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (dst.empty()) {
    return;
  }
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    if (dst.data() != src.data() && !dst.empty()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  internal::Active().kernels->mul(c, src.data(), dst.data(), dst.size());
}

void MulAddRegion(uint8_t c, std::span<const uint8_t> src,
                  std::span<uint8_t> dst) {
  assert(src.size() == dst.size());
  if (c == 0) {
    return;
  }
  const internal::RegionKernels* k = internal::Active().kernels;
  if (c == 1) {
    k->add(src.data(), dst.data(), dst.size());
    return;
  }
  k->mul_add(c, src.data(), dst.data(), dst.size());
}

void MulAddRegionMulti(std::span<const uint8_t> coeffs,
                       std::span<const uint8_t* const> srcs,
                       std::span<uint8_t> dst) {
  assert(coeffs.size() == srcs.size());
  if (dst.empty()) {
    return;
  }
  // Drop zero coefficients up front so the kernels never pay for them.
  // Batched to the kernels' fuse width (any realistic stripe fits one
  // batch); each extra batch costs one more read-modify-write pass of dst.
  constexpr size_t kBatch = internal::kMaxFusedSources;
  uint8_t live_c[kBatch];
  const uint8_t* live_s[kBatch];
  size_t i = 0;
  while (i < coeffs.size()) {
    size_t live = 0;
    for (; i < coeffs.size() && live < kBatch; ++i) {
      if (coeffs[i] != 0) {
        live_c[live] = coeffs[i];
        live_s[live] = srcs[i];
        ++live;
      }
    }
    if (live == 1) {
      MulAddRegion(live_c[0], {live_s[0], dst.size()}, dst);
    } else if (live > 1) {
      internal::Active().kernels->mul_add_multi(live_c, live_s, live,
                                                dst.data(), dst.size());
    }
  }
}

void EncodeRegion(std::span<const uint8_t> coeffs,
                  std::span<const uint8_t* const> srcs,
                  std::span<uint8_t> dst) {
  if (dst.empty()) {
    return;
  }
  std::memset(dst.data(), 0, dst.size());
  MulAddRegionMulti(coeffs, srcs, dst);
}

}  // namespace ring::gf
