// Vectorized GF(2^8) region kernels: split-nibble table multiply
// (PSHUFB / TBL) for SSSE3, AVX2 and NEON.
//
// Each coefficient c owns two 16-entry tables (gf256_internal.h):
//   c*b == nib_lo[c][b & 0xF] ^ nib_hi[c][b >> 4]
// so a 16/32-byte multiply is two byte shuffles and an XOR — the scheme
// GF-Complete's SPLIT w8 region ops (and ISA-L's gf_vect_mul) use, which is
// what the paper's testbed ran. The x86 kernels are compiled with per-
// function target attributes so the rest of the tree keeps its portable
// flags; selection happens once at runtime via cpuid (see gf256.cc).
//
// The *_multi kernels fuse stripe encode: for each register-resident block
// of dst they stream all sources, so dst traffic is paid once instead of
// once per source.
#include "src/gf/gf256_internal.h"

#if defined(RING_GF_FORCE_SCALAR)

namespace ring::gf::internal {
const RegionKernels* Ssse3Kernels() { return nullptr; }
const RegionKernels* Avx2Kernels() { return nullptr; }
const RegionKernels* NeonKernels() { return nullptr; }
}  // namespace ring::gf::internal

#elif defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace ring::gf::internal {
namespace {

// Scalar tail for the last n % 16 bytes of every kernel.
inline void TailMulAdd(uint8_t c, const uint8_t* src, uint8_t* dst,
                       size_t n) {
  const auto& row = T().mul[c];
  for (size_t i = 0; i < n; ++i) {
    dst[i] ^= row[src[i]];
  }
}

// --- SSSE3 ------------------------------------------------------------------

__attribute__((target("ssse3"))) inline __m128i Mul16(__m128i s, __m128i lo,
                                                      __m128i hi,
                                                      __m128i mask) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
  const __m128i h =
      _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
  return _mm_xor_si128(l, h);
}

__attribute__((target("ssse3"))) void Ssse3Add(const uint8_t* src,
                                               uint8_t* dst, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a, b));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

__attribute__((target("ssse3"))) void Ssse3Mul(uint8_t c, const uint8_t* src,
                                               uint8_t* dst, size_t n) {
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(T().nib_lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(T().nib_hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     Mul16(s, lo, hi, mask));
  }
  const auto& row = T().mul[c];
  for (; i < n; ++i) {
    dst[i] = row[src[i]];
  }
}

__attribute__((target("ssse3"))) void Ssse3MulAdd(uint8_t c,
                                                  const uint8_t* src,
                                                  uint8_t* dst, size_t n) {
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(T().nib_lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(T().nib_hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, Mul16(s, lo, hi, mask)));
  }
  TailMulAdd(c, src + i, dst + i, n - i);
}

__attribute__((target("ssse3"))) void Ssse3MulAddMulti(
    const uint8_t* coeffs, const uint8_t* const* srcs, size_t nsrc,
    uint8_t* dst, size_t n) {
  // Per-source tables staged once into stack registers; inside the strip
  // loop they are L1-resident reloads, not table-walk calls.
  __m128i lo[kMaxFusedSources];
  __m128i hi[kMaxFusedSources];
  const Tables& t = T();
  for (size_t s = 0; s < nsrc; ++s) {
    lo[s] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[coeffs[s]]));
    hi[s] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[coeffs[s]]));
  }
  const __m128i mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m128i acc0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    __m128i acc1 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i + 16));
    for (size_t s = 0; s < nsrc; ++s) {
      const __m128i s0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[s] + i));
      const __m128i s1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(srcs[s] + i + 16));
      acc0 = _mm_xor_si128(acc0, Mul16(s0, lo[s], hi[s], mask));
      acc1 = _mm_xor_si128(acc1, Mul16(s1, lo[s], hi[s], mask));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), acc1);
  }
  for (size_t s = 0; s < nsrc; ++s) {
    Ssse3MulAdd(coeffs[s], srcs[s] + i, dst + i, n - i);
  }
}

// --- AVX2 -------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i Mul32(__m256i s, __m256i lo,
                                                     __m256i hi,
                                                     __m256i mask) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
  const __m256i h =
      _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
  return _mm256_xor_si256(l, h);
}

__attribute__((target("avx2"))) inline __m256i Broadcast16(
    const uint8_t* table) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(table)));
}

__attribute__((target("avx2"))) void Avx2Add(const uint8_t* src, uint8_t* dst,
                                             size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

__attribute__((target("avx2"))) void Avx2Mul(uint8_t c, const uint8_t* src,
                                             uint8_t* dst, size_t n) {
  const __m256i lo = Broadcast16(T().nib_lo[c]);
  const __m256i hi = Broadcast16(T().nib_hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        Mul32(s, lo, hi, mask));
  }
  const auto& row = T().mul[c];
  for (; i < n; ++i) {
    dst[i] = row[src[i]];
  }
}

__attribute__((target("avx2"))) void Avx2MulAdd(uint8_t c, const uint8_t* src,
                                                uint8_t* dst, size_t n) {
  const __m256i lo = Broadcast16(T().nib_lo[c]);
  const __m256i hi = Broadcast16(T().nib_hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, Mul32(s, lo, hi, mask)));
  }
  TailMulAdd(c, src + i, dst + i, n - i);
}

// Fixed-width variant for the common small k: with N a compile-time
// constant the source loop unrolls and the 2*N nibble tables stay pinned in
// ymm registers across the whole strip loop.
template <size_t N>
__attribute__((target("avx2"))) void Avx2MulAddMultiN(
    const uint8_t* coeffs, const uint8_t* const* srcs, uint8_t* dst,
    size_t n) {
  __m256i lo[N];
  __m256i hi[N];
  const Tables& t = T();
  for (size_t s = 0; s < N; ++s) {
    lo[s] = Broadcast16(t.nib_lo[coeffs[s]]);
    hi[s] = Broadcast16(t.nib_hi[coeffs[s]]);
  }
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i acc0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    __m256i acc1 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    for (size_t s = 0; s < N; ++s) {
      const __m256i s0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[s] + i));
      const __m256i s1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(srcs[s] + i + 32));
      acc0 = _mm256_xor_si256(acc0, Mul32(s0, lo[s], hi[s], mask));
      acc1 = _mm256_xor_si256(acc1, Mul32(s1, lo[s], hi[s], mask));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), acc1);
  }
  for (size_t s = 0; s < N; ++s) {
    Avx2MulAdd(coeffs[s], srcs[s] + i, dst + i, n - i);
  }
}

__attribute__((target("avx2"))) void Avx2MulAddMulti(const uint8_t* coeffs,
                                                     const uint8_t* const* srcs,
                                                     size_t nsrc, uint8_t* dst,
                                                     size_t n) {
  switch (nsrc) {
    case 2:
      return Avx2MulAddMultiN<2>(coeffs, srcs, dst, n);
    case 3:
      return Avx2MulAddMultiN<3>(coeffs, srcs, dst, n);
    case 4:
      return Avx2MulAddMultiN<4>(coeffs, srcs, dst, n);
    case 5:
      return Avx2MulAddMultiN<5>(coeffs, srcs, dst, n);
    case 6:
      return Avx2MulAddMultiN<6>(coeffs, srcs, dst, n);
    default:
      break;
  }
  __m256i lo[kMaxFusedSources];
  __m256i hi[kMaxFusedSources];
  const Tables& t = T();
  for (size_t s = 0; s < nsrc; ++s) {
    lo[s] = Broadcast16(t.nib_lo[coeffs[s]]);
    hi[s] = Broadcast16(t.nib_hi[coeffs[s]]);
  }
  const __m256i mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i acc0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    __m256i acc1 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    for (size_t s = 0; s < nsrc; ++s) {
      const __m256i s0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[s] + i));
      const __m256i s1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(srcs[s] + i + 32));
      acc0 = _mm256_xor_si256(acc0, Mul32(s0, lo[s], hi[s], mask));
      acc1 = _mm256_xor_si256(acc1, Mul32(s1, lo[s], hi[s], mask));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), acc1);
  }
  for (size_t s = 0; s < nsrc; ++s) {
    Avx2MulAdd(coeffs[s], srcs[s] + i, dst + i, n - i);
  }
}

constexpr RegionKernels kSsse3{Ssse3Add, Ssse3Mul, Ssse3MulAdd,
                               Ssse3MulAddMulti};
constexpr RegionKernels kAvx2{Avx2Add, Avx2Mul, Avx2MulAdd, Avx2MulAddMulti};

}  // namespace

const RegionKernels* Ssse3Kernels() {
  return __builtin_cpu_supports("ssse3") ? &kSsse3 : nullptr;
}

const RegionKernels* Avx2Kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2 : nullptr;
}

const RegionKernels* NeonKernels() { return nullptr; }

}  // namespace ring::gf::internal

#elif defined(__aarch64__)

#include <arm_neon.h>

namespace ring::gf::internal {
namespace {

// NEON is baseline on AArch64; no runtime feature check needed.

inline void TailMulAdd(uint8_t c, const uint8_t* src, uint8_t* dst,
                       size_t n) {
  const auto& row = T().mul[c];
  for (size_t i = 0; i < n; ++i) {
    dst[i] ^= row[src[i]];
  }
}

inline uint8x16_t Mul16(uint8x16_t s, uint8x16_t lo, uint8x16_t hi,
                        uint8x16_t mask) {
  const uint8x16_t l = vqtbl1q_u8(lo, vandq_u8(s, mask));
  const uint8x16_t h = vqtbl1q_u8(hi, vshrq_n_u8(s, 4));
  return veorq_u8(l, h);
}

void NeonAdd(const uint8_t* src, uint8_t* dst, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(src + i), vld1q_u8(dst + i)));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void NeonMul(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  const uint8x16_t lo = vld1q_u8(T().nib_lo[c]);
  const uint8x16_t hi = vld1q_u8(T().nib_hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, Mul16(vld1q_u8(src + i), lo, hi, mask));
  }
  const auto& row = T().mul[c];
  for (; i < n; ++i) {
    dst[i] = row[src[i]];
  }
}

void NeonMulAdd(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n) {
  const uint8x16_t lo = vld1q_u8(T().nib_lo[c]);
  const uint8x16_t hi = vld1q_u8(T().nib_hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i),
                               Mul16(vld1q_u8(src + i), lo, hi, mask)));
  }
  TailMulAdd(c, src + i, dst + i, n - i);
}

void NeonMulAddMulti(const uint8_t* coeffs, const uint8_t* const* srcs,
                     size_t nsrc, uint8_t* dst, size_t n) {
  uint8x16_t lo[kMaxFusedSources];
  uint8x16_t hi[kMaxFusedSources];
  const Tables& t = T();
  for (size_t s = 0; s < nsrc; ++s) {
    lo[s] = vld1q_u8(t.nib_lo[coeffs[s]]);
    hi[s] = vld1q_u8(t.nib_hi[coeffs[s]]);
  }
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint8x16_t acc0 = vld1q_u8(dst + i);
    uint8x16_t acc1 = vld1q_u8(dst + i + 16);
    for (size_t s = 0; s < nsrc; ++s) {
      acc0 = veorq_u8(acc0, Mul16(vld1q_u8(srcs[s] + i), lo[s], hi[s], mask));
      acc1 = veorq_u8(acc1,
                      Mul16(vld1q_u8(srcs[s] + i + 16), lo[s], hi[s], mask));
    }
    vst1q_u8(dst + i, acc0);
    vst1q_u8(dst + i + 16, acc1);
  }
  for (size_t s = 0; s < nsrc; ++s) {
    NeonMulAdd(coeffs[s], srcs[s] + i, dst + i, n - i);
  }
}

constexpr RegionKernels kNeon{NeonAdd, NeonMul, NeonMulAdd, NeonMulAddMulti};

}  // namespace

const RegionKernels* Ssse3Kernels() { return nullptr; }
const RegionKernels* Avx2Kernels() { return nullptr; }
const RegionKernels* NeonKernels() { return &kNeon; }

}  // namespace ring::gf::internal

#else  // unknown architecture: scalar only

namespace ring::gf::internal {
const RegionKernels* Ssse3Kernels() { return nullptr; }
const RegionKernels* Avx2Kernels() { return nullptr; }
const RegionKernels* NeonKernels() { return nullptr; }
}  // namespace ring::gf::internal

#endif
