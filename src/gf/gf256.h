// GF(2^8) arithmetic for Reed-Solomon coding.
//
// This module plays the role GF-Complete plays in the paper's implementation:
// field arithmetic (primitive polynomial x^8+x^4+x^3+x^2+1, 0x11D) plus the
// region operations erasure coding spends its cycles in (XOR and
// multiply-accumulate over whole buffers).
//
// Tables are built once at static-init time: 256x256 multiplication (64 KiB,
// one L1-friendly row per scalar constant) and log/exp tables for division
// and exponentiation.
#ifndef RING_SRC_GF_GF256_H_
#define RING_SRC_GF_GF256_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace ring::gf {

inline constexpr uint16_t kPrimitivePoly = 0x11D;

// Scalar operations ---------------------------------------------------------

// Addition and subtraction in GF(2^8) are both XOR.
inline uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
inline uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }

// Product of a and b in the field.
uint8_t Mul(uint8_t a, uint8_t b);

// Quotient a / b. Precondition: b != 0.
uint8_t Div(uint8_t a, uint8_t b);

// Multiplicative inverse. Precondition: a != 0.
uint8_t Inv(uint8_t a);

// a raised to the e-th power (Pow(0, 0) == 1 by convention).
uint8_t Pow(uint8_t a, uint32_t e);

// Region operations ---------------------------------------------------------
// All spans must have equal sizes; src and dst may not alias partially (they
// may be identical or disjoint).

// dst ^= src
void AddRegion(std::span<const uint8_t> src, std::span<uint8_t> dst);

// dst = c * src
void MulRegion(uint8_t c, std::span<const uint8_t> src, std::span<uint8_t> dst);

// dst ^= c * src   (the inner loop of RS encode/decode/delta-update)
void MulAddRegion(uint8_t c, std::span<const uint8_t> src,
                  std::span<uint8_t> dst);

}  // namespace ring::gf

#endif  // RING_SRC_GF_GF256_H_
