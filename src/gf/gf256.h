// GF(2^8) arithmetic for Reed-Solomon coding.
//
// This module plays the role GF-Complete plays in the paper's implementation:
// field arithmetic (primitive polynomial x^8+x^4+x^3+x^2+1, 0x11D) plus the
// region operations erasure coding spends its cycles in (XOR and
// multiply-accumulate over whole buffers).
//
// Region operations dispatch once at startup to the widest kernel the CPU
// supports — split-nibble PSHUFB/TBL multiply for SSSE3, AVX2 and NEON —
// with the portable scalar table-lookup code as the fallback. The scalar
// path can be forced for testing with the RING_FORCE_SCALAR CMake option
// (compile-time) or the RING_FORCE_SCALAR environment variable (runtime).
#ifndef RING_SRC_GF_GF256_H_
#define RING_SRC_GF_GF256_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace ring::gf {

inline constexpr uint16_t kPrimitivePoly = 0x11D;

// Scalar operations ---------------------------------------------------------

// Addition and subtraction in GF(2^8) are both XOR.
inline uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
inline uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }

// Product of a and b in the field.
uint8_t Mul(uint8_t a, uint8_t b);

// Quotient a / b. Precondition: b != 0.
uint8_t Div(uint8_t a, uint8_t b);

// Multiplicative inverse. Precondition: a != 0.
uint8_t Inv(uint8_t a);

// a raised to the e-th power (Pow(0, 0) == 1 by convention).
uint8_t Pow(uint8_t a, uint32_t e);

// Kernel dispatch -----------------------------------------------------------

enum class RegionImpl : uint8_t { kScalar = 0, kSsse3, kAvx2, kNeon };

// The implementation the region operations currently run on. Selected once
// on first use: widest supported tier, unless RING_FORCE_SCALAR is set.
RegionImpl ActiveRegionImpl();
const char* RegionImplName(RegionImpl impl);

// Force a specific implementation (differential tests, calibration). If the
// requested tier is unavailable on this CPU/build the active implementation
// is left unchanged. Returns the implementation now in effect. Not
// thread-safe with concurrent region calls.
RegionImpl SetRegionImpl(RegionImpl impl);

// Region operations ---------------------------------------------------------
// All spans must have equal sizes; src and dst may not alias partially (they
// may be identical or disjoint).

// dst ^= src
void AddRegion(std::span<const uint8_t> src, std::span<uint8_t> dst);

// dst = c * src
void MulRegion(uint8_t c, std::span<const uint8_t> src, std::span<uint8_t> dst);

// dst ^= c * src   (the inner loop of RS encode/decode/delta-update)
void MulAddRegion(uint8_t c, std::span<const uint8_t> src,
                  std::span<uint8_t> dst);

// Fused multi-source accumulate: dst ^= sum_i coeffs[i] * srcs[i], where
// every srcs[i] points at a region of dst.size() bytes. Zero coefficients
// are skipped. Unlike a loop of MulAddRegion calls (which sweeps dst once
// per source), the fused kernel streams all sources per cache-resident dst
// block, touching each dst byte once — the shape of RS stripe encode.
// No srcs[i] may partially overlap dst.
void MulAddRegionMulti(std::span<const uint8_t> coeffs,
                       std::span<const uint8_t* const> srcs,
                       std::span<uint8_t> dst);

// Fused encode: dst = sum_i coeffs[i] * srcs[i] (dst is zero-filled first).
void EncodeRegion(std::span<const uint8_t> coeffs,
                  std::span<const uint8_t* const> srcs,
                  std::span<uint8_t> dst);

}  // namespace ring::gf

#endif  // RING_SRC_GF_GF256_H_
