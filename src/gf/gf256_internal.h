// Internal plumbing shared between the portable GF(2^8) code (gf256.cc) and
// the vectorized backends (gf256_simd.cc). Not part of the public API.
//
// Two table families feed the region kernels:
//   - mul[a][b]: the full 64 KiB product table. The scalar kernels walk one
//     256-byte row per coefficient.
//   - nib_lo/nib_hi: split-nibble tables, 16 bytes per coefficient half.
//     nib_lo[c][x] = c*x and nib_hi[c][x] = c*(x<<4), so
//     c*b == nib_lo[c][b & 0xF] ^ nib_hi[c][b >> 4]. Sixteen-entry tables fit
//     a single PSHUFB/TBL register — the GF-Complete "SPLIT w8" technique the
//     paper's implementation relies on.
#ifndef RING_SRC_GF_GF256_INTERNAL_H_
#define RING_SRC_GF_GF256_INTERNAL_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace ring::gf::internal {

struct Tables {
  // mul[a][b] = a*b. Row-major so the scalar kernels walk a single row.
  std::array<std::array<uint8_t, 256>, 256> mul;
  std::array<uint8_t, 256> log;  // log[a] for a != 0, base = generator 2
  std::array<uint8_t, 512> exp;  // exp[i] = 2^i, doubled to skip mod 255
  std::array<uint8_t, 256> inv;  // inv[a] for a != 0
  // Split-nibble product tables (16-byte aligned for vector loads).
  alignas(16) uint8_t nib_lo[256][16];
  alignas(16) uint8_t nib_hi[256][16];

  Tables();
};

const Tables& T();

// One set of region kernels. All pointers are non-null; sizes may be zero.
// src and dst must not partially overlap (identical or disjoint only).
// Coefficient fast paths (c == 0 / c == 1) are handled by the public
// wrappers in gf256.cc before the kernel is reached, but every kernel must
// still be correct for all coefficients (mul_add_multi sees c == 1 rows).
// Upper bound on sources per fused kernel call; the dispatcher splits larger
// sets. Bounds the kernels' stack-resident per-source table arrays.
inline constexpr size_t kMaxFusedSources = 32;

struct RegionKernels {
  void (*add)(const uint8_t* src, uint8_t* dst, size_t n);
  void (*mul)(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n);
  void (*mul_add)(uint8_t c, const uint8_t* src, uint8_t* dst, size_t n);
  // Fused multi-source accumulate: dst ^= sum_i coeffs[i] * srcs[i], reading
  // and writing each dst cache line once regardless of the source count.
  // Precondition: 0 < nsrc <= kMaxFusedSources.
  void (*mul_add_multi)(const uint8_t* coeffs, const uint8_t* const* srcs,
                        size_t nsrc, uint8_t* dst, size_t n);
};

const RegionKernels& ScalarKernels();
// Return nullptr when the backend is not compiled in or the CPU lacks the
// feature (checked at runtime via cpuid on x86).
const RegionKernels* Ssse3Kernels();
const RegionKernels* Avx2Kernels();
const RegionKernels* NeonKernels();

}  // namespace ring::gf::internal

#endif  // RING_SRC_GF_GF256_INTERNAL_H_
