// Discrete-event core: a time-ordered queue of callbacks.
//
// The whole reproduction of the paper's testbed runs on this: simulated
// nanoseconds instead of an InfiniBand cluster's wall clock. Determinism is
// load-bearing — ties are broken by insertion sequence, so a given seed
// always produces the same execution.
//
// Two schedulers implement the same (time, seq) total order:
//   - kCalendar (default): a two-level timing wheel. The fine wheel covers a
//     ~2 ms near-future window in 256 ns buckets, each bucket a small
//     (time, seq)-ordered heap; a coarse wheel of 4096 window-sized slots
//     extends the horizon to ~8.6 s, each slot an unsorted vector that is
//     spliced into fine buckets when the window reaches it. Steady-state
//     events (wire deliveries, CPU completions, microsecond timers) hit the
//     fine wheel in O(1) amortized; parked long timers (retry/heartbeat/
//     failure windows) cost one coarse append plus one migration instead of
//     an O(log n) sift on every push/pop. Only events beyond the coarse
//     horizon fall back to a binary heap.
//   - kHeap: the original single binary heap, kept as the baseline for the
//     cross-scheduler equivalence tests and BENCH_sim.json (RING_SIM_CORE=heap).
// Both run events in exactly the same order, so fixed-seed schedules are
// byte-identical across schedulers.
#ifndef RING_SRC_SIM_EVENT_QUEUE_H_
#define RING_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/task.h"

namespace ring::sim {

// Simulated time in nanoseconds since simulation start.
using SimTime = uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * 1000;
inline constexpr SimTime kSecond = 1000ULL * 1000 * 1000;

// One schedulable delivery the model checker may pick, drop or defer: a
// tagged event currently at the schedule frontier. Tags are assigned by the
// tagger (net::Fabric) in registration order, so runs that share a decision
// prefix assign identical tags — the property replayable schedule specs
// rest on.
struct DeliveryChoice {
  uint64_t tag = 0;
  SimTime time = 0;
};

// Model-checker hook (src/mc): decides which frontier delivery runs next.
// Installed only by ring-mc explorations; a null controller leaves every
// default code path byte-identical to the un-hooked scheduler.
class ScheduleController {
 public:
  struct Decision {
    enum class Action : uint8_t {
      kDeliver,  // run candidate `index`, pulled early to the frontier time
      kDrop,     // discard candidate `index` without running it (lost on
                 // the wire); the clock does not advance
      kRescan,   // the controller mutated the world (crash/recover):
                 // recompute the frontier and ask again
    };
    Action action = Action::kDeliver;
    size_t index = 0;
  };
  virtual ~ScheduleController() = default;
  // `candidates` holds the tagged deliveries at the schedule frontier,
  // (time, seq)-ordered: candidates[0] is the event the unhooked scheduler
  // would run next. All candidates are within the reorder window of
  // candidates[0], so choosing any of them models a bounded network
  // reordering; the chosen one executes at candidates[0].time.
  virtual Decision Choose(const std::vector<DeliveryChoice>& candidates) = 0;
};

class EventQueue {
 public:
  enum class Mode : uint8_t { kCalendar, kHeap };

  // Default mode comes from RING_SIM_CORE ("heap" selects the legacy binary
  // heap; anything else, or unset, selects the calendar queue).
  EventQueue();
  explicit EventQueue(Mode mode);

  // Enqueues `fn` to run at absolute time `t` (>= now; earlier times are
  // clamped to now).
  void Schedule(SimTime t, Task fn);

  // Schedules a *delivery* event the model checker may permute. With no
  // controller installed this is exactly Schedule(t, fn) — the tag is
  // dropped and the schedule stays byte-identical. With a controller, the
  // event parks in the tagged side-store and only runs when chosen.
  void ScheduleTagged(SimTime t, Task fn, uint64_t tag);

  // Installs the model-checker hook. Untagged events (timers) may be
  // pending, but no tagged delivery may be in flight across the swap.
  // Forces kHeap storage so the untagged frontier stays peekable; MC
  // configurations are tiny, so the calendar fast path is irrelevant there.
  // `reorder_window_ns` bounds how far a delivery may be pulled ahead of
  // the frontier event.
  void set_controller(ScheduleController* controller,
                      SimTime reorder_window_ns);
  ScheduleController* controller() { return controller_; }

  // Runs the earliest event, advancing the clock. Returns false when empty.
  bool RunNext();

  SimTime now() const { return now_; }
  bool empty() const {
    return wheel_count_ == 0 && coarse_count_ == 0 && overflow_.empty() &&
           tagged_.empty();
  }
  size_t pending() const {
    return wheel_count_ + coarse_count_ + overflow_.size() + tagged_.size();
  }
  uint64_t executed() const { return executed_; }
  // Deepest the queue has ever been (events pending at once).
  size_t depth_high_water() const { return depth_high_water_; }
  Mode mode() const { return mode_; }

 private:
  // 256 ns buckets x 8192 buckets = a ~2.1 ms near-future window: wide
  // enough that wire hops (µs) and saturated CPU backlogs stay in the wheel,
  // narrow enough that retry timeouts (100 µs – 200 ms) and heartbeats
  // (10 ms) overflow instead of bloating bucket heaps.
  static constexpr uint32_t kBucketShift = 8;
  static constexpr uint32_t kBucketBits = 13;
  static constexpr uint32_t kNumBuckets = 1u << kBucketBits;
  static constexpr SimTime kWindowSpan = SimTime{1} << (kBucketShift +
                                                        kBucketBits);
  // Coarse wheel: 4096 slots of one window span each (~8.6 s horizon). A
  // slot is only addressable while its absolute index is within 4095 of the
  // current window's, which Insert's horizon check guarantees.
  static constexpr uint32_t kCoarseBits = 12;
  static constexpr uint32_t kNumCoarse = 1u << kCoarseBits;
  static constexpr SimTime kCoarseSpan = kWindowSpan << kCoarseBits;

  struct Event {
    SimTime time;
    uint64_t seq;
    Task fn;
  };
  // Min-heap order on (time, seq) via std::push_heap's max-heap convention.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Bounds the fan-out of one choice point: candidates beyond the first 16
  // wait for a later frontier (they reappear on every Choose until taken).
  static constexpr size_t kMaxChoiceCandidates = 16;

  struct TaggedEvent {
    SimTime time;
    uint64_t seq;
    uint64_t tag;
    Task fn;
  };

  void Insert(SimTime t, Task fn);
  // Controller-driven frontier step: builds the candidate window, asks the
  // controller, and executes/drops the decision. Returns true when an event
  // ran (the caller's RunNext contract); loops internally over drops and
  // rescans.
  bool RunNextControlled();
  // Repositions the window over the earliest pending slot (coarse or
  // overflow), re-homes overflow events that the new horizon now covers,
  // and splices the window's coarse slot into fine buckets. Only legal when
  // the fine wheel is empty (all wheel events precede all coarse events,
  // which precede all overflow events, so the wheel must drain first).
  void AdvanceWindow();
  Event PopEarliest();

  Mode mode_ = Mode::kCalendar;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t depth_high_water_ = 0;

  // Wheel invariant: every bucketed event has window_start_ <= time <
  // window_start_ + kWindowSpan, so bucket (time >> kBucketShift) & mask is
  // unique per event and a forward scan from now_ finds the minimum.
  std::vector<std::vector<Event>> buckets_;
  size_t wheel_count_ = 0;
  SimTime window_start_ = 0;  // always a multiple of kWindowSpan

  // Coarse tier: slot (t / kWindowSpan) & (kNumCoarse - 1), unsorted.
  std::vector<std::vector<Event>> coarse_;
  size_t coarse_count_ = 0;

  // Beyond-horizon tier (and the entire queue in kHeap mode): binary heap.
  std::vector<Event> overflow_;

  // Model-checker side-store: tagged deliveries awaiting a Choose decision.
  // Unsorted (frontier scans are linear); empty whenever controller_ is
  // null, so the default path never touches it.
  ScheduleController* controller_ = nullptr;
  SimTime reorder_window_ns_ = 0;
  std::vector<TaggedEvent> tagged_;
};

}  // namespace ring::sim

#endif  // RING_SRC_SIM_EVENT_QUEUE_H_
