// Discrete-event core: a time-ordered queue of callbacks.
//
// The whole reproduction of the paper's testbed runs on this: simulated
// nanoseconds instead of an InfiniBand cluster's wall clock. Determinism is
// load-bearing — ties are broken by insertion sequence, so a given seed
// always produces the same execution.
#ifndef RING_SRC_SIM_EVENT_QUEUE_H_
#define RING_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ring::sim {

// Simulated time in nanoseconds since simulation start.
using SimTime = uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * 1000;
inline constexpr SimTime kSecond = 1000ULL * 1000 * 1000;

class EventQueue {
 public:
  // Enqueues `fn` to run at absolute time `t` (>= now; earlier times are
  // clamped to now).
  void Schedule(SimTime t, std::function<void()> fn);

  // Runs the earliest event, advancing the clock. Returns false when empty.
  bool RunNext();

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace ring::sim

#endif  // RING_SRC_SIM_EVENT_QUEUE_H_
