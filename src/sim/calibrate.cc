#include "src/sim/calibrate.h"

#include <chrono>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/rs/rs_code.h"

namespace ring::sim {
namespace {

uint64_t NowNs() {
  // Calibration measures the host on purpose; its output only feeds
  // SimParams chosen before a simulation starts.
  const auto now =
      std::chrono::steady_clock::now();  // ring-lint: ok(wallclock)
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

// Runs `body(i)` until at least min_run_ns of wall time has elapsed (with a
// short warmup) and returns bytes_per_iter * iters / elapsed_ns.
template <typename Body>
double TimeLoop(uint64_t min_run_ns, uint64_t bytes_per_iter, Body body) {
  for (int i = 0; i < 4; ++i) {
    body(i);  // warmup: tables + buffers into cache, branch history settled
  }
  uint64_t iters = 0;
  const uint64_t start = NowNs();
  uint64_t now = start;
  while (now - start < min_run_ns) {
    for (int i = 0; i < 16; ++i) {
      body(static_cast<int>(iters) + i);
    }
    iters += 16;
    now = NowNs();
  }
  const double elapsed = static_cast<double>(now - start);
  return static_cast<double>(bytes_per_iter) * static_cast<double>(iters) /
         elapsed;
}

// Random nonzero coefficients, cycled per iteration so the timing reflects
// the mixed-coefficient traffic real stripes generate.
std::vector<uint8_t> RandomCoefficients(size_t n, uint64_t seed) {
  ring::Rng rng(seed);
  std::vector<uint8_t> c(n);
  for (auto& v : c) {
    v = static_cast<uint8_t>(rng.NextU64() % 254 + 2);  // skip 0 and 1
  }
  return c;
}

}  // namespace

CodingCalibration MeasureCodingThroughput(size_t block_bytes,
                                          uint64_t min_run_ns) {
  CodingCalibration cal;
  cal.impl = gf::ActiveRegionImpl();
  cal.block_bytes = block_bytes;

  const std::vector<uint8_t> coeffs = RandomCoefficients(257, 41);
  Buffer src = MakePatternBuffer(block_bytes, 1);
  Buffer dst = MakePatternBuffer(block_bytes, 2);

  cal.add_bytes_per_ns = TimeLoop(min_run_ns, block_bytes,
                                  [&](int) { gf::AddRegion(src, dst); });
  cal.mulacc_bytes_per_ns =
      TimeLoop(min_run_ns, block_bytes, [&](int i) {
        gf::MulAddRegion(coeffs[static_cast<size_t>(i) % coeffs.size()], src,
                         dst);
      });

  // RS(3,2): the paper's running example. Fused encode and decode are
  // normalized per *source* byte (k * block), matching how the simulator
  // charges gf_byte_ns per contributing byte.
  auto code = rs::RsCode::Create(3, 2);
  std::vector<Buffer> data;
  for (uint32_t i = 0; i < 3; ++i) {
    data.push_back(MakePatternBuffer(block_bytes, 10 + i));
  }
  const std::vector<ByteSpan> spans(data.begin(), data.end());
  std::vector<Buffer> parity(2, Buffer(block_bytes));
  std::vector<MutableByteSpan> pspans(parity.begin(), parity.end());
  cal.fused_bytes_per_ns =
      TimeLoop(min_run_ns, 3 * block_bytes,
               [&](int) { code->EncodeInto(spans, pspans); });

  std::vector<std::pair<uint32_t, ByteSpan>> available;
  available.emplace_back(2, ByteSpan(data[2]));
  available.emplace_back(3, ByteSpan(parity[0]));
  available.emplace_back(4, ByteSpan(parity[1]));
  cal.decode_bytes_per_ns =
      TimeLoop(min_run_ns, 3 * block_bytes, [&](int) {
        auto recovered = code->RecoverData(available);
        (void)recovered;
      });
  return cal;
}

SimParams Calibrated(const SimParams& base, const CodingCalibration& cal) {
  SimParams p = base;
  if (cal.mulacc_bytes_per_ns > 0) {
    p.gf_byte_ns = 1.0 / cal.mulacc_bytes_per_ns;
    p.decode_byte_ns = p.gf_byte_ns * (base.decode_byte_ns / base.gf_byte_ns);
  }
  return p;
}

}  // namespace ring::sim
