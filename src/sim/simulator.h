// Simulator: the event queue plus per-node N-shard CPU models.
#ifndef RING_SRC_SIM_SIMULATOR_H_
#define RING_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/analysis/race.h"
#include "src/common/rng.h"
#include "src/obs/hub.h"
#include "src/sim/event_queue.h"
#include "src/sim/params.h"
#include "src/sim/task.h"

namespace ring::sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1, SimParams params = kDefaultParams)
      : rng_(seed), params_(params),
        race_(analysis::RaceDetector::FromEnv()) {
    // The hub's windowing layer and flight recorder timestamp off the event
    // queue; the clock captures `this`, so the simulator must stay put.
    hub_.SetClock([this] { return queue_.now(); });
    if (race_ != nullptr) {
      race_->SetCoresPerNode(params_.cores_per_node);
    }
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return queue_.now(); }
  const SimParams& params() const { return params_; }
  SimParams& mutable_params() { return params_; }
  Rng& rng() { return rng_; }

  void At(SimTime t, Task fn) { queue_.Schedule(t, std::move(fn)); }
  // Model-checkable delivery: identical to At() unless an MC controller is
  // installed on the queue (see EventQueue::ScheduleTagged).
  void AtTagged(SimTime t, Task fn, uint64_t tag) {
    queue_.ScheduleTagged(t, std::move(fn), tag);
  }
  void After(SimTime delay, Task fn) {
    queue_.Schedule(queue_.now() + delay, std::move(fn));
  }

  // Runs until the queue drains.
  void Run();
  // Runs events with time <= t, then sets the clock to t.
  void RunUntil(SimTime t);

  uint64_t events_executed() const { return queue_.executed(); }
  EventQueue& queue() { return queue_; }

  // Which (node, CPU shard) is currently executing a deferred work item;
  // node is -1 between completions. Maintained by CpuWorker so the fabric
  // can attribute newly posted verbs to the issuing shard.
  struct ExecContext {
    int32_t node = -1;
    uint32_t shard = 0;
  };
  const ExecContext& exec() const { return exec_; }
  // Internal: CpuWorker scopes the context around each completion.
  void set_exec(const ExecContext& ctx) { exec_ = ctx; }

  // Per-simulation observability: metrics + tracer + current-op context.
  // Owned here so parallel test simulations stay isolated.
  obs::Hub& hub() { return hub_; }
  const obs::Hub& hub() const { return hub_; }

  // Happens-before race detector (src/analysis). Null unless opted in via
  // RING_ANALYZE=race or EnableRaceDetection(); every hook site checks for
  // null, so the disabled path costs one branch and perturbs nothing.
  analysis::RaceDetector* race() { return race_.get(); }
  // Attaching the detector deliberately leaves tracing alone: every access
  // carries its own phase label, and Report() only consults the tracer for
  // the richer per-op phase stacks when the caller enabled tracing itself.
  void EnableRaceDetection() {
    if (race_ == nullptr) {
      race_ = std::make_unique<analysis::RaceDetector>();
      race_->SetCoresPerNode(params_.cores_per_node);
    }
  }

 private:
  EventQueue queue_;
  Rng rng_;
  SimParams params_;
  obs::Hub hub_;
  ExecContext exec_;
  std::unique_ptr<analysis::RaceDetector> race_;
};

// Models one server's CPU as `shards` independent cores (default 1, the
// paper's single-threaded servers): work items execute FIFO per shard, each
// consuming CPU time; callers observe completion when their item's cost has
// been "burned". Saturation behaviour (Figs. 9 and 11) falls out of the
// busy-until bookkeeping.
//
// Shard selection is the caller's: protocol code homes each key's work onto
// a deterministic shard (see RingServer::HomeShard) so per-store state stays
// single-shard and the race detector stays quiet. Posting work from one
// shard onto another is an explicit handoff: it costs an extra
// `cross_shard_handoff_ns` and is counted, mirroring the post()-style
// dispatch between Envoy workers.
//
// Completion callbacks live in a per-shard FIFO here rather than inside the
// scheduled events: the event carries only {worker, shard, generation}, so
// big protocol captures are stored once, and Reset() can cancel every
// not-yet-run completion by bumping the generation.
class CpuWorker {
 public:
  explicit CpuWorker(Simulator* simulator, uint32_t node = 0,
                     uint32_t shards = 1)
      : sim_(simulator), node_(node),
        shards_(shards == 0 ? 1 : shards) {}

  // Enqueues a work item costing `cost_ns` on shard 0 (the single-core
  // fast path); `fn` runs when it completes (an empty Task just burns the
  // cost). Returns the completion time.
  SimTime Execute(uint64_t cost_ns, Task fn) {
    return ExecuteOnShard(0, cost_ns, std::move(fn));
  }
  SimTime ExecuteOnShard(uint32_t shard, uint64_t cost_ns, Task fn);

  uint32_t shard_count() const {
    return static_cast<uint32_t>(shards_.size());
  }
  // Deterministic home shard for a key hash.
  uint32_t ShardForHash(uint64_t hash) const {
    return shards_.size() == 1
               ? 0
               : static_cast<uint32_t>(hash % shards_.size());
  }

  // Time at which shard 0 goes idle (legacy single-core view), or a given
  // shard. ExecuteOnShard's return value is the per-item completion time.
  SimTime busy_until() const { return shards_[0].busy_until; }
  SimTime busy_until(uint32_t shard) const {
    return shards_[shard].busy_until;
  }
  // Total CPU time consumed so far, summed over shards (for utilization).
  uint64_t consumed_ns() const;
  uint64_t consumed_ns(uint32_t shard) const {
    return shards_[shard].consumed;
  }
  // Work currently queued ahead of a new arrival (worst shard).
  uint64_t backlog_ns() const;
  // Cross-shard posts observed (always 0 with one shard).
  uint64_t handoffs() const { return handoffs_; }

  // Zeroes all shard state and cancels every scheduled-but-not-run
  // completion: each scheduled event carries the generation it was issued
  // under and no-ops when it no longer matches.
  void Reset();

  uint32_t node() const { return node_; }

 private:
  struct Completion {
    Task fn;
    std::optional<analysis::VectorClock> edge;
  };
  struct Shard {
    SimTime busy_until = 0;
    uint64_t consumed = 0;
    std::deque<Completion> fifo;
  };

  void RunCompletion(uint32_t shard, uint64_t generation);

  Simulator* sim_;
  uint32_t node_ = 0;
  uint64_t generation_ = 0;
  uint64_t handoffs_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace ring::sim

#endif  // RING_SRC_SIM_SIMULATOR_H_
