// Simulator: the event queue plus per-node single-threaded CPU models.
#ifndef RING_SRC_SIM_SIMULATOR_H_
#define RING_SRC_SIM_SIMULATOR_H_

#include <functional>
#include <memory>

#include "src/analysis/race.h"
#include "src/common/rng.h"
#include "src/obs/hub.h"
#include "src/sim/event_queue.h"
#include "src/sim/params.h"

namespace ring::sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1, SimParams params = kDefaultParams)
      : rng_(seed), params_(params),
        race_(analysis::RaceDetector::FromEnv()) {
    // The hub's windowing layer and flight recorder timestamp off the event
    // queue; the clock captures `this`, so the simulator must stay put.
    hub_.SetClock([this] { return queue_.now(); });
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return queue_.now(); }
  const SimParams& params() const { return params_; }
  SimParams& mutable_params() { return params_; }
  Rng& rng() { return rng_; }

  void At(SimTime t, std::function<void()> fn) {
    queue_.Schedule(t, std::move(fn));
  }
  void After(SimTime delay, std::function<void()> fn) {
    queue_.Schedule(queue_.now() + delay, std::move(fn));
  }

  // Runs until the queue drains.
  void Run();
  // Runs events with time <= t, then sets the clock to t.
  void RunUntil(SimTime t);

  uint64_t events_executed() const { return queue_.executed(); }
  EventQueue& queue() { return queue_; }

  // Per-simulation observability: metrics + tracer + current-op context.
  // Owned here so parallel test simulations stay isolated.
  obs::Hub& hub() { return hub_; }
  const obs::Hub& hub() const { return hub_; }

  // Happens-before race detector (src/analysis). Null unless opted in via
  // RING_ANALYZE=race or EnableRaceDetection(); every hook site checks for
  // null, so the disabled path costs one branch and perturbs nothing.
  analysis::RaceDetector* race() { return race_.get(); }
  // Attaching the detector deliberately leaves tracing alone: every access
  // carries its own phase label, and Report() only consults the tracer for
  // the richer per-op phase stacks when the caller enabled tracing itself.
  void EnableRaceDetection() {
    if (race_ == nullptr) {
      race_ = std::make_unique<analysis::RaceDetector>();
    }
  }

 private:
  EventQueue queue_;
  Rng rng_;
  SimParams params_;
  obs::Hub hub_;
  std::unique_ptr<analysis::RaceDetector> race_;
};

// Models one single-threaded server core: work items execute FIFO, each
// consuming CPU time; callers observe completion when their item's cost has
// been "burned". Saturation behaviour (Figs. 9 and 11) falls out of the
// busy-until bookkeeping.
class CpuWorker {
 public:
  explicit CpuWorker(Simulator* simulator, uint32_t node = 0)
      : sim_(simulator), node_(node) {}

  // Enqueues a work item costing `cost_ns`; `fn` runs when it completes.
  void Execute(uint64_t cost_ns, std::function<void()> fn);

  // Time at which the core goes idle given current queue.
  SimTime busy_until() const { return busy_until_; }
  // Total CPU time consumed so far (for utilization reporting).
  uint64_t consumed_ns() const { return consumed_; }
  // Work currently queued ahead of a new arrival.
  uint64_t backlog_ns() const;

  void Reset() {
    busy_until_ = 0;
    consumed_ = 0;
  }

  uint32_t node() const { return node_; }

 private:
  Simulator* sim_;
  uint32_t node_ = 0;
  SimTime busy_until_ = 0;
  uint64_t consumed_ = 0;
};

}  // namespace ring::sim

#endif  // RING_SRC_SIM_SIMULATOR_H_
