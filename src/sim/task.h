// Pooled event callbacks for the simulator hot path.
//
// Every scheduled event used to carry a `std::function<void()>`: one heap
// allocation per event for any capture over two words, a virtual-ish manager
// call on move, and a free on destruction — hundreds of millions of times per
// fig-scale run. `sim::Task` replaces it with a fixed-size callable:
//   - captures up to kInlineBytes live inside the Task itself (no allocation);
//   - larger captures take a block from a thread-local slab pool (free-list
//     pop/push, size-classed, no malloc on the steady state);
//   - a "boxed" compatibility mode routes every out-of-line capture through
//     plain new/delete so the pre-pool allocator behaviour can be reproduced
//     for benchmarking (RING_SIM_POOL=boxed).
//
// Lifetime rules (DESIGN.md §14):
//   - Tasks are move-only and single-threaded: a Task must be created,
//     invoked, and destroyed on the thread that allocated it (the pool is
//     thread-local; simulators are single-threaded by construction).
//   - Invocation does not consume the Task; destruction returns the block.
//   - Pool slabs live until thread exit, so ASan/LSan see no leaks.
#ifndef RING_SRC_SIM_TASK_H_
#define RING_SRC_SIM_TASK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ring::sim {

// Thread-local size-classed slab allocator for out-of-line task captures.
// The free-list pop/push fast path is inline (it runs once per out-of-line
// event); slab carving and the boxed fallback live in task.cc.
class TaskPool {
 public:
  struct Stats {
    uint64_t inline_ctors = 0;   // captures that fit in the Task itself
    uint64_t pool_hits = 0;      // out-of-line blocks served from a free list
    uint64_t pool_misses = 0;    // blocks that needed a new slab or oversize new
    uint64_t bytes_reserved = 0; // slab bytes currently held by the pool
    uint64_t hit_rate_pct() const {
      const uint64_t total = inline_ctors + pool_hits + pool_misses;
      return total == 0 ? 100 : (inline_ctors + pool_hits) * 100 / total;
    }
  };

  static void* Allocate(size_t bytes) {
    Core& c = core();
    if (bytes <= kMaxPooled && !c.boxed) {
      const size_t cls = ClassOf(bytes);
      if (FreeNode* node = c.free_lists[cls]; node != nullptr) {
        c.free_lists[cls] = node->next;
        ++c.stats.pool_hits;
        return node;
      }
    }
    return AllocateSlow(bytes);
  }
  static void Deallocate(void* p, size_t bytes) noexcept {
    Core& c = core();
    if (bytes <= kMaxPooled && !c.boxed) {
      const size_t cls = ClassOf(bytes);
      auto* node = static_cast<FreeNode*>(p);
      node->next = c.free_lists[cls];
      c.free_lists[cls] = node;
      return;
    }
    ::operator delete(p);
  }
  static Stats stats() { return core().stats; }
  static void ResetStats() { core().stats = Stats{}; }

  // Boxed mode: every out-of-line capture uses plain new/delete (and counts
  // as a miss), reproducing the per-event allocator churn of the pre-pool
  // core. Controlled by RING_SIM_POOL=boxed or set_boxed() (benchmarks).
  // Only toggle while no out-of-line Tasks are alive on this thread: blocks
  // are freed by whichever allocator the flag selects at destruction time.
  static bool boxed();
  static void set_boxed(bool boxed);

 private:
  friend class Task;

  // Size classes are multiples of 64 bytes up to 1 KiB; bigger captures
  // fall back to operator new (counted as misses — rare enough to surface
  // in `ringctl simstats` and get fixed at the capture site).
  static constexpr size_t kClassGranularity = 64;
  static constexpr size_t kNumClasses = 16;
  static constexpr size_t kMaxPooled = kClassGranularity * kNumClasses;

  struct FreeNode {
    FreeNode* next;
  };
  // Constant-initializable so the thread_local needs no init guard on the
  // hot path. Slab ownership lives in task.cc (freed at thread exit).
  struct Core {
    FreeNode* free_lists[kNumClasses];
    Stats stats;
    bool boxed;
    bool boxed_initialized;
  };
  static Core& core() {
    static thread_local Core c;
    return c;
  }
  static size_t ClassOf(size_t bytes) {
    return (bytes + kClassGranularity - 1) / kClassGranularity - 1;
  }
  // Boxed mode, an uninitialized boxed flag, an empty free list, or an
  // oversize request.
  static void* AllocateSlow(size_t bytes);
};

class Task {
 public:
  // Sized so the fabric/CPU bookkeeping closures (a few pointers + ids) stay
  // inline while big protocol captures (request structs) go to the pool.
  static constexpr size_t kInlineBytes = 48;

  Task() noexcept : vt_(nullptr) {}
  Task(std::nullptr_t) noexcept : vt_(nullptr) {}  // NOLINT: empty callback

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    // Null-testable callables (std::function, function pointers) that hold
    // nothing become an empty Task, preserving `if (cb)` guard semantics
    // at converted call sites.
    if constexpr (std::is_constructible_v<bool, const Fn&>) {
      if (!static_cast<bool>(f)) {
        vt_ = nullptr;
        return;
      }
    }
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
      NoteInline();
    } else {
      void* block = TaskPool::Allocate(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(f));
      SetPtr(block);
      vt_ = &kOutOfLineVTable<Fn>;
    }
  }

  Task(Task&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) {
      Relocate(o);
    }
  }
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Clear();
      vt_ = o.vt_;
      if (vt_ != nullptr) {
        Relocate(o);
      }
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Clear(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  // Deep copy: an independent Task invoking a copy of the callable (with its
  // own copies of the captures). Used by the fabric to materialize duplicate
  // deliveries under fault injection. Returns an empty Task if the callable
  // is not copy-constructible (or this Task is empty).
  Task Clone() const {
    if (vt_ == nullptr || vt_->clone == nullptr) {
      return Task();
    }
    return vt_->clone(buf_);
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's. Null
    // when a raw memcpy of the storage is equivalent (trivially copyable
    // inline captures, and every out-of-line Task — only the block pointer
    // moves), so the common case skips an indirect call.
    void (*relocate)(void* dst, void* src) noexcept;
    // Null when destruction is a no-op (trivially destructible inline
    // captures).
    void (*destroy)(void* storage) noexcept;
    // Null for non-copyable callables.
    Task (*clone)(const void* storage);
  };

  // The out-of-line block pointer lives in buf_; always moved with memcpy
  // (never read through a reinterpret_cast lvalue) so the char-buffer
  // storage stays strict-aliasing clean under -O3.
  void SetPtr(void* p) noexcept { std::memcpy(buf_, &p, sizeof(p)); }
  static void* LoadPtr(const void* s) noexcept {
    void* p;
    std::memcpy(&p, s, sizeof(p));
    return p;
  }

  void Relocate(Task& o) noexcept {
    if (vt_->relocate != nullptr) {
      vt_->relocate(buf_, o.buf_);
    } else {
      std::memcpy(buf_, o.buf_, kInlineBytes);
    }
    o.vt_ = nullptr;
  }

  void Clear() noexcept {
    if (vt_ != nullptr) {
      if (vt_->destroy != nullptr) {
        vt_->destroy(buf_);
      }
      vt_ = nullptr;
    }
  }

  static void NoteInline() { ++TaskPool::core().stats.inline_ctors; }

  // Two-level dispatch so non-copyable callables never instantiate a copy
  // constructor: the specialization yields a null clone slot instead.
  template <typename Fn, bool = std::is_copy_constructible_v<Fn>>
  struct Cloner {
    static Task CloneInline(const void* s) {
      return Task(Fn(*std::launder(reinterpret_cast<const Fn*>(s))));
    }
    static Task CloneOutOfLine(const void* s) {
      return Task(Fn(*static_cast<const Fn*>(LoadPtr(s))));
    }
  };
  template <typename Fn>
  struct Cloner<Fn, false> {
    static constexpr Task (*CloneInline)(const void*) = nullptr;
    static constexpr Task (*CloneOutOfLine)(const void*) = nullptr;
  };

  template <typename Fn>
  static constexpr VTable kInlineVTable = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              Fn* f = std::launder(reinterpret_cast<Fn*>(src));
              ::new (dst) Fn(std::move(*f));
              f->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* s) noexcept {
              std::launder(reinterpret_cast<Fn*>(s))->~Fn();
            },
      Cloner<Fn>::CloneInline,
  };

  template <typename Fn>
  static constexpr VTable kOutOfLineVTable = {
      [](void* s) { (*static_cast<Fn*>(LoadPtr(s)))(); },
      // Out-of-line storage relocates by moving the block pointer: the
      // null slot's memcpy fallback does exactly that.
      nullptr,
      [](void* s) noexcept {
        Fn* f = static_cast<Fn*>(LoadPtr(s));
        f->~Fn();
        TaskPool::Deallocate(f, sizeof(Fn));
      },
      Cloner<Fn>::CloneOutOfLine,
  };

  const VTable* vt_;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace ring::sim

#endif  // RING_SRC_SIM_TASK_H_
