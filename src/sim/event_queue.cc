#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/logging.h"

namespace ring::sim {

namespace {

EventQueue::Mode ModeFromEnv() {
  const char* v = std::getenv("RING_SIM_CORE");
  if (v != nullptr && std::strcmp(v, "heap") == 0) {
    return EventQueue::Mode::kHeap;
  }
  return EventQueue::Mode::kCalendar;
}

}  // namespace

EventQueue::EventQueue() : EventQueue(ModeFromEnv()) {}

EventQueue::EventQueue(Mode mode) : mode_(mode) {
  if (mode_ == Mode::kCalendar) {
    buckets_.resize(kNumBuckets);
    coarse_.resize(kNumCoarse);
  }
}

void EventQueue::Schedule(SimTime t, Task fn) {
  Insert(t < now_ ? now_ : t, std::move(fn));
  const size_t depth = pending();
  if (depth > depth_high_water_) {
    depth_high_water_ = depth;
  }
}

void EventQueue::ScheduleTagged(SimTime t, Task fn, uint64_t tag) {
  if (controller_ == nullptr) {
    Schedule(t, std::move(fn));
    return;
  }
  tagged_.push_back(TaggedEvent{t < now_ ? now_ : t, next_seq_++, tag,
                                std::move(fn)});
  const size_t depth = pending();
  if (depth > depth_high_water_) {
    depth_high_water_ = depth;
  }
}

void EventQueue::set_controller(ScheduleController* controller,
                                SimTime reorder_window_ns) {
  assert(tagged_.empty() && "MC controller swap with tagged events in flight");
  controller_ = controller;
  reorder_window_ns_ = reorder_window_ns;
  if (controller_ != nullptr && mode_ == Mode::kCalendar) {
    // Peekable single-heap storage: the frontier comparison below reads the
    // earliest untagged event without popping it. Migrate whatever timers
    // are already parked in the wheel tiers.
    for (std::vector<Event>& bucket : buckets_) {
      for (Event& ev : bucket) {
        overflow_.push_back(std::move(ev));
      }
      bucket.clear();
    }
    for (std::vector<Event>& slot : coarse_) {
      for (Event& ev : slot) {
        overflow_.push_back(std::move(ev));
      }
      slot.clear();
    }
    wheel_count_ = 0;
    coarse_count_ = 0;
    std::make_heap(overflow_.begin(), overflow_.end(), Later{});
    mode_ = Mode::kHeap;
  }
}

bool EventQueue::RunNextControlled() {
  for (;;) {
    if (tagged_.empty()) {
      return RunNext();
    }
    // Earliest tagged delivery, by the same (time, seq) order the unhooked
    // scheduler uses.
    size_t lead = 0;
    for (size_t i = 1; i < tagged_.size(); ++i) {
      if (tagged_[i].time < tagged_[lead].time ||
          (tagged_[i].time == tagged_[lead].time &&
           tagged_[i].seq < tagged_[lead].seq)) {
        lead = i;
      }
    }
    const SimTime frontier = tagged_[lead].time;
    // An untagged event strictly ahead of every delivery runs untouched:
    // timers and CPU completions are deterministic consequences, never
    // choice points.
    if (!overflow_.empty() &&
        (overflow_.front().time < frontier ||
         (overflow_.front().time == frontier &&
          overflow_.front().seq < tagged_[lead].seq))) {
      Event ev = PopEarliest();
      now_ = ev.time;
      ++executed_;
      SetLogSimTime(now_);
      ev.fn();
      return true;
    }
    // Candidate window: every delivery within reorder_window_ns_ of the
    // frontier, (time, seq)-ordered so candidates[0] is the default.
    std::vector<size_t> window;
    for (size_t i = 0; i < tagged_.size(); ++i) {
      if (tagged_[i].time <= frontier + reorder_window_ns_) {
        window.push_back(i);
      }
    }
    std::sort(window.begin(), window.end(), [this](size_t a, size_t b) {
      if (tagged_[a].time != tagged_[b].time) {
        return tagged_[a].time < tagged_[b].time;
      }
      return tagged_[a].seq < tagged_[b].seq;
    });
    if (window.size() > kMaxChoiceCandidates) {
      window.resize(kMaxChoiceCandidates);
    }
    std::vector<DeliveryChoice> candidates;
    candidates.reserve(window.size());
    for (size_t i : window) {
      candidates.push_back(DeliveryChoice{tagged_[i].tag, tagged_[i].time});
    }
    const ScheduleController::Decision d = controller_->Choose(candidates);
    if (d.action == ScheduleController::Decision::Action::kRescan) {
      continue;  // the controller crashed/recovered a node; frontier is stale
    }
    assert(d.index < window.size() && "MC decision out of range");
    const size_t victim = window[d.index];
    if (d.action == ScheduleController::Decision::Action::kDrop) {
      // Lost on the wire: the doorbell dies unrung. The clock stays put —
      // nothing executed.
      tagged_.erase(tagged_.begin() + static_cast<ptrdiff_t>(victim));
      continue;
    }
    // Deliver: the chosen event is pulled early to the frontier time, as if
    // the frontier message had been the slower one on the wire.
    TaggedEvent ev = std::move(tagged_[victim]);
    tagged_.erase(tagged_.begin() + static_cast<ptrdiff_t>(victim));
    if (frontier > now_) {
      now_ = frontier;
    }
    ++executed_;
    SetLogSimTime(now_);
    ev.fn();
    return true;
  }
}

void EventQueue::Insert(SimTime t, Task fn) {
  if (mode_ == Mode::kCalendar) {
    if (t < window_start_ + kWindowSpan) {
      // In-window: bucket mini-heap. Callers only schedule at t >= now_ >=
      // window_start_, so the bucket index is unambiguous.
      std::vector<Event>& bucket =
          buckets_[(t >> kBucketShift) & (kNumBuckets - 1)];
      bucket.push_back(Event{t, next_seq_++, std::move(fn)});
      std::push_heap(bucket.begin(), bucket.end(), Later{});
      ++wheel_count_;
      return;
    }
    if (t < window_start_ + kCoarseSpan) {
      // Within the coarse horizon: O(1) unsorted append; the slot is
      // re-sorted through fine-bucket heaps when the window reaches it.
      coarse_[(t >> (kBucketShift + kBucketBits)) & (kNumCoarse - 1)]
          .push_back(Event{t, next_seq_++, std::move(fn)});
      ++coarse_count_;
      return;
    }
  }
  overflow_.push_back(Event{t, next_seq_++, std::move(fn)});
  std::push_heap(overflow_.begin(), overflow_.end(), Later{});
}

void EventQueue::AdvanceWindow() {
  // Earliest pending slot: the first non-empty coarse slot after the
  // current window, capped by the overflow minimum (overflow may hold
  // earlier events than coarse only while coarse is empty — but after the
  // horizon moves, re-homed overflow events land in coarse, so both must
  // be consulted).
  constexpr uint32_t kSlotShift = kBucketShift + kBucketBits;
  uint64_t next_slot;
  if (coarse_count_ > 0) {
    uint64_t c = (window_start_ >> kSlotShift) + 1;
    while (coarse_[c & (kNumCoarse - 1)].empty()) {
      ++c;
    }
    next_slot = c;
    if (!overflow_.empty()) {
      const uint64_t o = overflow_.front().time >> kSlotShift;
      next_slot = o < c ? o : c;
    }
  } else {
    next_slot = overflow_.front().time >> kSlotShift;
  }
  window_start_ = next_slot << kSlotShift;

  // Re-home overflow events the new horizon now covers: into this window's
  // fine buckets, or a coarse slot ahead of it.
  const SimTime window_end = window_start_ + kWindowSpan;
  while (!overflow_.empty() && overflow_.front().time <
                                   window_start_ + kCoarseSpan) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    if (ev.time < window_end) {
      std::vector<Event>& bucket =
          buckets_[(ev.time >> kBucketShift) & (kNumBuckets - 1)];
      bucket.push_back(std::move(ev));
      std::push_heap(bucket.begin(), bucket.end(), Later{});
      ++wheel_count_;
    } else {
      coarse_[(ev.time >> kSlotShift) & (kNumCoarse - 1)].push_back(
          std::move(ev));
      ++coarse_count_;
    }
  }

  // Splice the window's own coarse slot into fine buckets.
  std::vector<Event>& slot = coarse_[next_slot & (kNumCoarse - 1)];
  for (Event& ev : slot) {
    std::vector<Event>& bucket =
        buckets_[(ev.time >> kBucketShift) & (kNumBuckets - 1)];
    bucket.push_back(std::move(ev));
    std::push_heap(bucket.begin(), bucket.end(), Later{});
    ++wheel_count_;
  }
  coarse_count_ -= slot.size();
  slot.clear();
}

EventQueue::Event EventQueue::PopEarliest() {
  if (mode_ == Mode::kHeap) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    return ev;
  }
  if (wheel_count_ == 0) {
    AdvanceWindow();
  }
  // Every wheel event precedes every overflow event (overflow holds only
  // times at or beyond the window end), so the first non-empty bucket at or
  // after now_ holds the global minimum.
  uint64_t b = now_ > window_start_ ? now_ >> kBucketShift
                                    : window_start_ >> kBucketShift;
  while (buckets_[b & (kNumBuckets - 1)].empty()) {
    ++b;
  }
  std::vector<Event>& bucket = buckets_[b & (kNumBuckets - 1)];
  std::pop_heap(bucket.begin(), bucket.end(), Later{});
  Event ev = std::move(bucket.back());
  bucket.pop_back();
  --wheel_count_;
  return ev;
}

bool EventQueue::RunNext() {
  if (controller_ != nullptr && !tagged_.empty()) {
    return RunNextControlled();
  }
  if (empty()) {
    return false;
  }
  Event ev = PopEarliest();
  now_ = ev.time;
  ++executed_;
  SetLogSimTime(now_);
  ev.fn();
  return true;
}

}  // namespace ring::sim
