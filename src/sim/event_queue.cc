#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"

namespace ring::sim {

void EventQueue::Schedule(SimTime t, std::function<void()> fn) {
  heap_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) {
    return false;
  }
  // Move the callback out before popping so it may schedule new events.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  ++executed_;
  SetLogSimTime(now_);
  ev.fn();
  return true;
}

}  // namespace ring::sim
