#include "src/sim/event_queue.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/logging.h"

namespace ring::sim {

namespace {

EventQueue::Mode ModeFromEnv() {
  const char* v = std::getenv("RING_SIM_CORE");
  if (v != nullptr && std::strcmp(v, "heap") == 0) {
    return EventQueue::Mode::kHeap;
  }
  return EventQueue::Mode::kCalendar;
}

}  // namespace

EventQueue::EventQueue() : EventQueue(ModeFromEnv()) {}

EventQueue::EventQueue(Mode mode) : mode_(mode) {
  if (mode_ == Mode::kCalendar) {
    buckets_.resize(kNumBuckets);
    coarse_.resize(kNumCoarse);
  }
}

void EventQueue::Schedule(SimTime t, Task fn) {
  Insert(t < now_ ? now_ : t, std::move(fn));
  const size_t depth = pending();
  if (depth > depth_high_water_) {
    depth_high_water_ = depth;
  }
}

void EventQueue::Insert(SimTime t, Task fn) {
  if (mode_ == Mode::kCalendar) {
    if (t < window_start_ + kWindowSpan) {
      // In-window: bucket mini-heap. Callers only schedule at t >= now_ >=
      // window_start_, so the bucket index is unambiguous.
      std::vector<Event>& bucket =
          buckets_[(t >> kBucketShift) & (kNumBuckets - 1)];
      bucket.push_back(Event{t, next_seq_++, std::move(fn)});
      std::push_heap(bucket.begin(), bucket.end(), Later{});
      ++wheel_count_;
      return;
    }
    if (t < window_start_ + kCoarseSpan) {
      // Within the coarse horizon: O(1) unsorted append; the slot is
      // re-sorted through fine-bucket heaps when the window reaches it.
      coarse_[(t >> (kBucketShift + kBucketBits)) & (kNumCoarse - 1)]
          .push_back(Event{t, next_seq_++, std::move(fn)});
      ++coarse_count_;
      return;
    }
  }
  overflow_.push_back(Event{t, next_seq_++, std::move(fn)});
  std::push_heap(overflow_.begin(), overflow_.end(), Later{});
}

void EventQueue::AdvanceWindow() {
  // Earliest pending slot: the first non-empty coarse slot after the
  // current window, capped by the overflow minimum (overflow may hold
  // earlier events than coarse only while coarse is empty — but after the
  // horizon moves, re-homed overflow events land in coarse, so both must
  // be consulted).
  constexpr uint32_t kSlotShift = kBucketShift + kBucketBits;
  uint64_t next_slot;
  if (coarse_count_ > 0) {
    uint64_t c = (window_start_ >> kSlotShift) + 1;
    while (coarse_[c & (kNumCoarse - 1)].empty()) {
      ++c;
    }
    next_slot = c;
    if (!overflow_.empty()) {
      const uint64_t o = overflow_.front().time >> kSlotShift;
      next_slot = o < c ? o : c;
    }
  } else {
    next_slot = overflow_.front().time >> kSlotShift;
  }
  window_start_ = next_slot << kSlotShift;

  // Re-home overflow events the new horizon now covers: into this window's
  // fine buckets, or a coarse slot ahead of it.
  const SimTime window_end = window_start_ + kWindowSpan;
  while (!overflow_.empty() && overflow_.front().time <
                                   window_start_ + kCoarseSpan) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    if (ev.time < window_end) {
      std::vector<Event>& bucket =
          buckets_[(ev.time >> kBucketShift) & (kNumBuckets - 1)];
      bucket.push_back(std::move(ev));
      std::push_heap(bucket.begin(), bucket.end(), Later{});
      ++wheel_count_;
    } else {
      coarse_[(ev.time >> kSlotShift) & (kNumCoarse - 1)].push_back(
          std::move(ev));
      ++coarse_count_;
    }
  }

  // Splice the window's own coarse slot into fine buckets.
  std::vector<Event>& slot = coarse_[next_slot & (kNumCoarse - 1)];
  for (Event& ev : slot) {
    std::vector<Event>& bucket =
        buckets_[(ev.time >> kBucketShift) & (kNumBuckets - 1)];
    bucket.push_back(std::move(ev));
    std::push_heap(bucket.begin(), bucket.end(), Later{});
    ++wheel_count_;
  }
  coarse_count_ -= slot.size();
  slot.clear();
}

EventQueue::Event EventQueue::PopEarliest() {
  if (mode_ == Mode::kHeap) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Event ev = std::move(overflow_.back());
    overflow_.pop_back();
    return ev;
  }
  if (wheel_count_ == 0) {
    AdvanceWindow();
  }
  // Every wheel event precedes every overflow event (overflow holds only
  // times at or beyond the window end), so the first non-empty bucket at or
  // after now_ holds the global minimum.
  uint64_t b = now_ > window_start_ ? now_ >> kBucketShift
                                    : window_start_ >> kBucketShift;
  while (buckets_[b & (kNumBuckets - 1)].empty()) {
    ++b;
  }
  std::vector<Event>& bucket = buckets_[b & (kNumBuckets - 1)];
  std::pop_heap(bucket.begin(), bucket.end(), Later{});
  Event ev = std::move(bucket.back());
  bucket.pop_back();
  --wheel_count_;
  return ev;
}

bool EventQueue::RunNext() {
  if (empty()) {
    return false;
  }
  Event ev = PopEarliest();
  now_ = ev.time;
  ++executed_;
  SetLogSimTime(now_);
  ev.fn();
  return true;
}

}  // namespace ring::sim
