#include "src/sim/task.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

namespace ring::sim {

namespace {

constexpr size_t kSlabBytes = 64 * 1024;

// Slab ownership: blocks on the free lists point into these; freed at
// thread exit, so ASan/LSan see no leaks.
std::vector<std::unique_ptr<unsigned char[]>>& slabs() {
  thread_local std::vector<std::unique_ptr<unsigned char[]>> s;
  return s;
}

bool BoxedFromEnv() {
  const char* v = std::getenv("RING_SIM_POOL");
  return v != nullptr && std::strcmp(v, "boxed") == 0;
}

}  // namespace

void* TaskPool::AllocateSlow(size_t bytes) {
  Core& c = core();
  if (!c.boxed_initialized) {
    c.boxed = BoxedFromEnv();
    c.boxed_initialized = true;
    if (c.boxed || bytes > kMaxPooled) {
      ++c.stats.pool_misses;
      return ::operator new(bytes);
    }
    return AllocateSlow(bytes);  // flag now settled; retry the free list
  }
  if (c.boxed || bytes > kMaxPooled) {
    ++c.stats.pool_misses;
    return ::operator new(bytes);
  }
  // Carve a fresh slab into this class's chunks. The triggering allocation
  // counts as the miss; the rest land on the free list.
  const size_t cls = ClassOf(bytes);
  const size_t chunk = (cls + 1) * kClassGranularity;
  auto slab = std::make_unique<unsigned char[]>(kSlabBytes);
  unsigned char* base = slab.get();
  slabs().push_back(std::move(slab));
  c.stats.bytes_reserved += kSlabBytes;
  const size_t count = kSlabBytes / chunk;
  for (size_t i = 1; i < count; ++i) {
    auto* node = reinterpret_cast<FreeNode*>(base + i * chunk);
    node->next = c.free_lists[cls];
    c.free_lists[cls] = node;
  }
  ++c.stats.pool_misses;
  return base;
}

bool TaskPool::boxed() {
  Core& c = core();
  if (!c.boxed_initialized) {
    c.boxed = BoxedFromEnv();
    c.boxed_initialized = true;
  }
  return c.boxed;
}

void TaskPool::set_boxed(bool boxed) {
  Core& c = core();
  c.boxed = boxed;
  c.boxed_initialized = true;
}

}  // namespace ring::sim
