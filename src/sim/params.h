// Calibration constants for the simulated testbed.
//
// The paper's cluster: 12 nodes, Intel E5-2609 @ 2.4 GHz (single-threaded
// servers), Mellanox QDR/40Gb NICs, one switch, libibverbs + libev. These
// constants are chosen so the simulator lands near the paper's anchor
// points:
//   - remote get latency  ~5 µs (1 KiB),
//   - unreliable put throughput ~500 K req/s per coordinator
//     (1.5 M aggregate over 3 coordinators, Fig. 9),
//   - single open-loop client tops out at ~418 K gets/s / ~290 K puts/s
//     (Fig. 11).
// Everything else (scheme orderings, crossovers, saturation points) emerges
// from message counts, byte volumes, and queueing — not from per-scheme
// constants.
#ifndef RING_SRC_SIM_PARAMS_H_
#define RING_SRC_SIM_PARAMS_H_

#include <cstdint>

#include "src/sim/event_queue.h"

namespace ring::sim {

struct SimParams {
  // --- Network (one switch hop) ---
  // One-way wire latency: NIC processing + propagation + switch.
  uint64_t wire_latency_ns = 1600;
  // Uniform per-message latency jitter in [0, wire_jitter_ns) — zero keeps
  // the simulation exactly reproducible run-to-run for tests; benches enable
  // it so medians and 90th percentiles separate as in the paper's plots.
  uint64_t wire_jitter_ns = 0;
  // 40 Gb/s links = 5 bytes/ns.
  double link_bytes_per_ns = 5.0;
  // Fixed per-message overhead on the wire (headers, verbs framing).
  uint64_t wire_message_overhead_bytes = 64;

  // --- Server CPU (single-threaded event loop) ---
  // CPU shards per node. 1 (the default) reproduces the paper's
  // single-threaded servers and keeps every figure byte-identical; larger
  // values model multi-core servers: request handling is homed onto a
  // deterministic shard per key/store (RingServer::HomeShard), two-sided
  // receives land on an RSS-style flow shard, and posting work across
  // shards is an explicit handoff costing cross_shard_handoff_ns.
  // Must be fixed before constructing the Fabric.
  uint32_t cores_per_node = 1;
  // Cost a shard pays to accept work posted by a different shard of the
  // same node (wakeup + queue transfer). Never charged with one core.
  uint64_t cross_shard_handoff_ns = 80;
  // NIC completion coalescing window: 0 (default) delivers every message in
  // its own completion event — required for byte-identical schedules —
  // while a nonzero window rounds each arrival up to the next multiple and
  // drains all of a node's arrivals in that window with one scheduled event
  // (doorbell batching), trading per-message timing granularity for event
  // throughput at fig-scale node counts.
  uint64_t nic_coalesce_ns = 0;
  // Fixed cost to handle any incoming request (dispatch, parsing).
  uint64_t server_recv_ns = 300;
  // Fixed cost of request bookkeeping (hashtable ops, version logic).
  uint64_t server_base_ns = 1300;
  // Posting one send/write work request.
  uint64_t post_send_ns = 250;
  // Replica append handling (metadata insert + bookkeeping; lighter than the
  // coordinator path).
  uint64_t replica_base_ns = 300;
  // Parity update handling before the per-byte GF work (log append,
  // metadata replication, allocation checks).
  uint64_t parity_base_ns = 1000;
  // Processing one replication/parity acknowledgment.
  uint64_t ack_process_ns = 300;
  // Memory copy (heap writes / reads of object payloads).
  double mem_byte_ns = 0.05;  // ~20 GB/s
  // XOR / GF multiply-accumulate per byte (delta computation, parity apply,
  // decode per source block). The paper notes RS is compute-bound.
  double gf_byte_ns = 1.0;  // ~1 GB/s single-threaded table lookups
  // Per-source-byte decode cost on the recovery master. Lower than
  // gf_byte_ns: reconstruction streams cache-hot decode rows and overlaps
  // with block collection; calibrated to Fig. 13's 64 KiB recovery times.
  double decode_byte_ns = 0.15;
  // Applying a replicated metadata entry during recovery.
  uint64_t recovery_entry_ns = 4;

  // --- Client CPU ---
  uint64_t client_base_ns = 2100;  // issue path bookkeeping
  uint64_t client_post_ns = 250;
  double client_put_byte_ns = 1.0;  // value marshalling on puts

  // --- Parity update framing ---
  // "The size of the parity update is larger than the actual request, since
  // the metadata must be replicated along with the update" (§6.1).
  uint64_t parity_update_metadata_bytes = 96;

  // --- Membership / failure handling ---
  uint64_t heartbeat_period_ns = 10 * kMillisecond;
  uint64_t failure_timeout_ns = 35 * kMillisecond;
  uint64_t client_retry_timeout_ns = 300 * kMicrosecond;

  // --- Client retry policy (chaos hardening) ---
  // The first retry fires one flat client_retry_timeout_ns after issue;
  // subsequent waits use decorrelated jitter — uniform in
  // [timeout, 3 * previous_wait), clipped to the cap — so synchronized
  // retry storms from many clients spread out instead of re-colliding.
  uint64_t client_backoff_cap_ns = 10 * kMillisecond;
  // Bounded retry budget: a request older than this fails with kUnavailable
  // rather than retrying forever (0 disables the deadline; the retry count
  // below still bounds it).
  uint64_t client_retry_budget_ns = 20 * kMillisecond;
  uint32_t client_max_retries = 64;
  // Hedged gets: when nonzero, an un-answered get is multicast once this
  // early — well before the retry timeout — to route around a slow or
  // gray-failed coordinator. Mutations are never hedged (they would race
  // their own at-most-once claim for no latency win).
  uint64_t client_hedge_delay_ns = 0;
  // Coordinator-side backup retransmission: while a write's quorum round is
  // un-acked past this period, the coordinator resends the missing replica
  // appends / parity updates (the per-(shard, seq) replay fences make the
  // resends idempotent, and receivers re-ack absorbed duplicates). Client
  // retries cannot drive this — the at-most-once table swallows them — so
  // without it a single lost backup message wedges the key forever. 0
  // disables it (the fault-free default: no timer events, byte-identical
  // schedules); RingRuntime turns it on whenever a fault plan is installed.
  uint64_t write_retransmit_ns = 0;

  // Worst-case failure-detection window: a node that dies right after
  // heartbeating is declared failed once its silence exceeds the timeout,
  // observed at the next detection tick.
  uint64_t detection_window_ns() const {
    return failure_timeout_ns + 2 * heartbeat_period_ns;
  }
  // Worst-case window until a dead *leader* is replaced: the ranked election
  // adds up to half a heartbeat period per candidate rank, then the new
  // leader must detect and handle the failure.
  uint64_t election_window_ns(uint32_t candidates) const {
    return detection_window_ns() +
           candidates * heartbeat_period_ns / 2 + heartbeat_period_ns;
  }

  // --- Baseline systems (Fig. 7c) ---
  // Kernel TCP/IP stack one-way latency for memcached/Cocytus-style systems.
  uint64_t tcp_latency_ns = 25000;
  // HDD-backed log write on RAMCloud-like backups (WDC disks in the paper's
  // cluster; buffered log writes, not full seeks).
  uint64_t hdd_buffer_write_ns = 36000;
};

// A single global default; experiments copy and tweak.
inline constexpr SimParams kDefaultParams{};

}  // namespace ring::sim

#endif  // RING_SRC_SIM_PARAMS_H_
