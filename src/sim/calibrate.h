// Host calibration of the simulator's coding cost model.
//
// The seed SimParams bake in the scalar table-lookup substrate
// (gf_byte_ns = 1.0, ~1 GB/s) the way the paper's numbers bake in
// GF-Complete. With the vectorized kernels the real cost is several times
// lower; this module measures the kernels actually dispatched on this host
// (wall clock, randomized coefficients so the branch predictor and cache
// can't flatter a fixed row) and derives the per-byte constants.
//
// Calibration is strictly opt-in: default SimParams are untouched, so
// figure outputs stay byte-identical unless a caller asks for
// Calibrated(...) — `ringctl calibrate` prints the measurement, and
// `ringctl latency/throughput --calibrate` apply it.
#ifndef RING_SRC_SIM_CALIBRATE_H_
#define RING_SRC_SIM_CALIBRATE_H_

#include <cstddef>
#include <cstdint>

#include "src/gf/gf256.h"
#include "src/sim/params.h"

namespace ring::sim {

struct CodingCalibration {
  // Measured region-op throughputs, bytes per nanosecond (== GB/s).
  double add_bytes_per_ns = 0;     // AddRegion (XOR)
  double mulacc_bytes_per_ns = 0;  // MulAddRegion, random coefficients
  double fused_bytes_per_ns = 0;   // fused RS(3,2) encode, per source byte
  double decode_bytes_per_ns = 0;  // RS(3,2) RecoverData, per source byte
  gf::RegionImpl impl = gf::RegionImpl::kScalar;  // kernel tier measured
  size_t block_bytes = 0;                         // region size timed
};

// Times the active GF kernels and RS(3,2) encode/decode on this host.
// `block_bytes` is the region size (64 KiB matches the paper's block
// recovery unit); each kernel runs for at least `min_run_ns` of wall time.
CodingCalibration MeasureCodingThroughput(size_t block_bytes = 64 * 1024,
                                          uint64_t min_run_ns = 20'000'000);

// Returns `base` with gf_byte_ns set to the measured multiply-accumulate
// cost and decode_byte_ns scaled to keep base's decode/gf ratio (the ratio
// models decode's cache-hot rows + overlap with block collection, which the
// substrate swap does not change).
SimParams Calibrated(const SimParams& base, const CodingCalibration& cal);

}  // namespace ring::sim

#endif  // RING_SRC_SIM_CALIBRATE_H_
