#include "src/sim/simulator.h"

#include <optional>

#include "src/common/logging.h"

namespace ring::sim {

void Simulator::Run() {
  while (queue_.RunNext()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  // Sentinel marker: runs events scheduled before t (and same-time events
  // enqueued before this call), then leaves the clock at t.
  bool stop = false;
  queue_.Schedule(t, [&stop] { stop = true; });
  while (!stop && queue_.RunNext()) {
  }
}

void CpuWorker::Execute(uint64_t cost_ns, std::function<void()> fn) {
  const SimTime start =
      busy_until_ > sim_->now() ? busy_until_ : sim_->now();
  busy_until_ = start + cost_ns;
  consumed_ += cost_ns;
  obs::Hub& hub = sim_->hub();
  if (hub.tracing_enabled()) {
    const uint64_t op = hub.current_op();
    if (start > sim_->now()) {
      hub.tracer().Record("cpu_queue", obs::Category::kQueue, node_, op,
                          sim_->now(), start);
    }
    if (cost_ns > 0) {
      hub.tracer().Record("cpu", obs::Category::kCpu, node_, op, start,
                          busy_until_);
    }
  }
  if (hub.metrics_enabled()) {
    hub.metrics().Inc("cpu.busy_ns", cost_ns, node_);
    if (start > sim_->now()) {
      hub.metrics().Observe("cpu.queue_wait_ns", start - sim_->now(), node_);
    }
    hub.metrics().SetGauge("cpu.backlog_ns",
                           static_cast<int64_t>(busy_until_ - sim_->now()),
                           node_);
  }
  // Race detection: the deferred item runs on this node's CPU; the edge
  // from the enqueuing context (captured now) orders it after its cause.
  analysis::RaceDetector* race = sim_->race();
  std::optional<analysis::VectorClock> edge;
  if (race != nullptr) {
    edge = race->CaptureEdge();
  }
  // Wrap the completion so RING_LOG lines emitted by the work item carry
  // the node they ran on.
  sim_->At(busy_until_, [race, node = node_, edge = std::move(edge),
                         fn = std::move(fn)] {
    analysis::ScopedCpuTask task(race, node,
                                 edge.has_value() ? &*edge : nullptr);
    SetLogNode(static_cast<int32_t>(node));
    fn();
    SetLogNode(kLogNoNode);
  });
}

uint64_t CpuWorker::backlog_ns() const {
  return busy_until_ > sim_->now() ? busy_until_ - sim_->now() : 0;
}

}  // namespace ring::sim
