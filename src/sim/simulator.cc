#include "src/sim/simulator.h"

namespace ring::sim {

void Simulator::Run() {
  while (queue_.RunNext()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  // Sentinel marker: runs events scheduled before t (and same-time events
  // enqueued before this call), then leaves the clock at t.
  bool stop = false;
  queue_.Schedule(t, [&stop] { stop = true; });
  while (!stop && queue_.RunNext()) {
  }
}

void CpuWorker::Execute(uint64_t cost_ns, std::function<void()> fn) {
  const SimTime start =
      busy_until_ > sim_->now() ? busy_until_ : sim_->now();
  busy_until_ = start + cost_ns;
  consumed_ += cost_ns;
  sim_->At(busy_until_, std::move(fn));
}

uint64_t CpuWorker::backlog_ns() const {
  return busy_until_ > sim_->now() ? busy_until_ - sim_->now() : 0;
}

}  // namespace ring::sim
