#include "src/sim/simulator.h"

#include <utility>

#include "src/common/logging.h"

namespace ring::sim {

void Simulator::Run() {
  while (queue_.RunNext()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  // Sentinel marker: runs events scheduled before t (and same-time events
  // enqueued before this call), then leaves the clock at t.
  bool stop = false;
  queue_.Schedule(t, [&stop] { stop = true; });
  while (!stop && queue_.RunNext()) {
  }
}

SimTime CpuWorker::ExecuteOnShard(uint32_t shard, uint64_t cost_ns, Task fn) {
  Shard& core = shards_[shard];
  obs::Hub& hub = sim_->hub();
  const Simulator::ExecContext& exec = sim_->exec();
  if (shards_.size() > 1 && exec.node == static_cast<int32_t>(node_) &&
      exec.shard != shard) {
    // Explicit cross-shard handoff (Envoy-style post between workers): the
    // target shard pays the wakeup/queue cost on top of the item itself.
    cost_ns += sim_->params().cross_shard_handoff_ns;
    ++handoffs_;
    if (hub.metrics_enabled()) {
      hub.metrics().Inc("cpu.handoffs", 1, node_);
    }
  }
  const SimTime start =
      core.busy_until > sim_->now() ? core.busy_until : sim_->now();
  core.busy_until = start + cost_ns;
  core.consumed += cost_ns;
  if (hub.tracing_enabled()) {
    const uint64_t op = hub.current_op();
    if (start > sim_->now()) {
      hub.tracer().Record("cpu_queue", obs::Category::kQueue, node_, op,
                          sim_->now(), start);
    }
    if (cost_ns > 0) {
      hub.tracer().Record("cpu", obs::Category::kCpu, node_, op, start,
                          core.busy_until);
    }
  }
  if (hub.metrics_enabled()) {
    hub.metrics().Inc("cpu.busy_ns", cost_ns, node_);
    if (start > sim_->now()) {
      hub.metrics().Observe("cpu.queue_wait_ns", start - sim_->now(), node_);
    }
    hub.metrics().SetGauge("cpu.backlog_ns",
                           static_cast<int64_t>(core.busy_until - sim_->now()),
                           node_);
    if (shards_.size() > 1) {
      // Per-shard utilization feed for `ringctl simstats`; keyed by a
      // synthetic (node * shards + shard) id. Only emitted with real
      // sharding so single-core metric output stays byte-identical.
      hub.metrics().Inc(
          "cpu.shard_busy_ns", cost_ns,
          node_ * static_cast<uint32_t>(shards_.size()) + shard);
    }
  }
  // Race detection: the deferred item runs on this shard; the edge from the
  // enqueuing context (captured now) orders it after its cause.
  Completion completion;
  completion.fn = std::move(fn);
  analysis::RaceDetector* race = sim_->race();
  if (race != nullptr) {
    completion.edge = race->CaptureEdge();
  }
  core.fifo.push_back(std::move(completion));
  // Thin event: the payload stays in the FIFO. Completions for one shard
  // are scheduled with nondecreasing times in seq order, so the queue fires
  // them front-first.
  sim_->At(core.busy_until,
           [this, shard, generation = generation_] {
             RunCompletion(shard, generation);
           });
  return core.busy_until;
}

void CpuWorker::RunCompletion(uint32_t shard, uint64_t generation) {
  if (generation != generation_) {
    return;  // Reset() cancelled everything scheduled under the old epoch
  }
  Shard& core = shards_[shard];
  Completion completion = std::move(core.fifo.front());
  core.fifo.pop_front();
  analysis::ScopedCpuTask task(
      sim_->race(), node_,
      completion.edge.has_value() ? &*completion.edge : nullptr, shard);
  // Wrap the completion so RING_LOG lines emitted by the work item carry
  // the node they ran on, and so fabric verbs it posts attribute to this
  // shard.
  const Simulator::ExecContext prev = sim_->exec();
  sim_->set_exec({static_cast<int32_t>(node_), shard});
  SetLogNode(static_cast<int32_t>(node_));
  if (completion.fn) {
    completion.fn();
  }
  SetLogNode(kLogNoNode);
  sim_->set_exec(prev);
}

uint64_t CpuWorker::consumed_ns() const {
  uint64_t total = 0;
  for (const Shard& core : shards_) {
    total += core.consumed;
  }
  return total;
}

uint64_t CpuWorker::backlog_ns() const {
  uint64_t worst = 0;
  for (const Shard& core : shards_) {
    if (core.busy_until > sim_->now()) {
      worst = worst > core.busy_until - sim_->now()
                  ? worst
                  : core.busy_until - sim_->now();
    }
  }
  return worst;
}

void CpuWorker::Reset() {
  ++generation_;
  for (Shard& core : shards_) {
    core.busy_until = 0;
    core.consumed = 0;
    core.fifo.clear();
  }
}

}  // namespace ring::sim
