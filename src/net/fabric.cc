#include "src/net/fabric.h"

#include <optional>
#include <utility>

#include "src/analysis/race.h"
#include "src/fault/fault.h"
#include "src/obs/hub.h"

namespace ring::net {

Fabric::Fabric(sim::Simulator* simulator, uint32_t num_nodes)
    : sim_(simulator),
      alive_(num_nodes, true),
      egress_busy_(num_nodes, 0) {
  cpus_.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    cpus_.push_back(std::make_unique<sim::CpuWorker>(simulator, i));
  }
}

uint64_t Fabric::SerializationNs(uint64_t payload_bytes) const {
  const auto& p = sim_->params();
  return static_cast<uint64_t>(
      static_cast<double>(payload_bytes + p.wire_message_overhead_bytes) /
      p.link_bytes_per_ns);
}

Fabric::Departure Fabric::Depart(NodeId src, NodeId dst,
                                 uint64_t payload_bytes) {
  const sim::SimTime ser_start =
      egress_busy_[src] > sim_->now() ? egress_busy_[src] : sim_->now();
  egress_busy_[src] = ser_start + SerializationNs(payload_bytes);
  ++messages_sent_;
  bytes_sent_ += payload_bytes;
  obs::Hub& hub = sim_->hub();
  if (hub.tracing_enabled() && ser_start > sim_->now()) {
    hub.tracer().Record("egress_queue", obs::Category::kQueue, src,
                        hub.current_op(), sim_->now(), ser_start);
  }
  if (hub.metrics_enabled()) {
    hub.metrics().Inc("net.messages", 1, src);
    hub.metrics().CountLink(
        src, dst, payload_bytes + sim_->params().wire_message_overhead_bytes);
  }
  const uint64_t jitter = sim_->params().wire_jitter_ns;
  const sim::SimTime arrival = egress_busy_[src] +
                               (jitter ? sim_->rng().NextBelow(jitter) : 0) +
                               sim_->params().wire_latency_ns;
  return Departure{ser_start, arrival};
}

bool Fabric::paused(NodeId node) const {
  return injector_ != nullptr && injector_->paused(node);
}

void Fabric::DeliverSend(NodeId dst, uint64_t op,
                         std::optional<analysis::VectorClock> edge,
                         std::function<void()> handler) {
  if (!alive_[dst]) {
    return;  // fail-stop: dead nodes neither receive nor respond
  }
  if (injector_ != nullptr && injector_->paused(dst)) {
    // Gray failure: the NIC accepted the message but the wedged process
    // makes no progress. Buffer the delivery; the injector replays it (in
    // arrival order) at resume, or discards it if the node crashes instead.
    injector_->Defer(dst, [this, dst, op, edge = std::move(edge),
                           handler = std::move(handler)]() mutable {
      DeliverSend(dst, op, std::move(edge), std::move(handler));
    });
    return;
  }
  // Re-establish the sender's op context around the receive-cost charge so
  // the queue/busy spans it records stitch into the same distributed trace.
  obs::ScopedOp scope(sim_->hub(), op);
  // Carrier frame: CpuWorker::Execute captures the deferred handler's edge
  // from the current context, which must be the sender's clock here, not
  // the event loop's.
  analysis::RaceDetector* race = sim_->race();
  analysis::ScopedOneSidedTask carry(race,
                                     edge.has_value() ? &*edge : nullptr);
  cpus_[dst]->Execute(sim_->params().server_recv_ns, std::move(handler));
}

void Fabric::Send(NodeId src, NodeId dst, uint64_t payload_bytes,
                  std::function<void()> handler) {
  if (!alive_[src]) {
    return;
  }
  uint64_t extra_delay = 0;
  uint64_t dup_delay = 0;
  bool duplicate = false;
  if (injector_ != nullptr) {
    if (injector_->paused(src)) {
      return;  // a wedged process posts no sends
    }
    const fault::Verdict v = injector_->OnTwoSided(src, dst);
    // Injected verdicts go to the flight recorder with the op context of
    // the sender, tying each lost/duped/slowed message to its operation.
    if (v.drop) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "msg_dropped", src,
                                    sim_->hub().current_op(), dst);
      return;
    }
    if (v.duplicate) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "msg_duplicated", src,
                                    sim_->hub().current_op(), dst);
    }
    if (v.extra_delay_ns != 0) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "msg_delayed", src,
                                    sim_->hub().current_op(), dst,
                                    v.extra_delay_ns);
    }
    extra_delay = v.extra_delay_ns;
    duplicate = v.duplicate;
    dup_delay = v.dup_delay_ns;
  }
  obs::Hub& hub = sim_->hub();
  const uint64_t op = hub.current_op();
  const Departure d = Depart(src, dst, payload_bytes);
  hub.tracer().Record("wire", obs::Category::kNetwork, src, op, d.ser_start,
                      d.arrival);
  // Message edge: the receive handler is ordered after everything the sender
  // did before issuing.
  analysis::RaceDetector* race = sim_->race();
  std::optional<analysis::VectorClock> edge;
  if (race != nullptr) {
    edge = race->CaptureEdge();
  }
  if (duplicate) {
    sim_->At(d.arrival + dup_delay, [this, dst, op, edge, handler]() mutable {
      DeliverSend(dst, op, std::move(edge), std::move(handler));
    });
  }
  sim_->At(d.arrival + extra_delay,
           [this, dst, op, edge = std::move(edge),
            handler = std::move(handler)]() mutable {
             DeliverSend(dst, op, std::move(edge), std::move(handler));
           });
}

void Fabric::Write(NodeId src, NodeId dst, uint64_t payload_bytes,
                   std::function<void()> apply,
                   std::function<void()> on_complete) {
  if (!alive_[src]) {
    return;
  }
  uint64_t extra_delay = 0;
  if (injector_ != nullptr) {
    if (injector_->paused(src)) {
      return;  // a wedged process posts no work requests
    }
    // One-sided: the verb is hardware-to-hardware, so a *paused* destination
    // still serves it (gray failure leaves the NIC alive). A dropped verb
    // models a torn QP: the issuer never sees a completion.
    const fault::Verdict v = injector_->OnOneSided(src, dst);
    if (v.drop) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "rdma_write_dropped",
                                    src, sim_->hub().current_op(), dst);
      return;
    }
    extra_delay = v.extra_delay_ns;
  }
  obs::Hub& hub = sim_->hub();
  const uint64_t op = hub.current_op();
  Departure d = Depart(src, dst, payload_bytes);
  d.arrival += extra_delay;
  hub.tracer().Record("rdma_write", obs::Category::kNetwork, src, op,
                      d.ser_start, d.arrival);
  analysis::RaceDetector* race = sim_->race();
  std::optional<analysis::VectorClock> edge;
  if (race != nullptr) {
    edge = race->CaptureEdge();
  }
  sim_->At(d.arrival, [this, src, dst, op, race, edge = std::move(edge),
                       apply = std::move(apply),
                       on_complete = std::move(on_complete)]() mutable {
    if (!alive_[dst]) {
      return;  // no ack: the sender's completion never fires
    }
    obs::ScopedOp scope(sim_->hub(), op);
    if (apply) {
      // NIC DMA: remote memory changes without CPU involvement, so the
      // accesses it performs carry the issuer's clock only — they are never
      // joined into the destination CPU.
      analysis::ScopedOneSidedTask dma(race,
                                       edge.has_value() ? &*edge : nullptr);
      apply();
    }
    // Hardware ack back to the source.
    const uint64_t latency = sim_->params().wire_latency_ns;
    sim_->hub().tracer().Record("rdma_ack", obs::Category::kNetwork, dst, op,
                                sim_->now(), sim_->now() + latency);
    sim_->After(latency, [this, src, op, race, edge = std::move(edge),
                          on_complete = std::move(on_complete)]() mutable {
      if (alive_[src] && on_complete) {
        obs::ScopedOp ack_scope(sim_->hub(), op);
        // Completion is observed by the issuing CPU polling its queue.
        analysis::ScopedCpuTask done(race, src,
                                     edge.has_value() ? &*edge : nullptr);
        on_complete();
      }
    });
  });
}

void Fabric::Read(NodeId src, NodeId dst, uint64_t response_bytes,
                  std::function<void()> fetch,
                  std::function<void()> on_complete) {
  if (!alive_[src]) {
    return;
  }
  uint64_t extra_delay = 0;
  if (injector_ != nullptr) {
    if (injector_->paused(src)) {
      return;  // a wedged process posts no work requests
    }
    const fault::Verdict v = injector_->OnOneSided(src, dst);
    if (v.drop) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "rdma_read_dropped",
                                    src, sim_->hub().current_op(), dst);
      return;
    }
    extra_delay = v.extra_delay_ns;
  }
  obs::Hub& hub = sim_->hub();
  const uint64_t op = hub.current_op();
  // Request message is small (a work request descriptor).
  Departure req = Depart(src, dst, 0);
  req.arrival += extra_delay;
  hub.tracer().Record("rdma_read_req", obs::Category::kNetwork, src, op,
                      req.ser_start, req.arrival);
  analysis::RaceDetector* race = sim_->race();
  std::optional<analysis::VectorClock> edge;
  if (race != nullptr) {
    edge = race->CaptureEdge();
  }
  sim_->At(req.arrival, [this, src, dst, response_bytes, op, race,
                         edge = std::move(edge), fetch = std::move(fetch),
                         on_complete = std::move(on_complete)]() mutable {
    if (!alive_[dst]) {
      return;
    }
    obs::ScopedOp scope(sim_->hub(), op);
    if (fetch) {
      // One-sided fetch: reads remote memory under the issuer's clock only.
      analysis::ScopedOneSidedTask dma(race,
                                       edge.has_value() ? &*edge : nullptr);
      fetch();
    }
    const Departure resp = Depart(dst, src, response_bytes);
    sim_->hub().tracer().Record("rdma_read_resp", obs::Category::kNetwork,
                                dst, op, resp.ser_start, resp.arrival);
    sim_->At(resp.arrival, [this, src, op, race, edge = std::move(edge),
                            on_complete = std::move(on_complete)]() mutable {
      if (alive_[src] && on_complete) {
        obs::ScopedOp resp_scope(sim_->hub(), op);
        analysis::ScopedCpuTask done(race, src,
                                     edge.has_value() ? &*edge : nullptr);
        on_complete();
      }
    });
  });
}

}  // namespace ring::net
