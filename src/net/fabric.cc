#include "src/net/fabric.h"

#include <utility>

#include "src/analysis/race.h"
#include "src/fault/fault.h"
#include "src/obs/hub.h"

namespace ring::net {

Fabric::Fabric(sim::Simulator* simulator, uint32_t num_nodes)
    : sim_(simulator),
      alive_(num_nodes, true),
      egress_busy_(num_nodes, 0),
      nics_(num_nodes) {
  const uint32_t cores = simulator->params().cores_per_node;
  cpus_.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    cpus_.push_back(std::make_unique<sim::CpuWorker>(simulator, i, cores));
  }
  if (analysis::RaceDetector* race = simulator->race(); race != nullptr) {
    race->SetCoresPerNode(cores);
  }
}

uint64_t Fabric::SerializationNs(uint64_t payload_bytes) const {
  const auto& p = sim_->params();
  return static_cast<uint64_t>(
      static_cast<double>(payload_bytes + p.wire_message_overhead_bytes) /
      p.link_bytes_per_ns);
}

Fabric::Departure Fabric::Depart(NodeId src, NodeId dst,
                                 uint64_t payload_bytes) {
  const sim::SimTime ser_start =
      egress_busy_[src] > sim_->now() ? egress_busy_[src] : sim_->now();
  egress_busy_[src] = ser_start + SerializationNs(payload_bytes);
  ++messages_sent_;
  bytes_sent_ += payload_bytes;
  obs::Hub& hub = sim_->hub();
  if (hub.tracing_enabled() && ser_start > sim_->now()) {
    hub.tracer().Record("egress_queue", obs::Category::kQueue, src,
                        hub.current_op(), sim_->now(), ser_start);
  }
  if (hub.metrics_enabled()) {
    hub.metrics().Inc("net.messages", 1, src);
    hub.metrics().CountLink(
        src, dst, payload_bytes + sim_->params().wire_message_overhead_bytes);
  }
  const uint64_t jitter = sim_->params().wire_jitter_ns;
  const sim::SimTime arrival = egress_busy_[src] +
                               (jitter ? sim_->rng().NextBelow(jitter) : 0) +
                               sim_->params().wire_latency_ns;
  return Departure{ser_start, arrival};
}

bool Fabric::paused(NodeId node) const {
  return injector_ != nullptr && injector_->paused(node);
}

std::unique_ptr<analysis::VectorClock> Fabric::CaptureEdge() {
  analysis::RaceDetector* race = sim_->race();
  if (race == nullptr) {
    return nullptr;
  }
  return std::make_unique<analysis::VectorClock>(race->CaptureEdge());
}

uint32_t Fabric::IssuerShard(NodeId src) const {
  const sim::Simulator::ExecContext& exec = sim_->exec();
  return exec.node == static_cast<int32_t>(src) ? exec.shard : 0;
}

void Fabric::Enqueue(NodeId dst, sim::SimTime arrival, Pending p) {
  const uint64_t window = sim_->params().nic_coalesce_ns;
  const sim::SimTime tick =
      window == 0 ? arrival : (arrival + window - 1) / window * window;
  NicQueue& nic = nics_[dst];
  auto it = nic.batches.find(tick);
  const bool fresh = it == nic.batches.end();
  if (fresh) {
    Batch batch;
    if (!nic.spare.empty()) {
      batch = std::move(nic.spare.back());
      nic.spare.pop_back();
    }
    it = nic.batches.emplace(tick, std::move(batch)).first;
  }
  if (mc_ != nullptr && window == 0) {
    // Model-checked mode: each doorbell addresses its item by index so the
    // controller may run them in any order (or never), and carries a tag the
    // explorer uses to identify the delivery across replays.
    const size_t idx = it->second.items.size();
    const uint64_t tag =
        mc_->OnDelivery(p.issuer, dst, static_cast<uint8_t>(p.kind));
    it->second.items.push_back(std::move(p));
    sim_->AtTagged(
        tick, [this, dst, tick, idx] { DrainIndexed(dst, tick, idx); }, tag);
    return;
  }
  it->second.items.push_back(std::move(p));
  if (window == 0) {
    // Exact mode: one doorbell per delivery, in issue order, so the event
    // schedule matches the classic per-event fabric byte for byte. The
    // doorbells fire in (tick, seq) order and each pops its batch's front.
    sim_->At(tick, [this, dst, tick] { DrainOne(dst, tick); });
  } else if (fresh) {
    sim_->At(tick, [this, dst, tick] { DrainAll(dst, tick); });
  } else {
    ++coalesced_deliveries_;
  }
}

void Fabric::FinishBatch(NicQueue& nic, sim::SimTime tick) {
  auto it = nic.batches.find(tick);
  Batch batch = std::move(it->second);
  nic.batches.erase(it);
  batch.items.clear();
  batch.cursor = 0;
  if (nic.spare.size() < 8) {
    nic.spare.push_back(std::move(batch));
  }
}

void Fabric::DrainOne(NodeId dst, sim::SimTime tick) {
  NicQueue& nic = nics_[dst];
  const auto it = nic.batches.find(tick);
  if (it == nic.batches.end()) {
    return;
  }
  Pending p = std::move(it->second.items[it->second.cursor]);
  ++it->second.cursor;
  // `it` dies here: processing may enqueue into this NIC and rehash the map.
  Process(dst, p);
  const auto again = nic.batches.find(tick);
  if (again != nic.batches.end() &&
      again->second.cursor == again->second.items.size()) {
    FinishBatch(nic, tick);
  }
}

void Fabric::DrainIndexed(NodeId dst, sim::SimTime tick, size_t idx) {
  NicQueue& nic = nics_[dst];
  const auto it = nic.batches.find(tick);
  if (it == nic.batches.end()) {
    return;
  }
  Pending p = std::move(it->second.items[idx]);
  // In MC mode the cursor counts consumed items rather than tracking FIFO
  // position: doorbells arrive in controller order, each naming its index.
  ++it->second.cursor;
  // `it` dies here: processing may enqueue into this NIC and rehash the map.
  Process(dst, p);
  const auto again = nic.batches.find(tick);
  if (again != nic.batches.end() &&
      again->second.cursor == again->second.items.size()) {
    FinishBatch(nic, tick);
  }
}

void Fabric::DrainAll(NodeId dst, sim::SimTime tick) {
  NicQueue& nic = nics_[dst];
  for (;;) {
    const auto it = nic.batches.find(tick);
    if (it == nic.batches.end()) {
      return;
    }
    if (it->second.cursor == it->second.items.size()) {
      FinishBatch(nic, tick);
      return;
    }
    Pending p = std::move(it->second.items[it->second.cursor]);
    ++it->second.cursor;
    Process(dst, p);
  }
}

void Fabric::DeliverTwoSided(NodeId dst, Pending& p) {
  if (!alive_[dst]) {
    return;  // fail-stop: dead nodes neither receive nor respond
  }
  if (injector_ != nullptr && injector_->paused(dst)) {
    // Gray failure: the NIC accepted the message but the wedged process
    // makes no progress. Buffer the delivery; the injector replays it (in
    // arrival order) at resume, or discards it if the node crashes instead.
    auto parked = std::make_shared<Pending>(std::move(p));
    injector_->Defer(dst, [this, dst, parked] {
      DeliverTwoSided(dst, *parked);
    });
    return;
  }
  // Re-establish the sender's op context around the receive-cost charge so
  // the queue/busy spans it records stitch into the same distributed trace.
  obs::ScopedOp scope(sim_->hub(), p.op);
  // Carrier frame: CpuWorker::Execute captures the deferred handler's edge
  // from the current context, which must be the sender's clock here, not
  // the event loop's.
  analysis::ScopedOneSidedTask carry(sim_->race(), p.edge.get());
  // RSS-style flow steering: a given sender's traffic always lands on the
  // same receive shard (shard 0 with a single core).
  sim::CpuWorker& cpu = *cpus_[dst];
  cpu.ExecuteOnShard(cpu.ShardForHash(p.peer), sim_->params().server_recv_ns,
                     std::move(p.primary));
}

void Fabric::Process(NodeId dst, Pending& p) {
  switch (p.kind) {
    case Pending::Kind::kTwoSided:
      DeliverTwoSided(dst, p);
      return;
    case Pending::Kind::kWriteApply: {
      if (!alive_[dst]) {
        return;  // no ack: the sender's completion never fires
      }
      obs::ScopedOp scope(sim_->hub(), p.op);
      if (p.primary) {
        // NIC DMA: remote memory changes without CPU involvement, so the
        // accesses it performs carry the issuer's clock only — they are
        // never joined into the destination CPU.
        analysis::ScopedOneSidedTask dma(sim_->race(), p.edge.get());
        p.primary();
      }
      // Hardware ack back to the source.
      const uint64_t latency = sim_->params().wire_latency_ns;
      sim_->hub().tracer().Record("rdma_ack", obs::Category::kNetwork, dst,
                                  p.op, sim_->now(), sim_->now() + latency);
      Pending done;
      done.kind = Pending::Kind::kCompletion;
      done.peer = p.peer;
      done.peer_shard = p.peer_shard;
      done.issuer = dst;
      done.op = p.op;
      done.primary = std::move(p.secondary);
      done.edge = std::move(p.edge);
      Enqueue(p.peer, sim_->now() + latency, std::move(done));
      return;
    }
    case Pending::Kind::kReadServe: {
      if (!alive_[dst]) {
        return;
      }
      obs::ScopedOp scope(sim_->hub(), p.op);
      if (p.primary) {
        // One-sided fetch: reads remote memory under the issuer's clock only.
        analysis::ScopedOneSidedTask dma(sim_->race(), p.edge.get());
        p.primary();
      }
      const Departure resp = Depart(dst, p.peer, p.response_bytes);
      sim_->hub().tracer().Record("rdma_read_resp", obs::Category::kNetwork,
                                  dst, p.op, resp.ser_start, resp.arrival);
      Pending done;
      done.kind = Pending::Kind::kCompletion;
      done.peer = p.peer;
      done.peer_shard = p.peer_shard;
      done.issuer = dst;
      done.op = p.op;
      done.primary = std::move(p.secondary);
      done.edge = std::move(p.edge);
      Enqueue(p.peer, resp.arrival, std::move(done));
      return;
    }
    case Pending::Kind::kCompletion:
      if (alive_[dst] && p.primary) {
        obs::ScopedOp scope(sim_->hub(), p.op);
        // Completion is observed by the issuing CPU shard polling its queue.
        analysis::ScopedCpuTask done(sim_->race(), dst, p.edge.get(),
                                     p.peer_shard);
        p.primary();
      }
      return;
  }
}

void Fabric::Send(NodeId src, NodeId dst, uint64_t payload_bytes,
                  sim::Task handler) {
  if (!alive_[src]) {
    return;
  }
  uint64_t extra_delay = 0;
  uint64_t dup_delay = 0;
  bool duplicate = false;
  if (injector_ != nullptr) {
    if (injector_->paused(src)) {
      return;  // a wedged process posts no sends
    }
    const fault::Verdict v = injector_->OnTwoSided(src, dst);
    // Injected verdicts go to the flight recorder with the op context of
    // the sender, tying each lost/duped/slowed message to its operation.
    if (v.drop) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "msg_dropped", src,
                                    sim_->hub().current_op(), dst);
      return;
    }
    if (v.duplicate) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "msg_duplicated", src,
                                    sim_->hub().current_op(), dst);
    }
    if (v.extra_delay_ns != 0) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "msg_delayed", src,
                                    sim_->hub().current_op(), dst,
                                    v.extra_delay_ns);
    }
    extra_delay = v.extra_delay_ns;
    duplicate = v.duplicate;
    dup_delay = v.dup_delay_ns;
  }
  obs::Hub& hub = sim_->hub();
  const uint64_t op = hub.current_op();
  const Departure d = Depart(src, dst, payload_bytes);
  hub.tracer().Record("wire", obs::Category::kNetwork, src, op, d.ser_start,
                      d.arrival);
  // Message edge: the receive handler is ordered after everything the sender
  // did before issuing.
  std::unique_ptr<analysis::VectorClock> edge = CaptureEdge();
  if (duplicate) {
    // Chaos-only: the duplicate is an independent wire copy, so it runs an
    // independent copy of the handler (handlers may consume their captures
    // when invoked; sharing one closure across both deliveries would hand
    // the second one moved-from state).
    Pending dup;
    dup.kind = Pending::Kind::kTwoSided;
    dup.peer = src;
    dup.issuer = src;
    dup.op = op;
    dup.primary = handler.Clone();
    if (edge != nullptr) {
      dup.edge = std::make_unique<analysis::VectorClock>(*edge);
    }
    Enqueue(dst, d.arrival + dup_delay, std::move(dup));
  }
  Pending p;
  p.kind = Pending::Kind::kTwoSided;
  p.peer = src;
  p.issuer = src;
  p.op = op;
  p.primary = std::move(handler);
  p.edge = std::move(edge);
  Enqueue(dst, d.arrival + extra_delay, std::move(p));
}

void Fabric::Write(NodeId src, NodeId dst, uint64_t payload_bytes,
                   sim::Task apply, sim::Task on_complete) {
  if (!alive_[src]) {
    return;
  }
  uint64_t extra_delay = 0;
  if (injector_ != nullptr) {
    if (injector_->paused(src)) {
      return;  // a wedged process posts no work requests
    }
    // One-sided: the verb is hardware-to-hardware, so a *paused* destination
    // still serves it (gray failure leaves the NIC alive). A dropped verb
    // models a torn QP: the issuer never sees a completion.
    const fault::Verdict v = injector_->OnOneSided(src, dst);
    if (v.drop) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "rdma_write_dropped",
                                    src, sim_->hub().current_op(), dst);
      return;
    }
    extra_delay = v.extra_delay_ns;
  }
  obs::Hub& hub = sim_->hub();
  const uint64_t op = hub.current_op();
  Departure d = Depart(src, dst, payload_bytes);
  d.arrival += extra_delay;
  hub.tracer().Record("rdma_write", obs::Category::kNetwork, src, op,
                      d.ser_start, d.arrival);
  Pending p;
  p.kind = Pending::Kind::kWriteApply;
  p.peer = src;
  p.issuer = src;
  p.peer_shard = IssuerShard(src);
  p.op = op;
  p.primary = std::move(apply);
  p.secondary = std::move(on_complete);
  p.edge = CaptureEdge();
  Enqueue(dst, d.arrival, std::move(p));
}

void Fabric::Read(NodeId src, NodeId dst, uint64_t response_bytes,
                  sim::Task fetch, sim::Task on_complete) {
  if (!alive_[src]) {
    return;
  }
  uint64_t extra_delay = 0;
  if (injector_ != nullptr) {
    if (injector_->paused(src)) {
      return;  // a wedged process posts no work requests
    }
    const fault::Verdict v = injector_->OnOneSided(src, dst);
    if (v.drop) {
      sim_->hub().recorder().Record(obs::RecKind::kNet, "rdma_read_dropped",
                                    src, sim_->hub().current_op(), dst);
      return;
    }
    extra_delay = v.extra_delay_ns;
  }
  obs::Hub& hub = sim_->hub();
  const uint64_t op = hub.current_op();
  // Request message is small (a work request descriptor).
  Departure req = Depart(src, dst, 0);
  req.arrival += extra_delay;
  hub.tracer().Record("rdma_read_req", obs::Category::kNetwork, src, op,
                      req.ser_start, req.arrival);
  Pending p;
  p.kind = Pending::Kind::kReadServe;
  p.peer = src;
  p.issuer = src;
  p.peer_shard = IssuerShard(src);
  p.op = op;
  p.response_bytes = response_bytes;
  p.primary = std::move(fetch);
  p.secondary = std::move(on_complete);
  p.edge = CaptureEdge();
  Enqueue(dst, req.arrival, std::move(p));
}

}  // namespace ring::net
