#include "src/net/fabric.h"

#include <utility>

namespace ring::net {

Fabric::Fabric(sim::Simulator* simulator, uint32_t num_nodes)
    : sim_(simulator),
      alive_(num_nodes, true),
      egress_busy_(num_nodes, 0) {
  cpus_.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    cpus_.push_back(std::make_unique<sim::CpuWorker>(simulator));
  }
}

uint64_t Fabric::SerializationNs(uint64_t payload_bytes) const {
  const auto& p = sim_->params();
  return static_cast<uint64_t>(
      static_cast<double>(payload_bytes + p.wire_message_overhead_bytes) /
      p.link_bytes_per_ns);
}

sim::SimTime Fabric::Depart(NodeId src, uint64_t payload_bytes) {
  const sim::SimTime start =
      egress_busy_[src] > sim_->now() ? egress_busy_[src] : sim_->now();
  egress_busy_[src] = start + SerializationNs(payload_bytes);
  ++messages_sent_;
  bytes_sent_ += payload_bytes;
  const uint64_t jitter = sim_->params().wire_jitter_ns;
  return egress_busy_[src] + (jitter ? sim_->rng().NextBelow(jitter) : 0);
}

void Fabric::Send(NodeId src, NodeId dst, uint64_t payload_bytes,
                  std::function<void()> handler) {
  if (!alive_[src]) {
    return;
  }
  const sim::SimTime arrival =
      Depart(src, payload_bytes) + sim_->params().wire_latency_ns;
  sim_->At(arrival, [this, dst, handler = std::move(handler)]() mutable {
    if (!alive_[dst]) {
      return;  // fail-stop: dead nodes neither receive nor respond
    }
    cpus_[dst]->Execute(sim_->params().server_recv_ns, std::move(handler));
  });
}

void Fabric::Write(NodeId src, NodeId dst, uint64_t payload_bytes,
                   std::function<void()> apply,
                   std::function<void()> on_complete) {
  if (!alive_[src]) {
    return;
  }
  const sim::SimTime arrival =
      Depart(src, payload_bytes) + sim_->params().wire_latency_ns;
  sim_->At(arrival, [this, src, dst, apply = std::move(apply),
                     on_complete = std::move(on_complete)]() mutable {
    if (!alive_[dst]) {
      return;  // no ack: the sender's completion never fires
    }
    if (apply) {
      apply();  // NIC DMA: remote memory changes without CPU involvement
    }
    // Hardware ack back to the source.
    sim_->After(sim_->params().wire_latency_ns,
                [this, src, on_complete = std::move(on_complete)]() mutable {
                  if (alive_[src] && on_complete) {
                    on_complete();
                  }
                });
  });
}

void Fabric::Read(NodeId src, NodeId dst, uint64_t response_bytes,
                  std::function<void()> fetch,
                  std::function<void()> on_complete) {
  if (!alive_[src]) {
    return;
  }
  // Request message is small (a work request descriptor).
  const sim::SimTime arrival =
      Depart(src, 0) + sim_->params().wire_latency_ns;
  sim_->At(arrival, [this, src, dst, response_bytes,
                     fetch = std::move(fetch),
                     on_complete = std::move(on_complete)]() mutable {
    if (!alive_[dst]) {
      return;
    }
    if (fetch) {
      fetch();
    }
    const sim::SimTime back = Depart(dst, response_bytes) +
                              sim_->params().wire_latency_ns;
    sim_->At(back, [this, src, on_complete = std::move(on_complete)]() mutable {
      if (alive_[src] && on_complete) {
        on_complete();
      }
    });
  });
}

}  // namespace ring::net
