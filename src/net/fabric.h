// Simulated RDMA fabric.
//
// Substitutes for the paper's InfiniBand cluster + libibverbs. Endpoints are
// nodes with N-shard CPUs (sim::CpuWorker); the fabric models
//   - per-message one-way wire latency,
//   - per-byte link bandwidth with egress serialization (a NIC pushes one
//     message at a time),
//   - fail-stop endpoints (messages to/from dead nodes are dropped).
// Two delivery modes mirror the verbs the paper relies on:
//   - Send (two-sided): consumes receiver CPU before the handler runs —
//     the normal request path.
//   - Write/Read (one-sided): "performed entirely by the hardware"; no
//     remote CPU is charged. Ring uses this to offload replication traffic
//     from redundant nodes (§6).
//
// Delivery is structured as per-destination NIC completion queues: each
// in-flight message parks its payload (handler closure, op context, race
// edge) in the destination's CQ keyed by arrival tick, and the event queue
// carries only thin doorbell events. With nic_coalesce_ns == 0 (default)
// every message still gets its own doorbell — schedules stay byte-identical
// to the classic per-event fabric — while a nonzero window batches all of a
// node's arrivals per window behind one doorbell (completion coalescing).
#ifndef RING_SRC_NET_FABRIC_H_
#define RING_SRC_NET_FABRIC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/analysis/race.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace ring::fault {
class FaultInjector;
}  // namespace ring::fault

namespace ring::net {

using NodeId = uint32_t;

// Model-checker hook (src/mc): assigns a schedule tag to every delivery the
// fabric parks, so the EventQueue's ScheduleController can permute or drop
// the doorbells. Tags are handed out in registration order — runs that share
// a decision prefix perform identical registrations, so tags are stable
// across replays.
class DeliveryTagger {
 public:
  virtual ~DeliveryTagger() = default;
  // `kind` is the Pending::Kind of the parked delivery, as uint8_t so the
  // private enum stays private.
  virtual uint64_t OnDelivery(NodeId issuer, NodeId dst, uint8_t kind) = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulator* simulator, uint32_t num_nodes);

  sim::Simulator* simulator() { return sim_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(cpus_.size()); }

  // Per-node CPU model (servers and clients alike).
  sim::CpuWorker& cpu(NodeId node) { return *cpus_[node]; }

  // Fail-stop control.
  void Kill(NodeId node) { alive_[node] = false; }
  void Revive(NodeId node) { alive_[node] = true; }
  bool alive(NodeId node) const { return alive_[node]; }

  // Chaos injection (src/fault). Null keeps every fast path one branch away
  // from the injection-free behaviour — required for determinism_test.
  void set_injector(fault::FaultInjector* injector) { injector_ = injector; }
  fault::FaultInjector* injector() { return injector_; }
  // Model-checker tagger (src/mc). Null keeps the doorbell path byte-identical
  // to the untagged fabric; only ring-mc explorations install one.
  void set_mc_tagger(DeliveryTagger* tagger) { mc_ = tagger; }
  DeliveryTagger* mc_tagger() { return mc_; }
  // Gray failure: the node's CPU is wedged but its NIC still answers
  // one-sided verbs and buffers received messages until resume.
  bool paused(NodeId node) const;

  // Two-sided send: after egress serialization + wire latency, charges
  // `server_recv_ns` on the destination CPU and runs `handler`.
  // Dropped silently when either endpoint is dead at the relevant moment.
  void Send(NodeId src, NodeId dst, uint64_t payload_bytes, sim::Task handler);

  // One-sided RDMA write: the payload lands at the destination without
  // involving its CPU; `apply` runs at arrival (NIC DMA), `on_complete`
  // runs at the source once the hardware ack returns.
  void Write(NodeId src, NodeId dst, uint64_t payload_bytes, sim::Task apply,
             sim::Task on_complete);

  // One-sided RDMA read: `fetch` runs at the destination at request arrival
  // (no remote CPU), `on_complete` runs at the source after `response_bytes`
  // travel back.
  void Read(NodeId src, NodeId dst, uint64_t response_bytes, sim::Task fetch,
            sim::Task on_complete);

  // Transfer time of one message on the wire (serialization only).
  uint64_t SerializationNs(uint64_t payload_bytes) const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  // Deliveries that shared a doorbell with an earlier same-window arrival
  // (always 0 with nic_coalesce_ns == 0).
  uint64_t coalesced_deliveries() const { return coalesced_deliveries_; }

 private:
  // One parked delivery in a destination's completion queue.
  struct Pending {
    enum class Kind : uint8_t {
      kTwoSided,    // charge server_recv_ns on dst, run handler
      kWriteApply,  // run apply as NIC DMA, then schedule the ack
      kReadServe,   // run fetch as NIC DMA, then send the response
      kCompletion,  // run on_complete on the issuing node/shard
    };
    Kind kind = Kind::kTwoSided;
    NodeId peer = 0;        // issuer (kWriteApply/kReadServe) / poller (kCompletion)
    uint32_t peer_shard = 0;  // issuing CPU shard for the completion
    // Node whose action caused this delivery (for a completion: the remote
    // node that generated the ack/response). Feeds the MC tagger's
    // happens-before bookkeeping; unused without one.
    NodeId issuer = 0;
    uint64_t op = 0;
    uint64_t response_bytes = 0;
    sim::Task primary;    // handler / apply / fetch / on_complete
    sim::Task secondary;  // on_complete riding behind apply/fetch
    std::unique_ptr<analysis::VectorClock> edge;
  };
  struct Batch {
    std::vector<Pending> items;
    size_t cursor = 0;
  };
  struct NicQueue {
    // Keyed lookups only (never iterated): deterministic despite the
    // unordered container.
    std::unordered_map<sim::SimTime, Batch> batches;
    std::vector<Batch> spare;
  };

  // Egress serialization on src's NIC: when the message started serializing
  // and when it arrives at dst (serialization + jitter + wire latency).
  // Records the egress-queue span and per-link byte counters.
  struct Departure {
    sim::SimTime ser_start;
    sim::SimTime arrival;
  };
  Departure Depart(NodeId src, NodeId dst, uint64_t payload_bytes);

  std::unique_ptr<analysis::VectorClock> CaptureEdge();
  uint32_t IssuerShard(NodeId src) const;

  // Parks `p` in dst's CQ at `arrival` and rings a doorbell: its own with
  // coalescing off, the batch's shared one with coalescing on.
  void Enqueue(NodeId dst, sim::SimTime arrival, Pending p);
  void DrainOne(NodeId dst, sim::SimTime tick);
  // MC-mode doorbell: consumes the batch item at `idx` (doorbells may be
  // delivered out of order, so the FIFO cursor becomes a consumed-count).
  void DrainIndexed(NodeId dst, sim::SimTime tick, size_t idx);
  void DrainAll(NodeId dst, sim::SimTime tick);
  void FinishBatch(NicQueue& nic, sim::SimTime tick);
  void Process(NodeId dst, Pending& p);

  // Terminal leg of a two-sided delivery: re-checks liveness/pause and
  // charges the receive cost on the destination's RSS shard. Re-defers
  // itself while the receiver is paused (the injector flushes at resume).
  void DeliverTwoSided(NodeId dst, Pending& p);

  sim::Simulator* sim_;
  fault::FaultInjector* injector_ = nullptr;
  DeliveryTagger* mc_ = nullptr;
  std::vector<std::unique_ptr<sim::CpuWorker>> cpus_;
  std::vector<bool> alive_;
  std::vector<sim::SimTime> egress_busy_;
  std::vector<NicQueue> nics_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t coalesced_deliveries_ = 0;
};

}  // namespace ring::net

#endif  // RING_SRC_NET_FABRIC_H_
