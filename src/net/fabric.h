// Simulated RDMA fabric.
//
// Substitutes for the paper's InfiniBand cluster + libibverbs. Endpoints are
// nodes with single-threaded CPUs (sim::CpuWorker); the fabric models
//   - per-message one-way wire latency,
//   - per-byte link bandwidth with egress serialization (a NIC pushes one
//     message at a time),
//   - fail-stop endpoints (messages to/from dead nodes are dropped).
// Two delivery modes mirror the verbs the paper relies on:
//   - Send (two-sided): consumes receiver CPU before the handler runs —
//     the normal request path.
//   - Write/Read (one-sided): "performed entirely by the hardware"; no
//     remote CPU is charged. Ring uses this to offload replication traffic
//     from redundant nodes (§6).
#ifndef RING_SRC_NET_FABRIC_H_
#define RING_SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/analysis/race.h"
#include "src/sim/simulator.h"

namespace ring::fault {
class FaultInjector;
}  // namespace ring::fault

namespace ring::net {

using NodeId = uint32_t;

class Fabric {
 public:
  Fabric(sim::Simulator* simulator, uint32_t num_nodes);

  sim::Simulator* simulator() { return sim_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(cpus_.size()); }

  // Per-node CPU model (servers and clients alike).
  sim::CpuWorker& cpu(NodeId node) { return *cpus_[node]; }

  // Fail-stop control.
  void Kill(NodeId node) { alive_[node] = false; }
  void Revive(NodeId node) { alive_[node] = true; }
  bool alive(NodeId node) const { return alive_[node]; }

  // Chaos injection (src/fault). Null keeps every fast path one branch away
  // from the injection-free behaviour — required for determinism_test.
  void set_injector(fault::FaultInjector* injector) { injector_ = injector; }
  fault::FaultInjector* injector() { return injector_; }
  // Gray failure: the node's CPU is wedged but its NIC still answers
  // one-sided verbs and buffers received messages until resume.
  bool paused(NodeId node) const;

  // Two-sided send: after egress serialization + wire latency, charges
  // `server_recv_ns` on the destination CPU and runs `handler`.
  // Dropped silently when either endpoint is dead at the relevant moment.
  void Send(NodeId src, NodeId dst, uint64_t payload_bytes,
            std::function<void()> handler);

  // One-sided RDMA write: the payload lands at the destination without
  // involving its CPU; `apply` runs at arrival (NIC DMA), `on_complete`
  // runs at the source once the hardware ack returns.
  void Write(NodeId src, NodeId dst, uint64_t payload_bytes,
             std::function<void()> apply, std::function<void()> on_complete);

  // One-sided RDMA read: `fetch` runs at the destination at request arrival
  // (no remote CPU), `on_complete` runs at the source after `response_bytes`
  // travel back.
  void Read(NodeId src, NodeId dst, uint64_t response_bytes,
            std::function<void()> fetch, std::function<void()> on_complete);

  // Transfer time of one message on the wire (serialization only).
  uint64_t SerializationNs(uint64_t payload_bytes) const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  // Egress serialization on src's NIC: when the message started serializing
  // and when it arrives at dst (serialization + jitter + wire latency).
  // Records the egress-queue span and per-link byte counters.
  struct Departure {
    sim::SimTime ser_start;
    sim::SimTime arrival;
  };
  Departure Depart(NodeId src, NodeId dst, uint64_t payload_bytes);

  // Terminal leg of a two-sided Send: re-checks liveness/pause at delivery
  // time and charges the receive cost. Re-defers itself while the receiver
  // is paused (the injector flushes its buffer at resume).
  void DeliverSend(NodeId dst, uint64_t op,
                   std::optional<analysis::VectorClock> edge,
                   std::function<void()> handler);

  sim::Simulator* sim_;
  fault::FaultInjector* injector_ = nullptr;
  std::vector<std::unique_ptr<sim::CpuWorker>> cpus_;
  std::vector<bool> alive_;
  std::vector<sim::SimTime> egress_busy_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace ring::net

#endif  // RING_SRC_NET_FABRIC_H_
