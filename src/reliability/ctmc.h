// Continuous-time Markov chain machinery for the fault-resilience analysis
// of Appendix A: small dense real matrices, a scaling-and-squaring matrix
// exponential, and transient/cumulative state-probability solvers.
#ifndef RING_SRC_RELIABILITY_CTMC_H_
#define RING_SRC_RELIABILITY_CTMC_H_

#include <cstddef>
#include <vector>

#include "src/common/result.h"

namespace ring::reliability {

// Row-major dense matrix of doubles (dimensions here are tiny: the Markov
// models have m+2 .. s+m+2 states).
class RealMatrix {
 public:
  RealMatrix() = default;
  RealMatrix(size_t rows, size_t cols);

  static RealMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  void Set(size_t r, size_t c, double v) { data_[r * cols_ + c] = v; }
  double& Ref(size_t r, size_t c) { return data_[r * cols_ + c]; }

  RealMatrix Multiply(const RealMatrix& other) const;
  RealMatrix Add(const RealMatrix& other) const;
  RealMatrix Scale(double f) const;

  // Max absolute row sum (infinity norm).
  double NormInf() const;

  // Matrix exponential exp(*this) via scaling-and-squaring with a
  // Taylor/Horner core; accurate for the well-conditioned generator matrices
  // used here (diagonally dominant, moderate norm after scaling).
  RealMatrix Exp() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// A CTMC given by its generator Q (Q[i][j] = transition rate i->j for i != j,
// Q[i][i] = -sum of row). States are indexed 0..n-1.
class Ctmc {
 public:
  explicit Ctmc(RealMatrix generator);

  size_t num_states() const { return q_.rows(); }
  const RealMatrix& generator() const { return q_; }

  // State distribution at time t from the initial distribution p0 (row
  // vector): p(t) = p0 * exp(Q t).
  std::vector<double> TransientDistribution(const std::vector<double>& p0,
                                            double t) const;

  // Cumulative occupancy: integral_0^t p(u) du, computed exactly via the
  // augmented-generator trick ( [Q I; 0 0] exponentiated ). Returns per-state
  // expected total time spent in each state during [0, t].
  std::vector<double> CumulativeOccupancy(const std::vector<double>& p0,
                                          double t) const;

 private:
  RealMatrix q_;
};

}  // namespace ring::reliability

#endif  // RING_SRC_RELIABILITY_CTMC_H_
