// Markov reliability and availability models for RS and SRS codes
// (paper Appendix A, Figures 2 and 16).
//
// Both models are absorbing CTMCs over "number of failed nodes" states with
// a fail state FS. Reliability R(t) = 1 - P_FS(t); availability treats only
// the fully-healthy state 0 as available (App. A.3).
//
// One deliberate deviation from the paper's text: App. A.2 prints
// "µD = k/s µ" for the data-node recovery rate, but a data node stores k/s
// times the bytes of a parity node, so its rebuild is *faster*, not slower:
// µD = (s/k) µ. The paper's own §3.3 argument ("each data node of a
// stretched version stores less data ... faster recovery increases
// reliability", the SRS(3,2,6) > RS(3,2) example) requires the s/k form, so
// that is what we implement; the appendix formula appears to be a typo.
#ifndef RING_SRC_RELIABILITY_MODELS_H_
#define RING_SRC_RELIABILITY_MODELS_H_

#include <cstdint>
#include <vector>

#include "src/reliability/ctmc.h"
#include "src/srs/srs_code.h"

namespace ring::reliability {

// Failure/recovery environment shared by the models. Rates are per year.
struct Environment {
  // Per-node failure rate λ. Default: 10/year (MTTF ~36 days — aggressive,
  // typical for reliability studies of large clusters).
  double node_failure_rate = 10.0;
  // Total dataset size protected by the code.
  double dataset_bytes = 600.0 * (1ULL << 30);  // §3.3's 600 GiB example
  // Recovery network bandwidth B_N (Eqn. 6).
  double network_bandwidth = 5.0e9;  // 40 Gb/s
  // Erasure-coding compute bandwidth for Tcomp(C); the paper notes RS codes
  // are compute-bound rather than network-bound.
  double compute_bandwidth = 1.0e9;
};

inline constexpr double kSecondsPerYear = 365.25 * 24 * 3600;

// Reconstruction time (seconds) for `bytes` of lost data (paper Eqn. 6):
// Treconst = C / B_N + Tcomp(C).
double ReconstructionTimeSeconds(double bytes, const Environment& env);

// Rebuild rate µ (per year) for a node holding `bytes`.
double RebuildRate(double bytes, const Environment& env);

// Converts a probability to "number of nines": -log10(1 - p), capped at
// `cap` to keep plots finite when p rounds to 1.0.
double Nines(double p, double cap = 16.0);

// Reliability/availability model for RS(k,m) (App. A.1). States 0..m plus FS.
class RsModel {
 public:
  RsModel(uint32_t k, uint32_t m, const Environment& env);

  // Probability that no data is lost within t years.
  double Reliability(double t_years) const;
  // P(state 0) at time t.
  double PointAvailability(double t_years) const;
  // (1/t) * expected time fully available during [0, t].
  double IntervalAvailability(double t_years) const;

  const Ctmc& chain() const { return chain_; }

 private:
  uint32_t m_;
  Ctmc chain_;
};

// Reliability/availability model for SRS(k,m,s) (App. A.2). States 0..u plus
// FS, where u is the largest tolerable simultaneous failure count; survival
// branching uses the exact tolerance vector f from SrsCode, and recovery
// rates mix data-node and parity-node rebuild speeds hypergeometrically.
class SrsModel {
 public:
  SrsModel(const srs::SrsCode& code, const Environment& env);

  double Reliability(double t_years) const;
  double PointAvailability(double t_years) const;
  double IntervalAvailability(double t_years) const;

  uint32_t max_tolerated() const { return u_; }
  const Ctmc& chain() const { return chain_; }

 private:
  uint32_t u_;
  Ctmc chain_;
};

}  // namespace ring::reliability

#endif  // RING_SRC_RELIABILITY_MODELS_H_
