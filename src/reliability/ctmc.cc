#include "src/reliability/ctmc.h"

#include <cassert>
#include <cmath>

namespace ring::reliability {

RealMatrix::RealMatrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

RealMatrix RealMatrix::Identity(size_t n) {
  RealMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m.Set(i, i, 1.0);
  }
  return m;
}

RealMatrix RealMatrix::Multiply(const RealMatrix& other) const {
  assert(cols_ == other.rows_);
  RealMatrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) {
        continue;
      }
      for (size_t j = 0; j < other.cols_; ++j) {
        out.Ref(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

RealMatrix RealMatrix::Add(const RealMatrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  RealMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

RealMatrix RealMatrix::Scale(double f) const {
  RealMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * f;
  }
  return out;
}

double RealMatrix::NormInf() const {
  double norm = 0.0;
  for (size_t i = 0; i < rows_; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < cols_; ++j) {
      row += std::fabs(At(i, j));
    }
    norm = std::max(norm, row);
  }
  return norm;
}

RealMatrix RealMatrix::Exp() const {
  assert(rows_ == cols_);
  // Scaling and squaring: bring the norm below 1/2, run a degree-18 Taylor
  // series (ample at that norm), then square back up.
  const double norm = NormInf();
  int squarings = 0;
  if (norm > 0.5) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
  }
  const RealMatrix a = Scale(std::ldexp(1.0, -squarings));
  // Horner evaluation of sum_{i=0..18} a^i / i!.
  RealMatrix result = Identity(rows_);
  for (int i = 18; i >= 1; --i) {
    result = Identity(rows_).Add(a.Multiply(result).Scale(1.0 / i));
  }
  for (int i = 0; i < squarings; ++i) {
    result = result.Multiply(result);
  }
  return result;
}

Ctmc::Ctmc(RealMatrix generator) : q_(std::move(generator)) {
  assert(q_.rows() == q_.cols());
}

std::vector<double> Ctmc::TransientDistribution(const std::vector<double>& p0,
                                                double t) const {
  assert(p0.size() == q_.rows());
  const RealMatrix e = q_.Scale(t).Exp();
  std::vector<double> out(q_.rows(), 0.0);
  for (size_t i = 0; i < q_.rows(); ++i) {
    if (p0[i] == 0.0) {
      continue;
    }
    for (size_t j = 0; j < q_.cols(); ++j) {
      out[j] += p0[i] * e.At(i, j);
    }
  }
  return out;
}

std::vector<double> Ctmc::CumulativeOccupancy(const std::vector<double>& p0,
                                              double t) const {
  assert(p0.size() == q_.rows());
  const size_t n = q_.rows();
  // exp([Q I; 0 0] * t) = [exp(Qt)  integral_0^t exp(Qu) du; 0  I].
  RealMatrix aug(2 * n, 2 * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      aug.Set(i, j, q_.At(i, j) * t);
    }
    aug.Set(i, n + i, t);
  }
  const RealMatrix e = aug.Exp();
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (p0[i] == 0.0) {
      continue;
    }
    for (size_t j = 0; j < n; ++j) {
      out[j] += p0[i] * e.At(i, n + j);
    }
  }
  return out;
}

}  // namespace ring::reliability
