#include "src/reliability/models.h"

#include <cassert>
#include <cmath>

namespace ring::reliability {
namespace {

// Binomial coefficient as double (arguments are tiny).
double Choose(uint32_t n, uint32_t r) {
  if (r > n) {
    return 0.0;
  }
  double out = 1.0;
  for (uint32_t i = 0; i < r; ++i) {
    out *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return out;
}

}  // namespace

double ReconstructionTimeSeconds(double bytes, const Environment& env) {
  return bytes / env.network_bandwidth + bytes / env.compute_bandwidth;
}

double RebuildRate(double bytes, const Environment& env) {
  return kSecondsPerYear / ReconstructionTimeSeconds(bytes, env);
}

double Nines(double p, double cap) {
  if (p >= 1.0) {
    return cap;
  }
  if (p <= 0.0) {
    return 0.0;
  }
  return std::min(cap, -std::log10(1.0 - p));
}

// ---------------------------------------------------------------------------
// RsModel

RsModel::RsModel(uint32_t k, uint32_t m, const Environment& env)
    : m_(m), chain_([&] {
        // States 0..m: number of failed (not yet rebuilt) nodes; state m+1 =
        // FS. Failure i -> i+1 at (k+m-i)λ (i < m), m -> FS at kλ, rebuild
        // i -> i-1 at µ (one node at a time; every node holds C/k bytes).
        const size_t fs = m + 1;
        RealMatrix q(m + 2, m + 2);
        const double lambda = env.node_failure_rate;
        const double mu = RebuildRate(env.dataset_bytes / k, env);
        for (uint32_t i = 0; i <= m; ++i) {
          const double out_rate = static_cast<double>(k + m - i) * lambda;
          const size_t next = (i == m) ? fs : i + 1;
          q.Ref(i, next) += out_rate;
          q.Ref(i, i) -= out_rate;
          if (i >= 1) {
            q.Ref(i, i - 1) += mu;
            q.Ref(i, i) -= mu;
          }
        }
        return Ctmc(std::move(q));
      }()) {}

double RsModel::Reliability(double t_years) const {
  std::vector<double> p0(chain_.num_states(), 0.0);
  p0[0] = 1.0;
  const auto p = chain_.TransientDistribution(p0, t_years);
  return 1.0 - p[m_ + 1];
}

double RsModel::PointAvailability(double t_years) const {
  std::vector<double> p0(chain_.num_states(), 0.0);
  p0[0] = 1.0;
  return chain_.TransientDistribution(p0, t_years)[0];
}

double RsModel::IntervalAvailability(double t_years) const {
  std::vector<double> p0(chain_.num_states(), 0.0);
  p0[0] = 1.0;
  const auto occ = chain_.CumulativeOccupancy(p0, t_years);
  return occ[0] / t_years;
}

// ---------------------------------------------------------------------------
// SrsModel

SrsModel::SrsModel(const srs::SrsCode& code, const Environment& env)
    : u_(0), chain_([&] {
        const uint32_t s = code.s();
        const uint32_t k = code.k();
        const uint32_t m = code.m();
        const std::vector<double> f = code.ToleranceVector();
        // u = argmin_i { f[i-1] != 0 and f[i] == 0 } - 1, i.e. the largest
        // failure count with nonzero survival probability.
        uint32_t u = 0;
        for (uint32_t i = 0; i < f.size(); ++i) {
          if (f[i] > 0.0) {
            u = i;
          } else {
            break;
          }
        }
        u_ = u;

        const double lambda = env.node_failure_rate;
        // Parity nodes hold C/k bytes (same as unstretched RS); data nodes
        // hold C/s bytes and therefore rebuild s/k times faster.
        const double mu_parity = RebuildRate(env.dataset_bytes / k, env);
        const double mu_data = mu_parity * static_cast<double>(s) / k;

        const size_t fs = u + 1;
        RealMatrix q(u + 2, u + 2);
        for (uint32_t i = 0; i <= u; ++i) {
          const double rate = static_cast<double>(s + m - i) * lambda;
          // Conditional survival probability p_i = f[i+1] / f[i].
          const double pi = (i + 1 < f.size() && f[i] > 0.0)
                                ? f[i + 1] / f[i]
                                : 0.0;
          if (pi > 0.0 && i < u) {
            q.Ref(i, i + 1) += rate * pi;
          }
          const double fatal = rate * (1.0 - ((i < u) ? pi : 0.0));
          q.Ref(i, fs) += fatal;
          q.Ref(i, i) -= rate;

          if (i >= 1) {
            // µ_i = sum_j µ_ij p_ij over j failed data nodes out of i failed
            // nodes; p_ij is hypergeometric restricted to i-j <= m.
            double mu_i = 0.0;
            double norm = 0.0;
            for (uint32_t j = 0; j <= i; ++j) {
              if (i - j > m || j > s) {
                continue;
              }
              const double pij = Choose(s, j) * Choose(m, i - j);
              const double mu_ij =
                  (static_cast<double>(j) / i) * mu_data +
                  (static_cast<double>(i - j) / i) * mu_parity;
              mu_i += pij * mu_ij;
              norm += pij;
            }
            if (norm > 0.0) {
              mu_i /= norm;
            }
            q.Ref(i, i - 1) += mu_i;
            q.Ref(i, i) -= mu_i;
          }
        }
        return Ctmc(std::move(q));
      }()) {}

double SrsModel::Reliability(double t_years) const {
  std::vector<double> p0(chain_.num_states(), 0.0);
  p0[0] = 1.0;
  const auto p = chain_.TransientDistribution(p0, t_years);
  return 1.0 - p[u_ + 1];
}

double SrsModel::PointAvailability(double t_years) const {
  std::vector<double> p0(chain_.num_states(), 0.0);
  p0[0] = 1.0;
  return chain_.TransientDistribution(p0, t_years)[0];
}

double SrsModel::IntervalAvailability(double t_years) const {
  std::vector<double> p0(chain_.num_states(), 0.0);
  p0[0] = 1.0;
  const auto occ = chain_.CumulativeOccupancy(p0, t_years);
  return occ[0] / t_years;
}

}  // namespace ring::reliability
