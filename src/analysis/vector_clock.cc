#include "src/analysis/vector_clock.h"

#include <algorithm>

namespace ring::analysis {

void VectorClock::Tick(uint32_t actor) {
  if (actor >= c_.size()) {
    c_.resize(actor + 1, 0);
  }
  ++c_[actor];
}

void VectorClock::MergeFrom(const VectorClock& other) {
  if (other.c_.size() > c_.size()) {
    c_.resize(other.c_.size(), 0);
  }
  for (size_t i = 0; i < other.c_.size(); ++i) {
    c_[i] = std::max(c_[i], other.c_[i]);
  }
}

bool VectorClock::Leq(const VectorClock& a, const VectorClock& b) {
  for (size_t i = 0; i < a.c_.size(); ++i) {
    if (a.c_[i] > (i < b.c_.size() ? b.c_[i] : 0)) {
      return false;
    }
  }
  return true;
}

std::string VectorClock::ToString() const {
  std::string out = "[";
  size_t last = c_.size();
  while (last > 0 && c_[last - 1] == 0) {
    --last;
  }
  for (size_t i = 0; i < last; ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += std::to_string(c_[i]);
  }
  out += ']';
  return out;
}

}  // namespace ring::analysis
