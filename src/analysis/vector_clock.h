// Vector clocks for the happens-before race detector (src/analysis/race.h).
//
// Components are indexed by *actor*: one logical clock per sequential
// execution context (node CPUs, plus one slot for code driving the simulator
// from outside any handler). Clocks grow on demand; a missing component is 0.
#ifndef RING_SRC_ANALYSIS_VECTOR_CLOCK_H_
#define RING_SRC_ANALYSIS_VECTOR_CLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ring::analysis {

class VectorClock {
 public:
  // Component for `actor` (0 when never ticked).
  uint64_t Get(uint32_t actor) const {
    return actor < c_.size() ? c_[actor] : 0;
  }

  // Advances this clock's own component.
  void Tick(uint32_t actor);

  // Pointwise maximum (the join used by every synchronization edge).
  void MergeFrom(const VectorClock& other);

  // True when every component of `a` is <= the matching component of `b`:
  // a's task happened before (or is) b's task.
  static bool Leq(const VectorClock& a, const VectorClock& b);

  // Two accesses race iff neither clock is <= the other.
  static bool Ordered(const VectorClock& a, const VectorClock& b) {
    return Leq(a, b) || Leq(b, a);
  }

  bool empty() const { return c_.empty(); }
  void Clear() { c_.clear(); }

  // "[a0 a1 ...]" — trailing zero components are omitted.
  std::string ToString() const;

 private:
  std::vector<uint64_t> c_;
};

}  // namespace ring::analysis

#endif  // RING_SRC_ANALYSIS_VECTOR_CLOCK_H_
