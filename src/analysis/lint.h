// ring-lint: determinism hygiene rules for the simulator tree.
//
// The whole evaluation rests on the discrete-event simulator being
// bit-deterministic: same seed, same event order, same bytes out. These
// rules catch the ways that property quietly erodes:
//
//   wallclock       host-clock reads (std::chrono clocks, gettimeofday,
//                   clock_gettime, time(NULL)) in simulation code — host
//                   time must never leak into simulated decisions.
//   rand            non-seeded randomness (rand, srand, std::random_device,
//                   std::mt19937, drand48) — all randomness must flow
//                   through the simulator-owned ring::Rng.
//   unordered-iter  iteration over std::unordered_map/unordered_set
//                   members or locals — hash-table order is stdlib- and
//                   insertion-dependent, so any sim-visible decision fed by
//                   it is a determinism hazard. Reviewed iterations are
//                   allowlisted in place (see below).
//   raw-schedule    direct Simulator/EventQueue `Schedule(...)` calls
//                   outside src/sim — protocol code must go through
//                   net::Fabric (or the Simulator At/After wrappers for
//                   local timers) so every event is attributable.
//   boxed-callback  std::function in src/sim or src/net — the scheduler hot
//                   path carries callables as pooled sim::Task values; a
//                   std::function there boxes every out-of-line capture on
//                   the general heap and silently bypasses the pool.
//   use-after-move  `std::move(x)` where `x` is also read elsewhere in the
//                   same statement — sibling call arguments evaluate in
//                   unspecified order, so `Send(ReqBytes(req.key.size()),
//                   [req = std::move(req)]...)` may gut the key before its
//                   size is read. Brace-enclosed lambda bodies are sequenced
//                   after the call and don't count as concurrent reads.
//   unchecked-status a statement consisting solely of a call to a function
//                   this file (or its paired header) declares as returning
//                   Status/Result<...> — the result must be handled or
//                   explicitly discarded with a `(void)` cast.
//   orphan-cc       a .cc under src/ whose target is not reachable from any
//                   test executable's link graph — untested code.
//
// Text rules scan src/sim, src/net, src/ring, src/srs and src/policy
// (raw-schedule exempts src/sim itself). The build-graph rule covers all of
// src/. This is a regex/AST-lite pass: it reads lines, not a real AST, so a
// reviewed, genuinely-safe use is silenced with an allowlist comment on the
// same or the preceding line:
//
//   // ring-lint: ok(unordered-iter) <reason>
#ifndef RING_SRC_ANALYSIS_LINT_H_
#define RING_SRC_ANALYSIS_LINT_H_

#include <string>
#include <vector>

namespace ring::analysis {

struct LintFinding {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based; 0 = file-level (orphan-cc)
  std::string rule;
  std::string message;

  bool operator<(const LintFinding& o) const {
    if (file != o.file) {
      return file < o.file;
    }
    if (line != o.line) {
      return line < o.line;
    }
    return rule < o.rule;
  }
};

struct SourceInput {
  std::string relpath;        // decides which rules apply
  std::string content;
  std::string paired_header;  // for a .cc: its .h, so member declarations
                              // feed unordered-iter; empty if none
};

// Text rules over one file. With `force_all_rules`, every text rule runs
// regardless of path (used for fixtures and tests).
std::vector<LintFinding> LintSource(const SourceInput& in,
                                    bool force_all_rules = false);

// Build-graph rule: parses every CMakeLists.txt under `root` and reports
// each src/ .cc not reachable from a test target's link closure.
std::vector<LintFinding> LintBuildGraph(const std::string& root);

// Walks `root` (a repo checkout), runs text rules over the scanned dirs and
// the build-graph rule, and returns all findings sorted by (file, line).
std::vector<LintFinding> LintTree(const std::string& root);

// "file:line: [rule] message" lines, one per finding.
std::string FormatFindings(const std::vector<LintFinding>& findings);

}  // namespace ring::analysis

#endif  // RING_SRC_ANALYSIS_LINT_H_
