#include "src/analysis/race.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/obs/trace.h"

namespace ring::analysis {

const char* RegionKindName(RegionKind kind) {
  switch (kind) {
    case RegionKind::kHeap:
      return "heap";
    case RegionKind::kParityStrip:
      return "parity_strip";
    case RegionKind::kMetadata:
      return "metadata";
    case RegionKind::kVersionWord:
      return "version_word";
    case RegionKind::kCommitFlag:
      return "commit_flag";
    case RegionKind::kAckWord:
      return "ack_word";
  }
  return "?";
}

const char* AccessKindName(AccessKind kind) {
  return kind == AccessKind::kWrite ? "write" : "read";
}

std::unique_ptr<RaceDetector> RaceDetector::FromEnv() {
  const char* v = std::getenv("RING_ANALYZE");
  if (v == nullptr || std::strstr(v, "race") == nullptr) {
    return nullptr;
  }
  return std::make_unique<RaceDetector>();
}

VectorClock& RaceDetector::ActorClock(uint32_t actor) {
  if (actor >= actor_clocks_.size()) {
    actor_clocks_.resize(actor + 1);
  }
  return actor_clocks_[actor];
}

int32_t RaceDetector::CurrentActor() const {
  if (stack_.empty()) {
    return static_cast<int32_t>(kExternalActor);
  }
  return stack_.back().actor;
}

const VectorClock& RaceDetector::CurrentClock() {
  const int32_t actor = CurrentActor();
  if (actor >= 0) {
    return ActorClock(static_cast<uint32_t>(actor));
  }
  return stack_.back().clock;
}

VectorClock RaceDetector::CaptureEdge() {
  const int32_t actor = CurrentActor();
  if (actor >= 0) {
    VectorClock& clock = ActorClock(static_cast<uint32_t>(actor));
    clock.Tick(static_cast<uint32_t>(actor));
    return clock;
  }
  return stack_.back().clock;
}

void RaceDetector::BeginCpuTask(uint32_t node, const VectorClock* inherited,
                                uint32_t shard) {
  const uint32_t actor = CpuActorId(node, shard);
  VectorClock& clock = ActorClock(actor);
  if (inherited != nullptr) {
    clock.MergeFrom(*inherited);
  }
  clock.Tick(actor);
  Frame frame;
  frame.actor = static_cast<int32_t>(actor);
  stack_.push_back(std::move(frame));
}

void RaceDetector::BeginOneSidedTask(const VectorClock* inherited) {
  Frame frame;
  frame.actor = -1;
  if (inherited != nullptr) {
    frame.clock = *inherited;
  }
  stack_.push_back(std::move(frame));
}

void RaceDetector::BeginCpuAcquire(uint32_t node, uint32_t shard) {
  // Copy first: CurrentClock() may reference an actor clock that
  // BeginCpuTask below would otherwise merge into itself mid-mutation.
  const VectorClock acquired = CurrentClock();
  BeginCpuTask(node, &acquired, shard);
}

void RaceDetector::EndTask() {
  if (!stack_.empty()) {
    stack_.pop_back();
  }
}

void RaceDetector::RecordRace(const RegionKey& key, const RaceAccess& a,
                              const RaceAccess& b) {
  if (races_.size() >= kMaxRaces) {
    ++races_dropped_;
    return;
  }
  RaceReport report;
  report.region.node = key.node;
  report.region.kind = key.kind;
  report.region.scope = key.scope;
  report.region.lo = std::max(a.lo, b.lo);
  report.region.hi = std::min(a.hi, b.hi);
  if (a.time <= b.time) {
    report.first = a;
    report.second = b;
  } else {
    report.first = b;
    report.second = a;
  }
  races_.push_back(std::move(report));
}

void RaceDetector::OnAccess(const Region& region, AccessKind kind,
                            const char* site, uint64_t now, uint64_t op_id) {
  ++accesses_;
  RaceAccess access;
  access.kind = kind;
  access.site = site;
  access.op_id = op_id;
  access.time = now;
  access.lo = region.lo;
  access.hi = region.hi;
  access.clock = CurrentClock();

  const RegionKey key{region.node, region.kind, region.scope};
  RegionState& state = regions_[key];

  const auto conflicts = [&access](const RaceAccess& old) {
    return old.lo < access.hi && access.lo < old.hi &&
           !VectorClock::Ordered(old.clock, access.clock);
  };
  for (const RaceAccess& old : state.writes) {
    if (conflicts(old)) {
      RecordRace(key, old, access);
    }
  }
  if (kind == AccessKind::kWrite) {
    for (const RaceAccess& old : state.reads) {
      if (conflicts(old)) {
        RecordRace(key, old, access);
      }
    }
  }

  // Store the access, dropping entries it supersedes: same kind, contained
  // byte span, and happened-before this access (any future conflict with
  // them would also conflict here first).
  std::vector<RaceAccess>& list =
      kind == AccessKind::kWrite ? state.writes : state.reads;
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&access](const RaceAccess& old) {
                              return old.lo >= access.lo &&
                                     old.hi <= access.hi &&
                                     VectorClock::Leq(old.clock, access.clock);
                            }),
             list.end());
  if (list.size() >= kMaxStoredPerList) {
    list.erase(list.begin());  // bound memory; oldest is most likely ordered
  }
  list.push_back(std::move(access));
}

namespace {

// The op's protocol-phase history: names of spans recorded under `op_id` up
// to `time`, deduplicated consecutively, oldest first.
std::string PhaseStack(const obs::Tracer* tracer, uint64_t op_id,
                       uint64_t time) {
  if (tracer == nullptr || op_id == 0) {
    return "";
  }
  std::vector<const obs::Span*> mine;
  for (const obs::Span& span : tracer->spans()) {
    if (span.op_id == op_id && span.start <= time) {
      mine.push_back(&span);
    }
  }
  std::stable_sort(mine.begin(), mine.end(),
                   [](const obs::Span* a, const obs::Span* b) {
                     return a->start < b->start;
                   });
  std::string out;
  const char* last = nullptr;
  for (const obs::Span* span : mine) {
    if (last != nullptr && std::strcmp(last, span->name) == 0) {
      continue;
    }
    if (!out.empty()) {
      out += " > ";
    }
    out += span->name;
    last = span->name;
  }
  return out;
}

void FormatAccess(std::ostringstream& os, const char* label,
                  const RaceAccess& access, const obs::Tracer* tracer) {
  os << "  " << label << ": " << AccessKindName(access.kind) << " at "
     << access.site << ", t=" << access.time << "ns, bytes [" << access.lo
     << ", " << access.hi << "), op=0x" << std::hex << access.op_id
     << std::dec << ", clock=" << access.clock.ToString();
  const std::string phases = PhaseStack(tracer, access.op_id, access.time);
  if (!phases.empty()) {
    os << "\n      phases: " << phases;
  }
  os << "\n";
}

}  // namespace

std::string RaceDetector::Report(const obs::Tracer* tracer) const {
  std::ostringstream os;
  os << "ring-analyze: " << races_.size() << " race(s) over " << accesses_
     << " logged accesses";
  if (races_dropped_ > 0) {
    os << " (" << races_dropped_ << " further races dropped)";
  }
  os << "\n";
  for (size_t i = 0; i < races_.size(); ++i) {
    const RaceReport& r = races_[i];
    os << "race #" << i << ": " << AccessKindName(r.first.kind) << "/"
       << AccessKindName(r.second.kind) << " conflict on node "
       << r.region.node << " " << RegionKindName(r.region.kind) << " (scope "
       << (r.region.scope >> 32) << ":" << (r.region.scope & 0xFFFFFFFFu)
       << ") bytes [" << r.region.lo << ", " << r.region.hi << ")\n";
    FormatAccess(os, "first ", r.first, tracer);
    FormatAccess(os, "second", r.second, tracer);
  }
  return os.str();
}

}  // namespace ring::analysis
