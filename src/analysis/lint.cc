#include "src/analysis/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace ring::analysis {
namespace {

namespace fs = std::filesystem;

// Directories the text rules police. src/analysis is deliberately excluded:
// the lint rules themselves spell out the forbidden tokens.
constexpr const char* kScannedDirs[] = {"src/sim/", "src/net/", "src/ring/",
                                        "src/srs/", "src/policy/"};

bool InScannedDir(const std::string& relpath) {
  for (const char* dir : kScannedDirs) {
    if (relpath.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= content.size()) {
    const size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      if (pos < content.size()) {
        lines.push_back(content.substr(pos));
      }
      break;
    }
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

// `// ring-lint: ok(rule-a, rule-b)` on the access line or the line above.
bool Allowlisted(const std::vector<std::string>& lines, size_t index,
                 const std::string& rule) {
  static const std::regex kOk(R"(//\s*ring-lint:\s*ok\(([^)]*)\))");
  for (size_t i = index; i + 1 >= index && i < lines.size(); --i) {
    std::smatch m;
    if (std::regex_search(lines[i], m, kOk)) {
      std::stringstream list(m[1].str());
      std::string item;
      while (std::getline(list, item, ',')) {
        const size_t b = item.find_first_not_of(" \t");
        const size_t e = item.find_last_not_of(" \t");
        if (b != std::string::npos && item.substr(b, e - b + 1) == rule) {
          return true;
        }
      }
    }
    if (i == 0) {
      break;
    }
  }
  return false;
}

// Strips // comments and the contents of string literals so rule regexes
// don't fire on prose or quoted text; the allowlist check runs on the raw
// line before this.
std::string CodeOnly(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  char quote = 0;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == quote) {
        in_string = false;
        out += quote;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
      out += c;
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      break;
    }
    out += c;
  }
  return out;
}

struct TextRule {
  const char* name;
  const char* message;
  std::regex pattern;
};

const std::vector<TextRule>& WallclockAndRandRules() {
  static const std::vector<TextRule>* rules = new std::vector<TextRule>{
      {"wallclock",
       "host clock read in simulation code; derive time from sim::Simulator",
       std::regex(R"(std::chrono::(system_clock|steady_clock|high_resolution_clock))"
                  R"(|\bgettimeofday\s*\()"
                  R"(|\bclock_gettime\s*\()"
                  R"(|[^\w.:>]time\s*\(\s*(NULL|nullptr|0)?\s*\))")},
      {"rand",
       "non-simulator randomness; route through the simulator-owned "
       "ring::Rng",
       std::regex(R"(\brand\s*\(\s*\))"
                  R"(|\bsrand\s*\()"
                  R"(|std::random_device)"
                  R"(|std::mt19937)"
                  R"(|\bdrand48\s*\()")},
  };
  return *rules;
}

const TextRule& RawScheduleRule() {
  static const TextRule* rule = new TextRule{
      "raw-schedule",
      "direct event-queue Schedule() outside src/sim; use net::Fabric or "
      "Simulator At/After",
      std::regex(R"((\.|->)\s*Schedule\s*\(|\bqueue\(\)\s*\.\s*Schedule\b)")};
  return *rule;
}

const TextRule& BoxedCallbackRule() {
  static const TextRule* rule = new TextRule{
      "boxed-callback",
      "std::function in scheduler-adjacent code boxes every capture on the "
      "general heap, bypassing the pooled sim::Task allocator; take a "
      "sim::Task (or a deduced callable template parameter) instead",
      std::regex(R"(\bstd\s*::\s*function\s*<)")};
  return *rule;
}

// Member/local names declared as std::unordered_{map,set}. Single-line
// declarations only — an AST-lite compromise that covers this codebase.
std::set<std::string> UnorderedNames(const std::string& content) {
  static const std::regex kDecl(
      R"(\bunordered_(?:map|set)\s*<.*>\s+([A-Za-z_]\w*)\s*[;={])");
  std::set<std::string> names;
  for (const std::string& raw : SplitLines(content)) {
    const std::string line = CodeOnly(raw);
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
  }
  return names;
}

void LintUnorderedIter(const SourceInput& in,
                       const std::vector<std::string>& lines,
                       std::vector<LintFinding>* findings) {
  std::set<std::string> names = UnorderedNames(in.content);
  if (!in.paired_header.empty()) {
    std::set<std::string> from_header = UnorderedNames(in.paired_header);
    names.insert(from_header.begin(), from_header.end());
  }
  if (names.empty()) {
    return;
  }
  std::string alt;
  for (const std::string& n : names) {
    if (!alt.empty()) {
      alt += '|';
    }
    alt += n;
  }
  // Range-for over the container, or explicit .begin() iteration.
  const std::regex use(R"(for\s*\([^;)]*:\s*[^)]*\b(?:)" + alt +
                       R"()\b\s*\)|\b(?:)" + alt + R"()\s*\.\s*begin\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string code = CodeOnly(lines[i]);
    if (!std::regex_search(code, use)) {
      continue;
    }
    if (Allowlisted(lines, i, "unordered-iter")) {
      continue;
    }
    findings->push_back(
        {in.relpath, static_cast<int>(i + 1), "unordered-iter",
         "iteration over an unordered container can feed hash-order into "
         "sim-visible decisions; use an ordered container or allowlist "
         "after review"});
  }
}

// ---- statement-scoped rules (use-after-move, unchecked-status) -------------
//
// Both rules reason about one *statement* at a time, so they join physical
// lines until a balanced-paren terminator. Brace-enclosed regions inside a
// statement (lambda bodies, init-lists) are blanked before analysis: a lambda
// body is sequenced after the enclosing call, so reads inside it are not
// racing the capture's move. Statements *inside* a multi-line function body
// still arrive individually because block openers flush the accumulator.

struct LintLine {
  std::string code;  // CodeOnly'd
  size_t line;       // source line index
};

struct Statement {
  std::string text;  // code lines joined with '\n'
  // (offset-in-text, source-line-index) per joined line, offsets ascending.
  std::vector<std::pair<size_t, size_t>> offsets;
};

size_t LineAt(const Statement& stmt, size_t offset) {
  size_t line = stmt.offsets.empty() ? 0 : stmt.offsets.front().second;
  for (const auto& [off, idx] : stmt.offsets) {
    if (off > offset) {
      break;
    }
    line = idx;
  }
  return line;
}

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) {
    return "";
  }
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<LintLine> CodeLines(const std::vector<std::string>& lines) {
  std::vector<LintLine> out;
  out.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    out.push_back({CodeOnly(lines[i]), i});
  }
  return out;
}

std::vector<Statement> JoinStatements(const std::vector<LintLine>& lines) {
  std::vector<Statement> stmts;
  Statement cur;
  int paren = 0;
  auto flush = [&stmts, &cur, &paren]() {
    if (!cur.text.empty()) {
      stmts.push_back(std::move(cur));
    }
    cur = Statement{};
    paren = 0;
  };
  for (const LintLine& ll : lines) {
    const std::string trimmed = Trim(ll.code);
    if (trimmed.empty()) {
      continue;
    }
    if (trimmed[0] == '#') {
      continue;  // preprocessor lines never join a statement
    }
    cur.offsets.emplace_back(cur.text.size(), ll.line);
    cur.text += ll.code;
    cur.text += '\n';
    for (const char c : ll.code) {
      paren += c == '(' ? 1 : c == ')' ? -1 : 0;
    }
    const char last = trimmed.back();
    if (paren <= 0 &&
        (last == ';' || last == '{' || last == '}' || last == ':')) {
      flush();
    }
  }
  flush();
  return stmts;
}

// Top-level brace regions inside one statement — lambda bodies and inline
// member bodies — returned as line-sets so their interior statements can be
// analyzed in their own right (they are sequenced code, just nested).
std::vector<std::vector<LintLine>> BraceRegions(const Statement& stmt) {
  std::vector<std::vector<LintLine>> regions;
  std::vector<LintLine> region;
  std::string partial;
  int depth = 0;
  size_t frag = 0;  // index into stmt.offsets
  for (size_t j = 0; j < stmt.text.size(); ++j) {
    const char c = stmt.text[j];
    while (frag + 1 < stmt.offsets.size() &&
           j >= stmt.offsets[frag + 1].first) {
      ++frag;
    }
    if (c == '\n') {
      if (depth > 0 && !Trim(partial).empty()) {
        region.push_back({partial, stmt.offsets[frag].second});
      }
      partial.clear();
      continue;
    }
    if (c == '{') {
      if (depth == 0) {
        region.clear();
        partial.clear();
      } else {
        partial += c;
      }
      ++depth;
      continue;
    }
    if (c == '}') {
      if (depth > 1) {
        partial += c;
        --depth;
      } else if (depth == 1) {
        if (!Trim(partial).empty()) {
          region.push_back({partial, stmt.offsets[frag].second});
        }
        partial.clear();
        regions.push_back(std::move(region));
        region.clear();
        depth = 0;
      }
      continue;
    }
    if (depth > 0) {
      partial += c;
    }
  }
  return regions;
}

// Every statement in the line-set, recursing into nested brace regions.
std::vector<Statement> AllStatements(const std::vector<LintLine>& lines) {
  std::vector<Statement> out;
  for (Statement& stmt : JoinStatements(lines)) {
    for (const std::vector<LintLine>& region : BraceRegions(stmt)) {
      std::vector<Statement> sub = AllStatements(region);
      out.insert(out.end(), std::make_move_iterator(sub.begin()),
                 std::make_move_iterator(sub.end()));
    }
    out.push_back(std::move(stmt));
  }
  return out;
}

// Blanks every brace-enclosed region (preserving length and newlines) so
// offsets computed on the result still map back to source lines.
std::string StripBraceRegions(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  int depth = 0;
  for (const char c : text) {
    if (c == '{') {
      ++depth;
      out += ' ';
    } else if (c == '}') {
      depth -= depth > 0 ? 1 : 0;
      out += ' ';
    } else if (depth == 0 || c == '\n') {
      out += c;
    } else {
      out += ' ';
    }
  }
  return out;
}

void LintUseAfterMove(const SourceInput& in,
                      const std::vector<std::string>& lines,
                      std::vector<LintFinding>* findings) {
  static const std::regex kMove(R"(\bstd\s*::\s*move\s*\()");
  // The whole move argument must be a plain object path (`x`, `*x`,
  // `x.y->z`); complex arguments are skipped rather than guessed at.
  static const std::regex kPath(
      R"(^\s*\*?\s*([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*$)");
  static const std::regex kBindsFromMove(R"(^\s*=\s*std\s*::\s*move\b)");
  for (const Statement& stmt : AllStatements(CodeLines(lines))) {
    const std::string text = StripBraceRegions(stmt.text);
    struct MoveSite {
      size_t begin, end;  // span of the whole std::move(...) expression
      std::string path;
    };
    std::vector<MoveSite> moves;
    for (std::sregex_iterator it(text.begin(), text.end(), kMove), end;
         it != end; ++it) {
      const size_t open = it->position() + it->length() - 1;
      int depth = 0;
      size_t close = std::string::npos;
      for (size_t j = open; j < text.size(); ++j) {
        depth += text[j] == '(' ? 1 : text[j] == ')' ? -1 : 0;
        if (text[j] == ')' && depth == 0) {
          close = j;
          break;
        }
      }
      if (close == std::string::npos) {
        continue;
      }
      const std::string arg = text.substr(open + 1, close - open - 1);
      std::smatch m;
      if (std::regex_match(arg, m, kPath)) {
        moves.push_back(
            {static_cast<size_t>(it->position()), close + 1, m[1].str()});
      }
    }
    if (moves.empty()) {
      continue;
    }
    // Innermost-enclosing paren group per offset: only *sibling* reads in the
    // same argument list race the move. C++17 sequences the object/callee
    // expression (`queue_[ev.slot].push_back(std::move(ev))`) and a
    // constructor's earlier member-inits before the arguments, so reads
    // outside the move's own group are ordered and must not fire.
    std::vector<std::pair<size_t, size_t>> groups;  // (open, close) spans
    {
      std::vector<size_t> stack;
      for (size_t j = 0; j < text.size(); ++j) {
        if (text[j] == '(') {
          stack.push_back(j);
        } else if (text[j] == ')' && !stack.empty()) {
          groups.emplace_back(stack.back(), j);
          stack.pop_back();
        }
      }
    }
    auto enclosing = [&groups, &text](size_t offset) {
      std::pair<size_t, size_t> best{0, text.size()};
      for (const auto& [open, close] : groups) {
        if (open < offset && offset <= close &&
            close - open < best.second - best.first) {
          best = {open + 1, close};
        }
      }
      return best;
    };
    std::set<std::string> flagged;
    for (const MoveSite& mv : moves) {
      if (!flagged.insert(mv.path).second) {
        continue;
      }
      const auto [scope_begin, scope_end] = enclosing(mv.begin);
      bool used_elsewhere = false;
      for (size_t p = text.find(mv.path, scope_begin);
           p != std::string::npos && p < scope_end;
           p = text.find(mv.path, p + 1)) {
        if (p >= mv.begin && p < mv.end) {
          continue;  // the move's own argument
        }
        const char before = p == 0 ? '\0' : text[p - 1];
        if (std::isalnum(static_cast<unsigned char>(before)) ||
            before == '_' || before == '.' || before == '>' || before == ':') {
          continue;  // member of something else, or a qualified name
        }
        const size_t after = p + mv.path.size();
        if (after < text.size() &&
            (std::isalnum(static_cast<unsigned char>(text[after])) ||
             text[after] == '_')) {
          continue;  // longer identifier
        }
        // `x = std::move(x)` (capture-init / self-assign): the left side is
        // a fresh binding, not a read of the moved object.
        std::smatch bind;
        if (std::regex_search(text.cbegin() + static_cast<long>(after),
                              text.cend(), bind, kBindsFromMove,
                              std::regex_constants::match_continuous)) {
          continue;
        }
        used_elsewhere = true;
        break;
      }
      if (!used_elsewhere) {
        continue;
      }
      const size_t line = LineAt(stmt, mv.begin);
      if (Allowlisted(lines, line, "use-after-move")) {
        continue;
      }
      findings->push_back(
          {in.relpath, static_cast<int>(line + 1), "use-after-move",
           "'" + mv.path + "' is read elsewhere in the statement that moves "
           "it; sibling arguments evaluate in unspecified order — hoist the "
           "read before the move"});
    }
  }
}

// Function names declared (in this file or its paired header) as returning
// Status or Result<...>; calls to anything else are invisible to the rule.
std::set<std::string> StatusReturningNames(const std::string& content) {
  static const std::regex kDecl(
      R"(\b(?:Status|Result\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>)\s+)"
      R"((?:[A-Za-z_]\w*\s*::\s*)?([A-Za-z_]\w*)\s*\()");
  std::set<std::string> names;
  for (const std::string& raw : SplitLines(content)) {
    const std::string line = CodeOnly(raw);
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
  }
  return names;
}

void LintUncheckedStatus(const SourceInput& in,
                         const std::vector<std::string>& lines,
                         std::vector<LintFinding>* findings) {
  std::set<std::string> names = StatusReturningNames(in.content);
  if (!in.paired_header.empty()) {
    std::set<std::string> from_header = StatusReturningNames(in.paired_header);
    names.insert(from_header.begin(), from_header.end());
  }
  if (names.empty()) {
    return;
  }
  // A statement that *begins* with a call to a Status-returning function
  // discards the result unless the call's value feeds something after the
  // closing paren. `(void)Foo(...)` fails the leading-identifier match, so an
  // explicit discard is always accepted.
  static const std::regex kLeadingCall(
      R"(^\s*((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\()");
  for (const Statement& stmt : AllStatements(CodeLines(lines))) {
    const std::string text = StripBraceRegions(stmt.text);
    std::smatch m;
    if (!std::regex_search(text, m, kLeadingCall,
                           std::regex_constants::match_continuous)) {
      continue;
    }
    if (names.find(m[2].str()) == names.end()) {
      continue;
    }
    const size_t open = m.position() + m.length() - 1;
    int depth = 0;
    size_t close = std::string::npos;
    for (size_t j = open; j < text.size(); ++j) {
      depth += text[j] == '(' ? 1 : text[j] == ')' ? -1 : 0;
      if (text[j] == ')' && depth == 0) {
        close = j;
        break;
      }
    }
    if (close == std::string::npos) {
      continue;
    }
    const size_t next = text.find_first_not_of(" \t\n", close + 1);
    if (next == std::string::npos || text[next] != ';') {
      continue;  // chained / consumed (e.g. `Foo(x).ok()`)
    }
    const size_t line = LineAt(stmt, static_cast<size_t>(m.position(2)));
    if (Allowlisted(lines, line, "unchecked-status")) {
      continue;
    }
    findings->push_back(
        {in.relpath, static_cast<int>(line + 1), "unchecked-status",
         "result of Status/Result-returning '" + m[2].str() +
             "' is silently discarded; handle it or cast to (void) after "
             "review"});
  }
}

// ---- build-graph rule ------------------------------------------------------

struct CmakeCommand {
  std::string name;
  std::vector<std::string> args;
};

std::vector<CmakeCommand> ParseCmake(const std::string& content) {
  std::vector<CmakeCommand> commands;
  // Strip comments.
  std::string text;
  text.reserve(content.size());
  for (const std::string& line : SplitLines(content)) {
    const size_t hash = line.find('#');
    text += hash == std::string::npos ? line : line.substr(0, hash);
    text += '\n';
  }
  static const std::regex kCall(R"(([A-Za-z_]\w*)\s*\(([^()]*)\))");
  for (std::sregex_iterator it(text.begin(), text.end(), kCall), end;
       it != end; ++it) {
    CmakeCommand cmd;
    cmd.name = (*it)[1].str();
    std::stringstream args((*it)[2].str());
    std::string arg;
    while (args >> arg) {
      cmd.args.push_back(arg);
    }
    commands.push_back(std::move(cmd));
  }
  return commands;
}

bool IsCmakeKeyword(const std::string& arg) {
  return arg == "PUBLIC" || arg == "PRIVATE" || arg == "INTERFACE" ||
         arg == "STATIC" || arg == "SHARED" || arg == "OBJECT";
}

std::vector<LintFinding> BuildGraphFindings(const std::string& root) {
  std::vector<LintFinding> findings;
  std::map<std::string, std::vector<std::string>> target_sources;  // rel .cc
  std::map<std::string, std::vector<std::string>> target_deps;
  std::vector<std::string> test_roots;

  std::vector<fs::path> cmake_files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      break;
    }
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory() &&
        (name == "build" || name.rfind("build-", 0) == 0 ||
         name == ".git" || name == "third_party")) {
      it.disable_recursion_pending();
      continue;
    }
    if (name == "CMakeLists.txt") {
      cmake_files.push_back(p);
    }
  }
  std::sort(cmake_files.begin(), cmake_files.end());

  for (const fs::path& path : cmake_files) {
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string dir =
        fs::relative(path.parent_path(), root).generic_string();
    for (const CmakeCommand& cmd : ParseCmake(ss.str())) {
      if (cmd.args.empty() || cmd.args[0].find("${") != std::string::npos) {
        continue;  // function bodies parameterize the target name
      }
      const std::string& target = cmd.args[0];
      if (cmd.name == "add_library" || cmd.name == "add_executable") {
        for (size_t i = 1; i < cmd.args.size(); ++i) {
          const std::string& arg = cmd.args[i];
          if (IsCmakeKeyword(arg) || arg.size() < 4 ||
              arg.compare(arg.size() - 3, 3, ".cc") != 0) {
            continue;
          }
          target_sources[target].push_back(dir == "." ? arg : dir + "/" + arg);
        }
      } else if (cmd.name == "target_link_libraries") {
        for (size_t i = 1; i < cmd.args.size(); ++i) {
          if (!IsCmakeKeyword(cmd.args[i])) {
            target_deps[target].push_back(cmd.args[i]);
          }
        }
      } else if (cmd.name == "ring_add_test" || cmd.name == "ring_add_bench") {
        target_sources[target].push_back(dir + "/" + target + ".cc");
        for (size_t i = 1; i < cmd.args.size(); ++i) {
          target_deps[target].push_back(cmd.args[i]);
        }
        if (cmd.name == "ring_add_test") {
          test_roots.push_back(target);
        }
      }
    }
  }

  // Link closure from the test executables.
  std::set<std::string> reachable;
  std::vector<std::string> frontier = test_roots;
  while (!frontier.empty()) {
    const std::string target = frontier.back();
    frontier.pop_back();
    if (!reachable.insert(target).second) {
      continue;
    }
    const auto deps = target_deps.find(target);
    if (deps != target_deps.end()) {
      for (const std::string& dep : deps->second) {
        frontier.push_back(dep);
      }
    }
  }

  std::map<std::string, std::string> cc_to_target;
  for (const auto& [target, sources] : target_sources) {
    for (const std::string& source : sources) {
      cc_to_target[source] = target;
    }
  }

  std::vector<fs::path> src_ccs;
  for (fs::recursive_directory_iterator it(fs::path(root) / "src", ec), end;
       it != end; it.increment(ec)) {
    if (ec) {
      break;
    }
    if (it->is_regular_file() && it->path().extension() == ".cc") {
      src_ccs.push_back(it->path());
    }
  }
  std::sort(src_ccs.begin(), src_ccs.end());
  for (const fs::path& cc : src_ccs) {
    const std::string rel = fs::relative(cc, root).generic_string();
    const auto owner = cc_to_target.find(rel);
    if (owner == cc_to_target.end()) {
      findings.push_back({rel, 0, "orphan-cc",
                          "not listed in any CMake target; dead code or a "
                          "missing add_library entry"});
    } else if (reachable.find(owner->second) == reachable.end()) {
      findings.push_back({rel, 0, "orphan-cc",
                          "target '" + owner->second +
                              "' is not linked (directly or transitively) "
                              "by any test executable"});
    }
  }
  return findings;
}

}  // namespace

std::vector<LintFinding> LintSource(const SourceInput& in,
                                    bool force_all_rules) {
  std::vector<LintFinding> findings;
  const bool scanned = force_all_rules || InScannedDir(in.relpath);
  if (!scanned) {
    return findings;
  }
  const std::vector<std::string> lines = SplitLines(in.content);
  for (const TextRule& rule : WallclockAndRandRules()) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(CodeOnly(lines[i]), rule.pattern) &&
          !Allowlisted(lines, i, rule.name)) {
        findings.push_back(
            {in.relpath, static_cast<int>(i + 1), rule.name, rule.message});
      }
    }
  }
  const bool sim_internal = !force_all_rules &&
                            in.relpath.rfind("src/sim/", 0) == 0;
  if (!sim_internal) {
    const TextRule& rule = RawScheduleRule();
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(CodeOnly(lines[i]), rule.pattern) &&
          !Allowlisted(lines, i, rule.name)) {
        findings.push_back(
            {in.relpath, static_cast<int>(i + 1), rule.name, rule.message});
      }
    }
  }
  // Only the scheduler-adjacent trees must stay pool-pure: protocol layers
  // may still hand std::function across public APIs, but src/sim and src/net
  // sit on the event hot path where a boxed callable costs an allocation per
  // scheduled event.
  const bool pool_scoped = force_all_rules ||
                           in.relpath.rfind("src/sim/", 0) == 0 ||
                           in.relpath.rfind("src/net/", 0) == 0;
  if (pool_scoped) {
    const TextRule& rule = BoxedCallbackRule();
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(CodeOnly(lines[i]), rule.pattern) &&
          !Allowlisted(lines, i, rule.name)) {
        findings.push_back(
            {in.relpath, static_cast<int>(i + 1), rule.name, rule.message});
      }
    }
  }
  LintUnorderedIter(in, lines, &findings);
  LintUseAfterMove(in, lines, &findings);
  LintUncheckedStatus(in, lines, &findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::vector<LintFinding> LintBuildGraph(const std::string& root) {
  return BuildGraphFindings(root);
}

std::vector<LintFinding> LintTree(const std::string& root) {
  std::vector<LintFinding> findings;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(fs::path(root) / "src", ec), end;
       it != end; it.increment(ec)) {
    if (ec) {
      break;
    }
    if (!it->is_regular_file()) {
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".cc" || ext == ".h") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    SourceInput in;
    in.relpath = fs::relative(path, root).generic_string();
    if (!InScannedDir(in.relpath)) {
      continue;
    }
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    in.content = ss.str();
    if (path.extension() == ".cc") {
      fs::path header = path;
      header.replace_extension(".h");
      if (fs::exists(header, ec)) {
        std::ifstream hf(header);
        std::stringstream hs;
        hs << hf.rdbuf();
        in.paired_header = hs.str();
      }
    }
    std::vector<LintFinding> file_findings = LintSource(in);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  std::vector<LintFinding> graph = LintBuildGraph(root);
  findings.insert(findings.end(), graph.begin(), graph.end());
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::string FormatFindings(const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    os << f.file;
    if (f.line > 0) {
      os << ":" << f.line;
    }
    os << ": [" << f.rule << "] " << f.message << "\n";
  }
  return os.str();
}

}  // namespace ring::analysis
