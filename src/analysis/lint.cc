#include "src/analysis/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace ring::analysis {
namespace {

namespace fs = std::filesystem;

// Directories the text rules police. src/analysis is deliberately excluded:
// the lint rules themselves spell out the forbidden tokens.
constexpr const char* kScannedDirs[] = {"src/sim/", "src/net/", "src/ring/",
                                        "src/srs/", "src/policy/"};

bool InScannedDir(const std::string& relpath) {
  for (const char* dir : kScannedDirs) {
    if (relpath.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= content.size()) {
    const size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      if (pos < content.size()) {
        lines.push_back(content.substr(pos));
      }
      break;
    }
    lines.push_back(content.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

// `// ring-lint: ok(rule-a, rule-b)` on the access line or the line above.
bool Allowlisted(const std::vector<std::string>& lines, size_t index,
                 const std::string& rule) {
  static const std::regex kOk(R"(//\s*ring-lint:\s*ok\(([^)]*)\))");
  for (size_t i = index; i + 1 >= index && i < lines.size(); --i) {
    std::smatch m;
    if (std::regex_search(lines[i], m, kOk)) {
      std::stringstream list(m[1].str());
      std::string item;
      while (std::getline(list, item, ',')) {
        const size_t b = item.find_first_not_of(" \t");
        const size_t e = item.find_last_not_of(" \t");
        if (b != std::string::npos && item.substr(b, e - b + 1) == rule) {
          return true;
        }
      }
    }
    if (i == 0) {
      break;
    }
  }
  return false;
}

// Strips // comments and the contents of string literals so rule regexes
// don't fire on prose or quoted text; the allowlist check runs on the raw
// line before this.
std::string CodeOnly(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  char quote = 0;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == quote) {
        in_string = false;
        out += quote;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
      out += c;
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      break;
    }
    out += c;
  }
  return out;
}

struct TextRule {
  const char* name;
  const char* message;
  std::regex pattern;
};

const std::vector<TextRule>& WallclockAndRandRules() {
  static const std::vector<TextRule>* rules = new std::vector<TextRule>{
      {"wallclock",
       "host clock read in simulation code; derive time from sim::Simulator",
       std::regex(R"(std::chrono::(system_clock|steady_clock|high_resolution_clock))"
                  R"(|\bgettimeofday\s*\()"
                  R"(|\bclock_gettime\s*\()"
                  R"(|[^\w.:>]time\s*\(\s*(NULL|nullptr|0)?\s*\))")},
      {"rand",
       "non-simulator randomness; route through the simulator-owned "
       "ring::Rng",
       std::regex(R"(\brand\s*\(\s*\))"
                  R"(|\bsrand\s*\()"
                  R"(|std::random_device)"
                  R"(|std::mt19937)"
                  R"(|\bdrand48\s*\()")},
  };
  return *rules;
}

const TextRule& RawScheduleRule() {
  static const TextRule* rule = new TextRule{
      "raw-schedule",
      "direct event-queue Schedule() outside src/sim; use net::Fabric or "
      "Simulator At/After",
      std::regex(R"((\.|->)\s*Schedule\s*\(|\bqueue\(\)\s*\.\s*Schedule\b)")};
  return *rule;
}

const TextRule& BoxedCallbackRule() {
  static const TextRule* rule = new TextRule{
      "boxed-callback",
      "std::function in scheduler-adjacent code boxes every capture on the "
      "general heap, bypassing the pooled sim::Task allocator; take a "
      "sim::Task (or a deduced callable template parameter) instead",
      std::regex(R"(\bstd\s*::\s*function\s*<)")};
  return *rule;
}

// Member/local names declared as std::unordered_{map,set}. Single-line
// declarations only — an AST-lite compromise that covers this codebase.
std::set<std::string> UnorderedNames(const std::string& content) {
  static const std::regex kDecl(
      R"(\bunordered_(?:map|set)\s*<.*>\s+([A-Za-z_]\w*)\s*[;={])");
  std::set<std::string> names;
  for (const std::string& raw : SplitLines(content)) {
    const std::string line = CodeOnly(raw);
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
  }
  return names;
}

void LintUnorderedIter(const SourceInput& in,
                       const std::vector<std::string>& lines,
                       std::vector<LintFinding>* findings) {
  std::set<std::string> names = UnorderedNames(in.content);
  if (!in.paired_header.empty()) {
    std::set<std::string> from_header = UnorderedNames(in.paired_header);
    names.insert(from_header.begin(), from_header.end());
  }
  if (names.empty()) {
    return;
  }
  std::string alt;
  for (const std::string& n : names) {
    if (!alt.empty()) {
      alt += '|';
    }
    alt += n;
  }
  // Range-for over the container, or explicit .begin() iteration.
  const std::regex use(R"(for\s*\([^;)]*:\s*[^)]*\b(?:)" + alt +
                       R"()\b\s*\)|\b(?:)" + alt + R"()\s*\.\s*begin\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string code = CodeOnly(lines[i]);
    if (!std::regex_search(code, use)) {
      continue;
    }
    if (Allowlisted(lines, i, "unordered-iter")) {
      continue;
    }
    findings->push_back(
        {in.relpath, static_cast<int>(i + 1), "unordered-iter",
         "iteration over an unordered container can feed hash-order into "
         "sim-visible decisions; use an ordered container or allowlist "
         "after review"});
  }
}

// ---- build-graph rule ------------------------------------------------------

struct CmakeCommand {
  std::string name;
  std::vector<std::string> args;
};

std::vector<CmakeCommand> ParseCmake(const std::string& content) {
  std::vector<CmakeCommand> commands;
  // Strip comments.
  std::string text;
  text.reserve(content.size());
  for (const std::string& line : SplitLines(content)) {
    const size_t hash = line.find('#');
    text += hash == std::string::npos ? line : line.substr(0, hash);
    text += '\n';
  }
  static const std::regex kCall(R"(([A-Za-z_]\w*)\s*\(([^()]*)\))");
  for (std::sregex_iterator it(text.begin(), text.end(), kCall), end;
       it != end; ++it) {
    CmakeCommand cmd;
    cmd.name = (*it)[1].str();
    std::stringstream args((*it)[2].str());
    std::string arg;
    while (args >> arg) {
      cmd.args.push_back(arg);
    }
    commands.push_back(std::move(cmd));
  }
  return commands;
}

bool IsCmakeKeyword(const std::string& arg) {
  return arg == "PUBLIC" || arg == "PRIVATE" || arg == "INTERFACE" ||
         arg == "STATIC" || arg == "SHARED" || arg == "OBJECT";
}

std::vector<LintFinding> BuildGraphFindings(const std::string& root) {
  std::vector<LintFinding> findings;
  std::map<std::string, std::vector<std::string>> target_sources;  // rel .cc
  std::map<std::string, std::vector<std::string>> target_deps;
  std::vector<std::string> test_roots;

  std::vector<fs::path> cmake_files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      break;
    }
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory() &&
        (name == "build" || name.rfind("build-", 0) == 0 ||
         name == ".git" || name == "third_party")) {
      it.disable_recursion_pending();
      continue;
    }
    if (name == "CMakeLists.txt") {
      cmake_files.push_back(p);
    }
  }
  std::sort(cmake_files.begin(), cmake_files.end());

  for (const fs::path& path : cmake_files) {
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string dir =
        fs::relative(path.parent_path(), root).generic_string();
    for (const CmakeCommand& cmd : ParseCmake(ss.str())) {
      if (cmd.args.empty() || cmd.args[0].find("${") != std::string::npos) {
        continue;  // function bodies parameterize the target name
      }
      const std::string& target = cmd.args[0];
      if (cmd.name == "add_library" || cmd.name == "add_executable") {
        for (size_t i = 1; i < cmd.args.size(); ++i) {
          const std::string& arg = cmd.args[i];
          if (IsCmakeKeyword(arg) || arg.size() < 4 ||
              arg.compare(arg.size() - 3, 3, ".cc") != 0) {
            continue;
          }
          target_sources[target].push_back(dir == "." ? arg : dir + "/" + arg);
        }
      } else if (cmd.name == "target_link_libraries") {
        for (size_t i = 1; i < cmd.args.size(); ++i) {
          if (!IsCmakeKeyword(cmd.args[i])) {
            target_deps[target].push_back(cmd.args[i]);
          }
        }
      } else if (cmd.name == "ring_add_test" || cmd.name == "ring_add_bench") {
        target_sources[target].push_back(dir + "/" + target + ".cc");
        for (size_t i = 1; i < cmd.args.size(); ++i) {
          target_deps[target].push_back(cmd.args[i]);
        }
        if (cmd.name == "ring_add_test") {
          test_roots.push_back(target);
        }
      }
    }
  }

  // Link closure from the test executables.
  std::set<std::string> reachable;
  std::vector<std::string> frontier = test_roots;
  while (!frontier.empty()) {
    const std::string target = frontier.back();
    frontier.pop_back();
    if (!reachable.insert(target).second) {
      continue;
    }
    const auto deps = target_deps.find(target);
    if (deps != target_deps.end()) {
      for (const std::string& dep : deps->second) {
        frontier.push_back(dep);
      }
    }
  }

  std::map<std::string, std::string> cc_to_target;
  for (const auto& [target, sources] : target_sources) {
    for (const std::string& source : sources) {
      cc_to_target[source] = target;
    }
  }

  std::vector<fs::path> src_ccs;
  for (fs::recursive_directory_iterator it(fs::path(root) / "src", ec), end;
       it != end; it.increment(ec)) {
    if (ec) {
      break;
    }
    if (it->is_regular_file() && it->path().extension() == ".cc") {
      src_ccs.push_back(it->path());
    }
  }
  std::sort(src_ccs.begin(), src_ccs.end());
  for (const fs::path& cc : src_ccs) {
    const std::string rel = fs::relative(cc, root).generic_string();
    const auto owner = cc_to_target.find(rel);
    if (owner == cc_to_target.end()) {
      findings.push_back({rel, 0, "orphan-cc",
                          "not listed in any CMake target; dead code or a "
                          "missing add_library entry"});
    } else if (reachable.find(owner->second) == reachable.end()) {
      findings.push_back({rel, 0, "orphan-cc",
                          "target '" + owner->second +
                              "' is not linked (directly or transitively) "
                              "by any test executable"});
    }
  }
  return findings;
}

}  // namespace

std::vector<LintFinding> LintSource(const SourceInput& in,
                                    bool force_all_rules) {
  std::vector<LintFinding> findings;
  const bool scanned = force_all_rules || InScannedDir(in.relpath);
  if (!scanned) {
    return findings;
  }
  const std::vector<std::string> lines = SplitLines(in.content);
  for (const TextRule& rule : WallclockAndRandRules()) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(CodeOnly(lines[i]), rule.pattern) &&
          !Allowlisted(lines, i, rule.name)) {
        findings.push_back(
            {in.relpath, static_cast<int>(i + 1), rule.name, rule.message});
      }
    }
  }
  const bool sim_internal = !force_all_rules &&
                            in.relpath.rfind("src/sim/", 0) == 0;
  if (!sim_internal) {
    const TextRule& rule = RawScheduleRule();
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(CodeOnly(lines[i]), rule.pattern) &&
          !Allowlisted(lines, i, rule.name)) {
        findings.push_back(
            {in.relpath, static_cast<int>(i + 1), rule.name, rule.message});
      }
    }
  }
  // Only the scheduler-adjacent trees must stay pool-pure: protocol layers
  // may still hand std::function across public APIs, but src/sim and src/net
  // sit on the event hot path where a boxed callable costs an allocation per
  // scheduled event.
  const bool pool_scoped = force_all_rules ||
                           in.relpath.rfind("src/sim/", 0) == 0 ||
                           in.relpath.rfind("src/net/", 0) == 0;
  if (pool_scoped) {
    const TextRule& rule = BoxedCallbackRule();
    for (size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(CodeOnly(lines[i]), rule.pattern) &&
          !Allowlisted(lines, i, rule.name)) {
        findings.push_back(
            {in.relpath, static_cast<int>(i + 1), rule.name, rule.message});
      }
    }
  }
  LintUnorderedIter(in, lines, &findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::vector<LintFinding> LintBuildGraph(const std::string& root) {
  return BuildGraphFindings(root);
}

std::vector<LintFinding> LintTree(const std::string& root) {
  std::vector<LintFinding> findings;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(fs::path(root) / "src", ec), end;
       it != end; it.increment(ec)) {
    if (ec) {
      break;
    }
    if (!it->is_regular_file()) {
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".cc" || ext == ".h") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    SourceInput in;
    in.relpath = fs::relative(path, root).generic_string();
    if (!InScannedDir(in.relpath)) {
      continue;
    }
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    in.content = ss.str();
    if (path.extension() == ".cc") {
      fs::path header = path;
      header.replace_extension(".h");
      if (fs::exists(header, ec)) {
        std::ifstream hf(header);
        std::stringstream hs;
        hs << hf.rdbuf();
        in.paired_header = hs.str();
      }
    }
    std::vector<LintFinding> file_findings = LintSource(in);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  std::vector<LintFinding> graph = LintBuildGraph(root);
  findings.insert(findings.end(), graph.begin(), graph.end());
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::string FormatFindings(const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    os << f.file;
    if (f.line > 0) {
      os << ":" << f.line;
    }
    os << ": [" << f.rule << "] " << f.message << "\n";
  }
  return os.str();
}

}  // namespace ring::analysis
