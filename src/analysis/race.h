// Happens-before race detection for the simulated RDMA fabric.
//
// The discrete-event simulator executes everything on one host thread, so
// nothing here is a data race in the C++ sense. What CAN go wrong — and what
// silently corrupts real RDMA deployments ("The Impact of RDMA on
// Agreement") — is a *protocol* race: a one-sided Write/Read touching remote
// memory that the remote CPU (or another one-sided op) also touches, with no
// happens-before edge between the two accesses. The simulator's event order
// then encodes an accident of timing, not a guarantee of the protocol.
//
// Model:
//  - Actors: one logical clock per node CPU plus one "external" actor for
//    code driving the simulator from outside any handler (tests, benches).
//  - Two-sided Send: the handler joins the sender's clock into the receiving
//    CPU's clock (message edge) — the normal synchronization.
//  - One-sided Write/Read: the remote apply/fetch runs with the *issuer's*
//    clock only; it never joins the destination CPU. Accesses it performs
//    are concurrent with destination-CPU work unless some earlier edge
//    orders them.
//  - Issue order from one actor is happens-before (ticking the issuer per
//    capture), mirroring reliable-connected QP FIFO execution.
//  - Completion regions: protocol state that one-sided acks land in is only
//    touched by the owning CPU after it polls the completion word, so ack
//    application acquires into the owner's CPU clock (ScopedCpuAcquire).
//
// Conflicting accesses (write/write or write/read) to overlapping bytes of a
// declared region with unordered clocks are recorded as RaceReports, each
// carrying both ops' ids so their protocol-phase history can be recovered
// from the span tracer (PR 1's op_id stitching).
//
// The detector only observes: it never schedules events, never consumes
// simulator randomness, and is entirely absent (null pointer, zero work)
// unless opted in via RING_ANALYZE=race or Simulator::EnableRaceDetection().
#ifndef RING_SRC_ANALYSIS_RACE_H_
#define RING_SRC_ANALYSIS_RACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/vector_clock.h"

namespace ring::obs {
class Tracer;
}  // namespace ring::obs

namespace ring::analysis {

enum class AccessKind : uint8_t { kRead = 0, kWrite = 1 };

// What class of protocol state a declared region holds.
enum class RegionKind : uint8_t {
  kHeap = 0,     // shard object store bytes
  kParityStrip,  // parity buffer bytes of an erasure-coded group
  kMetadata,     // metadata hashtable entries
  kVersionWord,  // volatile-index version assignment state
  kCommitFlag,   // per-(key, version) durability flag
  kAckWord,      // one-sided completion region the coordinator polls
};

const char* RegionKindName(RegionKind kind);
const char* AccessKindName(AccessKind kind);

// A declared span of simulated memory: `node` owns it, `scope` partitions a
// kind into independent address spaces (e.g. (memgest << 32) | shard), and
// [lo, hi) are bytes — or a key hash with hi == lo + 1 for word regions.
struct Region {
  uint32_t node = 0;
  RegionKind kind = RegionKind::kHeap;
  uint64_t scope = 0;
  uint64_t lo = 0;
  uint64_t hi = 1;
};

struct RaceAccess {
  AccessKind kind = AccessKind::kRead;
  const char* site = "";  // static string naming the protocol step
  uint64_t op_id = 0;
  uint64_t time = 0;  // simulated ns
  uint64_t lo = 0;
  uint64_t hi = 0;
  VectorClock clock;
};

struct RaceReport {
  Region region;       // region identity; lo/hi = overlap of the two spans
  RaceAccess first;    // earlier access (by simulated time)
  RaceAccess second;   // later, conflicting access
};

class RaceDetector {
 public:
  // Actor 0 is the external driver; node n's CPU shard k is actor
  // 1 + n * cores_per_node + k. With the default single core per node that
  // collapses to the historical "node n is actor n + 1" mapping.
  static constexpr uint32_t kExternalActor = 0;
  uint32_t CpuActorId(uint32_t node, uint32_t shard = 0) const {
    return 1 + node * cores_per_node_ + shard;
  }
  // Must match SimParams::cores_per_node; set once before any task begins
  // (Simulator and Fabric both wire it through).
  void SetCoresPerNode(uint32_t cores) {
    cores_per_node_ = cores == 0 ? 1 : cores;
  }

  // Non-null iff the RING_ANALYZE env var contains "race".
  static std::unique_ptr<RaceDetector> FromEnv();

  // ---- task context -------------------------------------------------------
  // The context stack tracks which logical task is executing. With an empty
  // stack the external actor is current.

  // Clock to embed into a message/deferred closure: ticks the current
  // actor's clock (issue order from one actor is happens-before) and
  // returns a copy. From a one-sided context, returns that task's clock.
  VectorClock CaptureEdge();

  // Runs on `node`'s CPU shard: joins `inherited` (may be null — no edges)
  // into that shard's clock and makes it current.
  void BeginCpuTask(uint32_t node, const VectorClock* inherited,
                    uint32_t shard = 0);
  // One-sided NIC access: `inherited` (issuer's clock; may be null) becomes
  // the task clock. Never joins a destination actor.
  void BeginOneSidedTask(const VectorClock* inherited);
  // Completion-region acquire: joins the *current* task clock (typically a
  // one-sided apply) into the clock of `node`'s CPU shard and continues as
  // that shard.
  void BeginCpuAcquire(uint32_t node, uint32_t shard = 0);
  void EndTask();

  // ---- access logging -----------------------------------------------------
  void OnAccess(const Region& region, AccessKind kind, const char* site,
                uint64_t now, uint64_t op_id);

  const std::vector<RaceReport>& races() const { return races_; }
  uint64_t accesses_logged() const { return accesses_; }
  uint64_t races_dropped() const { return races_dropped_; }

  // Human-readable report. With a tracer, each access is annotated with its
  // op's protocol-phase history (the named spans recorded under its op_id,
  // in simulated-time order).
  std::string Report(const obs::Tracer* tracer = nullptr) const;

 private:
  struct Frame {
    int32_t actor = -1;  // >= 0: actor index; -1: one-sided task
    VectorClock clock;   // used when actor < 0
  };

  struct RegionKey {
    uint32_t node;
    RegionKind kind;
    uint64_t scope;
    bool operator<(const RegionKey& o) const {
      if (node != o.node) {
        return node < o.node;
      }
      if (kind != o.kind) {
        return kind < o.kind;
      }
      return scope < o.scope;
    }
  };
  struct RegionState {
    std::vector<RaceAccess> writes;
    std::vector<RaceAccess> reads;
  };

  VectorClock& ActorClock(uint32_t actor);
  const VectorClock& CurrentClock();
  int32_t CurrentActor() const;
  void RecordRace(const RegionKey& key, const RaceAccess& a,
                  const RaceAccess& b);

  static constexpr size_t kMaxRaces = 64;
  static constexpr size_t kMaxStoredPerList = 128;

  uint32_t cores_per_node_ = 1;
  std::vector<VectorClock> actor_clocks_;
  std::vector<Frame> stack_;
  std::map<RegionKey, RegionState> regions_;
  std::vector<RaceReport> races_;
  uint64_t accesses_ = 0;
  uint64_t races_dropped_ = 0;
};

// ---- null-safe RAII scopes (no-ops when the detector pointer is null) -----

class ScopedCpuTask {
 public:
  ScopedCpuTask(RaceDetector* d, uint32_t node, const VectorClock* inherited,
                uint32_t shard = 0)
      : d_(d) {
    if (d_ != nullptr) {
      d_->BeginCpuTask(node, inherited, shard);
    }
  }
  ~ScopedCpuTask() {
    if (d_ != nullptr) {
      d_->EndTask();
    }
  }
  ScopedCpuTask(const ScopedCpuTask&) = delete;
  ScopedCpuTask& operator=(const ScopedCpuTask&) = delete;

 private:
  RaceDetector* d_;
};

class ScopedOneSidedTask {
 public:
  ScopedOneSidedTask(RaceDetector* d, const VectorClock* inherited) : d_(d) {
    if (d_ != nullptr) {
      d_->BeginOneSidedTask(inherited);
    }
  }
  ~ScopedOneSidedTask() {
    if (d_ != nullptr) {
      d_->EndTask();
    }
  }
  ScopedOneSidedTask(const ScopedOneSidedTask&) = delete;
  ScopedOneSidedTask& operator=(const ScopedOneSidedTask&) = delete;

 private:
  RaceDetector* d_;
};

class ScopedCpuAcquire {
 public:
  ScopedCpuAcquire(RaceDetector* d, uint32_t node, uint32_t shard = 0)
      : d_(d) {
    if (d_ != nullptr) {
      d_->BeginCpuAcquire(node, shard);
    }
  }
  ~ScopedCpuAcquire() {
    if (d_ != nullptr) {
      d_->EndTask();
    }
  }
  ScopedCpuAcquire(const ScopedCpuAcquire&) = delete;
  ScopedCpuAcquire& operator=(const ScopedCpuAcquire&) = delete;

 private:
  RaceDetector* d_;
};

}  // namespace ring::analysis

#endif  // RING_SRC_ANALYSIS_RACE_H_
