// Dense matrices over GF(2^8).
//
// Used to build and manipulate Reed-Solomon coding matrices: the systematic
// encoding matrix H = [I; G] (paper Eqn. 1), decoding matrices (inverses of
// k x k row selections), and the rank checks behind SRS recoverability.
#ifndef RING_SRC_MATRIX_MATRIX_H_
#define RING_SRC_MATRIX_MATRIX_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace ring::gf {

class Matrix {
 public:
  Matrix() = default;
  // Zero-filled rows x cols matrix.
  Matrix(size_t rows, size_t cols);
  // Row-major construction from a nested initializer list (for tests).
  Matrix(std::initializer_list<std::initializer_list<uint8_t>> rows);

  static Matrix Identity(size_t n);

  // (rows x cols) Vandermonde matrix V[i][j] = (i+1)^j. Any `cols` rows of it
  // are linearly independent because the evaluation points are distinct.
  static Matrix Vandermonde(size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  uint8_t At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  void Set(size_t r, size_t c, uint8_t v) { data_[r * cols_ + c] = v; }

  // Raw row access for region operations.
  const uint8_t* Row(size_t r) const { return data_.data() + r * cols_; }
  uint8_t* MutableRow(size_t r) { return data_.data() + r * cols_; }

  Matrix Multiply(const Matrix& other) const;

  // Gauss-Jordan inverse. Fails with kFailedPrecondition when singular or
  // non-square.
  Result<Matrix> Inverse() const;

  // Rank via Gaussian elimination (does not modify *this).
  size_t Rank() const;

  // New matrix made of the given rows of *this, in the given order.
  Matrix SelectRows(const std::vector<size_t>& row_indices) const;

  // Vertical concatenation: [*this; below]. Column counts must match.
  Matrix VStack(const Matrix& below) const;

  bool operator==(const Matrix& other) const = default;

  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint8_t> data_;
};

}  // namespace ring::gf

#endif  // RING_SRC_MATRIX_MATRIX_H_
