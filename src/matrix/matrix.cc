#include "src/matrix/matrix.h"

#include <cassert>
#include <sstream>

#include "src/gf/gf256.h"

namespace ring::gf {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<uint8_t>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m.Set(i, i, 1);
  }
  return m;
}

Matrix Matrix::Vandermonde(size_t rows, size_t cols) {
  assert(rows <= 255 && "GF(2^8) has only 255 distinct nonzero points");
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    const uint8_t x = static_cast<uint8_t>(i + 1);
    for (size_t j = 0; j < cols; ++j) {
      m.Set(i, j, Pow(x, static_cast<uint32_t>(j)));
    }
  }
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const uint8_t a = At(i, k);
      if (a == 0) {
        continue;
      }
      for (size_t j = 0; j < other.cols_; ++j) {
        out.Set(i, j, Add(out.At(i, j), Mul(a, other.At(k, j))));
      }
    }
  }
  return out;
}

Result<Matrix> Matrix::Inverse() const {
  if (rows_ != cols_) {
    return FailedPreconditionError("inverse of non-square matrix");
  }
  const size_t n = rows_;
  Matrix a = *this;
  Matrix inv = Identity(n);
  for (size_t col = 0; col < n; ++col) {
    // Find a pivot.
    size_t pivot = col;
    while (pivot < n && a.At(pivot, col) == 0) {
      ++pivot;
    }
    if (pivot == n) {
      return FailedPreconditionError("singular matrix");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(a.MutableRow(pivot)[j], a.MutableRow(col)[j]);
        std::swap(inv.MutableRow(pivot)[j], inv.MutableRow(col)[j]);
      }
    }
    // Scale pivot row to 1.
    const uint8_t piv_inv = Inv(a.At(col, col));
    for (size_t j = 0; j < n; ++j) {
      a.Set(col, j, Mul(a.At(col, j), piv_inv));
      inv.Set(col, j, Mul(inv.At(col, j), piv_inv));
    }
    // Eliminate the column everywhere else.
    for (size_t r = 0; r < n; ++r) {
      if (r == col) {
        continue;
      }
      const uint8_t f = a.At(r, col);
      if (f == 0) {
        continue;
      }
      for (size_t j = 0; j < n; ++j) {
        a.Set(r, j, Add(a.At(r, j), Mul(f, a.At(col, j))));
        inv.Set(r, j, Add(inv.At(r, j), Mul(f, inv.At(col, j))));
      }
    }
  }
  return inv;
}

size_t Matrix::Rank() const {
  Matrix a = *this;
  size_t rank = 0;
  size_t row = 0;
  for (size_t col = 0; col < cols_ && row < rows_; ++col) {
    size_t pivot = row;
    while (pivot < rows_ && a.At(pivot, col) == 0) {
      ++pivot;
    }
    if (pivot == rows_) {
      continue;
    }
    if (pivot != row) {
      for (size_t j = 0; j < cols_; ++j) {
        std::swap(a.MutableRow(pivot)[j], a.MutableRow(row)[j]);
      }
    }
    const uint8_t piv_inv = Inv(a.At(row, col));
    for (size_t r = row + 1; r < rows_; ++r) {
      const uint8_t f = Mul(a.At(r, col), piv_inv);
      if (f == 0) {
        continue;
      }
      for (size_t j = col; j < cols_; ++j) {
        a.Set(r, j, Add(a.At(r, j), Mul(f, a.At(row, j))));
      }
    }
    ++row;
    ++rank;
  }
  return rank;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    assert(row_indices[i] < rows_);
    for (size_t j = 0; j < cols_; ++j) {
      out.Set(i, j, At(row_indices[i], j));
    }
  }
  return out;
}

Matrix Matrix::VStack(const Matrix& below) const {
  assert(cols_ == below.cols_);
  Matrix out(rows_ + below.rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out.Set(i, j, At(i, j));
    }
  }
  for (size_t i = 0; i < below.rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out.Set(rows_ + i, j, below.At(i, j));
    }
  }
  return out;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      os << static_cast<int>(At(i, j)) << (j + 1 == cols_ ? "" : " ");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ring::gf
