#include "src/policy/policy.h"

namespace ring::policy {

PolicyEngine::PolicyEngine(std::vector<Tier> tiers, PolicyOptions options)
    : tiers_(std::move(tiers)), options_(options) {}

const Tier* PolicyEngine::TierOf(MemgestId memgest) const {
  for (const auto& t : tiers_) {
    if (t.memgest == memgest) {
      return &t;
    }
  }
  return nullptr;
}

double PolicyEngine::PlacementCost(const Tier& tier, double temperature,
                                   uint64_t bytes) const {
  // Storage is charged on raw bytes times the scheme's overhead (Rep(r)
  // stores r copies, SRS(k,m) stores 1 + m/k), as in Fig. 10.
  constexpr double kGb = 1024.0 * 1024.0 * 1024.0;
  const double stored_gb =
      static_cast<double>(bytes) * tier.desc.StorageOverhead() / kGb;
  const double storage = stored_gb * tier.prices.storage_gb_month;
  // Operations: temperature (ops/epoch) scaled to ops/month; reads from a
  // cool tier additionally pay per-GB retrieval.
  const double ops = temperature * options_.ops_per_month_per_temp;
  const double op_cost = ops * tier.prices.read_per_10k / 10'000.0;
  const double retrieval =
      ops * static_cast<double>(bytes) / kGb * tier.prices.retrieval_gb;
  return storage + op_cost + retrieval;
}

std::optional<MemgestId> PolicyEngine::DecideThreshold(
    double temperature, MemgestId current) const {
  if (tiers_.empty()) {
    return std::nullopt;
  }
  const Tier& hot = tiers_.front();
  const Tier& cold = tiers_.back();
  if (temperature >= options_.hot_enter && current != hot.memgest) {
    return hot.memgest;
  }
  if (temperature <= options_.cold_enter && current != cold.memgest) {
    return cold.memgest;
  }
  return std::nullopt;  // inside the hysteresis band: stay
}

std::optional<MemgestId> PolicyEngine::DecideCost(double temperature,
                                                  uint64_t bytes,
                                                  MemgestId current) const {
  const Tier* cur = TierOf(current);
  if (cur == nullptr) {
    return std::nullopt;  // not a managed placement
  }
  const double cur_cost = PlacementCost(*cur, temperature, bytes);
  const Tier* best = cur;
  double best_cost = cur_cost;
  for (const auto& t : tiers_) {
    const double c = PlacementCost(t, temperature, bytes);
    if (c < best_cost) {
      best = &t;
      best_cost = c;
    }
  }
  // Move only on a clear win; the margin is the anti-flapping hysteresis.
  if (best->memgest != current &&
      best_cost < cur_cost * (1.0 - options_.cost_margin)) {
    return best->memgest;
  }
  return std::nullopt;
}

std::optional<MemgestId> PolicyEngine::Decide(double temperature,
                                              uint64_t bytes,
                                              MemgestId current) const {
  switch (options_.mode) {
    case PolicyMode::kThreshold:
      return DecideThreshold(temperature, current);
    case PolicyMode::kCostObjective:
      return DecideCost(temperature, bytes, current);
  }
  return std::nullopt;
}

}  // namespace ring::policy
