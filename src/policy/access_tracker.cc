#include "src/policy/access_tracker.h"

#include <algorithm>

#include "src/common/hash.h"

namespace ring::policy {

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth)
    : width_(std::max(width, 1u)),
      depth_(std::max(depth, 1u)),
      cells_(static_cast<size_t>(width_) * depth_, 0) {}

uint64_t CountMinSketch::RowHash(std::string_view key, uint32_t row) const {
  // splitmix64 over (key hash ^ row constant): independent-enough row hashes
  // from one key hash, deterministic across runs.
  uint64_t z = HashKey(key) ^ (0x9E3779B97F4A7C15ULL * (row + 1));
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

void CountMinSketch::Add(std::string_view key, uint64_t count) {
  for (uint32_t row = 0; row < depth_; ++row) {
    cells_[static_cast<size_t>(row) * width_ + RowHash(key, row) % width_] +=
        count;
  }
  total_ += count;
}

uint64_t CountMinSketch::Estimate(std::string_view key) const {
  uint64_t est = UINT64_MAX;
  for (uint32_t row = 0; row < depth_; ++row) {
    est = std::min(
        est,
        cells_[static_cast<size_t>(row) * width_ + RowHash(key, row) % width_]);
  }
  return est;
}

void CountMinSketch::Clear() {
  std::fill(cells_.begin(), cells_.end(), 0);
  total_ = 0;
}

AccessTracker::AccessTracker(AccessTrackerOptions options)
    : options_(options),
      sketch_(options.sketch_width, options.sketch_depth) {}

void AccessTracker::Record(const std::string& key) {
  sketch_.Add(key);
  seen_this_epoch_[key] = true;
}

void AccessTracker::EndEpoch() {
  const double a = options_.ewma_alpha;
  // Fold this epoch's (sketch-estimated) counts into the EWMAs. Keys seen
  // this epoch but not yet tracked enter at their full epoch count so a new
  // hotspot heats up in one epoch.
  // Reviewed: per-key fold; each EWMA update is independent of visit order.
  // ring-lint: ok(unordered-iter)
  for (const auto& [key, unused] : seen_this_epoch_) {
    const double count = static_cast<double>(sketch_.Estimate(key));
    auto it = temperature_.find(key);
    if (it == temperature_.end()) {
      temperature_[key] = count;
    } else {
      it->second = (1.0 - a) * it->second + a * count;
    }
  }
  // Decay tracked keys that went quiet; drop the ones that froze.
  // ring-lint: ok(unordered-iter) per-key decay/erase; order-independent.
  for (auto it = temperature_.begin(); it != temperature_.end();) {
    if (seen_this_epoch_.count(it->first) == 0) {
      it->second *= (1.0 - a);
    }
    if (it->second < options_.drop_below) {
      it = temperature_.erase(it);
    } else {
      ++it;
    }
  }
  // Enforce the space bound: evict the coldest entries.
  if (temperature_.size() > options_.max_tracked_keys) {
    std::vector<std::pair<double, const std::string*>> by_temp;
    by_temp.reserve(temperature_.size());
    // Reviewed: victims are selected by temperature, and exact EWMA ties
    // between distinct keys do not occur in practice.
    // ring-lint: ok(unordered-iter)
    for (const auto& [key, temp] : temperature_) {
      by_temp.emplace_back(temp, &key);
    }
    const size_t excess = temperature_.size() - options_.max_tracked_keys;
    std::nth_element(by_temp.begin(), by_temp.begin() + excess, by_temp.end());
    std::vector<std::string> victims;
    victims.reserve(excess);
    for (size_t i = 0; i < excess; ++i) {
      victims.push_back(*by_temp[i].second);
    }
    for (const auto& v : victims) {
      temperature_.erase(v);
    }
  }
  seen_this_epoch_.clear();
  sketch_.Clear();
  ++epochs_;
}

double AccessTracker::Temperature(const std::string& key) const {
  auto it = temperature_.find(key);
  return it == temperature_.end() ? 0.0 : it->second;
}

void AccessTracker::ForEachTracked(
    const std::function<void(const std::string&, double)>& fn) const {
  // Reviewed: callers rank candidates by temperature before acting (see
  // autotier.cc), so visit order is not sim-visible.
  // ring-lint: ok(unordered-iter)
  for (const auto& [key, temp] : temperature_) {
    fn(key, temp);
  }
}

}  // namespace ring::policy
