#include "src/policy/mover.h"

#include <algorithm>

namespace ring::policy {

Mover::Mover(RingCluster* cluster, MoverOptions options)
    : cluster_(cluster),
      options_(options),
      tokens_(options.burst),
      last_refill_(cluster->simulator().now()) {}

bool Mover::Retryable(const Status& s) {
  // Timeouts (coordinator failover in progress) and transient unavailability
  // are worth another attempt; NotFound/InvalidArgument are terminal — the
  // key or destination is gone and the move is moot.
  return s.code() == StatusCode::kTimeout ||
         s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDataLoss;
}

void Mover::Enqueue(const Key& key, MemgestId dst) {
  auto it = pending_.find(key);
  if (it != pending_.end()) {
    it->second = dst;  // coalesce: queued entries pick up the new target
    return;
  }
  pending_[key] = dst;
  queue_.push_back(Job{key, dst, 0});
  ++scheduled_;
  obs::Hub& hub = cluster_->simulator().hub();
  const uint32_t node = cluster_->client(options_.client_index).node();
  hub.metrics().Inc("policy.moves_scheduled", 1, node, dst,
                    obs::OpKind::kMove);
  hub.recorder().Record(obs::RecKind::kPolicy, "move_scheduled", node, 0,
                        dst);
}

void Mover::RefillTokens() {
  const sim::SimTime now = cluster_->simulator().now();
  if (now > last_refill_) {
    tokens_ = std::min(
        options_.burst,
        tokens_ + static_cast<double>(now - last_refill_) *
                      options_.moves_per_sec / 1e9);
    last_refill_ = now;
  }
}

void Mover::Tick() {
  if (options_.admit && !options_.admit()) {
    // Held, not dropped: re-check once the backoff elapses so the queue
    // drains as soon as the gate opens again.
    if (!queue_.empty() && !refill_timer_armed_) {
      refill_timer_armed_ = true;
      cluster_->simulator().After(
          options_.retry_backoff_ns,
          [this, w = std::weak_ptr<char>(alive_)] {
            if (w.expired()) {
              return;
            }
            refill_timer_armed_ = false;
            Tick();
          });
    }
    return;
  }
  RefillTokens();
  while (tokens_ >= 1.0 && in_flight_ < options_.max_concurrent &&
         !queue_.empty()) {
    Job job = queue_.front();
    queue_.pop_front();
    // A queued entry may have been re-targeted since it was pushed.
    auto it = pending_.find(job.key);
    if (it == pending_.end()) {
      continue;  // cancelled
    }
    job.dst = it->second;
    tokens_ -= 1.0;
    Launch(std::move(job));
  }
  // Blocked on tokens (not concurrency): wake up when the next one matures.
  if (!queue_.empty() && in_flight_ < options_.max_concurrent &&
      tokens_ < 1.0 && !refill_timer_armed_) {
    refill_timer_armed_ = true;
    const sim::SimTime wait =
        static_cast<sim::SimTime>((1.0 - tokens_) / options_.moves_per_sec *
                                  1e9) +
        1;
    cluster_->simulator().After(wait, [this, w = std::weak_ptr<char>(alive_)] {
      if (w.expired()) {
        return;
      }
      refill_timer_armed_ = false;
      Tick();
    });
  }
}

void Mover::Launch(Job job) {
  ++launched_;
  ++in_flight_;
  const sim::SimTime start = cluster_->simulator().now();
  const Key key = job.key;
  const MemgestId dst = job.dst;
  if (options_.issuer) {
    // Custom transport (rebalance migrations): the issuer owns tracing.
    options_.issuer(key, dst,
                    [this, job = std::move(job)](Status s, Version) mutable {
                      OnDone(std::move(job), s);
                    });
    return;
  }
  auto& client = cluster_->client(options_.client_index);
  client.Move(key, dst,
              [this, job = std::move(job), start](Status s, Version) mutable {
                obs::Hub& hub = cluster_->simulator().hub();
                hub.tracer().Record("tier_move", obs::Category::kOther,
                                    cluster_->client(options_.client_index)
                                        .node(),
                                    /*op_id=*/0, start,
                                    cluster_->simulator().now());
                OnDone(std::move(job), s);
              });
}

void Mover::OnDone(Job job, const Status& status) {
  --in_flight_;
  Finish(std::move(job), status);
  Tick();  // a slot freed up: launch the next queued move if tokens allow
}

void Mover::Finish(Job job, const Status& status) {
  obs::Hub& hub = cluster_->simulator().hub();
  obs::Metrics& metrics = hub.metrics();
  const uint32_t node = cluster_->client(options_.client_index).node();
  if (status.ok()) {
    ++completed_;
    metrics.Inc("policy.moves_completed", 1, node, job.dst,
                obs::OpKind::kMove);
    hub.recorder().Record(obs::RecKind::kPolicy, "move_completed", node, 0,
                          job.dst);
    pending_.erase(job.key);
    if (done_hook_) {
      done_hook_(job.key, job.dst, status);
    }
    return;
  }
  if (Retryable(status) && job.attempts + 1 < options_.max_retries) {
    ++retried_;
    metrics.Inc("policy.moves_retried", 1, node, job.dst, obs::OpKind::kMove);
    ++job.attempts;
    // Back off, then requeue; the next Tick (or this timer) relaunches it
    // under the same token/concurrency budget.
    cluster_->simulator().After(
        options_.retry_backoff_ns,
        [this, w = std::weak_ptr<char>(alive_), job = std::move(job)]() mutable {
          if (w.expired() || pending_.count(job.key) == 0) {
            return;  // mover gone, or cancelled while backing off
          }
          queue_.push_back(std::move(job));
          Tick();
        });
    return;
  }
  ++aborted_;
  metrics.Inc("policy.moves_aborted", 1, node, job.dst, obs::OpKind::kMove);
  hub.recorder().Record(obs::RecKind::kPolicy, "move_aborted", node, 0,
                        job.dst, static_cast<uint64_t>(status.code()));
  pending_.erase(job.key);
  if (done_hook_) {
    done_hook_(job.key, job.dst, status);
  }
}

}  // namespace ring::policy
