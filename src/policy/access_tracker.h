// Space-bounded per-key access-temperature tracking for the adaptive
// resilience manager (the multi-temperature use case of paper §2).
//
// Two layers:
//  - a count-min sketch absorbs the raw op stream: O(width * depth) counters
//    total, O(depth) work per access, never underestimates a key's count;
//  - a bounded map of "tracked" keys carries an EWMA temperature across
//    epochs (ops per epoch, exponentially decayed), folded from the sketch
//    when the manager rolls an epoch.
//
// The tracker is pure bookkeeping: it never touches the simulator and costs
// nothing in simulated time, matching how a real control plane would sample
// off the critical path.
#ifndef RING_SRC_POLICY_ACCESS_TRACKER_H_
#define RING_SRC_POLICY_ACCESS_TRACKER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ring::policy {

// Count-min sketch over string keys. Standard guarantees: Estimate() is
// never below the true count, and with width w the overestimate is bounded
// by roughly (total inserts) / w per row, taking the minimum over `depth`
// independent rows.
class CountMinSketch {
 public:
  CountMinSketch(uint32_t width, uint32_t depth);

  void Add(std::string_view key, uint64_t count = 1);
  uint64_t Estimate(std::string_view key) const;

  // Total count added since the last Clear (for error-bound reasoning).
  uint64_t total() const { return total_; }
  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }

  void Clear();

 private:
  // Row hash: one 64-bit key hash remixed with a per-row constant.
  uint64_t RowHash(std::string_view key, uint32_t row) const;

  uint32_t width_;
  uint32_t depth_;
  uint64_t total_ = 0;
  std::vector<uint64_t> cells_;  // depth_ rows of width_ counters
};

struct AccessTrackerOptions {
  uint32_t sketch_width = 1024;
  uint32_t sketch_depth = 4;
  // EWMA smoothing: temperature' = (1-alpha)*temperature + alpha*count.
  double ewma_alpha = 0.5;
  // Bound on the tracked-key map; coldest entries are evicted at epoch end.
  size_t max_tracked_keys = 8192;
  // Tracked entries whose temperature decays below this are dropped.
  double drop_below = 0.01;
};

class AccessTracker {
 public:
  explicit AccessTracker(AccessTrackerOptions options = {});

  // Op-path hook: one access to `key` in the current epoch.
  void Record(const std::string& key);

  // Rolls the epoch: folds sketch estimates into each tracked key's EWMA,
  // decays keys that were not accessed, evicts down to the size bound, and
  // resets the sketch for the next epoch.
  void EndEpoch();

  // EWMA temperature in ops/epoch (0 for unknown keys).
  double Temperature(const std::string& key) const;

  // Estimated accesses of `key` within the current (unrolled) epoch.
  uint64_t EpochEstimate(const std::string& key) const {
    return sketch_.Estimate(key);
  }

  void ForEachTracked(
      const std::function<void(const std::string&, double)>& fn) const;

  size_t tracked() const { return temperature_.size(); }
  uint64_t epochs() const { return epochs_; }
  const CountMinSketch& sketch() const { return sketch_; }

 private:
  AccessTrackerOptions options_;
  CountMinSketch sketch_;
  // Keys seen this epoch (exact set; bounded by eviction at epoch end).
  std::unordered_map<std::string, bool> seen_this_epoch_;
  std::unordered_map<std::string, double> temperature_;
  uint64_t epochs_ = 0;
};

}  // namespace ring::policy

#endif  // RING_SRC_POLICY_ACCESS_TRACKER_H_
