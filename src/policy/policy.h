// Placement policy for the adaptive resilience manager: given a key's
// temperature and current memgest, decide where it should live.
//
// Two modes:
//  - kThreshold: classic hot/cold thresholds with a hysteresis band —
//    promote at `hot_enter`, demote at `cold_enter` (< hot_enter); keys
//    inside the band stay put, so temperature noise cannot flap a key
//    between tiers.
//  - kCostObjective: price each candidate placement with the Fig. 10 cost
//    model (src/cost/pricing) — storage at the scheme's overhead plus
//    per-operation charges at the key's access rate — and move only when
//    the best candidate beats the current placement by a relative margin
//    (the hysteresis equivalent for costs).
#ifndef RING_SRC_POLICY_POLICY_H_
#define RING_SRC_POLICY_POLICY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/cost/pricing.h"
#include "src/ring/types.h"

namespace ring::policy {

// One placement tier the engine may choose.
struct Tier {
  MemgestId memgest = kDefaultMemgest;
  MemgestDescriptor desc;
  // Prices applied to candidates in this tier (cost-objective mode).
  cost::TierPrices prices;
};

enum class PolicyMode { kThreshold, kCostObjective };

struct PolicyOptions {
  PolicyMode mode = PolicyMode::kThreshold;
  // kThreshold: EWMA temperature (ops/epoch) above which a key belongs in
  // the hot tier, and the lower demotion threshold (hysteresis band between).
  double hot_enter = 8.0;
  double cold_enter = 2.0;
  // kCostObjective: required relative improvement before moving, and the
  // scale factor from temperature (ops/epoch) to priced ops/month.
  double cost_margin = 0.10;
  double ops_per_month_per_temp = 1.0e6;
};

class PolicyEngine {
 public:
  // `tiers` ordered hottest first; two tiers (hot, cold) is the common case.
  PolicyEngine(std::vector<Tier> tiers, PolicyOptions options);

  // Desired memgest for a key, or nullopt to stay. `bytes` is the key's
  // last-known object size (cost mode prices storage with it).
  std::optional<MemgestId> Decide(double temperature, uint64_t bytes,
                                  MemgestId current) const;

  // Monthly cost of holding `bytes` at `temperature` in `tier` (cost mode's
  // objective; exposed for the realized-cost gauge and tests).
  double PlacementCost(const Tier& tier, double temperature,
                       uint64_t bytes) const;

  const std::vector<Tier>& tiers() const { return tiers_; }
  const Tier* TierOf(MemgestId memgest) const;
  const PolicyOptions& options() const { return options_; }

 private:
  std::optional<MemgestId> DecideThreshold(double temperature,
                                           MemgestId current) const;
  std::optional<MemgestId> DecideCost(double temperature, uint64_t bytes,
                                      MemgestId current) const;

  std::vector<Tier> tiers_;
  PolicyOptions options_;
};

}  // namespace ring::policy

#endif  // RING_SRC_POLICY_POLICY_H_
