// Background mover: executes the policy engine's tiering decisions as
// ordinary client `move`s, paced by a token bucket so re-tiering traffic
// stays within a bandwidth budget and never starves foreground ops.
//
// Consistency comes for free: each move goes through RingClient::Move, so
// the server-side versioned write-ahead/commit protocol (paper §5.2) applies
// unchanged — concurrent puts/gets against a key being moved behave exactly
// as they would for a client-issued move.
//
// Failure handling: a move that fails with a retryable status (timeout
// during failover, data temporarily unavailable) is re-queued with a backoff
// up to `max_retries`; NotFound (key deleted underneath us) and permanent
// errors abort the move. Aborting is safe — the key simply keeps its current
// scheme and the next policy tick may try again.
#ifndef RING_SRC_POLICY_MOVER_H_
#define RING_SRC_POLICY_MOVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/ring/cluster.h"

namespace ring::policy {

struct MoverOptions {
  // Token bucket: sustained moves/sec and burst capacity.
  double moves_per_sec = 2000.0;
  double burst = 4.0;
  // In-flight bound (a move occupies a client slot until it completes).
  uint32_t max_concurrent = 2;
  uint32_t max_retries = 3;
  sim::SimTime retry_backoff_ns = 500 * sim::kMicrosecond;
  // Which cluster client issues the moves (give the mover its own endpoint
  // so foreground latency stats stay clean).
  uint32_t client_index = 0;
  // When set, jobs are issued through this hook instead of RingClient::Move.
  // The elastic-rebalance driver (§13) reuses the mover's token bucket,
  // in-flight bound and retry machinery for per-key migrations this way.
  using Issuer = std::function<void(const Key&, MemgestId,
                                    std::function<void(Status, Version)>)>;
  Issuer issuer;
  // Admission gate consulted before launching queued jobs. While it returns
  // false the queue is held (not dropped) and re-checked after the retry
  // backoff — e.g. autotier re-tiering yields to an in-flight rebalance.
  // Unset = always admit.
  std::function<bool()> admit;
};

class Mover {
 public:
  // Called on terminal outcome of a move: (key, dst, final status).
  using DoneHook =
      std::function<void(const Key&, MemgestId, const Status&)>;

  Mover(RingCluster* cluster, MoverOptions options);

  // Schedules key -> dst. Duplicate keys already queued or in flight are
  // coalesced (the newest destination wins for queued entries).
  void Enqueue(const Key& key, MemgestId dst);

  // Refills tokens from elapsed simulated time and launches as many queued
  // moves as tokens/concurrency allow. The mover is self-driving after the
  // first Tick: completions re-tick to reuse the freed slot, and a token
  // shortage arms a timer for when the next token matures — so a burst of
  // enqueued moves drains at the bucket rate, not at the epoch rate.
  void Tick();

  // True while a move for `key` is queued or in flight.
  bool Pending(const Key& key) const { return pending_.count(key) > 0; }

  void set_done_hook(DoneHook hook) { done_hook_ = std::move(hook); }

  // ---- statistics ----
  uint64_t scheduled() const { return scheduled_; }
  uint64_t launched() const { return launched_; }
  uint64_t completed() const { return completed_; }
  uint64_t aborted() const { return aborted_; }
  uint64_t retried() const { return retried_; }
  size_t queued() const { return queue_.size(); }
  size_t in_flight() const { return in_flight_; }
  bool idle() const { return queue_.empty() && in_flight_ == 0; }
  // Keys with any outstanding work: queued, in flight, or backing off
  // between retry attempts (idle() is briefly true during a backoff).
  size_t pending_keys() const { return pending_.size(); }

 private:
  struct Job {
    Key key;
    MemgestId dst;
    uint32_t attempts = 0;
  };

  void Launch(Job job);
  void OnDone(Job job, const Status& status);
  void Finish(Job job, const Status& status);
  void RefillTokens();
  static bool Retryable(const Status& s);

  RingCluster* cluster_;
  MoverOptions options_;
  // Lifetime token: armed timers capture a weak reference and no-op once the
  // mover is destroyed (a rebalance driver's mover dies with the transition,
  // possibly with a backoff or refill timer still queued in the simulator).
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  std::deque<Job> queue_;
  // key -> queued destination (coalescing) or in-flight marker.
  std::unordered_map<Key, MemgestId> pending_;
  double tokens_;
  sim::SimTime last_refill_ = 0;
  bool refill_timer_armed_ = false;
  size_t in_flight_ = 0;
  uint64_t scheduled_ = 0;
  uint64_t launched_ = 0;
  uint64_t completed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t retried_ = 0;
  DoneHook done_hook_;
};

}  // namespace ring::policy

#endif  // RING_SRC_POLICY_MOVER_H_
