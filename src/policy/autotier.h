// AutoTierManager: the adaptive resilience manager — the control plane that
// automates the paper's multi-temperature use case (§2, use case 1).
//
// It taps every client's op issue path to feed the access tracker, rolls a
// temperature epoch on a fixed simulated-time tick, asks the policy engine
// where each managed key should live, and hands the resulting re-tiering
// moves to the token-bucket mover. All state is control-plane bookkeeping in
// zero simulated time; the only simulated traffic it generates is the moves
// themselves, issued through the ordinary client library so the versioned
// move consistency of §5.2 is preserved under concurrent puts/gets.
//
// Placement is learned, not queried: a key enters management when a put is
// observed (the put names the memgest), and its placement is updated on
// every observed or manager-issued move and dropped on delete. Keys the
// manager has never seen a put for are left alone.
#ifndef RING_SRC_POLICY_AUTOTIER_H_
#define RING_SRC_POLICY_AUTOTIER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/policy/access_tracker.h"
#include "src/policy/mover.h"
#include "src/policy/policy.h"

namespace ring::policy {

struct AutoTierOptions {
  // Epoch length: how often temperatures roll and decisions are made.
  sim::SimTime epoch_ns = 10 * sim::kMillisecond;
  AccessTrackerOptions tracker;
  PolicyOptions policy;
  MoverOptions mover;
};

class AutoTierManager {
 public:
  // `tiers` ordered hottest first (see PolicyEngine). The manager installs
  // itself as the access observer of every cluster client and must outlive
  // all simulation it started.
  AutoTierManager(RingCluster* cluster, std::vector<Tier> tiers,
                  AutoTierOptions options);

  // Starts/stops the periodic epoch tick on the simulator event loop.
  void Start();
  void Stop();

  // One epoch roll: fold temperatures, enqueue policy moves, tick the mover,
  // refresh gauges. Exposed for tests; Start() calls it on a timer.
  void Tick();

  // Last-known placement of a managed key (kDefaultMemgest if unmanaged).
  MemgestId PlacementOf(const Key& key) const;

  // Raw bytes currently managed, and the same bytes weighted by each
  // placement's storage overhead — the realized cluster-memory footprint the
  // policy is minimizing (also exported as gauges).
  uint64_t ManagedBytes() const;
  double RealizedStorageBytes() const;
  // Monthly storage+ops cost of the current placements per the tier prices
  // (temperatures taken from the tracker).
  double RealizedStorageCost() const;

  size_t managed_keys() const { return placements_.size(); }
  uint64_t ticks() const { return ticks_; }
  bool running() const { return running_; }

  AccessTracker& tracker() { return tracker_; }
  const PolicyEngine& engine() const { return engine_; }
  Mover& mover() { return mover_; }

 private:
  struct KeyState {
    MemgestId memgest = kDefaultMemgest;
    uint64_t bytes = 0;
  };

  void Observe(const Key& key, obs::OpKind op, MemgestId memgest,
               uint64_t bytes);
  void ScheduleTick();
  void UpdateGauges();

  RingCluster* cluster_;
  AutoTierOptions options_;
  AccessTracker tracker_;
  PolicyEngine engine_;
  Mover mover_;
  std::unordered_map<Key, KeyState> placements_;
  bool running_ = false;
  uint64_t generation_ = 0;  // invalidates pending tick timers on Stop()
  uint64_t ticks_ = 0;
};

}  // namespace ring::policy

#endif  // RING_SRC_POLICY_AUTOTIER_H_
