#include "src/policy/autotier.h"

namespace ring::policy {

AutoTierManager::AutoTierManager(RingCluster* cluster, std::vector<Tier> tiers,
                                 AutoTierOptions options)
    : cluster_(cluster),
      options_(options),
      tracker_(options.tracker),
      engine_(std::move(tiers), options.policy),
      mover_(cluster, [&options, cluster] {
        // Rebalance-aware admission (§13): re-tiering traffic yields while
        // an elastic resize drains, so the migration keeps the whole
        // token-bucket budget. Callers may still install their own gate.
        MoverOptions mo = options.mover;
        if (!mo.admit) {
          mo.admit = [cluster] {
            RingRuntime& rt = cluster->runtime();
            return !rt.membership()
                        .ConfigView(rt.leader_node())
                        .rebalancing();
          };
        }
        return mo;
      }()) {
  // Tap every client endpoint; moves issued by the mover itself flow through
  // the same tap, which is how placements_ learns their outcome targets.
  const uint32_t clients = cluster_->runtime().options().clients;
  for (uint32_t i = 0; i < clients; ++i) {
    cluster_->client(i).set_access_observer(
        [this](const Key& key, obs::OpKind op, MemgestId memgest,
               uint64_t bytes) { Observe(key, op, memgest, bytes); });
  }
}

void AutoTierManager::Observe(const Key& key, obs::OpKind op,
                              MemgestId memgest, uint64_t bytes) {
  switch (op) {
    case obs::OpKind::kPut: {
      tracker_.Record(key);
      KeyState& state = placements_[key];
      state.memgest = memgest == kDefaultMemgest
                          ? cluster_->runtime().registry().default_id()
                          : memgest;
      state.bytes = bytes;
      break;
    }
    case obs::OpKind::kGet:
      tracker_.Record(key);
      break;
    case obs::OpKind::kMove: {
      // Re-tiering is not an access — only the placement changes.
      auto it = placements_.find(key);
      if (it != placements_.end()) {
        it->second.memgest = memgest;
      }
      break;
    }
    case obs::OpKind::kDelete:
      placements_.erase(key);
      break;
    default:
      break;
  }
}

void AutoTierManager::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ScheduleTick();
}

void AutoTierManager::Stop() {
  running_ = false;
  ++generation_;  // orphan any timer already scheduled
}

void AutoTierManager::ScheduleTick() {
  const uint64_t gen = generation_;
  cluster_->simulator().After(options_.epoch_ns, [this, gen] {
    if (!running_ || gen != generation_) {
      return;
    }
    Tick();
    ScheduleTick();
  });
}

void AutoTierManager::Tick() {
  const sim::SimTime start = cluster_->simulator().now();
  tracker_.EndEpoch();
  tracker_.ForEachTracked([this](const Key& key, double temperature) {
    auto it = placements_.find(key);
    if (it == placements_.end()) {
      return;  // never saw a put: not ours to manage
    }
    const auto desired =
        engine_.Decide(temperature, it->second.bytes, it->second.memgest);
    if (desired.has_value() && *desired != it->second.memgest &&
        !mover_.Pending(key)) {
      mover_.Enqueue(key, *desired);
    }
  });
  mover_.Tick();
  UpdateGauges();
  ++ticks_;
  obs::Hub& hub = cluster_->simulator().hub();
  hub.tracer().Record("autotier_tick", obs::Category::kOther,
                      cluster_->client(options_.mover.client_index).node(),
                      /*op_id=*/0, start, cluster_->simulator().now());
  hub.recorder().Record(obs::RecKind::kPolicy, "autotier_tick",
                        cluster_->client(options_.mover.client_index).node(),
                        0, mover_.scheduled(), mover_.completed());
}

MemgestId AutoTierManager::PlacementOf(const Key& key) const {
  auto it = placements_.find(key);
  return it == placements_.end() ? kDefaultMemgest : it->second.memgest;
}

uint64_t AutoTierManager::ManagedBytes() const {
  uint64_t total = 0;
  // ring-lint: ok(unordered-iter) commutative sum; order-independent.
  for (const auto& [key, state] : placements_) {
    total += state.bytes;
  }
  return total;
}

double AutoTierManager::RealizedStorageBytes() const {
  double total = 0.0;
  // ring-lint: ok(unordered-iter) gauge-only sum; never feeds scheduling.
  for (const auto& [key, state] : placements_) {
    double overhead = 1.0;
    if (const Tier* tier = engine_.TierOf(state.memgest)) {
      overhead = tier->desc.StorageOverhead();
    } else if (const MemgestInfo* info =
                   cluster_->runtime().registry().Get(state.memgest)) {
      overhead = info->desc.StorageOverhead();
    }
    total += static_cast<double>(state.bytes) * overhead;
  }
  return total;
}

double AutoTierManager::RealizedStorageCost() const {
  double total = 0.0;
  // ring-lint: ok(unordered-iter) gauge-only sum; never feeds scheduling.
  for (const auto& [key, state] : placements_) {
    const Tier* tier = engine_.TierOf(state.memgest);
    if (tier == nullptr) {
      continue;  // unpriced placement (not one of ours)
    }
    total += engine_.PlacementCost(*tier, tracker_.Temperature(key),
                                   state.bytes);
  }
  return total;
}

void AutoTierManager::UpdateGauges() {
  obs::Metrics& metrics = cluster_->simulator().hub().metrics();
  const uint32_t node = cluster_->client(options_.mover.client_index).node();
  metrics.SetGauge("policy.managed_keys",
                   static_cast<int64_t>(placements_.size()), node);
  metrics.SetGauge("policy.tracked_keys",
                   static_cast<int64_t>(tracker_.tracked()), node);
  metrics.SetGauge("policy.realized_storage_bytes",
                   static_cast<int64_t>(RealizedStorageBytes()), node);
  // Gauges are integers; export the cost objective in micro-dollars/month.
  metrics.SetGauge("policy.realized_cost_usd_millionths",
                   static_cast<int64_t>(RealizedStorageCost() * 1e6), node);
}

}  // namespace ring::policy
