#include "src/fault/fault.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/obs/hub.h"

namespace ring::fault {

namespace {

// --- Text-form helpers -----------------------------------------------------

std::vector<std::string> SplitDirectives(std::string_view spec) {
  std::vector<std::string> out;
  std::string cur;
  bool in_comment = false;
  for (char c : spec) {
    if (c == '\n') {
      in_comment = false;
      out.push_back(cur);
      cur.clear();
      continue;
    }
    if (in_comment) {
      continue;
    }
    if (c == '#') {
      in_comment = true;
      continue;
    }
    if (c == ';') {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream is(line);
  std::string w;
  while (is >> w) {
    words.push_back(w);
  }
  return words;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// Times accept ns/us/ms/s suffixes (decimal values allowed); bare = ns.
bool ParseTime(std::string_view text, uint64_t* out) {
  double scale = 1.0;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ns") {
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    scale = 1e3;
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale = 1e6;
    text.remove_suffix(2);
  } else if (!text.empty() && text.back() == 's') {
    scale = 1e9;
    text.remove_suffix(1);
  }
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const std::string body(text);
  const double v = std::strtod(body.c_str(), &end);
  if (end != body.c_str() + body.size() || v < 0) {
    return false;
  }
  *out = static_cast<uint64_t>(v * scale);
  return true;
}

bool ParseProb(std::string_view text, double* out) {
  char* end = nullptr;
  const std::string body(text);
  const double v = std::strtod(body.c_str(), &end);
  if (end != body.c_str() + body.size() || v < 0.0 || v > 1.0) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseNode(std::string_view text, uint32_t* out) {
  if (text == "*") {
    *out = kAnyNode;
    return true;
  }
  uint64_t v = 0;
  if (!ParseU64(text, &v) || v >= kAnyNode) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ParseNodeList(std::string_view text, std::vector<uint32_t>* out) {
  out->clear();
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) {
      comma = text.size();
    }
    uint64_t v = 0;
    if (!ParseU64(text.substr(start, comma - start), &v) || v >= kAnyNode) {
      return false;
    }
    out->push_back(static_cast<uint32_t>(v));
    start = comma + 1;
    if (comma == text.size()) {
      break;
    }
  }
  return !out->empty();
}

std::string NodeText(uint32_t node) {
  return node == kAnyNode ? "*" : std::to_string(node);
}

std::string TimeText(uint64_t ns) {
  if (ns != 0 && ns % 1000000 == 0) {
    return std::to_string(ns / 1000000) + "ms";
  }
  if (ns != 0 && ns % 1000 == 0) {
    return std::to_string(ns / 1000) + "us";
  }
  return std::to_string(ns) + "ns";
}

std::string ListText(const std::vector<uint32_t>& nodes) {
  std::string out;
  for (uint32_t n : nodes) {
    if (!out.empty()) {
      out += ',';
    }
    out += std::to_string(n);
  }
  return out;
}

struct KeyValues {
  std::vector<std::pair<std::string, std::string>> kv;

  const std::string* Find(std::string_view key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

bool ParseKeyValues(const std::vector<std::string>& words, KeyValues* out) {
  for (size_t i = 1; i < words.size(); ++i) {
    const size_t eq = words[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= words[i].size()) {
      return false;
    }
    out->kv.emplace_back(words[i].substr(0, eq), words[i].substr(eq + 1));
  }
  return true;
}

}  // namespace

std::string_view NodeEventKindName(NodeEvent::Kind kind) {
  switch (kind) {
    case NodeEvent::Kind::kPartition:
      return "partition";
    case NodeEvent::Kind::kHeal:
      return "heal";
    case NodeEvent::Kind::kPause:
      return "pause";
    case NodeEvent::Kind::kResume:
      return "resume";
    case NodeEvent::Kind::kCrash:
      return "crash";
    case NodeEvent::Kind::kRecover:
      return "recover";
  }
  return "unknown";
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  for (const LinkFault& f : links) {
    const std::string link = " src=" + NodeText(f.src) + " dst=" +
                             NodeText(f.dst);
    std::string window;
    if (f.from_ns != 0) {
      window += " from=" + TimeText(f.from_ns);
    }
    if (f.until_ns != UINT64_MAX) {
      window += " until=" + TimeText(f.until_ns);
    }
    if (f.drop_prob > 0) {
      os << "drop" << link << " p=" << f.drop_prob << window << "\n";
    }
    if (f.dup_prob > 0) {
      os << "dup" << link << " p=" << f.dup_prob << window << "\n";
    }
    if (f.delay_ns > 0 || f.delay_jitter_ns > 0) {
      os << "delay" << link << " ns=" << TimeText(f.delay_ns);
      if (f.delay_jitter_ns > 0) {
        os << " jitter=" << TimeText(f.delay_jitter_ns);
      }
      os << window << "\n";
    }
    if (f.reorder_prob > 0) {
      os << "reorder" << link << " p=" << f.reorder_prob
         << " window=" << TimeText(f.reorder_window_ns) << window << "\n";
    }
  }
  // Pair start events with their scheduled end so the text form stays one
  // line per fault episode (the grammar's heal=/resume=/recover= keys).
  std::vector<bool> consumed(events.size(), false);
  for (size_t i = 0; i < events.size(); ++i) {
    if (consumed[i]) {
      continue;
    }
    const NodeEvent& ev = events[i];
    switch (ev.kind) {
      case NodeEvent::Kind::kPartition: {
        os << "partition a=" << ListText(ev.side_a)
           << " b=" << ListText(ev.side_b) << " at=" << TimeText(ev.at_ns);
        for (size_t j = i + 1; j < events.size(); ++j) {
          if (!consumed[j] && events[j].kind == NodeEvent::Kind::kHeal &&
              events[j].side_a == ev.side_a && events[j].side_b == ev.side_b) {
            os << " heal=" << TimeText(events[j].at_ns);
            consumed[j] = true;
            break;
          }
        }
        os << "\n";
        break;
      }
      case NodeEvent::Kind::kPause: {
        os << "pause node=" << ev.node << " at=" << TimeText(ev.at_ns);
        for (size_t j = i + 1; j < events.size(); ++j) {
          if (!consumed[j] && events[j].kind == NodeEvent::Kind::kResume &&
              events[j].node == ev.node) {
            os << " resume=" << TimeText(events[j].at_ns);
            consumed[j] = true;
            break;
          }
        }
        os << "\n";
        break;
      }
      case NodeEvent::Kind::kCrash: {
        os << "crash node=" << ev.node << " at=" << TimeText(ev.at_ns);
        for (size_t j = i + 1; j < events.size(); ++j) {
          if (!consumed[j] && events[j].kind == NodeEvent::Kind::kRecover &&
              events[j].node == ev.node) {
            os << " recover=" << TimeText(events[j].at_ns);
            consumed[j] = true;
            break;
          }
        }
        os << "\n";
        break;
      }
      case NodeEvent::Kind::kHeal:
        os << "partition a=" << ListText(ev.side_a)
           << " b=" << ListText(ev.side_b) << " at=0ns heal="
           << TimeText(ev.at_ns) << "\n";
        break;
      case NodeEvent::Kind::kResume:
        os << "pause node=" << ev.node << " at=0ns resume="
           << TimeText(ev.at_ns) << "\n";
        break;
      case NodeEvent::Kind::kRecover:
        os << "crash node=" << ev.node << " at=0ns recover="
           << TimeText(ev.at_ns) << "\n";
        break;
    }
  }
  return os.str();
}

Result<FaultPlan> ParseFaultPlan(std::string_view spec) {
  FaultPlan plan;
  for (const std::string& line : SplitDirectives(spec)) {
    const std::vector<std::string> words = SplitWords(line);
    if (words.empty()) {
      continue;
    }
    KeyValues kv;
    if (!ParseKeyValues(words, &kv)) {
      return InvalidArgumentError("bad key=value in fault directive: " + line);
    }
    const std::string& verb = words[0];
    auto bad = [&line](const char* what) {
      return InvalidArgumentError(std::string("fault directive ") + what +
                                  ": " + line);
    };
    if (verb == "drop" || verb == "dup" || verb == "delay" ||
        verb == "reorder") {
      LinkFault f;
      const std::string* src = kv.Find("src");
      const std::string* dst = kv.Find("dst");
      if (src == nullptr || dst == nullptr || !ParseNode(*src, &f.src) ||
          !ParseNode(*dst, &f.dst)) {
        return bad("needs src= and dst=");
      }
      if (const std::string* from = kv.Find("from");
          from != nullptr && !ParseTime(*from, &f.from_ns)) {
        return bad("has bad from=");
      }
      if (const std::string* until = kv.Find("until");
          until != nullptr && !ParseTime(*until, &f.until_ns)) {
        return bad("has bad until=");
      }
      if (verb == "drop") {
        const std::string* p = kv.Find("p");
        if (p == nullptr || !ParseProb(*p, &f.drop_prob)) {
          return bad("needs p= in [0,1]");
        }
      } else if (verb == "dup") {
        const std::string* p = kv.Find("p");
        if (p == nullptr || !ParseProb(*p, &f.dup_prob)) {
          return bad("needs p= in [0,1]");
        }
      } else if (verb == "delay") {
        const std::string* ns = kv.Find("ns");
        if (ns == nullptr || !ParseTime(*ns, &f.delay_ns)) {
          return bad("needs ns=");
        }
        if (const std::string* jitter = kv.Find("jitter");
            jitter != nullptr && !ParseTime(*jitter, &f.delay_jitter_ns)) {
          return bad("has bad jitter=");
        }
      } else {  // reorder
        const std::string* p = kv.Find("p");
        const std::string* window = kv.Find("window");
        if (p == nullptr || !ParseProb(*p, &f.reorder_prob) ||
            window == nullptr || !ParseTime(*window, &f.reorder_window_ns)) {
          return bad("needs p= and window=");
        }
      }
      plan.links.push_back(f);
    } else if (verb == "partition") {
      NodeEvent ev;
      ev.kind = NodeEvent::Kind::kPartition;
      const std::string* a = kv.Find("a");
      const std::string* b = kv.Find("b");
      const std::string* at = kv.Find("at");
      if (a == nullptr || b == nullptr || at == nullptr ||
          !ParseNodeList(*a, &ev.side_a) || !ParseNodeList(*b, &ev.side_b) ||
          !ParseTime(*at, &ev.at_ns)) {
        return bad("needs a=, b= and at=");
      }
      plan.events.push_back(ev);
      if (const std::string* heal = kv.Find("heal"); heal != nullptr) {
        NodeEvent h = plan.events.back();
        h.kind = NodeEvent::Kind::kHeal;
        if (!ParseTime(*heal, &h.at_ns) || h.at_ns < ev.at_ns) {
          return bad("has bad heal=");
        }
        plan.events.push_back(std::move(h));
      }
    } else if (verb == "pause" || verb == "crash") {
      NodeEvent ev;
      ev.kind = verb == "pause" ? NodeEvent::Kind::kPause
                                : NodeEvent::Kind::kCrash;
      const std::string* node = kv.Find("node");
      const std::string* at = kv.Find("at");
      if (node == nullptr || at == nullptr || !ParseNode(*node, &ev.node) ||
          ev.node == kAnyNode || !ParseTime(*at, &ev.at_ns)) {
        return bad("needs node= and at=");
      }
      plan.events.push_back(ev);
      const std::string* end =
          verb == "pause" ? kv.Find("resume") : kv.Find("recover");
      if (end != nullptr) {
        NodeEvent e = plan.events.back();
        e.kind = verb == "pause" ? NodeEvent::Kind::kResume
                                 : NodeEvent::Kind::kRecover;
        if (!ParseTime(*end, &e.at_ns) || e.at_ns < ev.at_ns) {
          return bad("has bad end time");
        }
        plan.events.push_back(std::move(e));
      }
    } else {
      return InvalidArgumentError("unknown fault directive: " + verb);
    }
  }
  return plan;
}

FaultPlan RandomFaultPlan(uint64_t seed, const ChaosShape& shape) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xfau);
  FaultPlan plan;
  const uint64_t quiet =
      shape.quiet_after_ns != 0 ? shape.quiet_after_ns : shape.horizon_ns;
  if (quiet == 0 || shape.num_nodes == 0) {
    return plan;
  }
  for (uint32_t i = 0; i < shape.link_faults; ++i) {
    LinkFault f;
    f.src = rng.NextBelow(4) == 0 ? kAnyNode
                                  : static_cast<uint32_t>(
                                        rng.NextBelow(shape.num_nodes));
    f.dst = rng.NextBelow(4) == 0 ? kAnyNode
                                  : static_cast<uint32_t>(
                                        rng.NextBelow(shape.num_nodes));
    f.from_ns = rng.NextBelow(quiet / 2 + 1);
    f.until_ns =
        std::min(quiet, f.from_ns + quiet / 8 + rng.NextBelow(quiet / 4 + 1));
    switch (rng.NextBelow(4)) {
      case 0:
        f.drop_prob = 0.02 + rng.NextDouble() * shape.max_drop_prob;
        break;
      case 1:
        f.dup_prob = 0.02 + rng.NextDouble() * shape.max_dup_prob;
        break;
      case 2:
        f.delay_ns = 1000 + rng.NextBelow(20000);
        f.delay_jitter_ns = rng.NextBelow(20000);
        break;
      default:
        f.reorder_prob = 0.05 + rng.NextDouble() * 0.4;
        f.reorder_window_ns = 2000 + rng.NextBelow(30000);
        break;
    }
    plan.links.push_back(f);
  }
  if (shape.faultable.empty() || shape.node_events == 0) {
    return plan;
  }
  // Node events run in disjoint slots (at most one impaired server at a
  // time) and every episode ends strictly before the quiet point, leaving
  // time for re-integration before a post-run consistency sweep.
  const uint64_t slot = quiet / shape.node_events;
  bool crashed_once = false;
  for (uint32_t i = 0; i < shape.node_events; ++i) {
    const uint64_t lo = static_cast<uint64_t>(i) * slot;
    const uint64_t at = lo + rng.NextBelow(slot / 8 + 1);
    const uint64_t end =
        std::min(lo + slot - 1, at + slot / 2 + rng.NextBelow(slot / 4 + 1));
    const uint32_t node = shape.faultable[rng.NextBelow(shape.faultable.size())];
    std::vector<NodeEvent::Kind> kinds = {NodeEvent::Kind::kPartition};
    if (shape.allow_pause) {
      kinds.push_back(NodeEvent::Kind::kPause);
    }
    // One crash-recovery episode per plan: the rejoined node needs the rest
    // of the schedule to finish background data recovery. Crashes are only
    // safe when a spare can absorb the promotion (spare_capacity gates the
    // documented allow_crash precondition at generation time).
    if (shape.allow_crash && shape.spare_capacity != 0 && !crashed_once) {
      kinds.push_back(NodeEvent::Kind::kCrash);
    }
    const NodeEvent::Kind kind = kinds[rng.NextBelow(kinds.size())];
    NodeEvent start;
    start.kind = kind;
    start.at_ns = at;
    start.node = node;
    NodeEvent stop = start;
    stop.at_ns = end;
    switch (kind) {
      case NodeEvent::Kind::kPartition: {
        start.side_a = {node};
        for (uint32_t n = 0; n < shape.num_nodes; ++n) {
          if (n != node) {
            start.side_b.push_back(n);
          }
        }
        stop = start;
        stop.kind = NodeEvent::Kind::kHeal;
        stop.at_ns = end;
        break;
      }
      case NodeEvent::Kind::kPause:
        stop.kind = NodeEvent::Kind::kResume;
        break;
      case NodeEvent::Kind::kCrash:
        crashed_once = true;
        stop.kind = NodeEvent::Kind::kRecover;
        break;
      default:
        break;
    }
    plan.events.push_back(std::move(start));
    plan.events.push_back(std::move(stop));
  }
  return plan;
}

// --- FaultInjector ---------------------------------------------------------

FaultInjector::FaultInjector(sim::Simulator* simulator, uint32_t num_nodes,
                             FaultPlan plan, uint64_t seed)
    : sim_(simulator),
      num_nodes_(num_nodes),
      plan_(std::move(plan)),
      rng_(seed ^ 0xc4a5u),
      paused_(num_nodes, 0),
      downgraded_(num_nodes, 0),
      cut_(static_cast<size_t>(num_nodes) * num_nodes, 0),
      deferred_(num_nodes) {}

void FaultInjector::Arm() {
  for (const NodeEvent& ev : plan_.events) {
    sim_->At(ev.at_ns, [this, ev] { ApplyEvent(ev); });
  }
}

void FaultInjector::Note(const char* name, uint32_t node) {
  obs::Hub& hub = sim_->hub();
  if (hub.metrics_enabled()) {
    hub.metrics().Inc(name, 1, node);
  }
}

void FaultInjector::CutPartition(const NodeEvent& ev, bool cut) {
  for (uint32_t a : ev.side_a) {
    for (uint32_t b : ev.side_b) {
      if (a >= num_nodes_ || b >= num_nodes_) {
        continue;
      }
      uint32_t& ab = cut_[static_cast<size_t>(a) * num_nodes_ + b];
      uint32_t& ba = cut_[static_cast<size_t>(b) * num_nodes_ + a];
      if (cut) {
        ++ab;
        ++ba;
        cut_active_ += 2;
      } else {
        if (ab > 0) {
          --ab;
          --cut_active_;
        }
        if (ba > 0) {
          --ba;
          --cut_active_;
        }
      }
    }
  }
}

void FaultInjector::ApplyEvent(const NodeEvent& ev) {
  obs::Hub& hub = sim_->hub();
  if (hub.tracing_enabled()) {
    hub.tracer().Record(NodeEventKindName(ev.kind).data(),
                        obs::Category::kFault,
                        ev.node == kAnyNode ? 0 : ev.node, hub.current_op(),
                        sim_->now(), sim_->now());
  }
  // Injector actions land in the flight recorder too, so protocol anomalies
  // in the ring are causally adjacent to the fault that triggered them.
  hub.recorder().Record(obs::RecKind::kFault,
                        NodeEventKindName(ev.kind).data(),
                        ev.node == kAnyNode ? 0 : ev.node, hub.current_op());
  switch (ev.kind) {
    case NodeEvent::Kind::kPartition:
      ++counters_.partitions;
      Note("fault.partition", ev.node == kAnyNode ? 0 : ev.node);
      CutPartition(ev, /*cut=*/true);
      break;
    case NodeEvent::Kind::kHeal:
      Note("fault.heal", ev.node == kAnyNode ? 0 : ev.node);
      CutPartition(ev, /*cut=*/false);
      break;
    case NodeEvent::Kind::kPause:
      if (ev.node < num_nodes_ && paused_[ev.node] == 0) {
        ++counters_.pauses;
        Note("fault.pause", ev.node);
        paused_[ev.node] = 1;
      }
      break;
    case NodeEvent::Kind::kResume:
      if (ev.node < num_nodes_ && paused_[ev.node] != 0) {
        Note("fault.resume", ev.node);
        paused_[ev.node] = 0;
        if (hooks_.resumed) {
          hooks_.resumed(ev.node);
        }
        // RX buffers survived the stall: deliver in arrival order.
        std::vector<std::function<void()>> pending;
        pending.swap(deferred_[ev.node]);
        for (auto& fn : pending) {
          fn();
        }
      }
      break;
    case NodeEvent::Kind::kCrash:
      if (ev.node < num_nodes_) {
        if (crash_guard_ && !crash_guard_(ev.node)) {
          // No spare to absorb the promotion: a fail-stop here would wedge
          // the cluster unrecoverably. Downgrade to a gray-failure pause;
          // the paired recover becomes the resume.
          ++counters_.downgraded_crashes;
          Note("fault.crash_downgraded", ev.node);
          hub.recorder().Record(obs::RecKind::kFault, "crash_downgraded",
                                ev.node, hub.current_op());
          if (paused_[ev.node] == 0) {
            ++counters_.pauses;
            paused_[ev.node] = 1;
          }
          downgraded_[ev.node] = 1;
          break;
        }
        ++counters_.crashes;
        Note("fault.crash", ev.node);
        paused_[ev.node] = 0;
        deferred_[ev.node].clear();  // RX buffers die with the process
        if (hooks_.crash) {
          hooks_.crash(ev.node);
        }
      }
      break;
    case NodeEvent::Kind::kRecover:
      if (ev.node < num_nodes_) {
        if (downgraded_[ev.node] != 0) {
          // The crash never happened: resume the downgraded pause instead.
          downgraded_[ev.node] = 0;
          if (paused_[ev.node] != 0) {
            Note("fault.resume", ev.node);
            paused_[ev.node] = 0;
            if (hooks_.resumed) {
              hooks_.resumed(ev.node);
            }
            std::vector<std::function<void()>> pending;
            pending.swap(deferred_[ev.node]);
            for (auto& fn : pending) {
              fn();
            }
          }
          break;
        }
        ++counters_.recoveries;
        Note("fault.recover", ev.node);
        if (hooks_.recover) {
          hooks_.recover(ev.node);
        }
      }
      break;
  }
}

Verdict FaultInjector::Roll(uint32_t src, uint32_t dst, bool one_sided) {
  Verdict v;
  if (partitioned(src, dst)) {
    v.drop = true;
    ++counters_.partition_dropped;
    Note("fault.partition_dropped", src);
    return v;
  }
  if (plan_.links.empty()) {
    return v;
  }
  const uint64_t now = sim_->now();
  for (const LinkFault& f : plan_.links) {
    if ((f.src != kAnyNode && f.src != src) ||
        (f.dst != kAnyNode && f.dst != dst) || now < f.from_ns ||
        now >= f.until_ns) {
      continue;
    }
    if (f.drop_prob > 0 && rng_.NextBernoulli(f.drop_prob)) {
      v.drop = true;
      ++counters_.dropped;
      Note("fault.dropped", src);
      return v;
    }
    if (f.dup_prob > 0 && !one_sided && rng_.NextBernoulli(f.dup_prob)) {
      v.duplicate = true;
    }
    if (f.delay_ns > 0 || f.delay_jitter_ns > 0) {
      v.extra_delay_ns +=
          f.delay_ns +
          (f.delay_jitter_ns != 0 ? rng_.NextBelow(f.delay_jitter_ns) : 0);
    }
    if (f.reorder_prob > 0 && rng_.NextBernoulli(f.reorder_prob) &&
        f.reorder_window_ns != 0) {
      v.extra_delay_ns += rng_.NextBelow(f.reorder_window_ns);
    }
  }
  if (v.extra_delay_ns != 0) {
    ++counters_.delayed;
    Note("fault.delayed", src);
  }
  if (v.duplicate) {
    ++counters_.duplicated;
    Note("fault.duplicated", src);
    // The stale copy trails the original by up to a few wire times.
    v.dup_delay_ns = v.extra_delay_ns + 1 +
                     rng_.NextBelow(4 * sim_->params().wire_latency_ns + 1);
  }
  return v;
}

void FaultInjector::Defer(uint32_t node, std::function<void()> delivery) {
  ++counters_.deferred;
  Note("fault.deferred", node);
  obs::Hub& hub = sim_->hub();
  hub.recorder().Record(obs::RecKind::kFault, "rx_deferred", node,
                        hub.current_op(), deferred_[node].size());
  deferred_[node].push_back(std::move(delivery));
}

}  // namespace ring::fault
