// Deterministic, seed-driven fault injection for the simulated fabric.
//
// The paper's evaluation (and the RDMA-agreement literature it leans on)
// assumes more than clean fail-stop: links lose and duplicate packets,
// switches partition, processes wedge without dying (gray failure), and
// crashed nodes come back memory-less. A FaultPlan scripts those events on
// the simulated cluster; a FaultInjector executes the plan against
// net::Fabric with its *own* Rng stream so that
//   - with no plan installed the simulation is byte-identical to a build
//     without this library (a single null-pointer branch per message), and
//   - with a plan, the whole chaotic run replays byte-exactly from the
//     (plan, seed) pair.
#ifndef RING_SRC_FAULT_FAULT_H_
#define RING_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace ring::fault {

// Wildcard endpoint in a LinkFault ("*" in the text form).
inline constexpr uint32_t kAnyNode = 0xffffffffu;

// One stochastic impairment on a directed link (src -> dst), active for
// messages issued in [from_ns, until_ns). Probabilities are rolled per
// message on the injector's private Rng.
struct LinkFault {
  uint32_t src = kAnyNode;
  uint32_t dst = kAnyNode;
  uint64_t from_ns = 0;
  uint64_t until_ns = UINT64_MAX;
  // Message vanishes (two-sided: the request; one-sided: the whole verb —
  // the issuer never sees a completion, as with a torn QP connection).
  double drop_prob = 0.0;
  // Two-sided message delivered twice (receive-side retransmit artifact).
  // One-sided verbs are never duplicated: reliable-connection QPs hide
  // NIC-level retransmission from remote memory.
  double dup_prob = 0.0;
  // Deterministic extra one-way latency plus uniform jitter on top.
  uint64_t delay_ns = 0;
  uint64_t delay_jitter_ns = 0;
  // With probability reorder_prob the message is additionally held back a
  // uniform draw from [0, reorder_window_ns), letting later messages pass it.
  double reorder_prob = 0.0;
  uint64_t reorder_window_ns = 0;
};

// A scheduled cluster event. Partitions cut every link between side_a and
// side_b (both directions) until healed; pause wedges a node's CPU progress
// while its NIC stays alive (gray failure); crash kills the node and a later
// recover restarts it memory-less to rejoin via the spare/recovery path.
struct NodeEvent {
  enum class Kind : uint8_t {
    kPartition,
    kHeal,
    kPause,
    kResume,
    kCrash,
    kRecover,
  };
  Kind kind = Kind::kPartition;
  uint64_t at_ns = 0;
  uint32_t node = kAnyNode;  // pause/resume/crash/recover
  std::vector<uint32_t> side_a;  // partition/heal
  std::vector<uint32_t> side_b;
};

std::string_view NodeEventKindName(NodeEvent::Kind kind);

// A full fault schedule: stochastic link impairments plus scheduled node
// events. Build programmatically, parse from the ringctl text form, or
// generate randomly from a seed (chaos testing).
struct FaultPlan {
  std::vector<LinkFault> links;
  std::vector<NodeEvent> events;

  bool empty() const { return links.empty() && events.empty(); }

  // Text round-trip: ToString() emits one directive per line in the grammar
  // ParseFaultPlan accepts.
  std::string ToString() const;
};

// Parses the ringctl fault-spec grammar. Directives are separated by ';' or
// newlines; '#' comments to end of line. Times take ns/us/ms/s suffixes
// (bare numbers are ns); endpoints are node ids or '*'.
//
//   drop src=<n|*> dst=<n|*> p=<prob> [from=<t>] [until=<t>]
//   dup src=<n|*> dst=<n|*> p=<prob> [from=<t>] [until=<t>]
//   delay src=<n|*> dst=<n|*> ns=<t> [jitter=<t>] [from=<t>] [until=<t>]
//   reorder src=<n|*> dst=<n|*> p=<prob> window=<t> [from=<t>] [until=<t>]
//   partition a=<n,n,...> b=<n,n,...> at=<t> [heal=<t>]
//   pause node=<n> at=<t> [resume=<t>]
//   crash node=<n> at=<t> [recover=<t>]
Result<FaultPlan> ParseFaultPlan(std::string_view spec);

// Shape of a randomly generated chaos schedule. The generator keeps at most
// one server impaired at a time and quiesces everything (heal / resume /
// recover / expire) by quiet_after_ns so a post-run consistency sweep sees a
// healthy cluster.
struct ChaosShape {
  // Nodes eligible for pause/crash/partition (typically servers + spares;
  // keep clients out so the traffic driver itself survives).
  std::vector<uint32_t> faultable;
  // All node ids that link faults may touch (servers and clients).
  uint32_t num_nodes = 0;
  uint64_t horizon_ns = 0;      // plan covers [0, horizon)
  uint64_t quiet_after_ns = 0;  // no fault active at or past this time
  uint32_t link_faults = 3;
  uint32_t node_events = 2;
  double max_drop_prob = 0.3;
  double max_dup_prob = 0.3;
  bool allow_crash = true;  // needs a spare-capable cluster to be safe
  bool allow_pause = true;
  // Live spares of the target cluster. allow_crash is only honored when at
  // least one spare can absorb the promotion; 0 downgrades crash episodes
  // to pauses at generation time. kAnyNode (the default) means "unknown —
  // trust allow_crash", which keeps pre-existing plans byte-identical.
  uint32_t spare_capacity = kAnyNode;
};

// Deterministic: same (seed, shape) -> same plan.
FaultPlan RandomFaultPlan(uint64_t seed, const ChaosShape& shape);

// Per-message injection decision.
struct Verdict {
  bool drop = false;
  bool duplicate = false;
  uint64_t extra_delay_ns = 0;  // added to the arrival time
  uint64_t dup_delay_ns = 0;    // arrival offset of the duplicate copy
};

// Executes a FaultPlan against one simulation. The fabric consults it per
// message; RingRuntime wires the node-event hooks (crash/recover/resume).
class FaultInjector {
 public:
  struct Hooks {
    std::function<void(uint32_t)> crash;     // fail-stop the node
    std::function<void(uint32_t)> recover;   // restart memory-less + rejoin
    std::function<void(uint32_t)> resumed;   // gray-failure pause ended
  };

  struct Counters {
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t delayed = 0;
    uint64_t partition_dropped = 0;
    uint64_t deferred = 0;  // deliveries buffered at a paused receiver
    uint64_t pauses = 0;
    uint64_t crashes = 0;
    uint64_t recoveries = 0;
    uint64_t partitions = 0;
    // Crash events the guard downgraded to pauses (no live spare to absorb
    // the promotion); their paired recover became a resume.
    uint64_t downgraded_crashes = 0;
  };

  FaultInjector(sim::Simulator* simulator, uint32_t num_nodes, FaultPlan plan,
                uint64_t seed);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  // Crash-safety guard, consulted when a kCrash event fires: returns true
  // when fail-stopping `node` is survivable (a spare can absorb the
  // promotion). When it returns false the crash is downgraded to a pause
  // and the paired recover to a resume, so a chaos schedule can never
  // wedge the cluster in an unrecoverable state. Unset = always allowed.
  using CrashGuard = std::function<bool(uint32_t)>;
  void set_crash_guard(CrashGuard guard) { crash_guard_ = std::move(guard); }

  // Schedules every NodeEvent on the simulator. Call once, before running.
  void Arm();

  // Gray failure: the node's CPU makes no progress but its NIC serves
  // one-sided traffic and buffered receives survive until resume.
  bool paused(uint32_t node) const { return paused_[node] != 0; }

  // True when an un-healed partition separates a from b.
  bool partitioned(uint32_t a, uint32_t b) const {
    return cut_active_ != 0 && cut_[a * num_nodes_ + b] != 0;
  }

  // Rolls link faults for one message issued now. Two-sided messages may be
  // duplicated; one-sided verbs only drop/delay (RC QPs hide NIC-level
  // retransmission, so remote memory never sees a duplicate DMA).
  Verdict OnTwoSided(uint32_t src, uint32_t dst) {
    return Roll(src, dst, /*one_sided=*/false);
  }
  Verdict OnOneSided(uint32_t src, uint32_t dst) {
    return Roll(src, dst, /*one_sided=*/true);
  }

  // Buffers a delivery for a paused receiver; flushed FIFO at resume,
  // discarded on crash (RX buffers die with the process).
  void Defer(uint32_t node, std::function<void()> delivery);

  const Counters& counters() const { return counters_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  Verdict Roll(uint32_t src, uint32_t dst, bool one_sided);
  void ApplyEvent(const NodeEvent& ev);
  void CutPartition(const NodeEvent& ev, bool cut);
  void Note(const char* name, uint32_t node);

  sim::Simulator* sim_;
  uint32_t num_nodes_;
  FaultPlan plan_;
  Rng rng_;  // private stream: never perturbs the simulator's global rng
  Hooks hooks_;
  CrashGuard crash_guard_;
  Counters counters_;
  std::vector<uint8_t> paused_;
  // Nodes whose crash was downgraded to a pause; their recover resumes.
  std::vector<uint8_t> downgraded_;
  // Directed cut counters (flattened num_nodes x num_nodes): overlapping
  // partitions stack, heals decrement.
  std::vector<uint32_t> cut_;
  uint64_t cut_active_ = 0;
  std::vector<std::vector<std::function<void()>>> deferred_;
};

}  // namespace ring::fault

#endif  // RING_SRC_FAULT_FAULT_H_
