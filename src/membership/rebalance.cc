#include "src/membership/rebalance.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace ring::membership {
namespace {

// Simulated wire sizes (shared convention with the ring servers).
constexpr uint64_t kSmallMsgBytes = 64;

}  // namespace

// --- RebalancePlanner ------------------------------------------------------

RebalancePlanner::Plan RebalancePlanner::Compute(
    const consensus::ClusterConfig& config) {
  Plan plan;
  if (!config.rebalancing()) {
    return plan;
  }
  const consensus::Placement cur = config.Current();
  const consensus::Placement prev = config.Previous();
  plan.old_s = prev.s;
  plan.new_s = cur.s;
  plan.epoch = config.epoch;
  std::set<net::NodeId> nodes;
  for (uint32_t shard = 0; shard < prev.num_shards(); ++shard) {
    plan.source_shards.push_back(shard);
    nodes.insert(prev.CoordinatorOfShard(shard));
  }
  plan.source_nodes.assign(nodes.begin(), nodes.end());
  // With a uniform key hash the old and new shard indices of a key are
  // independent draws, so the chance its serving node is unchanged is the
  // collision mass of the two coordinator distributions.
  double stay = 0.0;
  for (uint32_t i = 0; i < prev.num_shards(); ++i) {
    for (uint32_t j = 0; j < cur.num_shards(); ++j) {
      if (prev.CoordinatorOfShard(i) == cur.CoordinatorOfShard(j)) {
        stay += 1.0;
      }
    }
  }
  stay /= static_cast<double>(prev.num_shards()) * cur.num_shards();
  plan.moved_fraction = 1.0 - stay;
  return plan;
}

bool RebalancePlanner::KeyMoves(const consensus::ClusterConfig& config,
                                const Key& key) {
  if (!config.rebalancing()) {
    return false;
  }
  const consensus::Placement cur = config.Current();
  const consensus::Placement prev = config.Previous();
  return prev.CoordinatorOfShard(KeyShard(key, prev.num_shards())) !=
         cur.CoordinatorOfShard(KeyShard(key, cur.num_shards()));
}

std::vector<Key> RebalancePlanner::ChangedKeys(
    const consensus::ClusterConfig& config, const std::vector<Key>& keys) {
  std::vector<Key> out;
  for (const Key& key : keys) {
    if (KeyMoves(config, key)) {
      out.push_back(key);
    }
  }
  return out;
}

// --- RebalanceCoordinator --------------------------------------------------

RebalanceCoordinator::RebalanceCoordinator(RingCluster* cluster,
                                           RebalanceOptions options)
    : cluster_(cluster),
      options_(options),
      mover_(cluster, [this] {
        policy::MoverOptions mo;
        mo.moves_per_sec = options_.keys_per_sec;
        mo.burst = options_.burst;
        mo.max_concurrent = options_.max_concurrent;
        mo.max_retries = options_.max_retries;
        mo.retry_backoff_ns = options_.retry_backoff_ns;
        mo.issuer = [this](const Key& key, MemgestId,
                           std::function<void(Status, Version)> done) {
          IssueMigrate(key, std::move(done));
        };
        return mo;
      }()) {
  mover_.set_done_hook([this](const Key& key, MemgestId, const Status&) {
    // Terminal outcome (success or retries exhausted). Failed keys are
    // re-discovered by the next scan; either way this key's slot is free.
    source_of_.erase(key);
    if (active_ && scans_outstanding_ == 0 && mover_.pending_keys() == 0) {
      ArmPump(options_.rescan_delay_ns);
    }
  });
}

bool RebalanceCoordinator::AddServer(net::NodeId node) {
  if (active_) {
    return false;
  }
  RingRuntime& r = rt();
  const consensus::ClusterConfig& cfg =
      r.membership().ConfigView(r.leader_node());
  if (cfg.rebalancing()) {
    return false;
  }
  const uint32_t old_s = cfg.s;
  // Catalogue first: every erasure-coded memgest needs a geometry for the
  // new shape before any server can encode under it.
  if (!r.registry().Resize(old_s + 1).ok()) {
    return false;
  }
  if (!r.membership().BeginAddServer(node)) {
    (void)r.registry().Resize(old_s);  // roll back to the parked geometry
    return false;
  }
  return Engage("cluster_grow", node);
}

bool RebalanceCoordinator::RemoveServer(uint32_t slot) {
  if (active_) {
    return false;
  }
  RingRuntime& r = rt();
  const consensus::ClusterConfig& cfg =
      r.membership().ConfigView(r.leader_node());
  if (cfg.rebalancing() || cfg.s <= 1) {
    return false;
  }
  const uint32_t old_s = cfg.s;
  if (!r.registry().Resize(old_s - 1).ok()) {
    return false;  // some memgest needs k <= s at the new shape
  }
  if (!r.membership().BeginRemoveServer(slot)) {
    (void)r.registry().Resize(old_s);
    return false;
  }
  return Engage("cluster_shrink", slot);
}

bool RebalanceCoordinator::Engage(const char* what, uint64_t detail) {
  const consensus::ClusterConfig& cfg =
      rt().membership().ConfigView(rt().leader_node());
  begin_epoch_ = cfg.epoch;
  plan_ = RebalancePlanner::Compute(cfg);
  stats_ = {};
  stats_.start_ns = simulator().now();
  FoldServerCounters(&base_moved_, &base_reencoded_, &base_bytes_,
                     &base_installs_);
  active_ = true;
  failed_ = false;
  last_leader_ = rt().leader_node();
  hub().recorder().Record(obs::RecKind::kPhase, what, last_leader_,
                          hub().current_op(), detail, cfg.epoch);
  hub().metrics().Inc("rebalance.transitions", 1, last_leader_);
  hub().metrics().SetGauge("rebalance.active", 1, last_leader_);
  RING_LOG(kInfo) << "rebalance " << what << " s " << plan_.old_s << " -> "
                  << plan_.new_s << " (epoch " << cfg.epoch << ")";
  // Let the config broadcast land before the first scan round.
  ArmPump(options_.rescan_delay_ns);
  return true;
}

void RebalanceCoordinator::ArmPump(sim::SimTime delay) {
  if (pump_armed_ || !active_) {
    return;
  }
  pump_armed_ = true;
  simulator().After(delay, [this, w = std::weak_ptr<char>(alive_)] {
    if (w.expired()) {
      return;
    }
    PumpScan();
  });
}

void RebalanceCoordinator::PumpScan() {
  pump_armed_ = false;
  if (!active_) {
    return;
  }
  if (options_.max_rounds != 0 && stats_.scan_rounds >= options_.max_rounds) {
    Finish(false);
    return;
  }
  // Anchored at the *current* leader: a coordinator failover mid-drive
  // re-anchors here, and the idempotent scan/migrate protocol resumes the
  // drain from the durable markers.
  const net::NodeId leader = rt().leader_node();
  if (leader != last_leader_) {
    ++stats_.leader_moves;
    last_leader_ = leader;
    hub().recorder().Record(obs::RecKind::kPhase, "rebalance_reanchor",
                            leader, hub().current_op(), stats_.scan_rounds);
  }
  ++stats_.scan_rounds;
  const uint64_t round = ++round_;
  scans_outstanding_ = 0;
  round_complete_ = true;
  const consensus::ClusterConfig& lead_cfg =
      rt().membership().ConfigView(leader);
  for (net::NodeId node = 0; node < rt().num_server_nodes(); ++node) {
    RingServer* srv = rt().server(node);
    if (srv == nullptr) {
      continue;
    }
    if (node < lead_cfg.failed.size() && lead_cfg.failed[node]) {
      // Excluded from the cluster: its slots are re-pointed and its keys
      // recovered elsewhere. A scan would never be answered and would keep
      // every round incomplete forever. (A dead-but-undetected node still
      // times the round out — correct: its keys are unaccounted for.)
      continue;
    }
    ++scans_outstanding_;
    RingServer::RebalanceScan msg;
    msg.max_keys = options_.scan_batch;
    msg.requester = leader;
    msg.reply = [this, w = std::weak_ptr<char>(alive_), round,
                 node](std::vector<Key> keys) {
      if (w.expired()) {
        return;
      }
      OnScanReply(round, node, std::move(keys));
    };
    rt().fabric().Send(leader, node, kSmallMsgBytes,
                       [srv, msg = std::move(msg)]() mutable {
                         srv->HandleRebalanceScan(std::move(msg));
                       });
  }
  // Replies from crashed or partitioned nodes never arrive: close the round
  // by timeout. Collected keys still migrate, but an incomplete round can
  // never be the clean empty round that ends the transition.
  simulator().After(options_.scan_timeout_ns,
                    [this, w = std::weak_ptr<char>(alive_), round] {
    if (w.expired()) {
      return;
    }
    if (!active_ || round_ != round || scans_outstanding_ == 0) {
      return;
    }
    scans_outstanding_ = 0;
    round_complete_ = false;
    CloseRound();
  });
}

void RebalanceCoordinator::OnScanReply(uint64_t round, net::NodeId node,
                                       std::vector<Key> keys) {
  if (!active_ || round != round_ || scans_outstanding_ == 0) {
    return;  // a late reply of an abandoned round; the next scan re-reports
  }
  --scans_outstanding_;
  if (keys.size() >= options_.scan_batch && options_.scan_batch != 0) {
    round_complete_ = false;  // truncated report: more keys remain
  }
  for (Key& key : keys) {
    if (mover_.Pending(key)) {
      continue;  // queued, in flight, or backing off between retries
    }
    source_of_[key] = node;
    mover_.Enqueue(key, kDefaultMemgest);
  }
  if (scans_outstanding_ == 0) {
    CloseRound();
  }
}

void RebalanceCoordinator::CloseRound() {
  hub().metrics().SetGauge(
      "rebalance.pending_keys",
      static_cast<int64_t>(mover_.pending_keys()), last_leader_);
  if (mover_.pending_keys() != 0) {
    mover_.Tick();  // drain; the done hook arms the next round when empty
    return;
  }
  if (round_complete_ && SourcesCaughtUp()) {
    TryComplete();
    return;
  }
  ArmPump(options_.rescan_delay_ns);
}

void RebalanceCoordinator::IssueMigrate(
    const Key& key, std::function<void(Status, Version)> done) {
  const auto src_it = source_of_.find(key);
  if (src_it == source_of_.end()) {
    // Reported source lost (e.g. cleared by a reset); the next scan
    // re-reports the key with a fresh source.
    done(UnavailableError("migration source unknown"), 0);
    return;
  }
  const net::NodeId src = src_it->second;
  RingServer* srv = rt().server(src);
  if (srv == nullptr) {
    done(UnavailableError("migration source gone"), 0);
    return;
  }
  const uint64_t ticket = next_ticket_++;
  inflight_[key] = ticket;
  waiting_[ticket] = std::move(done);
  ++stats_.migrates_issued;
  const net::NodeId leader = rt().leader_node();
  RingServer::MigrateKey msg;
  msg.key = key;
  msg.op_id = hub().current_op();
  msg.requester = leader;
  msg.reply = [this, w = std::weak_ptr<char>(alive_), key, ticket](Status s) {
    if (w.expired()) {
      return;
    }
    FinishMigrate(key, ticket, s);
  };
  rt().fabric().Send(leader, src, kSmallMsgBytes + key.size(),
                     [srv, msg = std::move(msg)]() mutable {
                       srv->HandleMigrateKey(std::move(msg));
                     });
  simulator().After(options_.migrate_timeout_ns,
                    [this, w = std::weak_ptr<char>(alive_), key, ticket] {
    if (w.expired()) {
      return;
    }
    auto it = inflight_.find(key);
    if (it == inflight_.end() || it->second != ticket) {
      return;  // acked in time
    }
    ++stats_.migrate_timeouts;
    FinishMigrate(key, ticket, TimeoutError("migrate unacknowledged"));
  });
}

void RebalanceCoordinator::FinishMigrate(const Key& key, uint64_t ticket,
                                         const Status& s) {
  auto it = inflight_.find(key);
  if (it == inflight_.end() || it->second != ticket) {
    return;  // the timeout already settled this attempt; drop the late ack
  }
  inflight_.erase(it);
  auto wit = waiting_.find(ticket);
  if (wit == waiting_.end()) {
    return;
  }
  auto done = std::move(wit->second);
  waiting_.erase(wit);
  done(s, 0);  // hands control back to the mover (retry/abort/complete)
}

bool RebalanceCoordinator::SourcesCaughtUp() {
  // A clean empty round only ends the transition when every node holding a
  // slot in either shape has applied the transition epoch and serves: a
  // node mid-promotion is about to re-adopt old-shape keys the scan missed.
  const consensus::ClusterConfig& lead =
      rt().membership().ConfigView(rt().leader_node());
  if (!lead.rebalancing()) {
    return true;
  }
  const consensus::Placement prev = lead.Previous();
  for (net::NodeId node = 0; node < rt().num_server_nodes(); ++node) {
    const bool holds_slot =
        (node < lead.slot_of_node.size() && lead.slot_of_node[node] >= 0) ||
        prev.SlotOfNode(node) != consensus::kSpareSlot;
    if (!holds_slot) {
      continue;
    }
    if (node < lead.failed.size() && lead.failed[node]) {
      return false;  // slot dark: a promotion must fill it first
    }
    if (rt().membership().ConfigView(node).epoch < begin_epoch_) {
      return false;  // config broadcast has not landed there yet
    }
    RingServer* srv = rt().server(node);
    if (srv == nullptr || !srv->serving()) {
      return false;  // mid-recovery
    }
  }
  return true;
}

void RebalanceCoordinator::TryComplete() {
  // CompleteRebalance fails benignly during a leader election; re-verify
  // and retry next round.
  if (!rt().membership().CompleteRebalance()) {
    ArmPump(options_.rescan_delay_ns);
    return;
  }
  Finish(true);
}

void RebalanceCoordinator::Finish(bool ok) {
  active_ = false;
  failed_ = !ok;
  stats_.end_ns = simulator().now();
  uint64_t moved = 0;
  uint64_t reencoded = 0;
  uint64_t bytes = 0;
  uint64_t installs = 0;
  FoldServerCounters(&moved, &reencoded, &bytes, &installs);
  stats_.keys_moved = moved - base_moved_;
  stats_.keys_reencoded = reencoded - base_reencoded_;
  stats_.bytes_moved = bytes - base_bytes_;
  stats_.installs = installs - base_installs_;
  source_of_.clear();
  inflight_.clear();
  waiting_.clear();
  const net::NodeId leader = rt().leader_node();
  hub().recorder().Record(obs::RecKind::kPhase,
                          ok ? "rebalance_complete" : "rebalance_failed",
                          leader, hub().current_op(), stats_.keys_moved,
                          stats_.bytes_moved);
  hub().metrics().Inc(ok ? "rebalance.completed" : "rebalance.failed", 1,
                      leader);
  hub().metrics().SetGauge("rebalance.active", 0, leader);
  hub().metrics().SetGauge("rebalance.pending_keys", 0, leader);
  RING_LOG(kInfo) << "rebalance " << (ok ? "complete" : "FAILED") << ": "
                  << stats_.keys_moved << " keys moved, "
                  << stats_.keys_reencoded << " re-encoded, "
                  << stats_.bytes_moved << " bytes, "
                  << stats_.scan_rounds << " rounds";
}

void RebalanceCoordinator::FoldServerCounters(uint64_t* moved,
                                              uint64_t* reencoded,
                                              uint64_t* bytes,
                                              uint64_t* installs) {
  *moved = *reencoded = *bytes = *installs = 0;
  for (net::NodeId node = 0; node < rt().num_server_nodes(); ++node) {
    if (const RingServer* srv = rt().server(node); srv != nullptr) {
      *moved += srv->counters().keys_migrated;
      *reencoded += srv->counters().keys_reencoded;
      *bytes += srv->counters().bytes_moved;
      *installs += srv->counters().installs;
    }
  }
}

// --- synchronous wrappers --------------------------------------------------

namespace {

Status Drive(RingCluster& cluster, RebalanceCoordinator& coord,
             RebalanceStats* stats) {
  const bool drained =
      cluster.RunUntilDone([&coord] { return !coord.active(); });
  if (stats != nullptr) {
    *stats = coord.stats();
  }
  if (!drained) {
    return TimeoutError("rebalance did not drain within the event budget");
  }
  if (coord.failed()) {
    return UnavailableError("rebalance gave up before draining");
  }
  return OkStatus();
}

}  // namespace

Status ScaleOut(RingCluster& cluster, net::NodeId node,
                RebalanceOptions options, RebalanceStats* stats) {
  RebalanceCoordinator coord(&cluster, options);
  if (!coord.AddServer(node)) {
    return FailedPreconditionError(
        "scale-out rejected (resize in flight, node not a live spare, or "
        "no geometry at the new shape)");
  }
  return Drive(cluster, coord, stats);
}

Status ScaleIn(RingCluster& cluster, uint32_t slot, RebalanceOptions options,
               RebalanceStats* stats) {
  RebalanceCoordinator coord(&cluster, options);
  if (!coord.RemoveServer(slot)) {
    return FailedPreconditionError(
        "scale-in rejected (resize in flight, bad slot, or a memgest needs "
        "k <= s at the new shape)");
  }
  return Drive(cluster, coord, stats);
}

}  // namespace ring::membership
