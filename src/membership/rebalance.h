// Elastic cluster membership (§13): the control plane that grows or shrinks
// a running deployment online.
//
// A resize is a two-phase, epoch-bumped ClusterConfig transition replicated
// through the existing consensus agent: BeginAddServer/BeginRemoveServer
// switches the cluster to the new shape while the previous shape stays live
// for routing, and CompleteRebalance retires it once no key is served at the
// old placement anymore. In between, the RebalanceCoordinator drives the
// drain in the background:
//
//   scan    — every server reports the keys it still serves as old-shape
//             coordinator (idempotent, bounded batches),
//   migrate — each reported key is handed over through the server-side
//             moved-marker + install protocol (per-key linearizable; see
//             src/ring/server_rebalance.cc), paced by the policy mover's
//             token bucket so migration traffic stays within a budget,
//   verify  — re-scan until a clean empty round, then complete.
//
// The driver is anchored at the *current* leader for every round: a
// coordinator failover mid-drive just re-anchors the next round, and because
// scans and migrates are idempotent (the durable markers survive crashes)
// the drain resumes where it left off.
#ifndef RING_SRC_MEMBERSHIP_REBALANCE_H_
#define RING_SRC_MEMBERSHIP_REBALANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/policy/mover.h"
#include "src/ring/cluster.h"

namespace ring::membership {

// Pure placement arithmetic: what a resize transition will move, computed
// from the configuration alone before any traffic is generated.
class RebalancePlanner {
 public:
  struct Plan {
    uint32_t old_s = 0;
    uint32_t new_s = 0;
    uint64_t epoch = 0;  // config epoch of the transition
    // Old-shape shards whose resident keys must be handed over (all of
    // them: h(key) mod groups*s changes with s) and the distinct nodes
    // serving them — the scan targets.
    std::vector<uint32_t> source_shards;
    std::vector<net::NodeId> source_nodes;
    // Expected fraction of keys whose serving *node* changes; the rest
    // re-encode in place on their unchanged owner (no network hop).
    double moved_fraction = 0.0;
  };
  // Meaningful only while config.rebalancing(); returns an empty plan
  // otherwise.
  static Plan Compute(const consensus::ClusterConfig& config);
  // True when `key` is served by a different node under the new shape than
  // under the previous one (requires config.rebalancing()).
  static bool KeyMoves(const consensus::ClusterConfig& config, const Key& key);
  // The minimal changed subset of `keys`: those for which KeyMoves holds.
  static std::vector<Key> ChangedKeys(const consensus::ClusterConfig& config,
                                      const std::vector<Key>& keys);
};

struct RebalanceOptions {
  // Token bucket pacing of per-key migrations (reuses policy::Mover).
  double keys_per_sec = 50000.0;
  double burst = 8.0;
  uint32_t max_concurrent = 4;
  uint32_t max_retries = 6;
  sim::SimTime retry_backoff_ns = 500 * sim::kMicrosecond;
  // One scan reports at most this many keys per node (bounds the reply
  // message); the driver keeps scanning until a clean empty round.
  uint32_t scan_batch = 512;
  // A scan round without all replies, or a migrate without an ack, is
  // abandoned after this long and retried via the next round.
  sim::SimTime scan_timeout_ns = 10 * sim::kMillisecond;
  sim::SimTime migrate_timeout_ns = 5 * sim::kMillisecond;
  // Delay between a drained round and the verify re-scan (also the retry
  // cadence while a source node is mid-recovery).
  sim::SimTime rescan_delay_ns = 2 * sim::kMillisecond;
  // Give up after this many scan rounds; 0 = keep going (chaos runs recover
  // eventually, and the simulator's event budget bounds runaway drivers).
  uint32_t max_rounds = 0;
};

struct RebalanceStats {
  // Folded from the per-server counters over the transition window.
  uint64_t keys_moved = 0;
  uint64_t keys_reencoded = 0;
  uint64_t bytes_moved = 0;
  uint64_t installs = 0;
  // Driver-side progress.
  uint64_t scan_rounds = 0;
  uint64_t migrates_issued = 0;
  uint64_t migrate_timeouts = 0;
  uint64_t leader_moves = 0;  // coordinator failovers survived mid-drive
  sim::SimTime start_ns = 0;
  sim::SimTime end_ns = 0;
};

// Drives one resize transition end to end. Control-plane bookkeeping runs in
// zero simulated time; all simulated traffic is the scans, migrates and
// installs themselves, issued from the current leader node.
class RebalanceCoordinator {
 public:
  RebalanceCoordinator(RingCluster* cluster, RebalanceOptions options = {});

  // Grow s -> s+1: `node` (a live spare) becomes the new coordinator slot.
  // Adopts the new geometry in the memgest catalogue, replicates the config
  // transition, then starts the background drain. False when preconditions
  // fail (resize in flight, node not a live spare, no live leader, or a
  // memgest cannot exist at the new shape).
  bool AddServer(net::NodeId node);
  // Shrink s -> s-1: coordinator slot `slot` leaves the shape; its node
  // keeps serving old-placement reads until the drain finishes, then
  // returns to the spare pool.
  bool RemoveServer(uint32_t slot);

  bool active() const { return active_; }
  bool failed() const { return failed_; }
  const RebalanceStats& stats() const { return stats_; }
  const RebalancePlanner::Plan& plan() const { return plan_; }

 private:
  bool Engage(const char* what, uint64_t detail);
  void PumpScan();
  void ArmPump(sim::SimTime delay);
  void OnScanReply(uint64_t round, net::NodeId node, std::vector<Key> keys);
  void CloseRound();
  void IssueMigrate(const Key& key,
                    std::function<void(Status, Version)> done);
  void FinishMigrate(const Key& key, uint64_t ticket, const Status& s);
  bool SourcesCaughtUp();
  void TryComplete();
  void Finish(bool ok);
  void FoldServerCounters(uint64_t* moved, uint64_t* reencoded,
                          uint64_t* bytes, uint64_t* installs);
  RingRuntime& rt() { return cluster_->runtime(); }
  sim::Simulator& simulator() { return cluster_->simulator(); }
  obs::Hub& hub() { return cluster_->simulator().hub(); }

  RingCluster* cluster_;
  RebalanceOptions options_;
  // Lifetime token: every timer and reply callback captures a weak reference
  // and no-ops once the coordinator is destroyed — a sync wrapper's stack
  // coordinator dies with timeout timers still queued in the simulator.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  policy::Mover mover_;  // reused token bucket; issuer -> IssueMigrate
  RebalancePlanner::Plan plan_;
  RebalanceStats stats_;
  bool active_ = false;
  bool failed_ = false;
  bool pump_armed_ = false;
  uint64_t begin_epoch_ = 0;
  net::NodeId last_leader_ = 0;

  uint64_t round_ = 0;  // scan-round generation (fences late replies)
  uint32_t scans_outstanding_ = 0;
  bool round_complete_ = true;
  std::map<Key, net::NodeId> source_of_;  // key -> node that reported it
  std::map<Key, uint64_t> inflight_;      // key -> migrate ticket
  std::map<uint64_t, std::function<void(Status, Version)>> waiting_;
  uint64_t next_ticket_ = 1;
  // Counter baselines at Engage, so stats_ reports transition deltas.
  uint64_t base_moved_ = 0;
  uint64_t base_reencoded_ = 0;
  uint64_t base_bytes_ = 0;
  uint64_t base_installs_ = 0;
};

// Synchronous wrappers: begin the transition and drive the simulation until
// the rebalance drains (examples, ringctl, benches).
Status ScaleOut(RingCluster& cluster, net::NodeId node,
                RebalanceOptions options = {}, RebalanceStats* stats = nullptr);
Status ScaleIn(RingCluster& cluster, uint32_t slot,
               RebalanceOptions options = {}, RebalanceStats* stats = nullptr);

}  // namespace ring::membership

#endif  // RING_SRC_MEMBERSHIP_REBALANCE_H_
