#include "src/ring/registry.h"

namespace ring {

MemgestRegistry::MemgestRegistry(uint32_t s, uint32_t d, uint64_t stripe_unit,
                                 uint32_t groups)
    : s_(s), d_(d), groups_(groups), stripe_unit_(stripe_unit) {}

Result<MemgestId> MemgestRegistry::Create(const MemgestDescriptor& desc) {
  if (desc.kind == SchemeKind::kReplicated) {
    if (desc.r < 1 || desc.r > s_ + d_) {
      return InvalidArgumentError("Rep(r) requires 1 <= r <= s+d");
    }
  } else {
    if (desc.k < 1 || desc.k > s_) {
      return InvalidArgumentError("SRS(k,m,s) requires 1 <= k <= s");
    }
    if (desc.m < 1 || desc.m > d_) {
      return InvalidArgumentError("SRS(k,m,s) requires 1 <= m <= d");
    }
  }
  auto info = std::make_unique<MemgestInfo>();
  info->id = static_cast<MemgestId>(memgests_.size());
  info->desc = desc;
  if (desc.kind == SchemeKind::kErasureCoded) {
    auto code = srs::SrsCode::Create(desc.k, desc.m, s_);
    if (!code.ok()) {
      return code.status();
    }
    info->code = std::make_unique<srs::SrsCode>(std::move(code).value());
    info->map =
        std::make_unique<srs::SrsAddressMap>(info->code.get(), stripe_unit_);
  }
  const MemgestId id = info->id;
  memgests_.push_back(std::move(info));
  if (default_id_ == kDefaultMemgest) {
    default_id_ = id;  // first memgest becomes the default
  }
  return id;
}

Status MemgestRegistry::Delete(MemgestId id) {
  if (id >= memgests_.size() || memgests_[id]->deleted) {
    return NotFoundError("no such memgest");
  }
  if (id == default_id_) {
    return FailedPreconditionError("cannot delete the default memgest");
  }
  memgests_[id]->deleted = true;
  return OkStatus();
}

const MemgestInfo* MemgestRegistry::Get(MemgestId id) const {
  if (id >= memgests_.size() || memgests_[id]->deleted) {
    return nullptr;
  }
  return memgests_[id].get();
}

Status MemgestRegistry::SetDefault(MemgestId id) {
  if (Get(id) == nullptr) {
    return NotFoundError("no such memgest");
  }
  default_id_ = id;
  return OkStatus();
}

std::vector<uint32_t> MemgestRegistry::ReplicaSlots(const MemgestInfo& info,
                                                    uint32_t shard) const {
  return ReplicaSlotsFor(info, shard, s_, d_);
}

std::vector<uint32_t> MemgestRegistry::ParitySlots(const MemgestInfo& info,
                                                   uint32_t group) const {
  return ParitySlotsFor(info, group, s_, d_);
}

std::vector<uint32_t> MemgestRegistry::ReplicaSlotsFor(const MemgestInfo& info,
                                                       uint32_t shard,
                                                       uint32_t s, uint32_t d) {
  std::vector<uint32_t> slots;
  if (info.desc.kind != SchemeKind::kReplicated) {
    return slots;
  }
  const uint32_t sigma = shard % s;   // in-group coordinator index
  const uint32_t group = shard / s;   // rotation offset (§5.4)
  for (uint32_t t = 0; t + 1 < info.desc.r; ++t) {
    slots.push_back((sigma + 1 + t + group) % (s + d));
  }
  return slots;
}

std::vector<uint32_t> MemgestRegistry::ParitySlotsFor(const MemgestInfo& info,
                                                      uint32_t group,
                                                      uint32_t s, uint32_t d) {
  std::vector<uint32_t> slots;
  if (info.desc.kind != SchemeKind::kErasureCoded) {
    return slots;
  }
  for (uint32_t j = 0; j < info.desc.m; ++j) {
    slots.push_back((s + j + group) % (s + d));
  }
  return slots;
}

Status MemgestRegistry::Resize(uint32_t new_s) {
  if (new_s == s_) {
    return OkStatus();
  }
  for (const auto& m : memgests_) {
    if (m->deleted) {
      continue;
    }
    if (m->erasure_coded() && m->desc.k > new_s) {
      return FailedPreconditionError("memgest " + m->desc.name +
                                     " needs k <= s at the new shape");
    }
    if (!m->erasure_coded() && m->desc.r > new_s + d_) {
      return FailedPreconditionError("memgest " + m->desc.name +
                                     " needs r <= s+d at the new shape");
    }
  }
  for (auto& m : memgests_) {
    if (m->deleted || !m->erasure_coded()) {
      continue;
    }
    // Park the outgoing geometry, then adopt (or build) the new one.
    m->geoms[s_] = MemgestGeometry{std::move(m->code), std::move(m->map)};
    if (auto it = m->geoms.find(new_s); it != m->geoms.end()) {
      m->code = std::move(it->second.code);
      m->map = std::move(it->second.map);
      m->geoms.erase(it);
    } else {
      auto code = srs::SrsCode::Create(m->desc.k, m->desc.m, new_s);
      if (!code.ok()) {
        return code.status();
      }
      m->code = std::make_unique<srs::SrsCode>(std::move(code).value());
      m->map =
          std::make_unique<srs::SrsAddressMap>(m->code.get(), stripe_unit_);
    }
  }
  s_ = new_s;
  return OkStatus();
}

const srs::SrsCode* MemgestRegistry::CodeFor(const MemgestInfo& info,
                                             uint32_t geom_s) const {
  if (!info.erasure_coded()) {
    return nullptr;
  }
  if (geom_s == 0 || geom_s == s_) {
    return info.code.get();
  }
  const auto it = info.geoms.find(geom_s);
  return it == info.geoms.end() ? nullptr : it->second.code.get();
}

const srs::SrsAddressMap* MemgestRegistry::MapFor(const MemgestInfo& info,
                                                  uint32_t geom_s) const {
  if (!info.erasure_coded()) {
    return nullptr;
  }
  if (geom_s == 0 || geom_s == s_) {
    return info.map.get();
  }
  const auto it = info.geoms.find(geom_s);
  return it == info.geoms.end() ? nullptr : it->second.map.get();
}

size_t MemgestRegistry::count() const {
  size_t n = 0;
  for (const auto& m : memgests_) {
    if (!m->deleted) {
      ++n;
    }
  }
  return n;
}

void MemgestRegistry::ForEach(
    const std::function<void(const MemgestInfo&)>& fn) const {
  for (const auto& m : memgests_) {
    if (!m->deleted) {
      fn(*m);
    }
  }
}

}  // namespace ring
