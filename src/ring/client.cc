#include "src/ring/client.h"

#include "src/common/hash.h"

namespace ring {
namespace {
constexpr uint64_t kHeaderBytes = 64;

// Did this completion carry a success? Overloads cover every callback shape
// routed through Complete (puts/moves, gets, deletes, admin ops).
bool CompletionOk() { return false; }
bool CompletionOk(const Status& status) { return status.ok(); }
bool CompletionOk(const Status& status, Version /*version*/) {
  return status.ok();
}
bool CompletionOk(const GetResult& result) { return result.status.ok(); }
template <typename T>
bool CompletionOk(const Result<T>& result) {
  return result.ok();
}
}  // namespace

RingClient::RingClient(RingRuntime* runtime, uint32_t index)
    : rt_(runtime),
      node_(runtime->client_node(index)),
      config_(runtime->membership().ConfigView(0)),
      rng_(runtime->options().seed * 0x9e3779b97f4a7c15ULL + node_) {}

uint32_t RingClient::ShardFor(const Key& key) const {
  return KeyShard(key, config_.num_shards());
}

net::NodeId RingClient::CoordinatorFor(const Key& key) const {
  return config_.CoordinatorOfShard(ShardFor(key));
}

void RingClient::RefreshConfig() {
  config_ = rt_->membership().ConfigView(rt_->leader_node());
}

template <typename Fn>
auto RingClient::Complete(uint64_t req_id, sim::SimTime start,
                          const char* opname, obs::OpKind kind,
                          MemgestId memgest, Fn cb) {
  return [this, req_id, start, opname, kind, memgest, cb](auto&&... args) {
    auto it = outstanding_.find(req_id);
    if (it == outstanding_.end() || it->second.done) {
      return;  // duplicate reply (multicast raced with the original)
    }
    outstanding_.erase(it);
    ++completed_;
    const sim::SimTime end = rt_->simulator().now();
    latencies_.Add(static_cast<double>(end - start) / 1000.0);
    obs::Hub& hub = rt_->simulator().hub();
    hub.tracer().Record(opname, obs::Category::kOp, node_, OpId(req_id),
                        start, end);
    hub.metrics().Inc("client.ops", 1, node_, memgest, kind);
    hub.metrics().Observe("client.op_latency_ns", end - start, node_, memgest,
                          kind);
    // Ok/error split feeds the windowed SLIs (goodput and error rate).
    const bool ok = CompletionOk(args...);
    hub.metrics().Inc(ok ? obs::kSliOpsOk : obs::kSliOpErrors, 1, node_,
                      memgest, kind);
    if (!ok) {
      hub.recorder().Record(obs::RecKind::kClient, "op_failed", node_,
                            OpId(req_id), memgest);
    }
    cb(std::forward<decltype(args)>(args)...);
  };
}

void RingClient::Launch(uint64_t req_id, std::function<void(bool)> send,
                        std::function<void()> fail, bool hedgeable) {
  const auto& p = rt_->simulator().params();
  Outstanding o;
  o.send = send;
  o.fail = std::move(fail);
  if (p.client_retry_budget_ns > 0) {
    o.deadline = rt_->simulator().now() + p.client_retry_budget_ns;
  }
  outstanding_.emplace(req_id, std::move(o));
  send(false);
  if (hedgeable && p.client_hedge_delay_ns > 0 &&
      p.client_hedge_delay_ns < p.client_retry_timeout_ns) {
    rt_->simulator().After(p.client_hedge_delay_ns, [this, req_id] {
      auto it = outstanding_.find(req_id);
      if (it == outstanding_.end() || it->second.done ||
          it->second.retries > 0 || !rt_->fabric().alive(node_)) {
        return;
      }
      // Hedge: multicast without waiting for the retry timeout. The request
      // stays outstanding; whichever reply lands first wins and the
      // duplicate is dropped by Complete.
      ++hedges_;
      rt_->simulator().hub().metrics().Inc("client.hedges", 1, node_);
      rt_->simulator().hub().recorder().Record(obs::RecKind::kClient, "hedge",
                                               node_, OpId(req_id));
      const auto& params = rt_->simulator().params();
      auto send_again = it->second.send;
      cpu().Execute(params.client_base_ns +
                        rt_->membership().num_members() * params.client_post_ns,
                    [send_again] { send_again(true); });
    });
  }
  rt_->simulator().After(p.client_retry_timeout_ns,
                         [this, req_id] { CheckTimeout(req_id); });
}

uint64_t RingClient::NextRetryWait(Outstanding* o) {
  const auto& p = rt_->simulator().params();
  const uint64_t base = p.client_retry_timeout_ns;
  if (o->prev_wait == 0) {
    // First re-arm stays flat: a single clean retry keeps the same timing
    // as the pre-backoff client (and the fault-free benchmarks).
    o->prev_wait = base;
    return base;
  }
  // Decorrelated jitter: uniform in [base, 3 * prev), clipped to the cap.
  const uint64_t span =
      o->prev_wait * 3 > base ? o->prev_wait * 3 - base : 1;
  uint64_t wait = base + rng_.NextBelow(span);
  if (wait > p.client_backoff_cap_ns) {
    wait = p.client_backoff_cap_ns;
  }
  o->prev_wait = wait;
  return wait;
}

void RingClient::CheckTimeout(uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end() || it->second.done) {
    return;
  }
  if (!rt_->fabric().alive(node_)) {
    return;
  }
  const auto& p = rt_->simulator().params();
  const sim::SimTime now = rt_->simulator().now();
  if (++it->second.retries > p.client_max_retries ||
      (it->second.deadline != 0 && now >= it->second.deadline)) {
    // Budget exhausted: surface unavailability instead of retrying forever.
    ++timeouts_;
    rt_->simulator().hub().metrics().Inc("client.unavailable", 1, node_);
    rt_->simulator().hub().recorder().Record(obs::RecKind::kClient,
                                             "retry_budget_exhausted", node_,
                                             OpId(req_id),
                                             it->second.retries);
    auto fail = it->second.fail;
    fail();  // marks done + erases via the Complete wrapper
    return;
  }
  // Re-learn the configuration and multicast: only the responsible node
  // will answer (§5.5).
  rt_->simulator().hub().recorder().Record(obs::RecKind::kClient,
                                           "client_retry", node_,
                                           OpId(req_id), it->second.retries);
  RefreshConfig();
  auto send = it->second.send;
  cpu().Execute(p.client_base_ns +
                    rt_->membership().num_members() * p.client_post_ns,
                [send] { send(true); });
  rt_->simulator().After(NextRetryWait(&it->second),
                         [this, req_id] { CheckTimeout(req_id); });
}

void RingClient::Put(const Key& key, std::shared_ptr<Buffer> value,
                     MemgestId memgest, PutCallback cb) {
  const auto& p = rt_->simulator().params();
  const uint32_t len = value ? static_cast<uint32_t>(value->size()) : 0;
  const uint64_t req_id = next_req_++;
  NotifyObserver(key, obs::OpKind::kPut, memgest, len);
  const uint64_t issue_cost =
      p.client_base_ns + p.client_post_ns +
      static_cast<uint64_t>(p.client_put_byte_ns * len);
  cpu().Execute(issue_cost, [this, key, value = std::move(value), memgest,
                             cb = std::move(cb), req_id, len] {
    const sim::SimTime start = rt_->simulator().now();
    auto reply = Complete(req_id, start, "put", obs::OpKind::kPut, memgest,
                          cb);
    const uint64_t bytes = kHeaderBytes + key.size() + len;
    auto send = [this, key, value, memgest, req_id, reply,
                 bytes](bool broadcast) {
      obs::ScopedOp scope(rt_->simulator().hub(), OpId(req_id));
      PutRequest r;
      r.key = key;
      r.value = value;
      r.memgest = memgest;
      r.client = node_;
      r.req_id = req_id;
      r.op_id = OpId(req_id);
      r.retry = broadcast;
      r.reply = reply;
      if (!broadcast) {
        auto* peer = rt_->server(CoordinatorFor(key));
        rt_->fabric().Send(node_, peer->id(), bytes,
                           [peer, r] { peer->HandlePut(r); });
        return;
      }
      for (net::NodeId n = 0; n < rt_->membership().num_members(); ++n) {
        if (config_.failed[n] || !rt_->fabric().alive(n)) {
          continue;
        }
        auto* peer = rt_->server(n);
        rt_->fabric().Send(node_, n, bytes,
                           [peer, r] { peer->HandlePut(r); });
      }
    };
    auto fail = [reply] {
      reply(UnavailableError("put retry budget exhausted"), 0);
    };
    Launch(req_id, std::move(send), std::move(fail));
  });
}

void RingClient::Get(const Key& key, GetCallback cb) {
  const auto& p = rt_->simulator().params();
  const uint64_t req_id = next_req_++;
  NotifyObserver(key, obs::OpKind::kGet, kDefaultMemgest, 0);
  cpu().Execute(p.client_base_ns + p.client_post_ns,
                [this, key, cb = std::move(cb), req_id] {
    const sim::SimTime start = rt_->simulator().now();
    auto reply = Complete(req_id, start, "get", obs::OpKind::kGet,
                          obs::kNoMemgest, cb);
    const uint64_t bytes = kHeaderBytes + key.size();
    auto send = [this, key, req_id, reply, bytes](bool broadcast) {
      obs::ScopedOp scope(rt_->simulator().hub(), OpId(req_id));
      GetRequest r;
      r.key = key;
      r.client = node_;
      r.req_id = req_id;
      r.op_id = OpId(req_id);
      r.retry = broadcast;
      r.reply = reply;
      if (!broadcast) {
        auto* peer = rt_->server(CoordinatorFor(key));
        rt_->fabric().Send(node_, peer->id(), bytes,
                           [peer, r] { peer->HandleGet(r); });
        return;
      }
      for (net::NodeId n = 0; n < rt_->membership().num_members(); ++n) {
        if (config_.failed[n] || !rt_->fabric().alive(n)) {
          continue;
        }
        auto* peer = rt_->server(n);
        rt_->fabric().Send(node_, n, bytes,
                           [peer, r] { peer->HandleGet(r); });
      }
    };
    auto fail = [reply] {
      reply(GetResult{UnavailableError("get retry budget exhausted"), 0,
                      nullptr});
    };
    Launch(req_id, std::move(send), std::move(fail), /*hedgeable=*/true);
  });
}

void RingClient::Move(const Key& key, MemgestId dst, PutCallback cb) {
  const auto& p = rt_->simulator().params();
  const uint64_t req_id = next_req_++;
  NotifyObserver(key, obs::OpKind::kMove, dst, 0);
  cpu().Execute(p.client_base_ns + p.client_post_ns,
                [this, key, dst, cb = std::move(cb), req_id] {
    const sim::SimTime start = rt_->simulator().now();
    auto reply = Complete(req_id, start, "move", obs::OpKind::kMove, dst, cb);
    const uint64_t bytes = kHeaderBytes + key.size();
    auto send = [this, key, dst, req_id, reply, bytes](bool broadcast) {
      obs::ScopedOp scope(rt_->simulator().hub(), OpId(req_id));
      MoveRequest r;
      r.key = key;
      r.dst = dst;
      r.client = node_;
      r.req_id = req_id;
      r.op_id = OpId(req_id);
      r.retry = broadcast;
      r.reply = reply;
      if (!broadcast) {
        auto* peer = rt_->server(CoordinatorFor(key));
        rt_->fabric().Send(node_, peer->id(), bytes,
                           [peer, r] { peer->HandleMove(r); });
        return;
      }
      for (net::NodeId n = 0; n < rt_->membership().num_members(); ++n) {
        if (config_.failed[n] || !rt_->fabric().alive(n)) {
          continue;
        }
        auto* peer = rt_->server(n);
        rt_->fabric().Send(node_, n, bytes,
                           [peer, r] { peer->HandleMove(r); });
      }
    };
    auto fail = [reply] {
      reply(UnavailableError("move retry budget exhausted"), 0);
    };
    Launch(req_id, std::move(send), std::move(fail));
  });
}

void RingClient::Delete(const Key& key, StatusCallback cb) {
  const auto& p = rt_->simulator().params();
  const uint64_t req_id = next_req_++;
  NotifyObserver(key, obs::OpKind::kDelete, kDefaultMemgest, 0);
  cpu().Execute(p.client_base_ns + p.client_post_ns,
                [this, key, cb = std::move(cb), req_id] {
    const sim::SimTime start = rt_->simulator().now();
    auto reply = Complete(req_id, start, "delete", obs::OpKind::kDelete,
                          obs::kNoMemgest, cb);
    const uint64_t bytes = kHeaderBytes + key.size();
    auto send = [this, key, req_id, reply, bytes](bool broadcast) {
      obs::ScopedOp scope(rt_->simulator().hub(), OpId(req_id));
      DeleteRequest r;
      r.key = key;
      r.client = node_;
      r.req_id = req_id;
      r.op_id = OpId(req_id);
      r.retry = broadcast;
      r.reply = reply;
      if (!broadcast) {
        auto* peer = rt_->server(CoordinatorFor(key));
        rt_->fabric().Send(node_, peer->id(), bytes,
                           [peer, r] { peer->HandleDelete(r); });
        return;
      }
      for (net::NodeId n = 0; n < rt_->membership().num_members(); ++n) {
        if (config_.failed[n] || !rt_->fabric().alive(n)) {
          continue;
        }
        auto* peer = rt_->server(n);
        rt_->fabric().Send(node_, n, bytes,
                           [peer, r] { peer->HandleDelete(r); });
      }
    };
    auto fail = [reply] {
      reply(UnavailableError("delete retry budget exhausted"));
    };
    Launch(req_id, std::move(send), std::move(fail));
  });
}

void RingClient::CreateMemgest(const MemgestDescriptor& desc,
                               AdminCallback cb) {
  const auto& p = rt_->simulator().params();
  const uint64_t req_id = next_req_++;
  cpu().Execute(p.client_base_ns + p.client_post_ns,
                [this, desc, cb = std::move(cb), req_id] {
    const sim::SimTime start = rt_->simulator().now();
    auto reply = Complete(req_id, start, "admin", obs::OpKind::kAdmin,
                          obs::kNoMemgest, cb);
    auto send = [this, desc, req_id, reply](bool broadcast) {
      (void)broadcast;
      RefreshConfig();
      AdminRequest r;
      r.op = AdminRequest::Op::kCreateMemgest;
      r.desc = desc;
      r.client = node_;
      r.reply = reply;
      auto* peer = rt_->server(config_.leader);
      rt_->fabric().Send(node_, config_.leader, 192,
                         [peer, r] { peer->HandleAdmin(r); });
    };
    auto fail = [reply] {
      reply(Result<MemgestId>(TimeoutError("createMemgest timed out")));
    };
    Launch(req_id, std::move(send), std::move(fail));
  });
}

void RingClient::DeleteMemgest(MemgestId id, AdminCallback cb) {
  const uint64_t req_id = next_req_++;
  const auto& p = rt_->simulator().params();
  cpu().Execute(p.client_base_ns + p.client_post_ns,
                [this, id, cb = std::move(cb), req_id] {
    const sim::SimTime start = rt_->simulator().now();
    auto reply = Complete(req_id, start, "admin", obs::OpKind::kAdmin,
                          obs::kNoMemgest, cb);
    auto send = [this, id, reply](bool) {
      RefreshConfig();
      AdminRequest r;
      r.op = AdminRequest::Op::kDeleteMemgest;
      r.id = id;
      r.client = node_;
      r.reply = reply;
      auto* peer = rt_->server(config_.leader);
      rt_->fabric().Send(node_, config_.leader, 192,
                         [peer, r] { peer->HandleAdmin(r); });
    };
    auto fail = [reply] {
      reply(Result<MemgestId>(TimeoutError("deleteMemgest timed out")));
    };
    Launch(req_id, std::move(send), std::move(fail));
  });
}

void RingClient::SetDefaultMemgest(MemgestId id, AdminCallback cb) {
  const uint64_t req_id = next_req_++;
  const auto& p = rt_->simulator().params();
  cpu().Execute(p.client_base_ns + p.client_post_ns,
                [this, id, cb = std::move(cb), req_id] {
    const sim::SimTime start = rt_->simulator().now();
    auto reply = Complete(req_id, start, "admin", obs::OpKind::kAdmin,
                          obs::kNoMemgest, cb);
    auto send = [this, id, reply](bool) {
      RefreshConfig();
      AdminRequest r;
      r.op = AdminRequest::Op::kSetDefaultMemgest;
      r.id = id;
      r.client = node_;
      r.reply = reply;
      auto* peer = rt_->server(config_.leader);
      rt_->fabric().Send(node_, config_.leader, 192,
                         [peer, r] { peer->HandleAdmin(r); });
    };
    auto fail = [reply] {
      reply(Result<MemgestId>(TimeoutError("setDefaultMemgest timed out")));
    };
    Launch(req_id, std::move(send), std::move(fail));
  });
}

}  // namespace ring

namespace ring {

void RingClient::GetMemgestDescriptor(
    MemgestId id, std::function<void(Result<MemgestDescriptor>)> cb) {
  const uint64_t req_id = next_req_++;
  const auto& p = rt_->simulator().params();
  cpu().Execute(p.client_base_ns + p.client_post_ns,
                [this, id, cb = std::move(cb), req_id] {
    const sim::SimTime start = rt_->simulator().now();
    auto reply = Complete(req_id, start, "admin", obs::OpKind::kAdmin,
                          obs::kNoMemgest, cb);
    auto send = [this, id, reply](bool) {
      RefreshConfig();
      AdminRequest r;
      r.op = AdminRequest::Op::kGetMemgestDescriptor;
      r.id = id;
      r.client = node_;
      r.descriptor_reply = reply;
      auto* peer = rt_->server(config_.leader);
      rt_->fabric().Send(node_, config_.leader, 192,
                         [peer, r] { peer->HandleAdmin(r); });
    };
    auto fail = [reply] {
      reply(Result<MemgestDescriptor>(
          TimeoutError("getMemgestDescriptor timed out")));
    };
    Launch(req_id, std::move(send), std::move(fail));
  });
}

}  // namespace ring
