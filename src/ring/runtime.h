// RingRuntime: wiring of one simulated Ring deployment — simulator, fabric,
// membership, memgest registry, and the server objects.
#ifndef RING_SRC_RING_RUNTIME_H_
#define RING_SRC_RING_RUNTIME_H_

#include <memory>
#include <vector>

#include "src/consensus/membership.h"
#include "src/fault/fault.h"
#include "src/net/fabric.h"
#include "src/ring/registry.h"
#include "src/ring/server.h"
#include "src/sim/simulator.h"

namespace ring {

struct RingOptions {
  uint32_t s = 3;        // coordinator shards per memgest group
  uint32_t d = 2;        // redundant slots
  // Rotated memgest groups (paper §5.4): g > 1 spreads coordinator, replica
  // and parity roles round-robin over the s+d slots, balancing CPU and
  // memory. Key space partitions into groups*s shards.
  uint32_t groups = 1;
  uint32_t spares = 0;   // standby nodes
  uint32_t clients = 1;  // client endpoints (fabric nodes after the servers)
  uint64_t seed = 1;
  sim::SimParams params = sim::kDefaultParams;
  uint64_t stripe_unit = 4096;
  bool start_membership = true;
  // Remove superseded key versions after every commit (paper §5.2: "old
  // versions are removed from the system periodically. It can be tuned to
  // trigger removing ... after every committed put"). Disabling keeps every
  // version (at a memory cost) — see bench/ablation_gc_policy.
  bool gc_old_versions = true;
  // Re-populate a promoted node's object data in the background after
  // metadata recovery. When false, data is reconstructed on demand only
  // (§5.3: "data recovery can be postponed and only recovered on demand,
  // which is quite important for expensive erasure codes").
  bool background_data_recovery = true;
  // Enable the happens-before race detector (src/analysis) for this
  // deployment, equivalent to RING_ANALYZE=race. Observation only: the
  // simulated schedule is unchanged.
  bool analyze_races = false;
  // Chaos schedule (src/fault): link faults and node events injected into
  // the fabric. An empty plan creates no injector and leaves every code
  // path byte-identical to a fault-free run.
  fault::FaultPlan fault_plan;
  // Seed of the injector's private random stream (fault coin flips must not
  // perturb the simulator's main stream). Combined with `seed`.
  uint64_t fault_seed = 0;
  // Regression switches re-introducing the three protocol bugs chaos fuzzing
  // found in PR 5, for the ring-mc known-bug rediscovery gate (tests only;
  // every flag defaults to the fixed behaviour).
  struct TestOnlyBugs {
    // Bug 1: never re-send unacked replica appends — a single lost append
    // wedges the write forever instead of being retried.
    bool no_write_retransmit = false;
    // Bug 2: recover shard metadata from one alive holder instead of the
    // union of all of them — a holder that missed an append loses committed
    // entries on promotion.
    bool single_source_recovery = false;
    // Bug 3: skip the commit-time revalidation of a resolved get — a move/GC
    // that relocated the value between resolve and copy serves stale bytes.
    bool no_gc_revalidate = false;
    bool any() const {
      return no_write_retransmit || single_source_recovery || no_gc_revalidate;
    }
  };
  TestOnlyBugs test_bugs;
};

class RingRuntime {
 public:
  explicit RingRuntime(const RingOptions& options);

  const RingOptions& options() const { return options_; }
  sim::Simulator& simulator() { return simulator_; }
  net::Fabric& fabric() { return fabric_; }
  consensus::MembershipGroup& membership() { return membership_; }
  MemgestRegistry& registry() { return registry_; }

  uint32_t num_server_nodes() const {
    return options_.s + options_.d + options_.spares;
  }
  net::NodeId client_node(uint32_t i) const { return num_server_nodes() + i; }

  // Server object for a server node id; nullptr for client ids.
  RingServer* server(net::NodeId id) {
    return id < servers_.size() ? servers_[id].get() : nullptr;
  }

  // The node currently acting as leader (membership's view).
  net::NodeId leader_node() const { return membership_.CurrentLeader(); }

  // The fault injector, or nullptr when the options carried no plan.
  fault::FaultInjector* injector() { return injector_.get(); }

  // Crash-recovery entry point (also driven by FaultPlan `recover` events):
  // revives `node` on the fabric as a memory-less restart and walks it back
  // through membership readmission and the spare-promotion recovery path.
  void RestartNode(net::NodeId node);

 private:
  RingOptions options_;
  sim::Simulator simulator_;
  net::Fabric fabric_;
  consensus::MembershipGroup membership_;
  MemgestRegistry registry_;
  std::vector<std::unique_ptr<RingServer>> servers_;
  std::unique_ptr<fault::FaultInjector> injector_;
};

}  // namespace ring

#endif  // RING_SRC_RING_RUNTIME_H_
