// RingServer: one node of the Ring KVS (paper §4-§5).
//
// Each server plays up to three roles per memgest, derived from its slot in
// the cluster configuration:
//  - coordinator of its key shard (slot < s): owns the shard's virtual
//    address space, the volatile hashtable and the write path,
//  - replica for other shards of replicated memgests,
//  - parity node of erasure-coded memgests (redundant slots).
//
// All state mutations run as discrete-event work items on the node's
// single-threaded CPU model; messages travel over the simulated RDMA fabric.
#ifndef RING_SRC_RING_SERVER_H_
#define RING_SRC_RING_SERVER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/analysis/race.h"
#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/consensus/config.h"
#include "src/net/fabric.h"
#include "src/ring/metadata.h"
#include "src/ring/registry.h"
#include "src/ring/types.h"

namespace ring {

class RingRuntime;

// ---------------------------------------------------------------------------
// Client-facing request/response types. The `reply` closure is delivered back
// to the client node over the fabric by the server.

struct GetResult {
  Status status;
  Version version = 0;
  std::shared_ptr<Buffer> data;
};

struct PutRequest {
  Key key;
  std::shared_ptr<Buffer> value;
  MemgestId memgest = kDefaultMemgest;
  net::NodeId client = 0;
  uint64_t req_id = 0;
  uint64_t op_id = 0;  // trace id stitching client/server/redundancy spans
  bool retry = false;
  // Set when a peer relayed this request during a rebalance (§13). Forwarded
  // requests are never forwarded again — a stale second hop drops them and
  // the client's retry machinery takes over.
  bool forwarded = false;
  std::function<void(Status, Version)> reply;
};

struct GetRequest {
  Key key;
  net::NodeId client = 0;
  uint64_t req_id = 0;
  uint64_t op_id = 0;
  bool retry = false;
  bool forwarded = false;
  std::function<void(GetResult)> reply;
};

struct MoveRequest {
  Key key;
  MemgestId dst = kDefaultMemgest;
  net::NodeId client = 0;
  uint64_t req_id = 0;
  uint64_t op_id = 0;
  bool retry = false;
  // Internal re-entry of a move that was postponed on an uncommitted entry:
  // it already claimed its at-most-once slot, so the dedup check is skipped.
  bool resumed = false;
  bool forwarded = false;
  std::function<void(Status, Version)> reply;
};

struct DeleteRequest {
  Key key;
  net::NodeId client = 0;
  uint64_t req_id = 0;
  uint64_t op_id = 0;
  bool retry = false;
  bool forwarded = false;
  std::function<void(Status)> reply;
};

// Memgest management (leader-processed, paper §5.1).
struct AdminRequest {
  enum class Op {
    kCreateMemgest,
    kDeleteMemgest,
    kSetDefaultMemgest,
    kGetMemgestDescriptor,
  };
  Op op = Op::kCreateMemgest;
  MemgestDescriptor desc;
  MemgestId id = kDefaultMemgest;
  net::NodeId client = 0;
  std::function<void(Result<MemgestId>)> reply;
  // kGetMemgestDescriptor only.
  std::function<void(Result<MemgestDescriptor>)> descriptor_reply;
};

class RingServer {
 public:
  RingServer(RingRuntime* runtime, net::NodeId id);

  net::NodeId id() const { return id_; }
  bool serving() const { return serving_; }

  // Client entry points (invoked over the fabric).
  void HandlePut(PutRequest req);
  void HandleGet(GetRequest req);
  void HandleMove(MoveRequest req);
  void HandleDelete(DeleteRequest req);
  void HandleAdmin(AdminRequest req);

  // ---- peer messages ----
  struct ReplicaAppend {
    MemgestId memgest;
    uint32_t shard;
    Key key;
    Version version;
    uint64_t addr;
    uint32_t len;
    uint32_t region_len;
    bool tombstone;
    std::shared_ptr<Buffer> bytes;
    uint32_t ordinal;  // replica ordinal (ack bit)
    net::NodeId from;
    // Per-(memgest, shard) write sequence number: replay fence for chaos
    // duplicates (each append applies exactly once per replica).
    uint64_t seq = 0;
    uint64_t op_id = 0;
    // Geometry of the write (§13): group size s the shard id belongs to.
    // 0 means "receiver's current shape" (static-cluster wire default).
    uint32_t geom_s = 0;
    // The entry is a moved-marker (§13): replicated like any write so the
    // marker survives coordinator failover.
    bool moved = false;
  };
  void HandleReplicaAppend(ReplicaAppend msg);

  struct ParityUpdate {
    MemgestId memgest;
    uint32_t shard;
    Key key;
    Version version;
    uint64_t addr;
    uint32_t len;
    uint32_t region_len;
    bool tombstone;
    std::shared_ptr<Buffer> delta;  // XOR of old and new region content
    uint32_t parity_index;          // which parity node (coefficient row)
    net::NodeId from;
    // Per-(memgest, shard) write sequence number: fences parity rebuild
    // against in-flight updates (apply only seq > snapshot seq).
    uint64_t seq = 0;
    uint64_t op_id = 0;
    // Geometry of the write (§13); 0 = receiver's current shape. Parity
    // buffers are per-geometry, so updates of different shapes never mix.
    uint32_t geom_s = 0;
    bool moved = false;
  };
  void HandleParityUpdate(ParityUpdate msg);

  // Asynchronous removal of a GC'd version on redundancy nodes.
  struct GcNotice {
    MemgestId memgest;
    uint32_t shard;
    Key key;
    Version version;
    uint32_t geom_s = 0;  // shape of `shard`; 0 = receiver's current shape
  };
  void HandleGcNotice(GcNotice msg);

  // A promoted node finished *data* recovery for a redundancy role; the
  // coordinator may count it towards pending commits again.
  struct RedundancyRecovered {
    MemgestId memgest;
    uint32_t shard;
    uint32_t ordinal;
    uint32_t geom_s = 0;  // shape of `shard`; 0 = receiver's current shape
  };
  void HandleRedundancyRecovered(RedundancyRecovered msg);

  struct Ack {
    MemgestId memgest;
    uint32_t shard;
    Key key;
    Version version;
    uint32_t ordinal;     // replica ordinal or parity index
    uint32_t geom_s = 0;  // shape of `shard`; 0 = receiver's current shape
  };
  // Acknowledgments arrive as one-sided RDMA writes into a completion region
  // the coordinator polls — no coordinator CPU is charged (DARE-style
  // offload, §6: "CPUs on redundant nodes are not involved").
  void ApplyAck(const Ack& msg);

  // ---- recovery protocol ----
  // A promoted spare asks a source node for a shard's metadata hashtable.
  struct MetaFetch {
    MemgestId memgest;
    uint32_t shard;
    net::NodeId requester;
    uint32_t geom_s = 0;  // shape of `shard`; 0 = receiver's current shape
    std::function<void(std::shared_ptr<MetadataTable>, uint64_t wire_bytes)>
        reply;
  };
  void HandleMetaFetch(MetaFetch msg);

  // On-demand erasure-coded block recovery (paper §5.5): a data node asks a
  // parity node to reconstruct `len` bytes at `addr` of `shard`.
  struct RecoverBlock {
    MemgestId memgest;
    uint32_t shard;
    uint64_t addr;
    uint32_t len;
    net::NodeId requester;
    uint64_t op_id = 0;
    uint32_t geom_s = 0;  // shape of `shard`; 0 = receiver's current shape
    std::function<void(std::shared_ptr<Buffer>)> reply;
  };
  void HandleRecoverBlock(RecoverBlock msg);

  // ---- elastic rebalance protocol (§13) ----
  // Driver -> node: report keys this node still serves at the previous
  // shape (old-placement coordinator duty not yet handed over).
  struct RebalanceScan {
    uint32_t max_keys = 0;  // 0 = unbounded
    net::NodeId requester = 0;
    std::function<void(std::vector<Key>)> reply;
  };
  void HandleRebalanceScan(RebalanceScan msg);

  // Driver -> old-shape owner: migrate one key to its new-shape owner.
  // Idempotent; replies kOk once the new owner has durably installed the
  // key (or it was already handed over / re-encoded).
  struct MigrateKey {
    Key key;
    uint64_t op_id = 0;
    net::NodeId requester = 0;
    std::function<void(Status)> reply;
  };
  void HandleMigrateKey(MigrateKey msg);

  // Old owner -> new owner: install the key's latest contents under the new
  // shape at a version >= floor (the moved-marker version, which fences all
  // old-shape writes below it).
  struct InstallKey {
    MemgestId memgest;
    Key key;
    Version floor = 0;
    std::shared_ptr<Buffer> value;  // nullptr together with tombstone=true
    bool tombstone = false;
    net::NodeId from;
    uint64_t op_id = 0;
    std::function<void(Status)> ack;  // runs back at the old owner
  };
  void HandleInstallKey(InstallKey msg);

  // Membership callback: reconfiguration / spare promotion (paper §5.5).
  void OnConfig(const consensus::ClusterConfig& config);

  // Crash-recovery: the process rebooted memory-less. Clears all store
  // state; the node re-enters as a non-serving spare and (if the cluster
  // readmits it into its old slot) rebuilds through the normal promotion
  // path. The fabric node object itself survives — in-flight closures hold
  // raw pointers to it.
  void Restart();

  // ---- introspection (tests & benches) ----
  struct Counters {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t moves = 0;
    uint64_t deletes = 0;
    uint64_t commits = 0;
    uint64_t parity_updates = 0;
    uint64_t replica_appends = 0;
    uint64_t blocks_recovered = 0;
    uint64_t deferred_gets = 0;
    // Duplicate client requests answered from the at-most-once table.
    uint64_t resent_replies = 0;
    // Duplicate backup messages absorbed by the replay fences.
    uint64_t dup_backups = 0;
    // Backup messages resent by the write-retransmit timer.
    uint64_t retransmits = 0;
    // Reads/moves that found their version garbage-collected (region
    // reused) after the data-copy CPU charge and restarted resolution —
    // the validate-and-retry of the paper's optimistic one-sided reads.
    uint64_t op_restarts = 0;
    // ---- elastic rebalance (§13) ----
    // Client requests relayed to the key's authoritative owner during a
    // shape transition.
    uint64_t forwards = 0;
    // Requests dropped by epoch fencing (stale shape, mid-handoff).
    uint64_t fenced_drops = 0;
    // Keys handed to a new-shape owner (marker + install completed).
    uint64_t keys_migrated = 0;
    // Payload bytes shipped in acknowledged installs (old-owner side).
    uint64_t bytes_moved = 0;
    // Keys re-encoded locally (owner unchanged, shape changed).
    uint64_t keys_reencoded = 0;
    // InstallKey messages applied (new-owner side).
    uint64_t installs = 0;
  };
  const Counters& counters() const { return counters_; }

  // Serialized size of all metadata hashtables on this node (Fig. 12 x-axis).
  uint64_t TotalMetadataBytes() const;
  // Bytes of heap/parity memory allocated (high-water marks).
  uint64_t StoredBytes() const;
  // Bytes attributable to *live* objects: region bytes of every metadata
  // entry on this node, plus 1/k of the region bytes covered by each parity
  // store (a parity node's amortized share of a balanced stripe). This is
  // the measure the memory-saving use cases (§2, §6.2) compare.
  uint64_t LiveBytes() const;
  // Duration of the last completed promotion (metadata recovery), ns.
  uint64_t last_recovery_ns() const { return last_recovery_ns_; }

  // Model-checker state fingerprint (src/mc): order-insensitive hash of this
  // node's committed key-value state — (memgest, store, key, version,
  // tombstone, value bytes) tuples, sorted before hashing so unordered-map
  // iteration order and heap placement never leak in. Excludes timestamps,
  // counters and in-flight entries: schedules that commute must digest equal.
  uint64_t McStateDigest() const;
  // Writes still awaiting redundancy acks (un-committed, acks outstanding).
  // The MC wedged-write oracle: after full quiesce this must be zero.
  uint64_t PendingWrites() const;
  // Kick off background reconstruction of every missing object; `done` fires
  // when the node is fully re-populated.
  void RecoverAllData(std::function<void()> done);

  // Raw heap bytes for peer-driven recovery (RDMA read target: runs at this
  // node without CPU involvement). Returns zeros beyond the heap extent.
  // geom_s == 0 means the current shape.
  Buffer ReadRawForRecovery(MemgestId memgest, uint32_t shard, uint64_t addr,
                            uint32_t len, uint32_t geom_s = 0);
  // Raw parity bytes (RDMA read target), zeros beyond extent. geom_s == 0
  // means the current shape.
  Buffer ReadRawParity(MemgestId memgest, uint32_t group, uint64_t addr,
                       uint32_t len, uint32_t geom_s = 0);
  // True when this node's parity buffer for `memgest`/`group` under the
  // given shape (0 = current) is usable for decode.
  bool ParityUsable(MemgestId memgest, uint32_t group,
                    uint32_t geom_s = 0) const;
  // Current heap extent and write fence of a shard store (RDMA-read targets
  // during parity rebuild). geom_s == 0 means the current shape.
  uint64_t HeapExtent(MemgestId memgest, uint32_t shard,
                      uint32_t geom_s = 0) const;
  uint64_t WriteSeq(MemgestId memgest, uint32_t shard,
                    uint32_t geom_s = 0) const;
  // Drops all local state of a deleted memgest (leader broadcast target).
  void ApplyMemgestDelete(MemgestId memgest);

 private:
  // Per-shard object store: a virtual address space (heap) plus the shard's
  // metadata hashtable. Coordinators own one for their shard; replicas hold
  // mirrors for shards they back.
  // Sliding-window replay fence: records which write sequence numbers have
  // been applied so chaos-duplicated backup messages execute at most once.
  // Sequences below the retained window are treated as already seen (the
  // window only slides forward past applied entries).
  struct SeqWindow {
    std::set<uint64_t> seen;
    uint64_t min_retained = 0;

    // True exactly once per sequence number.
    bool MarkOnce(uint64_t seq) {
      if (seq < min_retained) {
        return false;
      }
      if (!seen.insert(seq).second) {
        return false;
      }
      while (seen.size() > kWindow) {
        auto oldest = seen.begin();
        min_retained = *oldest + 1;
        seen.erase(oldest);
      }
      return true;
    }

    static constexpr size_t kWindow = 4096;
  };

  struct ShardStore {
    Buffer heap;
    uint64_t next_addr = 0;
    uint64_t write_seq = 0;  // fencing counter for parity rebuild
    std::vector<std::pair<uint64_t, uint32_t>> free_list;  // (addr, len)
    MetadataTable meta;
    // Replay fence for ReplicaAppend duplicates on this mirror.
    SeqWindow replica_seqs;

    // Reuses a freed region when possible (keeps parity deltas cheap),
    // otherwise extends the heap. Returns (addr, region_len).
    std::pair<uint64_t, uint32_t> Allocate(uint32_t len);
    void EnsureSize(uint64_t size);
    void Write(uint64_t addr, ByteSpan bytes);
    ByteSpan Read(uint64_t addr, uint32_t len) const;
  };

  // Parity node state for one erasure-coded memgest: the parity buffer plus
  // replicated metadata of every data shard in the stripe (§5.4: parity
  // nodes store more metadata than data nodes).
  struct ParityStore {
    uint32_t parity_index = 0;
    Buffer mem;
    std::map<uint32_t, MetadataTable> shard_meta;
    // False on a freshly promoted parity node until the buffer is
    // reconstructed from the data shards; unrebuilt parity must not serve
    // decodes and queues incoming updates.
    bool rebuilt = true;
    std::vector<ParityUpdate> queued;
    // Replay fences for ParityUpdate duplicates, per data shard. Parity
    // XOR-accumulation is not idempotent, so a duplicated update must never
    // apply twice (and must still re-ack: the first ack may have been lost).
    std::map<uint32_t, SeqWindow> applied_seqs;

    void EnsureSize(uint64_t size);
  };

  struct MemgestState {
    const MemgestInfo* info = nullptr;
    // Own shards + replica mirrors, keyed by GeomKey(geom_s, shard) so each
    // shape keeps a private address space (§13).
    std::map<uint32_t, ShardStore> stores;
    // Parity stores, one per (shape, group) whose rotation put a parity role
    // on this node (§5.4 balancing: with groups > 1 parity spreads out),
    // keyed by GeomKey(geom_s, group).
    std::map<uint32_t, ParityStore> parity;
    uint64_t log_len = 0;
  };

  sim::CpuWorker& cpu();
  obs::Hub& hub();
  // Race-detector hook: logs an access to a declared region of this node's
  // protocol state ([lo, hi) bytes within `scope` of `kind`). One branch and
  // out when analysis is off.
  void NoteAccess(analysis::RegionKind kind, analysis::AccessKind access,
                  uint64_t scope, uint64_t lo, uint64_t hi, const char* site);
  const consensus::ClusterConfig& config() const { return config_; }
  bool IsAlive() const;
  // True when this node currently coordinates `shard`.
  bool Coordinates(uint32_t shard) const;
  int32_t slot() const { return config_.slot_of_node[id_]; }

  // ---- elastic rebalance helpers (§13) ----
  // Placement view for a shape. 0 or the current s -> current placement;
  // the previous shape only while rebalancing(); nullopt otherwise — the
  // caller treats that as an epoch-fenced (stale) operation and drops.
  std::optional<consensus::Placement> PlacementFor(uint32_t geom_s) const;
  // Routing decision for a client op on `key`. On a static cluster this is
  // the plain Coordinates check; during a rebalance the key is served by
  // its old-shape owner until its moved-marker lands, then by the new-shape
  // owner, with one forwarding hop bridging stale client configs.
  struct RouteAction {
    enum class Kind { kServe, kForward, kDrop };
    Kind kind = Kind::kDrop;
    uint32_t shard = 0;      // kServe: shard id under `geom_s`
    uint32_t geom_s = 0;     // kServe: shape the shard id belongs to
    net::NodeId target = 0;  // kForward
  };
  RouteAction RouteKey(const Key& key, bool forwarded);
  // Entry lookup across the live shapes: tries the current-shape shard,
  // then (while rebalancing) the previous-shape shard. Fills *shard_out
  // with the shard id (and *geom_out with the shape) the entry was found
  // under.
  MetaEntry* FindEntry(const MemgestInfo& info, const Key& key,
                       Version version, uint32_t* shard_out,
                       uint32_t* geom_out);
  // Shard stores and parity stores are keyed per (shape, shard-or-group):
  // each geometry gets its own heap address space and stripe buffers, so
  // parity accumulated under one stripe layout never mixes with bytes laid
  // out under another.
  static constexpr uint32_t GeomKey(uint32_t geom_s, uint32_t idx) {
    return (geom_s << 16) | idx;
  }
  // Drops every entry, store and parity buffer of shapes other than the
  // current one; runs on the rebalancing -> static config edge.
  void PurgeStaleGeometries();
  // §13 handoff step 2: after the moved-marker at `floor` committed, ship
  // the key's latest durable contents to its new-shape owner and reply to
  // the driver once the install is acknowledged.
  void SendInstall(const MemgestInfo& info, const Key& key, uint32_t shard,
                   uint32_t geom_s, Version floor,
                   std::function<void(Status)> reply);

  MemgestState& StateOf(const MemgestInfo& info);
  // The store for `shard` under shape `geom_s` (0 = current).
  ShardStore& StoreOf(MemgestState& state, uint32_t shard,
                      uint32_t geom_s = 0);

  // Write path pieces. `shard` is a shard id under `geom_s` (0 = current
  // shape); `moved` writes a §13 moved-marker entry.
  void StartWrite(const MemgestInfo& info, uint32_t shard, const Key& key,
                  Version version, std::shared_ptr<Buffer> value,
                  bool tombstone, std::function<void(Status)> on_commit,
                  uint32_t geom_s = 0, bool moved = false);
  void CommitEntry(const MemgestInfo& info, uint32_t shard, const Key& key,
                   Version version, uint32_t geom_s = 0);
  // Resends un-acked backup messages for a pending write every
  // write_retransmit_ns until it commits (no-op when the period is 0).
  void ScheduleWriteRetransmit(MemgestId gid, uint32_t shard, uint32_t geom_s,
                               const Key& key, Version version);
  void GcOldVersions(const Key& key, Version below);

  // Read path pieces.
  // Resolves the highest version of req.key and dispatches DeliverGet.
  // Called once per get and again whenever validate-and-retry detects that
  // the resolved version was garbage-collected mid-read.
  void ResolveGet(GetRequest req);
  void DeliverGet(const MemgestInfo& info, uint32_t shard, uint32_t geom_s,
                  const Key& key, MetaEntry* entry, GetRequest req);
  void EnsureDataPresent(const MemgestInfo& info, uint32_t shard,
                         uint32_t geom_s, const Key& key, Version version,
                         std::function<void(Status)> then);

  // Recovery pieces. `geom_s` selects the shape a shard id belongs to
  // (0 = current); during a rebalance a promoted node recovers both shapes.
  void BeginPromotion(uint32_t new_slot);
  void FetchShardMetadata(const MemgestInfo& info, uint32_t shard,
                          bool as_parity, uint32_t geom_s,
                          std::function<void()> done);
  // One source's fetch, re-sent on a timer until its reply lands (the flag
  // also swallows chaos-duplicated replies). A lost MetaFetch must not wedge
  // the promotion: the node would stay non-serving forever.
  void SendMetaFetchAttempt(
      const MemgestInfo& info, uint32_t shard, uint32_t geom,
      int32_t src_slot, std::shared_ptr<bool> responded,
      std::function<void(std::shared_ptr<MetadataTable>, uint64_t)> reply);
  // Alive holders of a shard's metadata, preference-ordered. All of them
  // for replicated schemes (quorum commit: survivors must be unioned), one
  // for erasure coding (every parity node has the full table).
  std::vector<int32_t> AliveMetaSources(const MemgestInfo& info,
                                        uint32_t shard, uint32_t geom_s) const;
  void RebuildVolatileIndex();
  void NotifyRedundancyRecovered();
  void RebuildParity(const MemgestInfo& info, uint32_t pkey,
                     std::function<void()> done);
  void ApplyParityBytes(const MemgestInfo& info, const ParityUpdate& msg);
  void RecoverStoreEntries(const MemgestInfo& info, uint32_t shard,
                           uint32_t geom_s,
                           std::vector<std::pair<Key, Version>> todo,
                           size_t next, std::function<void()> done);

  void ReplyToClient(net::NodeId client, uint64_t bytes, sim::Task fn);
  void SendToSlot(uint32_t slot_index, uint64_t bytes, sim::Task fn);
  void SendToNode(net::NodeId node, uint64_t bytes, sim::Task fn);

  // CPU-shard homing (cores_per_node > 1). Client operations on a key run
  // on the shard derived from the key's current-shape shard id, so each
  // coordinator-owned ShardStore is touched by exactly one CPU shard.
  // Backup-side work homes on the ids carried by the message instead
  // (replica appends by shard, parity updates by group) — see the handlers.
  // With one core everything maps to shard 0.
  uint32_t HomeShardForKey(const Key& key);

  // At-most-once execution of client mutations. ClaimClientOp returns true
  // exactly once per (client, req_id): the caller may execute the operation.
  // On a duplicate whose reply was already produced, the recorded reply is
  // resent; a duplicate of a still-executing op is ignored (the pending
  // reply will reach the client). ReplyToClientOnce records the reply
  // closure against the claim so later duplicates can replay it.
  bool ClaimClientOp(net::NodeId client, uint64_t req_id);
  void ReplyToClientOnce(net::NodeId client, uint64_t req_id, uint64_t bytes,
                         std::function<void()> fn);

  RingRuntime* rt_;
  net::NodeId id_;
  consensus::ClusterConfig config_;
  VolatileIndex volatile_index_;
  std::map<MemgestId, MemgestState> memgests_;
  bool serving_ = true;  // spares flip to false until promoted & recovered
  bool is_spare_ = true;
  // Set while the cluster considers this node failed (its slot was marked
  // dark). Cleared when a later config readmits it; the transition drives
  // the rejoin edge in OnConfig.
  bool excluded_ = false;
  uint64_t last_recovery_ns_ = 0;
  Counters counters_;
  // At-most-once table for client mutations: (client, req_id) -> recorded
  // reply resend closure (null while the op is still executing). Bounded by
  // FIFO eviction; clients never have more than one op in flight, so the
  // window is generous. Hashed, not ordered — the table only ever does
  // keyed find/emplace/erase (never iterates), so the unordered layout is
  // deterministic and drops the rb-tree overhead the put/get hot path was
  // paying per request.
  struct ClientOpHash {
    size_t operator()(const std::pair<net::NodeId, uint64_t>& id) const {
      uint64_t x = (static_cast<uint64_t>(id.first) << 48) ^ id.second;
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      x *= 0x94D049BB133111EBull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };
  std::unordered_map<std::pair<net::NodeId, uint64_t>, std::function<void()>,
                     ClientOpHash>
      client_ops_;
  std::deque<std::pair<net::NodeId, uint64_t>> client_ops_order_;
  static constexpr size_t kClientOpWindow = 8192;
};

}  // namespace ring

#endif  // RING_SRC_RING_SERVER_H_
