// Elastic-rebalance protocol pieces of RingServer (§13): the per-node scan
// that reports keys still living at the previous shape, the per-key
// linearizable handoff (moved-marker + install), and the purge that retires
// the previous shape once the transition commits.
#include <algorithm>
#include <set>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/ring/runtime.h"
#include "src/ring/server.h"

namespace ring {
namespace {
constexpr uint64_t kHeaderBytes = 64;
constexpr uint64_t kAckBytes = 48;

uint64_t ReqBytes(size_t key_len, size_t payload) {
  return kHeaderBytes + key_len + payload;
}
}  // namespace

void RingServer::HandleRebalanceScan(RebalanceScan msg) {
  if (!IsAlive()) {
    return;
  }
  cpu().Execute(rt_->simulator().params().server_base_ns,
                [this, msg = std::move(msg)]() mutable {
    if (!IsAlive()) {
      return;
    }
    // Keys needing migration are exactly the ones whose highest version
    // still lives in a previous-shape store of a shard this node served as
    // old-placement coordinator. std::set gives a sorted, deduplicated
    // report (a key can appear in several memgests).
    std::set<Key> pending;
    uint64_t scanned = 0;
    if (serving_ && config_.rebalancing()) {
      const consensus::Placement prev = config_.Previous();
      for (auto& [gid, state] : memgests_) {
        const MemgestInfo* info = state.info;
        if (info == nullptr || info->desc.unreliable()) {
          continue;
        }
        for (auto& [store_key, store] : state.stores) {
          const uint32_t geom = store_key >> 16;
          const uint32_t shard = store_key & 0xffffu;
          if (geom != config_.prev_s ||
              prev.CoordinatorOfShard(shard) != id_) {
            continue;
          }
          store.meta.ForEach([&](const Key& key, const MetaEntry&) {
            ++scanned;
            if (msg.max_keys != 0 && pending.size() >= msg.max_keys) {
              return;
            }
            if (pending.count(key) != 0) {
              return;
            }
            const auto ref = volatile_index_.Highest(key);
            if (!ref.has_value()) {
              return;  // replica mirror only / already erased
            }
            const MemgestInfo* owner = rt_->registry().Get(ref->memgest);
            if (owner == nullptr) {
              return;
            }
            uint32_t found_shard = 0;
            uint32_t found_geom = 0;
            const MetaEntry* e = FindEntry(*owner, key, ref->version,
                                           &found_shard, &found_geom);
            if (e == nullptr || found_geom == config_.s) {
              return;  // already living at the new shape
            }
            if (e->moved && e->moved_done) {
              return;  // handed over and acknowledged
            }
            pending.insert(key);
          });
        }
      }
    }
    const auto& p = rt_->simulator().params();
    cpu().Execute(scanned * p.recovery_entry_ns / 2,
                  [this, requester = msg.requester, reply = std::move(msg.reply),
                   keys = std::vector<Key>(pending.begin(), pending.end())] {
      uint64_t wire = kHeaderBytes;
      for (const Key& k : keys) {
        wire += k.size() + 8;
      }
      rt_->fabric().Send(id_, requester, wire,
                         [reply = std::move(reply), keys]() mutable {
                           reply(std::move(keys));
                         });
    });
  });
}

void RingServer::HandleMigrateKey(MigrateKey msg) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), msg.op_id);
  cpu().Execute(rt_->simulator().params().server_base_ns,
                [this, msg = std::move(msg)]() mutable {
    obs::ScopedOp op_scope(hub(), msg.op_id);
    if (!IsAlive() || !serving_) {
      return;  // driver timeout + retry covers the silence
    }
    auto done = [this, requester = msg.requester,
                 reply = msg.reply](Status s) {
      rt_->fabric().Send(id_, requester, kAckBytes,
                         [reply, s] { reply(s); });
    };
    if (!config_.rebalancing()) {
      done(OkStatus());  // transition already completed: nothing to move
      return;
    }
    const auto ref = volatile_index_.Highest(msg.key);
    if (!ref.has_value()) {
      done(OkStatus());  // erased (or never here): scan will not re-report
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(ref->memgest);
    if (info == nullptr) {
      done(OkStatus());
      return;
    }
    uint32_t shard = 0;
    uint32_t geom = 0;
    MetaEntry* entry = FindEntry(*info, msg.key, ref->version, &shard, &geom);
    if (entry == nullptr) {
      done(OkStatus());
      return;
    }
    if (geom == config_.s) {
      done(OkStatus());  // highest already lives at the new shape
      return;
    }
    if (entry->moved) {
      if (entry->moved_done) {
        done(OkStatus());
        return;
      }
      if (entry->committed) {
        // Marker durable but the install was never acknowledged (crash or
        // lost ack): re-send it. The install is idempotent at the receiver.
        SendInstall(*info, msg.key, shard, geom, entry->version,
                    std::move(done));
        return;
      }
      // Marker still collecting acks: retry once it commits.
      entry->waiters.push_back([this, msg]() mutable {
        HandleMigrateKey(std::move(msg));
      });
      return;
    }
    if (!entry->committed) {
      // A client write is in flight; the marker must fence *above* it, so
      // wait for it to settle and re-run (the re-run recomputes the highest
      // version — more writes may have landed meanwhile).
      entry->waiters.push_back([this, msg]() mutable {
        HandleMigrateKey(std::move(msg));
      });
      return;
    }
    // Write the durable moved-marker one version above the highest committed
    // write. From this moment RouteKey refuses new old-shape ops on the key;
    // once the marker commits on its redundancy set, ship the contents.
    const Version floor = volatile_index_.NextVersion(msg.key);
    const MemgestInfo* info_ptr = info;
    const Key key = msg.key;
    StartWrite(*info, shard, key, floor, nullptr, false,
               [this, info_ptr, key, shard, geom, floor,
                done = std::move(done)](Status s) mutable {
                 if (!s.ok()) {
                   done(s);
                   return;
                 }
                 SendInstall(*info_ptr, key, shard, geom, floor,
                             std::move(done));
               },
               geom, /*moved=*/true);
  });
}

void RingServer::SendInstall(const MemgestInfo& info, const Key& key,
                             uint32_t shard, uint32_t geom_s, Version floor,
                             std::function<void(Status)> reply) {
  // Payload: the highest committed non-marker version below the floor. All
  // versions of the key below the marker survive (CommitEntry suppresses GC
  // under a marker), so this lookup cannot race a reclaim.
  std::shared_ptr<Buffer> value;
  bool tombstone = false;
  Version payload_version = 0;
  for (const auto& r : volatile_index_.Refs(key)) {
    if (r.version >= floor || r.memgest != info.id) {
      continue;
    }
    uint32_t fshard = shard;
    uint32_t fgeom = geom_s;
    MetaEntry* e = FindEntry(info, key, r.version, &fshard, &fgeom);
    if (e == nullptr || !e->committed || e->moved) {
      continue;
    }
    payload_version = r.version;
    if (e->tombstone) {
      tombstone = true;
    } else {
      ShardStore& store = StoreOf(StateOf(info), fshard, fgeom);
      value = std::make_shared<Buffer>();
      const ByteSpan bytes = store.Read(e->addr, e->len);
      value->assign(bytes.begin(), bytes.end());
    }
    break;
  }
  if (payload_version == 0) {
    // No durable content below the marker (everything was deleted): install
    // a tombstone so the new owner still holds the version floor.
    tombstone = true;
  }
  const uint32_t cur_shard = KeyShard(key, config_.num_shards());
  const net::NodeId new_owner = config_.CoordinatorOfShard(cur_shard);
  const uint64_t payload = value ? value->size() : 0;

  InstallKey msg;
  msg.memgest = info.id;
  msg.key = key;
  msg.floor = floor;
  msg.value = value;
  msg.tombstone = tombstone;
  msg.from = id_;
  msg.op_id = hub().current_op();
  const MemgestInfo* info_ptr = &info;
  const bool local = new_owner == id_;
  msg.ack = [this, info_ptr, key, floor, payload, local,
             reply = std::move(reply)](Status s) mutable {
    // Runs back at the old owner once the new owner replies.
    if (s.ok()) {
      uint32_t mshard = 0;
      uint32_t mgeom = 0;
      if (MetaEntry* marker =
              FindEntry(*info_ptr, key, floor, &mshard, &mgeom);
          marker != nullptr) {
        marker->moved_done = true;
      }
      if (local) {
        // Owner unchanged by the resize: the handover was a re-encode under
        // the new shape, no network hop — keep the traffic counters honest.
        ++counters_.keys_reencoded;
        hub().metrics().Inc("rebalance.keys_reencoded", 1, id_, info_ptr->id);
      } else {
        ++counters_.keys_migrated;
        counters_.bytes_moved += payload;
        hub().metrics().Inc("rebalance.keys_moved", 1, id_, info_ptr->id);
        hub().metrics().Inc("rebalance.bytes", payload, id_, info_ptr->id);
      }
    }
    reply(s);
  };
  hub().recorder().Record(obs::RecKind::kRecovery, "rebalance_install", id_,
                          msg.op_id, info.id, floor);
  if (local) {
    HandleInstallKey(std::move(msg));
    return;
  }
  auto* peer = rt_->server(new_owner);
  SendToNode(new_owner, ReqBytes(key.size(), payload),
             [peer, msg = std::move(msg)]() mutable {
               peer->HandleInstallKey(std::move(msg));
             });
}

void RingServer::HandleInstallKey(InstallKey msg) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), msg.op_id);
  cpu().Execute(rt_->simulator().params().server_base_ns,
                [this, msg = std::move(msg)]() mutable {
    obs::ScopedOp op_scope(hub(), msg.op_id);
    if (!IsAlive() || !serving_) {
      return;  // the old owner's driver retry re-sends the install
    }
    const uint32_t cur_shard = KeyShard(msg.key, config_.num_shards());
    if (config_.CoordinatorOfShard(cur_shard) != id_) {
      return;  // stale routing (a failover moved the shard); retry covers
    }
    const MemgestInfo* info = rt_->registry().Get(msg.memgest);
    if (info == nullptr) {
      SendToNode(msg.from, kAckBytes,
                 [ack = msg.ack] { ack(NotFoundError("memgest gone")); });
      return;
    }
    // Idempotency: once a version >= floor lives here *at the new shape*, a
    // previous install (or a client write accepted after it) already covers
    // this request. The geometry check matters for the local re-encode case:
    // the old owner's own moved-marker sits at version == floor in the old
    // geometry and must not satisfy the install.
    bool covered = false;
    for (const auto& r : volatile_index_.Refs(msg.key)) {
      if (r.version < msg.floor || r.memgest != msg.memgest) {
        continue;
      }
      uint32_t fshard = 0;
      uint32_t fgeom = 0;
      const MetaEntry* e = FindEntry(*info, msg.key, r.version, &fshard, &fgeom);
      if (e != nullptr && fgeom == config_.s && !e->moved) {
        covered = true;
        break;
      }
    }
    if (covered) {
      SendToNode(msg.from, kAckBytes, [ack = msg.ack] { ack(OkStatus()); });
      return;
    }
    ++counters_.installs;
    hub().metrics().Inc("server.installs", 1, id_, info->id);
    const Version version =
        std::max(volatile_index_.NextVersion(msg.key), msg.floor);
    StartWrite(*info, cur_shard, msg.key, version, msg.value, msg.tombstone,
               [this, from = msg.from, ack = msg.ack](Status s) {
                 SendToNode(from, kAckBytes, [ack, s] { ack(s); });
               });
  });
}

void RingServer::PurgeStaleGeometries() {
  uint64_t dropped_entries = 0;
  for (auto& [gid, state] : memgests_) {
    for (auto it = state.stores.begin(); it != state.stores.end();) {
      if ((it->first >> 16) == config_.s) {
        ++it;
        continue;
      }
      // Old-shape store: unlink its volatile references, then drop the whole
      // heap + table. Careful with version-number collisions: an installed
      // key reuses its moved-marker's version at the new shape, so the ref
      // may now belong to the live current-shape entry and must survive the
      // purge. The entry must be *indexed*, though: a plain replica mirror
      // of the new owner's install also resolves (key, version) here, but
      // owns no ref — keeping the ref for a mirror leaves it dangling, and
      // a later get on this node trips over it instead of forwarding.
      it->second.meta.ForEach([&](const Key& key, const MetaEntry& entry) {
        ++dropped_entries;
        const uint32_t cur_shard = KeyShard(key, config_.num_shards());
        if (auto cit = state.stores.find(GeomKey(config_.s, cur_shard));
            cit != state.stores.end()) {
          const MetaEntry* live = cit->second.meta.Find(key, entry.version);
          if (live != nullptr && live->indexed) {
            return;
          }
        }
        volatile_index_.Remove(key, entry.version);
      });
      it = state.stores.erase(it);
    }
    for (auto it = state.parity.begin(); it != state.parity.end();) {
      if ((it->first >> 16) == config_.s) {
        ++it;
      } else {
        it = state.parity.erase(it);
      }
    }
  }
  hub().metrics().Inc("rebalance.purged_entries", dropped_entries, id_);
  hub().recorder().Record(obs::RecKind::kRecovery, "geometry_purge", id_,
                          hub().current_op(), dropped_entries);
  RING_LOG(kInfo) << "node " << id_ << " purged stale geometries ("
                  << dropped_entries << " entries)";
}

}  // namespace ring
