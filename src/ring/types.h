// Core Ring types: keys, versions, memgest descriptors (paper §5).
#ifndef RING_SRC_RING_TYPES_H_
#define RING_SRC_RING_TYPES_H_

#include <cstdint>
#include <string>

namespace ring {

using Key = std::string;
using Version = uint64_t;
using MemgestId = uint32_t;

// Sentinel: "use the cluster's default memgest" in put calls.
inline constexpr MemgestId kDefaultMemgest = 0xFFFFFFFFu;

enum class SchemeKind : uint8_t {
  kReplicated,    // Rep(r, s): r-fold primary replication, quorum commits
  kErasureCoded,  // SRS(k, m, s): stretched Reed-Solomon
};

// A memgest is a storage scheme instance (paper §5.1). The stretch factor s
// is a cluster-wide constant (the number of coordinator shards), so it is
// not part of the descriptor.
struct MemgestDescriptor {
  SchemeKind kind = SchemeKind::kReplicated;
  uint32_t r = 1;  // replication factor including the primary (kReplicated)
  uint32_t k = 0;  // data blocks (kErasureCoded)
  uint32_t m = 0;  // parity blocks (kErasureCoded)
  // Replicated memgests only: commit when *all* replicas acknowledged
  // instead of a majority quorum. Tolerates r-1 failures instead of
  // floor((r-1)/2), at the price of waiting for the slowest replica
  // (paper §3.1's "basic fully synchronous replication").
  bool full_sync = false;
  std::string name;

  static MemgestDescriptor Replicated(uint32_t r, std::string name = "") {
    MemgestDescriptor d;
    d.kind = SchemeKind::kReplicated;
    d.r = r;
    d.name = std::move(name);
    return d;
  }
  static MemgestDescriptor FullSyncReplicated(uint32_t r,
                                              std::string name = "") {
    MemgestDescriptor d = Replicated(r, std::move(name));
    d.full_sync = true;
    return d;
  }
  static MemgestDescriptor ErasureCoded(uint32_t k, uint32_t m,
                                        std::string name = "") {
    MemgestDescriptor d;
    d.kind = SchemeKind::kErasureCoded;
    d.k = k;
    d.m = m;
    d.name = std::move(name);
    return d;
  }

  // Rep(1, s): no redundancy, immediate commits, highest performance.
  bool unreliable() const {
    return kind == SchemeKind::kReplicated && r <= 1;
  }

  // Number of redundancy targets a put must reach (replicas or parities).
  uint32_t redundancy() const {
    return kind == SchemeKind::kReplicated ? r - 1 : m;
  }

  // Stored bytes per byte of user data.
  double StorageOverhead() const {
    if (kind == SchemeKind::kReplicated) {
      return static_cast<double>(r);
    }
    return 1.0 + static_cast<double>(m) / static_cast<double>(k);
  }

  // "Rep(3)" / "SRS(3,2)" — the paper's labels, s implied by the cluster.
  std::string ToString() const;
};

}  // namespace ring

#endif  // RING_SRC_RING_TYPES_H_
