#include "src/ring/server.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/gf/gf256.h"
#include "src/ring/runtime.h"

namespace ring {
namespace {

// Fixed header bytes of a client request / peer message on the wire.
constexpr uint64_t kHeaderBytes = 64;
constexpr uint64_t kAckBytes = 48;
constexpr uint64_t kReplyBytes = 48;
constexpr uint64_t kLogRecordBytes = 32;

uint64_t ReqBytes(size_t key_len, size_t payload) {
  return kHeaderBytes + key_len + payload;
}

// ---- race-detector region addressing ----
// Scopes partition each RegionKind into independent address spaces.
using analysis::AccessKind;
using analysis::RegionKind;

// The volatile index is node-wide, not per-memgest.
constexpr uint64_t kVersionScope = 0xFFFFFFFFull << 32;

uint64_t ScopeOf(MemgestId memgest, uint32_t sub) {
  return (static_cast<uint64_t>(memgest) << 32) | sub;
}
// Parity nodes hold replicated per-shard metadata distinct from any shard
// store's table on the same node.
uint64_t ParityMetaScope(MemgestId memgest, uint32_t shard) {
  return ScopeOf(memgest, 0x80000000u | shard);
}
// Word regions (version/commit/ack) use a mixed (key, version) hash as the
// byte address.
uint64_t EntryWord(const Key& key, Version version) {
  return HashKey(key) ^ (version * 0x9E3779B97F4A7C15ull);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardStore / ParityStore

std::pair<uint64_t, uint32_t> RingServer::ShardStore::Allocate(uint32_t len) {
  // First fit over freed regions: reuse keeps the address space compact and
  // makes erasure-coded deltas cover previously-scrubbed content for free.
  for (size_t i = 0; i < free_list.size(); ++i) {
    if (free_list[i].second >= len) {
      const auto region = free_list[i];
      free_list.erase(free_list.begin() + static_cast<long>(i));
      return region;
    }
  }
  const uint64_t addr = next_addr;
  next_addr += len;
  EnsureSize(next_addr);
  return {addr, len};
}

void RingServer::ShardStore::EnsureSize(uint64_t size) {
  if (heap.size() < size) {
    heap.resize(size, 0);
  }
}

void RingServer::ShardStore::Write(uint64_t addr, ByteSpan bytes) {
  EnsureSize(addr + bytes.size());
  std::copy(bytes.begin(), bytes.end(), heap.begin() + addr);
}

ByteSpan RingServer::ShardStore::Read(uint64_t addr, uint32_t len) const {
  assert(addr + len <= heap.size());
  return ByteSpan(heap.data() + addr, len);
}

void RingServer::ParityStore::EnsureSize(uint64_t size) {
  if (mem.size() < size) {
    mem.resize(size, 0);
  }
}

// ---------------------------------------------------------------------------
// Construction / small helpers

RingServer::RingServer(RingRuntime* runtime, net::NodeId id)
    : rt_(runtime), id_(id), config_(runtime->membership().ConfigView(id)) {
  is_spare_ = (config_.slot_of_node[id_] == consensus::kSpareSlot);
  serving_ = !is_spare_;
}

sim::CpuWorker& RingServer::cpu() { return rt_->fabric().cpu(id_); }

obs::Hub& RingServer::hub() { return rt_->simulator().hub(); }

void RingServer::NoteAccess(RegionKind kind, AccessKind access,
                            uint64_t scope, uint64_t lo, uint64_t hi,
                            const char* site) {
  analysis::RaceDetector* race = rt_->simulator().race();
  if (race == nullptr) {
    return;
  }
  analysis::Region region;
  region.node = id_;
  region.kind = kind;
  region.scope = scope;
  region.lo = lo;
  region.hi = hi;
  race->OnAccess(region, access, site, rt_->simulator().now(),
                 hub().current_op());
}

bool RingServer::IsAlive() const { return rt_->fabric().alive(id_); }

bool RingServer::Coordinates(uint32_t shard) const {
  return serving_ && config_.CoordinatesShard(id_, shard);
}

RingServer::MemgestState& RingServer::StateOf(const MemgestInfo& info) {
  MemgestState& state = memgests_[info.id];
  state.info = &info;
  return state;
}

RingServer::ShardStore& RingServer::StoreOf(MemgestState& state,
                                            uint32_t shard, uint32_t geom_s) {
  return state.stores[GeomKey(geom_s == 0 ? config_.s : geom_s, shard)];
}

std::optional<consensus::Placement> RingServer::PlacementFor(
    uint32_t geom_s) const {
  if (geom_s == 0 || geom_s == config_.s) {
    return config_.Current();
  }
  if (config_.rebalancing() && geom_s == config_.prev_s) {
    return config_.Previous();
  }
  return std::nullopt;  // retired shape: the operation is epoch-fenced
}

MetaEntry* RingServer::FindEntry(const MemgestInfo& info, const Key& key,
                                 Version version, uint32_t* shard_out,
                                 uint32_t* geom_out) {
  MemgestState& state = StateOf(info);
  const uint32_t cur_shard = KeyShard(key, config_.num_shards());
  if (auto sit = state.stores.find(GeomKey(config_.s, cur_shard));
      sit != state.stores.end()) {
    if (MetaEntry* e = sit->second.meta.Find(key, version); e != nullptr) {
      if (shard_out != nullptr) {
        *shard_out = cur_shard;
      }
      if (geom_out != nullptr) {
        *geom_out = config_.s;
      }
      return e;
    }
  }
  if (config_.rebalancing()) {
    const uint32_t prev_shard =
        KeyShard(key, config_.groups * config_.prev_s);
    if (auto sit = state.stores.find(GeomKey(config_.prev_s, prev_shard));
        sit != state.stores.end()) {
      if (MetaEntry* e = sit->second.meta.Find(key, version); e != nullptr) {
        if (shard_out != nullptr) {
          *shard_out = prev_shard;
        }
        if (geom_out != nullptr) {
          *geom_out = config_.prev_s;
        }
        return e;
      }
    }
  }
  return nullptr;
}

RingServer::RouteAction RingServer::RouteKey(const Key& key, bool forwarded) {
  RouteAction act;  // defaults to kDrop
  const uint32_t cur_shard = KeyShard(key, config_.num_shards());
  if (!config_.rebalancing()) {
    // Static cluster: the plain coordinator check, zero extra work.
    if (Coordinates(cur_shard)) {
      act.kind = RouteAction::Kind::kServe;
      act.shard = cur_shard;
      act.geom_s = config_.s;
    }
    return act;
  }
  const consensus::Placement prev = config_.Previous();
  const uint32_t prev_shard = KeyShard(key, prev.num_shards());
  const net::NodeId old_owner = prev.CoordinatorOfShard(prev_shard);
  const net::NodeId new_owner = config_.CoordinatorOfShard(cur_shard);
  if (old_owner == new_owner) {
    // Ownership unchanged by the resize (the key may still need a local
    // re-encode, which the rebalance driver performs in place).
    if (serving_ && id_ == new_owner) {
      act.kind = RouteAction::Kind::kServe;
      act.shard = cur_shard;
      act.geom_s = config_.s;
    }
    return act;
  }
  if (id_ == new_owner && serving_) {
    // The new owner serves only keys already installed here; everything else
    // still lives with the old owner. One forwarding hop bridges clients
    // with a fresher config than the key's migration state.
    if (volatile_index_.Highest(key).has_value()) {
      act.kind = RouteAction::Kind::kServe;
      act.shard = cur_shard;
      act.geom_s = config_.s;
      return act;
    }
    if (!forwarded && !config_.failed[old_owner]) {
      act.kind = RouteAction::Kind::kForward;
      act.target = old_owner;
    }
    return act;
  }
  if (id_ == old_owner && serving_) {
    // The old owner serves until the key's moved-marker exists, then points
    // at the new owner. The marker fences even before it commits: a write
    // accepted above an in-flight marker would be lost at handoff, so the
    // moment the marker is written every op re-routes (and retries until
    // the new owner has the install).
    bool handed_over = false;
    if (const auto ref = volatile_index_.Highest(key); ref.has_value()) {
      if (const MemgestInfo* info = rt_->registry().Get(ref->memgest);
          info != nullptr) {
        const MetaEntry* e =
            FindEntry(*info, key, ref->version, nullptr, nullptr);
        handed_over = e != nullptr && e->moved;
      }
    }
    if (!handed_over) {
      act.kind = RouteAction::Kind::kServe;
      act.shard = prev_shard;
      act.geom_s = config_.prev_s;
      return act;
    }
    if (!forwarded && !config_.failed[new_owner]) {
      act.kind = RouteAction::Kind::kForward;
      act.target = new_owner;
    }
    return act;
  }
  return act;
}

uint32_t RingServer::HomeShardForKey(const Key& key) {
  return cpu().ShardForHash(KeyShard(key, config_.num_shards()));
}

void RingServer::ReplyToClient(net::NodeId client, uint64_t bytes,
                               sim::Task fn) {
  rt_->fabric().Send(id_, client, bytes, std::move(fn));
}

void RingServer::SendToSlot(uint32_t slot_index, uint64_t bytes,
                            sim::Task fn) {
  rt_->fabric().Send(id_, config_.node_of_slot[slot_index], bytes,
                     std::move(fn));
}

void RingServer::SendToNode(net::NodeId node, uint64_t bytes, sim::Task fn) {
  rt_->fabric().Send(id_, node, bytes, std::move(fn));
}

bool RingServer::ClaimClientOp(net::NodeId client, uint64_t req_id) {
  const auto id = std::make_pair(client, req_id);
  auto it = client_ops_.find(id);
  if (it != client_ops_.end()) {
    if (it->second) {
      // Executed already but the reply was evidently lost: resend it.
      ++counters_.resent_replies;
      hub().metrics().Inc("server.resent_replies", 1, id_);
      hub().recorder().Record(obs::RecKind::kDedup, "resent_reply", id_,
                              hub().current_op(), client, req_id);
      it->second();
    }
    // Else still executing; the in-flight reply will cover this duplicate.
    return false;
  }
  client_ops_.emplace(id, nullptr);
  client_ops_order_.push_back(id);
  while (client_ops_order_.size() > kClientOpWindow) {
    client_ops_.erase(client_ops_order_.front());
    client_ops_order_.pop_front();
  }
  return true;
}

void RingServer::ReplyToClientOnce(net::NodeId client, uint64_t req_id,
                                   uint64_t bytes, std::function<void()> fn) {
  auto it = client_ops_.find(std::make_pair(client, req_id));
  if (it != client_ops_.end()) {
    it->second = [this, client, bytes, fn] {
      ReplyToClient(client, bytes, fn);
    };
  }
  ReplyToClient(client, bytes, std::move(fn));
}

// ---------------------------------------------------------------------------
// Write path (paper §5.2-5.3)

void RingServer::HandlePut(PutRequest req) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), req.op_id);
  const auto& p = rt_->simulator().params();
  const uint32_t len =
      req.value ? static_cast<uint32_t>(req.value->size()) : 0;
  const MemgestId gid = req.memgest == kDefaultMemgest
                            ? rt_->registry().default_id()
                            : req.memgest;
  const MemgestInfo* info = rt_->registry().Get(gid);
  uint64_t cost = p.server_base_ns +
                  static_cast<uint64_t>(p.mem_byte_ns * len) + p.post_send_ns;
  uint64_t coding_cost = 0;
  if (info != nullptr && info->erasure_coded()) {
    coding_cost = static_cast<uint64_t>(p.gf_byte_ns * len);
    cost += coding_cost + info->desc.m * p.post_send_ns;
  } else if (info != nullptr) {
    cost += (info->desc.r - 1) * p.post_send_ns;
  }
  const uint64_t op_id = req.op_id;
  const uint32_t home = HomeShardForKey(req.key);
  const sim::SimTime done = cpu().ExecuteOnShard(
      home, cost, [this, req = std::move(req), info]() mutable {
    obs::ScopedOp op_scope(hub(), req.op_id);
    if (!IsAlive() || !serving_) {
      return;
    }
    const RouteAction route = RouteKey(req.key, req.forwarded);
    if (route.kind == RouteAction::Kind::kForward) {
      ++counters_.forwards;
      hub().metrics().Inc("server.forwards", 1, id_);
      const uint64_t bytes =
          ReqBytes(req.key.size(), req.value ? req.value->size() : 0);
      auto* peer = rt_->server(route.target);
      req.forwarded = true;
      SendToNode(route.target, bytes, [peer, req = std::move(req)]() mutable {
        peer->HandlePut(std::move(req));
      });
      return;
    }
    if (route.kind == RouteAction::Kind::kDrop) {
      // Not responsible (or mid-handoff): client will retry / multicast.
      if (config_.rebalancing()) {
        ++counters_.fenced_drops;
      }
      return;
    }
    if (!ClaimClientOp(req.client, req.req_id)) {
      return;  // duplicate: executed (reply resent) or still in flight
    }
    if (info == nullptr) {
      ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                        [reply = req.reply] {
                          reply(InvalidArgumentError("no such memgest"), 0);
                        });
      return;
    }
    ++counters_.puts;
    hub().metrics().Inc("server.puts", 1, id_, info->id, obs::OpKind::kPut);
    const Version version = volatile_index_.NextVersion(req.key);
    StartWrite(*info, route.shard, req.key, version, req.value, false,
               [this, client = req.client, req_id = req.req_id,
                reply = req.reply, version, op_id = req.op_id](Status s) {
                 obs::ScopedOp reply_scope(hub(), op_id);
                 ReplyToClientOnce(client, req_id, kReplyBytes,
                                   [reply, s, version] { reply(s, version); });
               },
               route.geom_s);
  });
  // The GF delta work is the tail of the put's CPU charge: mark it so the
  // breakdown can split coding out of plain CPU time.
  if (coding_cost > 0) {
    hub().tracer().Record("encode", obs::Category::kCoding, id_, op_id,
                          done - coding_cost, done);
  }
}

void RingServer::StartWrite(const MemgestInfo& info, uint32_t shard,
                            const Key& key, Version version,
                            std::shared_ptr<Buffer> value, bool tombstone,
                            std::function<void(Status)> on_commit,
                            uint32_t geom_s, bool moved) {
  if (geom_s == 0) {
    geom_s = config_.s;
  }
  MemgestState& state = StateOf(info);
  ShardStore& store = StoreOf(state, shard, geom_s);
  const uint32_t len = value ? static_cast<uint32_t>(value->size()) : 0;
  const auto [addr, region_len] = store.Allocate(len);

  // Erasure coding: the parity delta is old-region-content XOR new-value,
  // taken before the heap write (paper §3.2 "Update").
  std::shared_ptr<Buffer> delta;
  if (info.erasure_coded() && len > 0) {
    store.EnsureSize(addr + len);
    delta = std::make_shared<Buffer>(value->begin(), value->end());
    gf::AddRegion(store.Read(addr, len), *delta);
  }
  if (len > 0) {
    NoteAccess(RegionKind::kHeap, AccessKind::kWrite, ScopeOf(info.id, shard),
               addr, addr + len, "start_write/heap");
    store.Write(addr, *value);
  }
  ++store.write_seq;
  ++state.log_len;

  // Write-ahead metadata (paper §5.2): the entry exists before it commits.
  MetaEntry entry;
  entry.version = version;
  entry.addr = addr;
  entry.len = len;
  entry.region_len = region_len;
  entry.tombstone = tombstone;
  entry.committed = false;
  entry.data_present = true;
  entry.geom_s = geom_s;
  entry.moved = moved;
  NoteAccess(RegionKind::kMetadata, AccessKind::kWrite,
             ScopeOf(info.id, shard), HashKey(key), HashKey(key) + 1,
             "start_write/meta");
  MetaEntry& e = store.meta.Insert(key, std::move(entry));
  NoteAccess(RegionKind::kVersionWord, AccessKind::kWrite, kVersionScope,
             HashKey(key), HashKey(key) + 1, "start_write/version");
  volatile_index_.Add(key, version, info.id);
  e.indexed = true;
  e.waiters.push_back([on_commit] { on_commit(OkStatus()); });
  const uint64_t op_id = hub().current_op();
  e.trace_op = op_id;
  hub().tracer().Record("write_ahead", obs::Category::kOther, id_, op_id,
                        rt_->simulator().now(), rt_->simulator().now());

  if (info.desc.kind == SchemeKind::kReplicated) {
    if (info.desc.unreliable()) {
      // Rep(1): committed immediately — no replication.
      CommitEntry(info, shard, key, version, geom_s);
      return;
    }
    const auto slots =
        MemgestRegistry::ReplicaSlotsFor(info, shard, geom_s, config_.d);
    e.acks_pending = (1u << slots.size()) - 1;
    // Quorum commit: majority of r counting the coordinator itself; the
    // fully-synchronous variant (§3.1) waits for every replica.
    e.acks_needed = info.desc.full_sync
                        ? static_cast<uint32_t>(slots.size())
                        : info.desc.r / 2;
    e.trace_quorum_start = rt_->simulator().now();
    for (uint32_t ordinal = 0; ordinal < slots.size(); ++ordinal) {
      ReplicaAppend msg;
      msg.memgest = info.id;
      msg.shard = shard;
      msg.key = key;
      msg.version = version;
      msg.addr = addr;
      msg.len = len;
      msg.region_len = region_len;
      msg.tombstone = tombstone;
      msg.bytes = value;
      msg.ordinal = ordinal;
      msg.from = id_;
      msg.seq = store.write_seq;
      msg.op_id = op_id;
      msg.geom_s = geom_s;
      msg.moved = moved;
      // Re-resolves the slot's node under the write's shape on every
      // (re)send, so a retransmission after a promotion reaches the new
      // slot owner — and dies if the shape was retired (epoch fencing).
      auto send = [this, geom = geom_s, slot = slots[ordinal],
                   bytes = ReqBytes(key.size(), len), msg = std::move(msg)] {
        const auto placement = PlacementFor(geom);
        if (!placement.has_value()) {
          return;
        }
        const net::NodeId target = placement->NodeOfSlot(slot);
        auto* peer = rt_->server(target);
        SendToNode(target, bytes,
                   [peer, msg] { peer->HandleReplicaAppend(msg); });
      };
      send();
      e.backup_resend.push_back(std::move(send));
    }
    ScheduleWriteRetransmit(info.id, shard, geom_s, key, version);
    return;
  }

  // Erasure-coded: every parity node must apply the delta before commit.
  const auto& p = rt_->simulator().params();
  const uint32_t group = shard / geom_s;
  const auto parity_slots =
      MemgestRegistry::ParitySlotsFor(info, group, geom_s, config_.d);
  e.acks_pending = (1u << parity_slots.size()) - 1;
  e.acks_needed = static_cast<uint32_t>(parity_slots.size());
  if (parity_slots.empty()) {
    CommitEntry(info, shard, key, version, geom_s);
    return;
  }
  e.trace_quorum_start = rt_->simulator().now();
  for (uint32_t j = 0; j < parity_slots.size(); ++j) {
    ParityUpdate msg;
    msg.memgest = info.id;
    msg.shard = shard;
    msg.key = key;
    msg.version = version;
    msg.addr = addr;
    msg.len = len;
    msg.region_len = region_len;
    msg.tombstone = tombstone;
    msg.delta = delta;
    msg.parity_index = j;
    msg.from = id_;
    msg.seq = store.write_seq;
    msg.op_id = op_id;
    msg.geom_s = geom_s;
    msg.moved = moved;
    // Parity updates carry replicated metadata on top of the payload (§6.1).
    auto send = [this, geom = geom_s, slot = parity_slots[j],
                 bytes = ReqBytes(key.size(), len) +
                         p.parity_update_metadata_bytes,
                 msg = std::move(msg)] {
      const auto placement = PlacementFor(geom);
      if (!placement.has_value()) {
        return;
      }
      const net::NodeId target = placement->NodeOfSlot(slot);
      auto* peer = rt_->server(target);
      SendToNode(target, bytes, [peer, msg] { peer->HandleParityUpdate(msg); });
    };
    send();
    e.backup_resend.push_back(std::move(send));
  }
  ScheduleWriteRetransmit(info.id, shard, geom_s, key, version);
}

// Periodic per-write repair: while the quorum round is un-acked, resend the
// missing backup messages. Replay fences dedup re-applied messages and
// receivers re-ack, so a lost append, update, or ack cannot wedge the key.
// The chain dies as soon as the entry commits, is superseded, or loses its
// pending bits to a configuration change.
void RingServer::ScheduleWriteRetransmit(MemgestId gid, uint32_t shard,
                                         uint32_t geom_s, const Key& key,
                                         Version version) {
  const uint64_t period = rt_->simulator().params().write_retransmit_ns;
  if (period == 0 || rt_->options().test_bugs.no_write_retransmit) {
    return;  // test_bugs: PR 5 bug 1 — a lost append wedges the write
  }
  rt_->simulator().After(period, [this, gid, shard, geom_s, key, version] {
    if (!IsAlive() || is_spare_) {
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(gid);
    if (info == nullptr) {
      return;
    }
    if (!PlacementFor(geom_s).has_value()) {
      return;  // shape retired: the write's fate was decided by the purge
    }
    MetaEntry* entry =
        StoreOf(StateOf(*info), shard, geom_s).meta.Find(key, version);
    if (entry == nullptr || entry->committed || entry->acks_pending == 0) {
      return;
    }
    for (uint32_t ordinal = 0; ordinal < entry->backup_resend.size();
         ++ordinal) {
      if ((entry->acks_pending & (1u << ordinal)) != 0) {
        ++counters_.retransmits;
        hub().metrics().Inc("server.retransmits", 1, id_, gid);
        hub().recorder().Record(obs::RecKind::kRetransmit, "write_retransmit",
                                id_, entry->trace_op, gid, ordinal);
        entry->backup_resend[ordinal]();
      }
    }
    ScheduleWriteRetransmit(gid, shard, geom_s, key, version);
  });
}

void RingServer::HandleReplicaAppend(ReplicaAppend msg) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), msg.op_id);
  const auto& p = rt_->simulator().params();
  const uint64_t cost = p.replica_base_ns +
                        static_cast<uint64_t>(p.mem_byte_ns * msg.len) +
                        p.post_send_ns;
  // Home by the shard id the mirror store is keyed under: every append for
  // a given replica store lands on the same CPU shard.
  const uint32_t home = cpu().ShardForHash(msg.shard);
  cpu().ExecuteOnShard(home, cost, [this, msg = std::move(msg)]() mutable {
    obs::ScopedOp op_scope(hub(), msg.op_id);
    if (!IsAlive()) {
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(msg.memgest);
    if (info == nullptr) {
      return;
    }
    if (is_spare_) {
      return;  // restarted memory-less: stale appends must not resurrect
    }
    const uint32_t geom = msg.geom_s == 0 ? config_.s : msg.geom_s;
    if (!PlacementFor(geom).has_value()) {
      // Epoch fencing: the append was issued under a shape this node no
      // longer recognises (its rebalance completed). Drop without acking.
      ++counters_.fenced_drops;
      return;
    }
    MemgestState& state = StateOf(*info);
    ShardStore& store = StoreOf(state, msg.shard, geom);
    if (!store.replica_seqs.MarkOnce(msg.seq)) {
      // Chaos duplicate: applied already. Re-ack — the first ack may have
      // been lost, and ApplyAck is idempotent on the coordinator.
      ++counters_.dup_backups;
      Ack ack{msg.memgest, msg.shard, msg.key, msg.version, msg.ordinal,
              geom};
      auto* peer = rt_->server(msg.from);
      rt_->fabric().Write(id_, msg.from, kAckBytes,
                          [peer, ack] { peer->ApplyAck(ack); }, nullptr);
      return;
    }
    ++counters_.replica_appends;
    hub().metrics().Inc("server.replica_appends", 1, id_, info->id);
    if (msg.len > 0 && msg.bytes) {
      NoteAccess(RegionKind::kHeap, AccessKind::kWrite,
                 ScopeOf(msg.memgest, msg.shard), msg.addr,
                 msg.addr + msg.len, "replica_append/heap");
      store.Write(msg.addr, *msg.bytes);
    }
    ++state.log_len;
    MetaEntry entry;
    entry.version = msg.version;
    entry.addr = msg.addr;
    entry.len = msg.len;
    entry.region_len = msg.region_len;
    entry.tombstone = msg.tombstone;
    entry.committed = false;  // commit state tracked by the coordinator
    entry.data_present = true;
    entry.geom_s = geom;
    entry.moved = msg.moved;
    NoteAccess(RegionKind::kMetadata, AccessKind::kWrite,
               ScopeOf(msg.memgest, msg.shard), HashKey(msg.key),
               HashKey(msg.key) + 1, "replica_append/meta");
    store.meta.Insert(msg.key, std::move(entry));

    Ack ack{msg.memgest, msg.shard, msg.key, msg.version, msg.ordinal, geom};
    auto* peer = rt_->server(msg.from);
    rt_->fabric().Write(id_, msg.from, kAckBytes,
                        [peer, ack] { peer->ApplyAck(ack); }, nullptr);
  });
}

void RingServer::HandleParityUpdate(ParityUpdate msg) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), msg.op_id);
  const auto& p = rt_->simulator().params();
  const uint64_t coding_cost = static_cast<uint64_t>(p.gf_byte_ns * msg.len);
  const uint64_t cost = p.parity_base_ns + coding_cost + p.post_send_ns;
  const uint64_t op_id = msg.op_id;
  // Home by parity group: GF accumulation into one parity strip buffer is
  // serialized on a single CPU shard (updates for different groups of the
  // stripe may run on different shards).
  const uint32_t geom_pre = msg.geom_s == 0 ? config_.s : msg.geom_s;
  const uint32_t home = cpu().ShardForHash(msg.shard / geom_pre);
  const sim::SimTime done = cpu().ExecuteOnShard(
      home, cost, [this, msg = std::move(msg)]() mutable {
    obs::ScopedOp op_scope(hub(), msg.op_id);
    if (!IsAlive()) {
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(msg.memgest);
    if (info == nullptr) {
      return;
    }
    if (is_spare_) {
      return;  // restarted memory-less: stale updates must not corrupt parity
    }
    const uint32_t geom = msg.geom_s == 0 ? config_.s : msg.geom_s;
    if (!PlacementFor(geom).has_value() ||
        rt_->registry().MapFor(*info, geom) == nullptr) {
      // Epoch fencing: shape unknown here (rebalance completed, or the
      // catalogue never built this geometry). Drop without acking.
      ++counters_.fenced_drops;
      return;
    }
    MemgestState& state = StateOf(*info);
    const uint32_t group = msg.shard / geom;
    auto [pit, inserted] = state.parity.try_emplace(GeomKey(geom, group));
    ParityStore& parity = pit->second;
    if (inserted) {
      parity.parity_index = msg.parity_index;
    }
    if (!parity.applied_seqs[msg.shard].MarkOnce(msg.seq)) {
      // Chaos duplicate. The GF multiply-add is not idempotent, so the
      // update must not apply twice; still re-ack in case the first ack
      // was lost.
      ++counters_.dup_backups;
      Ack ack{msg.memgest, msg.shard, msg.key, msg.version, msg.parity_index,
              geom};
      auto* peer = rt_->server(msg.from);
      rt_->fabric().Write(id_, msg.from, kAckBytes,
                          [peer, ack] { peer->ApplyAck(ack); }, nullptr);
      return;
    }
    if (!parity.rebuilt) {
      // Freshly promoted parity: queue until the buffer is reconstructed.
      parity.queued.push_back(std::move(msg));
      return;
    }
    ++counters_.parity_updates;
    hub().metrics().Inc("server.parity_updates", 1, id_, info->id);
    ApplyParityBytes(*info, msg);
    ++state.log_len;
    MetaEntry entry;
    entry.version = msg.version;
    entry.addr = msg.addr;
    entry.len = msg.len;
    entry.region_len = msg.region_len;
    entry.tombstone = msg.tombstone;
    entry.committed = false;
    entry.data_present = true;
    entry.geom_s = geom;
    entry.moved = msg.moved;
    NoteAccess(RegionKind::kMetadata, AccessKind::kWrite,
               ParityMetaScope(msg.memgest, msg.shard), HashKey(msg.key),
               HashKey(msg.key) + 1, "parity_update/meta");
    parity.shard_meta[msg.shard].Insert(msg.key, std::move(entry));

    Ack ack{msg.memgest, msg.shard, msg.key, msg.version, msg.parity_index,
            geom};
    auto* peer = rt_->server(msg.from);
    rt_->fabric().Write(id_, msg.from, kAckBytes,
                        [peer, ack] { peer->ApplyAck(ack); }, nullptr);
  });
  // GF multiply-add of the delta into the parity buffer, the tail of the
  // parity node's CPU charge.
  if (coding_cost > 0) {
    hub().tracer().Record("parity_mad", obs::Category::kCoding, id_, op_id,
                          done - coding_cost, done);
  }
}

void RingServer::ApplyParityBytes(const MemgestInfo& info,
                                  const ParityUpdate& msg) {
  if (msg.len == 0 || !msg.delta) {
    return;
  }
  const uint32_t geom = msg.geom_s == 0 ? config_.s : msg.geom_s;
  const srs::SrsAddressMap* map = rt_->registry().MapFor(info, geom);
  const srs::SrsCode* code = rt_->registry().CodeFor(info, geom);
  if (map == nullptr || code == nullptr) {
    return;  // shape unknown in the catalogue: fenced
  }
  const uint32_t group = msg.shard / geom;
  ParityStore& parity = StateOf(info).parity.at(GeomKey(geom, group));
  const auto segments = map->MapDataRange(msg.shard % geom, msg.addr, msg.len);
  uint64_t max_extent = 0;
  for (const auto& seg : segments) {
    max_extent = std::max(max_extent, seg.parity_offset + seg.length);
  }
  parity.EnsureSize(max_extent);
  uint64_t consumed = 0;
  for (const auto& seg : segments) {
    NoteAccess(RegionKind::kParityStrip, AccessKind::kWrite,
               ScopeOf(info.id, GeomKey(geom, group)), seg.parity_offset,
               seg.parity_offset + seg.length, "parity_update/strip");
    gf::MulAddRegion(
        code->rs().Coefficient(parity.parity_index, seg.rs_block),
        ByteSpan(msg.delta->data() + consumed, seg.length),
        MutableByteSpan(parity.mem.data() + seg.parity_offset, seg.length));
    consumed += seg.length;
  }
}

void RingServer::ApplyAck(const Ack& msg) {
  if (!IsAlive()) {
    return;
  }
  // The one-sided deposit lands in this node's completion region under the
  // issuer's clock; each (key, version, ordinal) gets its own word, so
  // concurrent acks from different redundancy nodes never conflict.
  NoteAccess(RegionKind::kAckWord, AccessKind::kWrite,
             ScopeOf(msg.memgest, msg.shard),
             EntryWord(msg.key, msg.version) + msg.ordinal,
             EntryWord(msg.key, msg.version) + msg.ordinal + 1,
             "ack/deposit");
  // The coordinator only touches the payload after polling the completion
  // word: an acquire edge into this CPU's clock — the shard that homes the
  // key's writes (it polls its own completion ring).
  analysis::ScopedCpuAcquire acquire(rt_->simulator().race(), id_,
                                     cpu().ShardForHash(msg.shard));
  {
    const MemgestInfo* info = rt_->registry().Get(msg.memgest);
    if (info == nullptr) {
      return;
    }
    MemgestState& state = StateOf(*info);
    ShardStore& store = StoreOf(state, msg.shard, msg.geom_s);
    NoteAccess(RegionKind::kMetadata, AccessKind::kRead,
               ScopeOf(msg.memgest, msg.shard), HashKey(msg.key),
               HashKey(msg.key) + 1, "ack/meta");
    MetaEntry* entry = store.meta.Find(msg.key, msg.version);
    if (entry == nullptr || entry->committed) {
      return;  // already committed (late ack) or GC'd
    }
    const uint32_t bit = 1u << msg.ordinal;
    if ((entry->acks_pending & bit) == 0) {
      return;  // duplicate
    }
    entry->acks_pending &= ~bit;
    if (entry->acks_needed > 0) {
      --entry->acks_needed;
    }
    if (entry->acks_needed == 0) {
      CommitEntry(*info, msg.shard, msg.key, msg.version, msg.geom_s);
    }
  }
}

void RingServer::CommitEntry(const MemgestInfo& info, uint32_t shard,
                             const Key& key, Version version,
                             uint32_t geom_s) {
  MemgestState& state = StateOf(info);
  ShardStore& store = StoreOf(state, shard, geom_s);
  MetaEntry* entry = store.meta.Find(key, version);
  if (entry == nullptr || entry->committed) {
    return;
  }
  NoteAccess(RegionKind::kCommitFlag, AccessKind::kWrite,
             ScopeOf(info.id, shard), EntryWord(key, version),
             EntryWord(key, version) + 1, "commit/flag");
  entry->committed = true;
  ++counters_.commits;
  if (hub().tracing_enabled()) {
    const sim::SimTime now = rt_->simulator().now();
    if (entry->trace_quorum_start != 0 && now > entry->trace_quorum_start) {
      hub().tracer().Record("quorum_wait", obs::Category::kQuorum, id_,
                            entry->trace_op, entry->trace_quorum_start, now);
    }
    hub().tracer().Record("commit", obs::Category::kOther, id_,
                          entry->trace_op, now, now);
  }
  hub().metrics().Inc("server.commits", 1, id_, info.id);
  if (hub().recorder_enabled()) {
    const sim::SimTime now = rt_->simulator().now();
    if (entry->trace_quorum_start != 0 && now > entry->trace_quorum_start) {
      hub().recorder().Record(obs::RecKind::kQuorum, "quorum_wait", id_,
                              entry->trace_op,
                              now - entry->trace_quorum_start);
    }
    hub().recorder().Record(obs::RecKind::kPhase, "commit", id_,
                            entry->trace_op, info.id);
  }
  entry->backup_resend.clear();
  const bool moved_marker = entry->moved;
  auto waiters = std::move(entry->waiters);
  entry->waiters.clear();
  // Remove superseded versions: "one instance of the key of a certain
  // version exists across all memgests" (§5.2); old versions are GC'd after
  // every committed put in the default configuration. A moved-marker must
  // NOT collect the versions below it: they are the payload the InstallKey
  // still has to deliver, and losing them before the new owner acknowledges
  // would lose the key everywhere if this node then crashed (§13).
  if (rt_->options().gc_old_versions && !moved_marker) {
    GcOldVersions(key, version);
  }
  for (auto& waiter : waiters) {
    waiter();
  }
}

void RingServer::GcOldVersions(const Key& key, Version below) {
  for (const auto& ref : volatile_index_.Refs(key)) {
    if (ref.version >= below) {
      continue;
    }
    const MemgestInfo* info = rt_->registry().Get(ref.memgest);
    if (info == nullptr) {
      volatile_index_.Remove(key, ref.version);
      continue;
    }
    // The superseded version may live under either live shape (§13): a key
    // that auto-migrated via a put carries its old versions in the previous
    // geometry's store until this GC collects them.
    uint32_t shard = KeyShard(key, config_.num_shards());
    uint32_t geom = config_.s;
    MetaEntry* entry = FindEntry(*info, key, ref.version, &shard, &geom);
    if (entry != nullptr && !entry->committed) {
      // A concurrent write still in its quorum round: reclaiming it here
      // would orphan its waiters and the client would never get a reply.
      // It is collected after it commits, by the next write of the key.
      continue;
    }
    if (entry != nullptr) {
      ShardStore& store = StoreOf(StateOf(*info), shard, geom);
      if (entry->region_len > 0) {
        store.free_list.emplace_back(entry->addr, entry->region_len);
      }
      NoteAccess(RegionKind::kMetadata, AccessKind::kWrite,
                 ScopeOf(ref.memgest, shard), HashKey(key), HashKey(key) + 1,
                 "gc/meta");
      store.meta.Erase(key, ref.version);
    }
    NoteAccess(RegionKind::kVersionWord, AccessKind::kWrite, kVersionScope,
               HashKey(key), HashKey(key) + 1, "gc/version");
    volatile_index_.Remove(key, ref.version);
    // Asynchronous metadata GC on redundancy nodes, under the placement of
    // the shape the version was written at.
    const auto placement = PlacementFor(geom);
    if (!placement.has_value()) {
      continue;
    }
    GcNotice notice{ref.memgest, shard, key, ref.version, geom};
    if (info->desc.kind == SchemeKind::kReplicated) {
      for (const uint32_t slot : MemgestRegistry::ReplicaSlotsFor(
               *info, shard, geom, config_.d)) {
        const net::NodeId target = placement->NodeOfSlot(slot);
        auto* peer = rt_->server(target);
        rt_->fabric().Write(id_, target, kAckBytes,
                            [peer, notice] { peer->HandleGcNotice(notice); },
                            nullptr);
      }
    } else {
      const uint32_t group = shard / geom;
      for (const uint32_t slot : MemgestRegistry::ParitySlotsFor(
               *info, group, geom, config_.d)) {
        const net::NodeId target = placement->NodeOfSlot(slot);
        auto* peer = rt_->server(target);
        rt_->fabric().Write(id_, target, kAckBytes,
                            [peer, notice] { peer->HandleGcNotice(notice); },
                            nullptr);
      }
    }
  }
}

void RingServer::HandleGcNotice(GcNotice msg) {
  // Delivered as a one-sided write into a GC ring the redundancy node
  // drains; the (tiny) metadata erase is not separately charged. Draining
  // the ring is an acquire into this CPU's clock, so the erase is ordered
  // with this node's own metadata work.
  if (!IsAlive()) {
    return;
  }
  auto it = memgests_.find(msg.memgest);
  if (it == memgests_.end()) {
    return;
  }
  MemgestState& state = it->second;
  const uint32_t geom = msg.geom_s == 0 ? config_.s : msg.geom_s;
  // Each erase acquires on the CPU shard that owns the touched table
  // (mirror stores home by shard id, parity metadata by group), matching
  // the homing of the writers that populate them.
  if (auto sit = state.stores.find(GeomKey(geom, msg.shard));
      sit != state.stores.end()) {
    analysis::ScopedCpuAcquire acquire(rt_->simulator().race(), id_,
                                       cpu().ShardForHash(msg.shard));
    NoteAccess(RegionKind::kMetadata, AccessKind::kWrite,
               ScopeOf(msg.memgest, msg.shard), HashKey(msg.key),
               HashKey(msg.key) + 1, "gc_notice/meta");
    sit->second.meta.Erase(msg.key, msg.version);
  }
  const uint32_t group = msg.shard / geom;
  if (auto git = state.parity.find(GeomKey(geom, group));
      git != state.parity.end()) {
    auto pit = git->second.shard_meta.find(msg.shard);
    if (pit != git->second.shard_meta.end()) {
      analysis::ScopedCpuAcquire acquire(rt_->simulator().race(), id_,
                                         cpu().ShardForHash(group));
      NoteAccess(RegionKind::kMetadata, AccessKind::kWrite,
                 ParityMetaScope(msg.memgest, msg.shard), HashKey(msg.key),
                 HashKey(msg.key) + 1, "gc_notice/parity_meta");
      pit->second.Erase(msg.key, msg.version);
    }
  }
}

// ---------------------------------------------------------------------------
// Read path (paper §5.2, Fig. 5)

void RingServer::HandleGet(GetRequest req) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), req.op_id);
  // Hoisted: the capture below moves `req`, and argument evaluation order
  // would otherwise let the move gut req.key before it is hashed.
  const uint32_t home = HomeShardForKey(req.key);
  cpu().ExecuteOnShard(home, rt_->simulator().params().server_base_ns,
                       [this, req = std::move(req)]() mutable {
    obs::ScopedOp op_scope(hub(), req.op_id);
    if (!IsAlive() || !serving_) {
      return;
    }
    // Gets are not deduplicated: re-execution is side-effect free and the
    // client's completion table drops whichever reply arrives second (a
    // retry or a hedge may race the original under fault injection).
    // Routing (incl. the coordinator check) happens in ResolveGet so that
    // re-entries after deferred commits re-route too.
    ResolveGet(std::move(req));
  });
}

void RingServer::ResolveGet(GetRequest req) {
  const RouteAction route = RouteKey(req.key, req.forwarded);
  if (route.kind == RouteAction::Kind::kForward) {
    ++counters_.forwards;
    hub().metrics().Inc("server.forwards", 1, id_);
    auto* peer = rt_->server(route.target);
    req.forwarded = true;
    SendToNode(route.target, ReqBytes(req.key.size(), 0),
               // ring-lint: ok(use-after-move) seed-era wire-size undercount;
               [peer, req = std::move(req)]() mutable {
                 peer->HandleGet(std::move(req));
               });  // the fix changes schedules — tracked in ROADMAP.
    return;
  }
  if (route.kind == RouteAction::Kind::kDrop) {
    if (config_.rebalancing()) {
      ++counters_.fenced_drops;
    }
    return;  // not responsible: client retry / multicast takes over
  }
  ++counters_.gets;
  hub().metrics().Inc("server.gets", 1, id_, obs::kNoMemgest,
                      obs::OpKind::kGet);
  NoteAccess(RegionKind::kVersionWord, AccessKind::kRead, kVersionScope,
             HashKey(req.key), HashKey(req.key) + 1, "get/version");
  const auto ref = volatile_index_.Highest(req.key);
  if (!ref.has_value()) {
    ReplyToClient(req.client, kReplyBytes, [reply = req.reply] {
      reply(GetResult{NotFoundError("no such key"), 0, nullptr});
    });
    return;
  }
  const MemgestInfo* info = rt_->registry().Get(ref->memgest);
  if (info == nullptr) {
    ReplyToClient(req.client, kReplyBytes, [reply = req.reply] {
      reply(GetResult{InternalError("memgest vanished"), 0, nullptr});
    });
    return;
  }
  // The highest version may live under either live shape (§13): serve it
  // from wherever it is, independent of the route's (current) shard id.
  uint32_t shard = route.shard;
  uint32_t geom = route.geom_s;
  MetaEntry* entry = FindEntry(*info, req.key, ref->version, &shard, &geom);
  NoteAccess(RegionKind::kMetadata, AccessKind::kRead,
             ScopeOf(ref->memgest, shard), HashKey(req.key),
             HashKey(req.key) + 1, "get/meta");
  // Copy the key before handing `req` off: DeliverGet moves the request
  // into closures, which would gut a reference into req.key.
  const Key key = req.key;
  DeliverGet(*info, shard, geom, key, entry, std::move(req));
}

void RingServer::DeliverGet(const MemgestInfo& info, uint32_t shard,
                            uint32_t geom_s, const Key& key, MetaEntry* entry,
                            GetRequest req) {
  if (entry == nullptr) {
    ReplyToClient(req.client, kReplyBytes, [reply = req.reply] {
      reply(GetResult{InternalError("metadata missing"), 0, nullptr});
    });
    return;
  }
  if (entry->moved) {
    // Handed over to the new-shape owner (§13); re-route — the forward path
    // in ResolveGet sends the reader there.
    ResolveGet(std::move(req));
    return;
  }
  if (entry->tombstone) {
    ReplyToClient(req.client, kReplyBytes, [reply = req.reply] {
      reply(GetResult{NotFoundError("deleted"), 0, nullptr});
    });
    return;
  }
  NoteAccess(RegionKind::kCommitFlag, AccessKind::kRead,
             ScopeOf(info.id, shard), EntryWord(key, entry->version),
             EntryWord(key, entry->version) + 1, "get/commit_flag");
  if (!entry->committed) {
    // Fig. 5, client D: the reply is postponed until the version commits.
    ++counters_.deferred_gets;
    hub().metrics().Inc("server.deferred_gets", 1, id_);
    hub().recorder().Record(obs::RecKind::kQuorum, "get_deferred", id_,
                            hub().current_op(), entry->version);
    const sim::SimTime defer_start = rt_->simulator().now();
    const Version version = entry->version;
    const MemgestInfo* info_ptr = &info;
    entry->waiters.push_back([this, info_ptr, shard, geom_s, key, version,
                              defer_start, req = std::move(req)]() mutable {
      // The waiter fires from CommitEntry under the *writer's* op context;
      // restore the reader's and account the blocked interval to its wait.
      obs::ScopedOp defer_scope(hub(), req.op_id);
      hub().tracer().Record("get_deferred", obs::Category::kQuorum, id_,
                            req.op_id, defer_start, rt_->simulator().now());
      MetaEntry* e =
          StoreOf(StateOf(*info_ptr), shard, geom_s).meta.Find(key, version);
      DeliverGet(*info_ptr, shard, geom_s, key, e, std::move(req));
    });
    return;
  }
  const Version version = entry->version;
  const Key key_copy = key;  // `key` may alias req.key, moved below
  EnsureDataPresent(
      info, shard, geom_s, key_copy, version,
      [this, info_ptr = &info, shard, geom_s, key = key_copy, version,
       req = std::move(req)](Status s) mutable {
        obs::ScopedOp present_scope(hub(), req.op_id);
        if (!s.ok()) {
          ReplyToClient(req.client, kReplyBytes,
                        [reply = req.reply, s] {
                          reply(GetResult{s, 0, nullptr});
                        });
          return;
        }
        MetaEntry* e =
            StoreOf(StateOf(*info_ptr), shard, geom_s).meta.Find(key, version);
        if (e == nullptr) {
          ReplyToClient(req.client, kReplyBytes, [reply = req.reply] {
            reply(GetResult{NotFoundError("gone"), 0, nullptr});
          });
          return;
        }
        const auto& p = rt_->simulator().params();
        const uint64_t cost =
            static_cast<uint64_t>(p.mem_byte_ns * e->len) + p.post_send_ns;
        const uint64_t addr = e->addr;
        const uint32_t len = e->len;
        cpu().ExecuteOnShard(
            HomeShardForKey(key), cost,
            [this, info_ptr, shard, geom_s, key, addr, len, version,
             req = std::move(req)]() mutable {
          obs::ScopedOp read_scope(hub(), req.op_id);
          if (!IsAlive()) {
            return;
          }
          ShardStore& store = StoreOf(StateOf(*info_ptr), shard, geom_s);
          // Validate-and-retry (the check backing the paper's optimistic
          // one-sided reads): the version may have been garbage-collected —
          // and its heap region reused by a newer write — while this copy
          // was queued behind other CPU work. Re-resolve; a newer committed
          // version exists whenever that happens.
          const MetaEntry* live = store.meta.Find(key, version);
          if (!rt_->options().test_bugs.no_gc_revalidate &&  // PR 5 bug 3
              (live == nullptr || !live->committed || live->tombstone ||
               !live->data_present || live->addr != addr)) {
            ++counters_.op_restarts;
            hub().metrics().Inc("server.op_restarts", 1, id_);
            hub().recorder().Record(obs::RecKind::kRestart, "get_restart",
                                    id_, hub().current_op(), version);
            ResolveGet(std::move(req));
            return;
          }
          NoteAccess(RegionKind::kHeap, AccessKind::kRead,
                     ScopeOf(info_ptr->id, shard), addr, addr + len,
                     "get/heap");
          auto data = std::make_shared<Buffer>();
          const ByteSpan bytes = store.Read(addr, len);
          data->assign(bytes.begin(), bytes.end());
          ReplyToClient(req.client, kReplyBytes + len,
                        [reply = req.reply, data, version] {
                          reply(GetResult{OkStatus(), version, data});
                        });
        });
      });
}

// ---------------------------------------------------------------------------
// Move / delete (paper §5.2, §6.2)

void RingServer::HandleMove(MoveRequest req) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), req.op_id);
  // Hoisted: the capture below moves `req`, and argument evaluation order
  // would otherwise let the move gut req.key before it is hashed.
  const uint32_t home = HomeShardForKey(req.key);
  cpu().ExecuteOnShard(home, rt_->simulator().params().server_base_ns,
                       [this, req = std::move(req)]() mutable {
    obs::ScopedOp op_scope(hub(), req.op_id);
    if (!IsAlive() || !serving_) {
      return;
    }
    const RouteAction route = RouteKey(req.key, req.forwarded);
    if (route.kind == RouteAction::Kind::kForward) {
      ++counters_.forwards;
      hub().metrics().Inc("server.forwards", 1, id_);
      auto* peer = rt_->server(route.target);
      req.forwarded = true;
      SendToNode(route.target, ReqBytes(req.key.size(), 0),
                 // ring-lint: ok(use-after-move) seed-era wire-size
                 [peer, req = std::move(req)]() mutable {
                   peer->HandleMove(std::move(req));
                 });  // undercount; schedule-changing fix tracked in ROADMAP.
      return;
    }
    if (route.kind == RouteAction::Kind::kDrop) {
      if (config_.rebalancing()) {
        ++counters_.fenced_drops;
      }
      return;
    }
    const uint32_t shard = route.shard;
    if (!req.resumed && !ClaimClientOp(req.client, req.req_id)) {
      return;  // duplicate: executed (reply resent) or still in flight
    }
    ++counters_.moves;
    hub().metrics().Inc("server.moves", 1, id_, req.dst, obs::OpKind::kMove);
    NoteAccess(RegionKind::kVersionWord, AccessKind::kRead, kVersionScope,
               HashKey(req.key), HashKey(req.key) + 1, "move/version");
    const auto ref = volatile_index_.Highest(req.key);
    if (!ref.has_value()) {
      ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                        [reply = req.reply] {
                          reply(NotFoundError("no such key"), 0);
                        });
      return;
    }
    const MemgestInfo* dst = rt_->registry().Get(req.dst);
    if (dst == nullptr) {
      ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                        [reply = req.reply] {
                          reply(InvalidArgumentError("no such memgest"), 0);
                        });
      return;
    }
    const MemgestInfo* src = rt_->registry().Get(ref->memgest);
    if (src == nullptr) {
      ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                        [reply = req.reply] {
                          reply(InternalError("source memgest vanished"), 0);
                        });
      return;
    }
    uint32_t src_shard = shard;
    uint32_t src_geom = route.geom_s;
    MetaEntry* entry =
        FindEntry(*src, req.key, ref->version, &src_shard, &src_geom);
    if (entry == nullptr || entry->tombstone) {
      ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                        [reply = req.reply] {
                          reply(NotFoundError("deleted"), 0);
                        });
      return;
    }
    if (!entry->committed) {
      // "The move request will also be postponed if the requested object is
      // not durable" (§5.2). The request already claimed its at-most-once
      // slot above, so the re-invocation must skip the claim — otherwise
      // the dedup table swallows the postponed move when the entry commits
      // and the client never hears back (it would burn through all its
      // retries, every one deduped, and report a spurious timeout).
      entry->waiters.push_back([this, req]() mutable {
        req.resumed = true;
        HandleMove(req);
      });
      return;
    }
    const Version src_version = entry->version;
    const Key key_copy = req.key;  // req is moved into the continuation
    EnsureDataPresent(
        *src, src_shard, src_geom, key_copy, src_version,
        [this, src, dst, shard = src_shard, geom = src_geom, src_version,
         req = std::move(req)](Status s) mutable {
          obs::ScopedOp present_scope(hub(), req.op_id);
          if (!s.ok()) {
            ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                              [reply = req.reply, s] { reply(s, 0); });
            return;
          }
          MetaEntry* e = StoreOf(StateOf(*src), shard, geom)
                             .meta.Find(req.key, src_version);
          if (e == nullptr) {
            ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                              [reply = req.reply] {
                                reply(NotFoundError("gone"), 0);
                              });
            return;
          }
          // Local read + re-encode into the destination memgest. All data is
          // local thanks to the SRS shared key-to-node map — no distributed
          // transaction (§5.2).
          const auto& p = rt_->simulator().params();
          uint64_t cost = p.server_base_ns +
                          static_cast<uint64_t>(2 * p.mem_byte_ns * e->len);
          if (dst->erasure_coded()) {
            cost += static_cast<uint64_t>(p.gf_byte_ns * e->len) +
                    dst->desc.m * p.post_send_ns;
          } else {
            cost += (dst->desc.r - 1) * p.post_send_ns;
          }
          const uint64_t addr = e->addr;
          const uint32_t len = e->len;
          const uint64_t coding_cost =
              dst->erasure_coded()
                  ? static_cast<uint64_t>(p.gf_byte_ns * e->len)
                  : 0;
          const uint32_t home = HomeShardForKey(req.key);
          const sim::SimTime move_done = cpu().ExecuteOnShard(
              home, cost, [this, src, dst, shard, geom, addr, len, src_version,
                           req = std::move(req)]() mutable {
            obs::ScopedOp write_scope(hub(), req.op_id);
            if (!IsAlive() || !serving_) {
              return;
            }
            ShardStore& store = StoreOf(StateOf(*src), shard, geom);
            // Validate-and-retry, as in the get path: the source version may
            // have been garbage-collected (region reused) while the copy was
            // queued. Restart the move against the current highest version.
            const MetaEntry* live = store.meta.Find(req.key, src_version);
            if (live == nullptr || live->tombstone || !live->data_present ||
                live->addr != addr) {
              ++counters_.op_restarts;
              hub().metrics().Inc("server.op_restarts", 1, id_);
              hub().recorder().Record(obs::RecKind::kRestart, "move_restart",
                                      id_, hub().current_op(), src_version);
              req.resumed = true;
              HandleMove(std::move(req));
              return;
            }
            NoteAccess(RegionKind::kHeap, AccessKind::kRead,
                       ScopeOf(src->id, shard), addr, addr + len,
                       "move/heap");
            auto value = std::make_shared<Buffer>();
            const ByteSpan bytes = store.Read(addr, len);
            value->assign(bytes.begin(), bytes.end());
            const Version version = volatile_index_.NextVersion(req.key);
            // The re-encoded copy stays under the geometry the key is
            // currently served at: migration to the new shape is the
            // rebalance driver's job, not the move path's.
            StartWrite(*dst, shard, req.key, version, value, false,
                       [this, client = req.client, req_id = req.req_id,
                        reply = req.reply, version,
                        op_id = req.op_id](Status st) {
                         obs::ScopedOp reply_scope(hub(), op_id);
                         ReplyToClientOnce(client, req_id, kReplyBytes,
                                           [reply, st, version] {
                                             reply(st, version);
                                           });
                       },
                       geom);
          });
          if (coding_cost > 0) {
            hub().tracer().Record("encode", obs::Category::kCoding, id_,
                                  hub().current_op(), move_done - coding_cost,
                                  move_done);
          }
        });
  });
}

void RingServer::HandleDelete(DeleteRequest req) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), req.op_id);
  // Hoisted: the capture below moves `req`, and argument evaluation order
  // would otherwise let the move gut req.key before it is hashed.
  const uint32_t home = HomeShardForKey(req.key);
  cpu().ExecuteOnShard(home, rt_->simulator().params().server_base_ns,
                       [this, req = std::move(req)]() mutable {
    obs::ScopedOp op_scope(hub(), req.op_id);
    if (!IsAlive() || !serving_) {
      return;
    }
    const RouteAction route = RouteKey(req.key, req.forwarded);
    if (route.kind == RouteAction::Kind::kForward) {
      ++counters_.forwards;
      hub().metrics().Inc("server.forwards", 1, id_);
      auto* peer = rt_->server(route.target);
      req.forwarded = true;
      SendToNode(route.target, ReqBytes(req.key.size(), 0),
                 // ring-lint: ok(use-after-move) seed-era wire-size
                 [peer, req = std::move(req)]() mutable {
                   peer->HandleDelete(std::move(req));
                 });  // undercount; schedule-changing fix tracked in ROADMAP.
      return;
    }
    if (route.kind == RouteAction::Kind::kDrop) {
      if (config_.rebalancing()) {
        ++counters_.fenced_drops;
      }
      return;
    }
    const uint32_t shard = route.shard;
    if (!ClaimClientOp(req.client, req.req_id)) {
      return;  // duplicate: executed (reply resent) or still in flight
    }
    ++counters_.deletes;
    hub().metrics().Inc("server.deletes", 1, id_, obs::kNoMemgest,
                        obs::OpKind::kDelete);
    NoteAccess(RegionKind::kVersionWord, AccessKind::kRead, kVersionScope,
               HashKey(req.key), HashKey(req.key) + 1, "delete/version");
    const auto ref = volatile_index_.Highest(req.key);
    if (!ref.has_value()) {
      ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                        [reply = req.reply] {
                          reply(NotFoundError("no such key"));
                        });
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(ref->memgest);
    if (info == nullptr) {
      ReplyToClientOnce(req.client, req.req_id, kReplyBytes,
                        [reply = req.reply] { reply(OkStatus()); });
      return;
    }
    // A delete is a replicated tombstone in the memgest of the current
    // highest version; commit then garbage-collects every older version.
    const Version version = volatile_index_.NextVersion(req.key);
    StartWrite(*info, shard, req.key, version, nullptr, true,
               [this, client = req.client, req_id = req.req_id,
                reply = req.reply, op_id = req.op_id](Status s) {
                 obs::ScopedOp reply_scope(hub(), op_id);
                 ReplyToClientOnce(client, req_id, kReplyBytes,
                                   [reply, s] { reply(s); });
               },
               route.geom_s);
  });
}

// ---------------------------------------------------------------------------
// Memgest management (paper §5, API)

void RingServer::HandleAdmin(AdminRequest req) {
  if (!IsAlive()) {
    return;
  }
  cpu().Execute(rt_->simulator().params().server_base_ns,
                [this, req = std::move(req)]() mutable {
    if (!IsAlive() || config_.leader != id_) {
      return;  // only the leader manages memgests (§5.1)
    }
    Result<MemgestId> result = InternalError("unhandled admin op");
    switch (req.op) {
      case AdminRequest::Op::kGetMemgestDescriptor: {
        // Read-only: answer from the replicated catalogue, no quorum needed.
        const MemgestInfo* info = rt_->registry().Get(req.id);
        Result<MemgestDescriptor> out =
            info != nullptr ? Result<MemgestDescriptor>(info->desc)
                            : Result<MemgestDescriptor>(
                                  NotFoundError("no such memgest"));
        ReplyToClient(req.client, kReplyBytes,
                      [reply = req.descriptor_reply, out] { reply(out); });
        return;
      }
      case AdminRequest::Op::kCreateMemgest:
        result = rt_->registry().Create(req.desc);
        break;
      case AdminRequest::Op::kDeleteMemgest: {
        Status s = rt_->registry().Delete(req.id);
        result = s.ok() ? Result<MemgestId>(req.id) : Result<MemgestId>(s);
        break;
      }
      case AdminRequest::Op::kSetDefaultMemgest: {
        Status s = rt_->registry().SetDefault(req.id);
        result = s.ok() ? Result<MemgestId>(req.id) : Result<MemgestId>(s);
        break;
      }
    }
    if (!result.ok()) {
      ReplyToClient(req.client, kReplyBytes,
                    [reply = req.reply, result] { reply(result); });
      return;
    }
    // Replicate the decision to all live members; reply after a majority
    // acknowledges (replicated configuration log, §5.1/§5.5).
    const uint32_t members = rt_->membership().num_members();
    uint32_t live = 0;
    for (net::NodeId n = 0; n < members; ++n) {
      if (!config_.failed[n]) {
        ++live;
      }
    }
    auto acks = std::make_shared<uint32_t>(1);  // self
    auto replied = std::make_shared<bool>(false);
    const uint32_t majority = live / 2 + 1;
    const bool is_delete = req.op == AdminRequest::Op::kDeleteMemgest;
    const MemgestId affected = is_delete ? req.id : *result;
    auto maybe_reply = [this, acks, replied, majority, req, result] {
      if (*replied || *acks < majority) {
        return;
      }
      *replied = true;
      ReplyToClient(req.client, kReplyBytes,
                    [reply = req.reply, result] { reply(result); });
    };
    for (net::NodeId n = 0; n < members; ++n) {
      if (n == id_ || config_.failed[n]) {
        continue;
      }
      auto* peer = rt_->server(n);
      rt_->fabric().Send(
          id_, n, 192, [this, peer, is_delete, affected, acks, maybe_reply] {
            if (is_delete) {
              peer->ApplyMemgestDelete(affected);
            }
            // Ack back to the leader.
            rt_->fabric().Send(peer->id(), id_, kAckBytes, [acks, maybe_reply] {
              ++*acks;
              maybe_reply();
            });
          });
    }
    maybe_reply();  // single-node clusters
  });
}

void RingServer::ApplyMemgestDelete(MemgestId memgest) {
  auto it = memgests_.find(memgest);
  if (it == memgests_.end()) {
    return;
  }
  // Remove volatile references to keys whose versions lived there. Removal
  // is keyed by (key, version) and versions are node-unique, so dropping a
  // replica-mirror entry that never had a volatile reference is a no-op —
  // no need to re-derive coordinator-ship per stored shape.
  for (auto& [store_key, store] : it->second.stores) {
    store.meta.ForEach([this](const Key& key, const MetaEntry& entry) {
      volatile_index_.Remove(key, entry.version);
    });
  }
  memgests_.erase(it);
}

// ---------------------------------------------------------------------------
// Introspection

uint64_t RingServer::TotalMetadataBytes() const {
  uint64_t total = 0;
  for (const auto& [id, state] : memgests_) {
    for (const auto& [shard, store] : state.stores) {
      total += store.meta.ApproxBytes();
    }
    for (const auto& [group, parity] : state.parity) {
      for (const auto& [shard, meta] : parity.shard_meta) {
        total += meta.ApproxBytes();
      }
    }
  }
  return total;
}

uint64_t RingServer::StoredBytes() const {
  uint64_t total = 0;
  for (const auto& [id, state] : memgests_) {
    for (const auto& [shard, store] : state.stores) {
      total += store.heap.size();
    }
    for (const auto& [group, parity] : state.parity) {
      total += parity.mem.size();
    }
  }
  return total;
}

uint64_t RingServer::LiveBytes() const {
  uint64_t total = 0;
  for (const auto& [id, state] : memgests_) {
    for (const auto& [shard, store] : state.stores) {
      store.meta.ForEach([&total](const Key&, const MetaEntry& entry) {
        total += entry.region_len;
      });
    }
    if (state.info != nullptr && state.info->erasure_coded()) {
      const uint32_t k = state.info->desc.k;
      for (const auto& [group, parity] : state.parity) {
        for (const auto& [shard, meta] : parity.shard_meta) {
          meta.ForEach([&total, k](const Key&, const MetaEntry& entry) {
            total += entry.region_len / k;
          });
        }
      }
    }
  }
  return total;
}

uint64_t RingServer::HeapExtent(MemgestId memgest, uint32_t shard,
                                uint32_t geom_s) const {
  auto it = memgests_.find(memgest);
  if (it == memgests_.end()) {
    return 0;
  }
  auto sit =
      it->second.stores.find(GeomKey(geom_s == 0 ? config_.s : geom_s, shard));
  return sit == it->second.stores.end() ? 0 : sit->second.next_addr;
}

uint64_t RingServer::WriteSeq(MemgestId memgest, uint32_t shard,
                              uint32_t geom_s) const {
  auto it = memgests_.find(memgest);
  if (it == memgests_.end()) {
    return 0;
  }
  auto sit =
      it->second.stores.find(GeomKey(geom_s == 0 ? config_.s : geom_s, shard));
  return sit == it->second.stores.end() ? 0 : sit->second.write_seq;
}

Buffer RingServer::ReadRawForRecovery(MemgestId memgest, uint32_t shard,
                                      uint64_t addr, uint32_t len,
                                      uint32_t geom_s) {
  // One-sided read target: when fetched over Fabric::Read this runs under
  // the *issuer's* clock, so conflicts with this node's own writes to the
  // range surface as races unless the protocol fenced them.
  NoteAccess(RegionKind::kHeap, AccessKind::kRead,
             (static_cast<uint64_t>(memgest) << 32) | shard, addr, addr + len,
             "recovery/raw_heap_read");
  Buffer out(len, 0);
  auto it = memgests_.find(memgest);
  if (it == memgests_.end()) {
    return out;
  }
  auto sit =
      it->second.stores.find(GeomKey(geom_s == 0 ? config_.s : geom_s, shard));
  if (sit == it->second.stores.end()) {
    return out;
  }
  const Buffer& heap = sit->second.heap;
  for (uint32_t i = 0; i < len && addr + i < heap.size(); ++i) {
    out[i] = heap[addr + i];
  }
  return out;
}

Buffer RingServer::ReadRawParity(MemgestId memgest, uint32_t group,
                                 uint64_t addr, uint32_t len,
                                 uint32_t geom_s) {
  NoteAccess(RegionKind::kParityStrip, AccessKind::kRead,
             (static_cast<uint64_t>(memgest) << 32) | group, addr, addr + len,
             "recovery/raw_parity_read");
  Buffer out(len, 0);
  auto it = memgests_.find(memgest);
  if (it == memgests_.end()) {
    return out;
  }
  auto git =
      it->second.parity.find(GeomKey(geom_s == 0 ? config_.s : geom_s, group));
  if (git == it->second.parity.end()) {
    return out;
  }
  const Buffer& mem = git->second.mem;
  for (uint32_t i = 0; i < len && addr + i < mem.size(); ++i) {
    out[i] = mem[addr + i];
  }
  return out;
}

bool RingServer::ParityUsable(MemgestId memgest, uint32_t group,
                              uint32_t geom_s) const {
  auto it = memgests_.find(memgest);
  if (it == memgests_.end()) {
    return false;
  }
  auto git =
      it->second.parity.find(GeomKey(geom_s == 0 ? config_.s : geom_s, group));
  return git != it->second.parity.end() && git->second.rebuilt;
}

}  // namespace ring
