// Memgest registry: the cluster-wide catalogue of storage schemes and their
// placement (paper §5.1).
//
// The leader decides placement at createMemgest time and replicates the
// decision; in the simulation the catalogue object is shared by all nodes
// (it models the replicated, eventually-identical state machine content)
// while creation/deletion still flow through leader messages for timing.
//
// Placement rules:
//  - Rep(r): replica ordinal t of shard j lives on slot (j + 1 + t) mod
//    (s + d) — replicas may land on other coordinator slots, as in Fig. 3.
//  - SRS(k,m): parity node j lives on redundant slot s + j.
#ifndef RING_SRC_RING_REGISTRY_H_
#define RING_SRC_RING_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/ring/types.h"
#include "src/srs/address_map.h"
#include "src/srs/srs_code.h"

namespace ring {

// One erasure-coding geometry: the code and stripe address map for a
// specific group size s. Elastic resizes (§13) change s, so a memgest can
// have several geometries alive at once while a rebalance drains.
struct MemgestGeometry {
  std::unique_ptr<srs::SrsCode> code;
  std::unique_ptr<srs::SrsAddressMap> map;
};

struct MemgestInfo {
  MemgestId id = 0;
  MemgestDescriptor desc;
  bool deleted = false;
  // Erasure-coded memgests only: the current-shape geometry...
  std::unique_ptr<srs::SrsCode> code;
  std::unique_ptr<srs::SrsAddressMap> map;
  // ...and retained geometries of earlier shapes, keyed by their s
  // (empty on a cluster that never resized).
  std::map<uint32_t, MemgestGeometry> geoms;

  bool erasure_coded() const { return desc.kind == SchemeKind::kErasureCoded; }
};

class MemgestRegistry {
 public:
  MemgestRegistry(uint32_t s, uint32_t d, uint64_t stripe_unit = 4096,
                  uint32_t groups = 1);

  uint32_t s() const { return s_; }
  uint32_t d() const { return d_; }
  uint32_t groups() const { return groups_; }

  // Validates the descriptor against the cluster shape (r <= s+d, m <= d,
  // k <= s) and installs the memgest. Called on the leader.
  Result<MemgestId> Create(const MemgestDescriptor& desc);
  Status Delete(MemgestId id);

  const MemgestInfo* Get(MemgestId id) const;

  MemgestId default_id() const { return default_id_; }
  Status SetDefault(MemgestId id);

  // Replica slots for `shard` of a replicated memgest (r-1 slots), rotated
  // by the shard's group (§5.4).
  std::vector<uint32_t> ReplicaSlots(const MemgestInfo& info,
                                     uint32_t shard) const;
  // Parity slots of an erasure-coded memgest for one group (m slots,
  // base layout s .. s+m-1 rotated by the group index).
  std::vector<uint32_t> ParitySlots(const MemgestInfo& info,
                                    uint32_t group) const;
  // Shape-explicit variants: the same placement rules evaluated under an
  // arbitrary group size (shard/group ids must be of that same shape). Used
  // on both sides of an elastic resize.
  static std::vector<uint32_t> ReplicaSlotsFor(const MemgestInfo& info,
                                               uint32_t shard, uint32_t s,
                                               uint32_t d);
  static std::vector<uint32_t> ParitySlotsFor(const MemgestInfo& info,
                                              uint32_t group, uint32_t s,
                                              uint32_t d);

  // --- Elastic membership (§13) --------------------------------------------
  // Re-target the catalogue at a new group size: every erasure-coded memgest
  // gets a geometry for new_s (code + address map) and its previous geometry
  // is retained in MemgestInfo::geoms for the rebalance to read. Fails when
  // an existing memgest cannot exist at the new shape (k > new_s or
  // r > new_s + d).
  Status Resize(uint32_t new_s);
  // The code/map for a given shape. geom_s == 0 means "current shape".
  // Returns nullptr for replicated memgests and for shapes never built —
  // callers treat that as a fenced (stale-geometry) operation.
  const srs::SrsCode* CodeFor(const MemgestInfo& info, uint32_t geom_s) const;
  const srs::SrsAddressMap* MapFor(const MemgestInfo& info,
                                   uint32_t geom_s) const;

  size_t count() const;
  void ForEach(const std::function<void(const MemgestInfo&)>& fn) const;

 private:
  uint32_t s_;
  uint32_t d_;
  uint32_t groups_;
  uint64_t stripe_unit_;
  MemgestId default_id_ = kDefaultMemgest;
  std::vector<std::unique_ptr<MemgestInfo>> memgests_;
};

}  // namespace ring

#endif  // RING_SRC_RING_REGISTRY_H_
