// Metadata structures (paper §5.1-5.2).
//
// Each memgest has a *metadata hashtable* per shard: (key, version) ->
// location + commit state. It is write-ahead (entries exist before commit)
// and replicated to the memgest's redundancy nodes. The *volatile hashtable*
// maps key -> list of (version, memgest) pairs across all memgests of a
// coordinator; it is not replicated and is rebuilt from the metadata
// hashtables after failures.
#ifndef RING_SRC_RING_METADATA_H_
#define RING_SRC_RING_METADATA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/ring/types.h"

namespace ring {

// Approximate serialized size of one metadata entry (key hash, version,
// address, length, flags). Used for recovery-traffic modeling (Fig. 12).
inline constexpr uint64_t kMetaEntryWireBytes = 96;

struct MetaEntry {
  Version version = 0;
  uint64_t addr = 0;
  uint32_t len = 0;         // object bytes
  uint32_t region_len = 0;  // allocated region (>= len when a slot is reused)
  bool committed = false;
  bool tombstone = false;
  // False on a recovered node until the object bytes are copied/decoded.
  bool data_present = true;
  // Group size s of the geometry this entry was written under (§13). Always
  // the cluster's current s on a never-resized cluster; entries written
  // before an elastic resize keep their old shape until migrated, so shard
  // ids, replica/parity placement and stripe maps must be interpreted at
  // this s. 0 only on wire defaults, never on a stored entry.
  uint32_t geom_s = 0;
  // Durable moved-marker (§13): this version records that the key's contents
  // were handed to its new-shape owner. Moved entries are never served and
  // never trigger GC of the versions below them (the payload must survive
  // until the install is acknowledged).
  bool moved = false;
  // Volatile: the new owner acknowledged the install, so the rebalance scan
  // stops reporting the key. Lost on crash; the driver's verify pass simply
  // re-migrates (idempotent).
  bool moved_done = false;
  // Volatile: this entry owns a VolatileIndex reference on this node (it was
  // coordinator-written or indexed by a rebuild). Replica/parity mirrors of
  // other coordinators' writes never set it — the geometry purge must not
  // mistake a mirror for the entry an index ref belongs to.
  bool indexed = false;
  // Coordinator-only transient state ---------------------------------------
  // Redundancy targets still owed an ack: bitmask over replica ordinals or
  // parity indices.
  uint32_t acks_pending = 0;
  // Remaining ack count before the entry commits (quorum for replication,
  // all m parities for erasure coding).
  uint32_t acks_needed = 0;
  // Trace context of the write that created the entry: the originating
  // operation and when the coordinator started waiting for acknowledgments.
  // Plain stores, kept up to date even with tracing off (two words per
  // entry); read only at commit time.
  uint64_t trace_op = 0;
  uint64_t trace_quorum_start = 0;
  // Deferred readers/movers released at commit time (Fig. 5's client D).
  std::vector<std::function<void()>> waiters;
  // Re-send closures for this write's backup messages, indexed by replica
  // ordinal / parity index; invoked by the retransmit timer for every
  // ordinal still owed an ack. Cleared at commit.
  std::vector<std::function<void()>> backup_resend;
  // Slot that supplied this entry during a merged recovery metadata fetch
  // (-1 otherwise). Quorum-committed writes may live on only a subset of the
  // replicas, so block recovery must copy bytes from a slot known to hold
  // the entry — not from an arbitrary survivor.
  int32_t recovery_src = -1;
};

// Per-(memgest, shard) metadata hashtable.
class MetadataTable {
 public:
  MetaEntry* Find(const Key& key, Version version);
  const MetaEntry* Find(const Key& key, Version version) const;
  // Highest version for the key (committed or not), nullptr if absent.
  MetaEntry* Highest(const Key& key);
  MetaEntry& Insert(const Key& key, MetaEntry entry);
  void Erase(const Key& key, Version version);

  size_t entry_count() const { return entry_count_; }
  uint64_t ApproxBytes() const { return entry_count_ * kMetaEntryWireBytes; }

  // Iterates over every (key, entry); used by recovery transfers.
  void ForEach(
      const std::function<void(const Key&, const MetaEntry&)>& fn) const;
  // Mutable iteration; the callback must not insert or erase entries.
  void ForEachMutable(const std::function<void(const Key&, MetaEntry&)>& fn);

  // All versions of a key, ascending. Empty when absent.
  std::vector<Version> VersionsOf(const Key& key) const;

  void Clear();

 private:
  std::unordered_map<Key, std::map<Version, MetaEntry>> table_;
  size_t entry_count_ = 0;
};

// Coordinator-side index over all memgests (paper Fig. 4).
class VolatileIndex {
 public:
  struct Ref {
    Version version;
    MemgestId memgest;
  };

  // Highest-version reference for the key, nullopt when absent.
  std::optional<Ref> Highest(const Key& key) const;
  // Version to assign to the next write of `key` (highest + 1, counting
  // uncommitted versions — paper §5.2).
  Version NextVersion(const Key& key) const;

  void Add(const Key& key, Version version, MemgestId memgest);
  void Remove(const Key& key, Version version);

  // All references for a key, descending by version.
  std::vector<Ref> Refs(const Key& key) const;

  size_t key_count() const { return index_.size(); }
  void Clear() { index_.clear(); }

 private:
  // Descending by version; lists stay short (GC removes old versions).
  std::unordered_map<Key, std::vector<Ref>> index_;
};

}  // namespace ring

#endif  // RING_SRC_RING_METADATA_H_
