#include "src/ring/runtime.h"

namespace ring {

RingRuntime::RingRuntime(const RingOptions& options)
    : options_(options),
      simulator_(options.seed, options.params),
      fabric_(&simulator_, options.s + options.d + options.spares +
                               options.clients),
      membership_(&fabric_, options.s, options.d,
                  options.s + options.d + options.spares, options.groups),
      registry_(options.s, options.d, options.stripe_unit, options.groups) {
  if (options.analyze_races) {
    simulator_.EnableRaceDetection();
  }
  for (net::NodeId id = 0; id < num_server_nodes(); ++id) {
    servers_.push_back(std::make_unique<RingServer>(this, id));
  }
  membership_.SetOnConfig(
      [this](net::NodeId node, const consensus::ClusterConfig& config) {
        if (auto* srv = server(node)) {
          srv->OnConfig(config);
        }
      });
  if (options.start_membership) {
    membership_.Start();
  }
}

}  // namespace ring
