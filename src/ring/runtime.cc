#include "src/ring/runtime.h"

namespace ring {
namespace {

// Under a fault plan, lost backup messages must not strand quorum rounds:
// turn on coordinator retransmission unless the caller picked a period.
// Fault-free deployments keep it off so their schedules stay byte-identical.
RingOptions WithChaosDefaults(RingOptions o) {
  if (!o.fault_plan.empty() && o.params.write_retransmit_ns == 0) {
    o.params.write_retransmit_ns = o.params.client_retry_timeout_ns / 2;
  }
  return o;
}

}  // namespace

RingRuntime::RingRuntime(const RingOptions& options)
    : options_(WithChaosDefaults(options)),
      simulator_(options_.seed, options_.params),
      fabric_(&simulator_, options.s + options.d + options.spares +
                               options.clients),
      membership_(&fabric_, options.s, options.d,
                  options.s + options.d + options.spares, options.groups),
      registry_(options.s, options.d, options.stripe_unit, options.groups) {
  if (options.analyze_races) {
    simulator_.EnableRaceDetection();
  }
  for (net::NodeId id = 0; id < num_server_nodes(); ++id) {
    servers_.push_back(std::make_unique<RingServer>(this, id));
  }
  membership_.SetOnConfig(
      [this](net::NodeId node, const consensus::ClusterConfig& config) {
        if (auto* srv = server(node)) {
          srv->OnConfig(config);
        }
      });
  if (!options.fault_plan.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(
        &simulator_, fabric_.num_nodes(), options.fault_plan,
        options.seed ^ options.fault_seed);
    fault::FaultInjector::Hooks hooks;
    hooks.crash = [this](uint32_t node) { fabric_.Kill(node); };
    hooks.recover = [this](uint32_t node) { RestartNode(node); };
    hooks.resumed = [this](uint32_t node) { membership_.NoteResumed(node); };
    injector_->set_hooks(std::move(hooks));
    injector_->set_crash_guard([this](uint32_t node) {
      // Fail-stopping a node that holds a slot in either live shape is only
      // survivable when a spare can absorb the promotion; otherwise the
      // injector downgrades the crash to a pause.
      const consensus::ClusterConfig& cfg =
          membership_.ConfigView(membership_.CurrentLeader());
      if (node >= cfg.num_nodes()) {
        return true;  // clients and non-members may die freely
      }
      const bool holds_slot =
          cfg.slot_of_node[node] >= 0 ||
          (cfg.rebalancing() &&
           cfg.Previous().SlotOfNode(node) != consensus::kSpareSlot);
      return !holds_slot || cfg.FindSpare() >= 0;
    });
    fabric_.set_injector(injector_.get());
    injector_->Arm();
  }
  if (options.start_membership) {
    membership_.Start();
  }
}

void RingRuntime::RestartNode(net::NodeId node) {
  fabric_.Revive(node);
  if (auto* srv = server(node)) {
    srv->Restart();
  }
  if (node < membership_.num_members()) {
    membership_.Rejoin(node);
  }
}

}  // namespace ring
