// Failure handling and recovery paths of RingServer (paper §5.5, §6.4):
// spare promotion, metadata fetch, volatile-hashtable rebuild, on-demand and
// background data recovery, parity reconstruction with write fencing.
#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/gf/gf256.h"
#include "src/ring/runtime.h"
#include "src/ring/server.h"

namespace ring {
namespace {
constexpr uint64_t kSmallMsgBytes = 64;
constexpr uint64_t kAckBytes = 48;
constexpr uint64_t kLogRecordBytes = 32;

using analysis::AccessKind;
using analysis::RegionKind;

// Region-scope encoding; must match the definitions in server.cc (the
// helpers are TU-local there, so they are restated here).
uint64_t ScopeOf(MemgestId memgest, uint32_t sub) {
  return (static_cast<uint64_t>(memgest) << 32) | sub;
}
uint64_t ParityMetaScope(MemgestId memgest, uint32_t shard) {
  return ScopeOf(memgest, 0x80000000u | shard);
}
}  // namespace

void RingServer::OnConfig(const consensus::ClusterConfig& config) {
  const int32_t old_slot = config_.slot_of_node[id_];
  config_ = config;
  if (config.failed[id_]) {
    // The cluster considers this node dead (it may in fact be alive and
    // recovering). Stop serving; a later config that readmits it drives the
    // rejoin transition below.
    serving_ = false;
    excluded_ = true;
    return;
  }
  const bool readmitted = excluded_;
  excluded_ = false;
  const int32_t new_slot = config.slot_of_node[id_];
  if (new_slot == consensus::kSpareSlot) {
    if (old_slot != consensus::kSpareSlot || readmitted) {
      // Demoted (our old slot was re-assigned while we were out) or
      // readmitted into the spare pool after a crash: whatever state we
      // hold is stale. Start over as a clean, non-serving spare.
      memgests_.clear();
      volatile_index_ = VolatileIndex();
      serving_ = false;
      is_spare_ = true;
    }
    return;
  }
  if (old_slot == consensus::kSpareSlot || readmitted) {
    is_spare_ = false;
    if (readmitted) {
      // Readmitted straight into a slot (typically our own old slot, when
      // no spare had been available to take it): the restart was
      // memory-less, so rebuild through the normal promotion path.
      memgests_.clear();
      volatile_index_ = VolatileIndex();
    }
    BeginPromotion(static_cast<uint32_t>(new_slot));
  }
}

void RingServer::Restart() {
  // Memory-less reboot: every byte of store state is gone. The node comes
  // back as a non-serving spare; membership readmission (and, if the
  // cluster re-promotes it, the normal recovery path) restores service.
  memgests_.clear();
  volatile_index_ = VolatileIndex();
  client_ops_.clear();
  client_ops_order_.clear();
  counters_ = Counters{};
  last_recovery_ns_ = 0;
  serving_ = false;
  is_spare_ = true;
  // Our view of the config is stale by construction: mark ourselves failed
  // and parked on the spare slot so the readmission config (which may hand
  // back our old slot) registers as a promotion edge in OnConfig.
  config_.failed[id_] = true;
  config_.slot_of_node[id_] = consensus::kSpareSlot;
  excluded_ = true;
}

void RingServer::BeginPromotion(uint32_t new_slot) {
  serving_ = false;
  const sim::SimTime start = rt_->simulator().now();
  RING_LOG(kInfo) << "node " << id_ << " promoting into slot " << new_slot;

  // Enumerate the metadata-fetch tasks implied by the slot's roles.
  struct Task {
    const MemgestInfo* info;
    uint32_t shard;
    bool as_parity;
  };
  auto tasks = std::make_shared<std::vector<Task>>();
  const uint32_t s = config_.s;
  const auto my_shards = config_.ShardsOfSlot(new_slot);
  rt_->registry().ForEach([&](const MemgestInfo& info) {
    if (!info.desc.unreliable()) {
      // Coordinator of every shard whose rotation lands on this slot.
      for (uint32_t shard : my_shards) {
        tasks->push_back({&info, shard, false});
      }
    }
    if (info.desc.kind == SchemeKind::kReplicated) {
      for (uint32_t shard = 0; shard < config_.num_shards(); ++shard) {
        const auto slots = rt_->registry().ReplicaSlots(info, shard);
        if (std::find(slots.begin(), slots.end(), new_slot) != slots.end()) {
          tasks->push_back({&info, shard, false});
        }
      }
    } else {
      for (uint32_t group = 0; group < config_.groups; ++group) {
        const auto parity_slots = rt_->registry().ParitySlots(info, group);
        const auto it =
            std::find(parity_slots.begin(), parity_slots.end(), new_slot);
        if (it == parity_slots.end()) {
          continue;
        }
        MemgestState& state = StateOf(info);
        ParityStore& parity = state.parity[group];
        parity.parity_index =
            static_cast<uint32_t>(it - parity_slots.begin());
        parity.rebuilt = false;
        for (uint32_t sigma = 0; sigma < s; ++sigma) {
          tasks->push_back({&info, group * s + sigma, true});
        }
      }
    }
  });

  auto remaining = std::make_shared<size_t>(tasks->size());
  auto finish = [this, start] {
    // All metadata is local: rebuild the volatile hashtable and start
    // serving; data recovery continues in the background (§5.5 step 6).
    uint64_t entries = 0;
    for (const auto& [id, state] : memgests_) {
      for (const auto& [shard, store] : state.stores) {
        entries += store.meta.entry_count();
      }
    }
    const auto& p = rt_->simulator().params();
    cpu().Execute(p.server_base_ns + entries * p.recovery_entry_ns,
                  [this, start] {
      if (!IsAlive()) {
        return;
      }
      RebuildVolatileIndex();
      serving_ = true;
      last_recovery_ns_ = rt_->simulator().now() - start;
      hub().tracer().Record("promotion", obs::Category::kRecovery, id_, 0,
                            start, rt_->simulator().now());
      hub().metrics().Observe("recovery.promotion_ns", last_recovery_ns_, id_,
                              obs::kNoMemgest, obs::OpKind::kRecovery);
      hub().recorder().Record(obs::RecKind::kRecovery, "promotion", id_, 0,
                              last_recovery_ns_);
      RING_LOG(kInfo) << "node " << id_ << " serving after "
                      << last_recovery_ns_ / 1000 << "us";
      RecoverAllData([this] { NotifyRedundancyRecovered(); });
    });
  };
  if (tasks->empty()) {
    finish();
    return;
  }
  for (const auto& task : *tasks) {
    FetchShardMetadata(*task.info, task.shard, task.as_parity,
                       [remaining, finish] {
                         if (--*remaining == 0) {
                           finish();
                         }
                       });
  }
}

std::vector<int32_t> RingServer::AliveMetaSources(const MemgestInfo& info,
                                                  uint32_t shard) const {
  // Candidate holders of the shard's metadata, in preference order:
  // the coordinator itself, then replicas (Rep) or parity nodes (SRS).
  std::vector<uint32_t> candidates;
  candidates.push_back(config_.SlotOfShard(shard));
  if (info.desc.kind == SchemeKind::kReplicated) {
    for (uint32_t slot : rt_->registry().ReplicaSlots(info, shard)) {
      candidates.push_back(slot);
    }
  } else {
    for (uint32_t slot :
         rt_->registry().ParitySlots(info, config_.GroupOfShard(shard))) {
      candidates.push_back(slot);
    }
  }
  const int32_t my_slot = config_.slot_of_node[id_];
  std::vector<int32_t> alive;
  for (uint32_t slot : candidates) {
    if (static_cast<int32_t>(slot) == my_slot) {
      continue;
    }
    const net::NodeId node = config_.node_of_slot[slot];
    if (!config_.failed[node] && rt_->fabric().alive(node)) {
      alive.push_back(static_cast<int32_t>(slot));
    }
  }
  // Replication commits on a quorum: any single survivor may be missing
  // committed writes, so recovery must union the metadata of every alive
  // holder. Parity nodes ack every update before commit — any one of them
  // has the complete table.
  if (info.desc.kind != SchemeKind::kReplicated && alive.size() > 1) {
    alive.resize(1);
  }
  return alive;
}

void RingServer::FetchShardMetadata(const MemgestInfo& info, uint32_t shard,
                                    bool as_parity,
                                    std::function<void()> done) {
  const std::vector<int32_t> sources = AliveMetaSources(info, shard);
  if (sources.empty()) {
    done();  // nothing recoverable (e.g. unreliable memgest)
    return;
  }
  auto remaining = std::make_shared<size_t>(sources.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const int32_t src_slot : sources) {
    MetaFetch msg;
    msg.memgest = info.id;
    msg.shard = shard;
    msg.requester = id_;
    const MemgestInfo* info_ptr = &info;
    msg.reply = [this, info_ptr, shard, as_parity, src_slot, remaining,
                 shared_done](std::shared_ptr<MetadataTable> table,
                              uint64_t wire_bytes) {
      (void)wire_bytes;
      const auto& p = rt_->simulator().params();
      cpu().Execute(table->entry_count() * p.recovery_entry_ns,
                    [this, info_ptr, shard, as_parity, src_slot, table,
                     remaining, shared_done] {
        if (!IsAlive()) {
          return;
        }
        MemgestState& state = StateOf(*info_ptr);
        MetadataTable& target =
            as_parity
                ? state.parity.at(config_.GroupOfShard(shard))
                      .shard_meta[shard]
                : StoreOf(state, shard).meta;
        // Bulk re-population of the whole shard table on the promoted node.
        // Tables from multiple sources are unioned: quorum commit means a
        // write may survive on any single holder, so every survivor's view
        // contributes the entries the others missed.
        NoteAccess(RegionKind::kMetadata, AccessKind::kWrite,
                   as_parity ? ParityMetaScope(info_ptr->id, shard)
                             : ScopeOf(info_ptr->id, shard),
                   0, UINT64_MAX, "meta_fetch/install");
        uint64_t high_water = 0;
        uint64_t installed = 0;
        table->ForEach([&](const Key& key, const MetaEntry& src) {
          if (target.Find(key, src.version) != nullptr) {
            return;  // another source already supplied this version
          }
          MetaEntry entry = src;
          // Surviving entries are durable: treat them as committed. Their
          // bytes are not local yet and must be copied from a node that
          // actually holds this entry.
          entry.committed = true;
          entry.acks_pending = 0;
          entry.acks_needed = 0;
          entry.waiters.clear();
          entry.backup_resend.clear();
          entry.data_present = entry.tombstone || entry.len == 0;
          entry.recovery_src = src_slot;
          high_water = std::max(high_water, entry.addr + entry.region_len);
          target.Insert(key, std::move(entry));
          ++installed;
        });
        if (!as_parity) {
          // The allocator must never re-issue addresses of recovered
          // regions: new puts racing with background data recovery would
          // overwrite the surviving replica/parity copies they are
          // recovered from.
          ShardStore& store = StoreOf(state, shard);
          store.next_addr = std::max(store.next_addr, high_water);
          store.EnsureSize(store.next_addr);
          store.write_seq += table->entry_count();  // fencing stays monotonic
        }
        state.log_len += installed;
        if (--*remaining == 0) {
          (*shared_done)();
        }
      });
    };
    auto* peer = rt_->server(config_.node_of_slot[src_slot]);
    SendToSlot(static_cast<uint32_t>(src_slot), kSmallMsgBytes,
               [peer, msg = std::move(msg)]() mutable {
                 peer->HandleMetaFetch(std::move(msg));
               });
  }
}

void RingServer::HandleMetaFetch(MetaFetch msg) {
  if (!IsAlive()) {
    return;
  }
  const auto& p = rt_->simulator().params();
  cpu().Execute(p.server_base_ns, [this, msg = std::move(msg)]() mutable {
    if (!IsAlive()) {
      return;
    }
    auto it = memgests_.find(msg.memgest);
    auto table = std::make_shared<MetadataTable>();
    uint64_t log_bytes = 0;
    if (it != memgests_.end()) {
      const MemgestState& state = it->second;
      const MetadataTable* source = nullptr;
      uint64_t source_scope = 0;
      if (auto sit = state.stores.find(msg.shard);
          sit != state.stores.end()) {
        source = &sit->second.meta;
        source_scope = ScopeOf(msg.memgest, msg.shard);
      } else if (auto git = state.parity.find(
                     config_.GroupOfShard(msg.shard));
                 git != state.parity.end()) {
        auto pit = git->second.shard_meta.find(msg.shard);
        if (pit != git->second.shard_meta.end()) {
          source = &pit->second;
          source_scope = ParityMetaScope(msg.memgest, msg.shard);
        }
      }
      if (source != nullptr) {
        // Whole-table snapshot read on the surviving source node.
        NoteAccess(RegionKind::kMetadata, AccessKind::kRead, source_scope, 0,
                   UINT64_MAX, "meta_fetch/snapshot");
        *table = *source;
      }
      log_bytes = state.log_len * kLogRecordBytes;
    }
    // Serialization cost on the source side.
    const uint64_t wire = table->ApproxBytes() + log_bytes + kSmallMsgBytes;
    cpu().Execute(table->entry_count() *
                      rt_->simulator().params().recovery_entry_ns / 2,
                  [this, msg = std::move(msg), table, wire]() mutable {
      rt_->fabric().Send(id_, msg.requester, wire,
                         [reply = std::move(msg.reply), table, wire] {
                           reply(table, wire);
                         });
    });
  });
}

void RingServer::RebuildVolatileIndex() {
  volatile_index_.Clear();
  const int32_t slot = config_.slot_of_node[id_];
  if (slot < 0 || config_.failed[id_]) {
    return;
  }
  for (const uint32_t shard :
       config_.ShardsOfSlot(static_cast<uint32_t>(slot))) {
    for (auto& [id, state] : memgests_) {
      auto sit = state.stores.find(shard);
      if (sit == state.stores.end()) {
        continue;
      }
      sit->second.meta.ForEach([&](const Key& key, const MetaEntry& entry) {
        volatile_index_.Add(key, entry.version, id);
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Data recovery

void RingServer::EnsureDataPresent(const MemgestInfo& info, uint32_t shard,
                                   const Key& key, Version version,
                                   std::function<void(Status)> then) {
  MemgestState& state = StateOf(info);
  ShardStore& store = StoreOf(state, shard);
  MetaEntry* entry = store.meta.Find(key, version);
  if (entry == nullptr) {
    then(NotFoundError("entry gone"));
    return;
  }
  if (entry->data_present) {
    then(OkStatus());
    return;
  }
  const uint64_t addr = entry->addr;
  const uint32_t len = entry->len;
  const MemgestInfo* info_ptr = &info;
  const uint64_t op_id = hub().current_op();
  const sim::SimTime recover_start = rt_->simulator().now();

  auto complete = [this, info_ptr, shard, key, version, op_id, recover_start,
                   then = std::move(then)](std::shared_ptr<Buffer> bytes) {
    obs::ScopedOp scope(hub(), op_id);
    hub().tracer().Record("block_recovery", obs::Category::kRecovery, id_,
                          op_id, recover_start, rt_->simulator().now());
    if (!IsAlive()) {
      return;
    }
    if (!bytes) {
      then(DataLossError("no live source for block recovery"));
      return;
    }
    MemgestState& st = StateOf(*info_ptr);
    ShardStore& sh = StoreOf(st, shard);
    MetaEntry* e = sh.meta.Find(key, version);
    if (e == nullptr) {
      then(NotFoundError("entry gone during recovery"));
      return;
    }
    NoteAccess(RegionKind::kHeap, AccessKind::kWrite,
               ScopeOf(info_ptr->id, shard), e->addr,
               e->addr + bytes->size(), "recovery/block_install");
    sh.Write(e->addr, *bytes);
    e->data_present = true;
    ++counters_.blocks_recovered;
    hub().metrics().Inc("recovery.blocks", 1, id_, info_ptr->id,
                        obs::OpKind::kRecovery);
    hub().recorder().Record(obs::RecKind::kRecovery, "block_recovery", id_,
                            op_id, info_ptr->id, version);
    then(OkStatus());
  };

  if (info.desc.kind == SchemeKind::kReplicated) {
    // Copy over one-sided reads (§5.5) — first choice is the slot that
    // supplied this entry's metadata: with quorum commit other survivors
    // may never have applied the write, and their heap bytes at this
    // address would be stale.
    std::vector<uint32_t> candidates;
    if (entry->recovery_src >= 0) {
      candidates.push_back(static_cast<uint32_t>(entry->recovery_src));
    }
    candidates.push_back(config_.SlotOfShard(shard));  // the coordinator
    for (uint32_t slot : rt_->registry().ReplicaSlots(info, shard)) {
      candidates.push_back(slot);
    }
    const int32_t my_slot = config_.slot_of_node[id_];
    for (uint32_t slot : candidates) {
      if (static_cast<int32_t>(slot) == my_slot) {
        continue;
      }
      const net::NodeId node = config_.node_of_slot[slot];
      if (config_.failed[node] || !rt_->fabric().alive(node)) {
        continue;
      }
      auto* peer = rt_->server(node);
      auto bytes = std::make_shared<Buffer>();
      const MemgestId gid = info.id;
      rt_->fabric().Read(
          id_, node, len,
          [peer, bytes, gid, shard, addr, len] {
            *bytes = peer->ReadRawForRecovery(gid, shard, addr, len);
          },
          [complete, bytes]() mutable { complete(bytes); });
      return;
    }
    complete(nullptr);
    return;
  }

  // Erasure coded: ask a usable parity node to decode (§5.5). "The data node
  // sends a recovery request to the parity node responsible for the block."
  const uint32_t group = config_.GroupOfShard(shard);
  for (uint32_t slot : rt_->registry().ParitySlots(info, group)) {
    const net::NodeId node = config_.node_of_slot[slot];
    if (config_.failed[node] || !rt_->fabric().alive(node)) {
      continue;
    }
    auto* peer = rt_->server(node);
    if (!peer->ParityUsable(info.id, group)) {
      continue;
    }
    RecoverBlock msg;
    msg.memgest = info.id;
    msg.shard = shard;
    msg.addr = addr;
    msg.len = len;
    msg.requester = id_;
    msg.op_id = op_id;
    msg.reply = complete;
    rt_->fabric().Send(id_, node, kSmallMsgBytes,
                       [peer, msg = std::move(msg)]() mutable {
                         peer->HandleRecoverBlock(std::move(msg));
                       });
    return;
  }
  complete(nullptr);
}

void RingServer::HandleRecoverBlock(RecoverBlock msg) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), msg.op_id);
  const auto& p = rt_->simulator().params();
  cpu().Execute(p.server_base_ns, [this, msg = std::move(msg)]() mutable {
    obs::ScopedOp op_scope(hub(), msg.op_id);
    if (!IsAlive()) {
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(msg.memgest);
    const uint32_t group = config_.GroupOfShard(msg.shard);
    if (info == nullptr || !ParityUsable(msg.memgest, group)) {
      rt_->fabric().Send(id_, msg.requester, kSmallMsgBytes,
                         [reply = msg.reply] { reply(nullptr); });
      return;
    }
    MemgestState& state = StateOf(*info);
    ParityStore& parity = state.parity.at(group);
    const auto segments =
        info->map->MapDataRange(msg.shard % config_.s, msg.addr, msg.len);
    auto result = std::make_shared<Buffer>(msg.len, 0);
    auto remaining = std::make_shared<size_t>(segments.size());
    auto failed = std::make_shared<bool>(false);

    // The block decodes segment by segment: each mini-stripe needs k source
    // chunks gathered from live data nodes (one-sided reads) plus local /
    // remote parity.
    uint64_t result_offset = 0;
    for (const auto& seg : segments) {
      const uint64_t out_off = result_offset;
      result_offset += seg.length;
      auto sources = info->map->DecodeSources(seg);
      auto collected = std::make_shared<
          std::vector<std::pair<uint32_t, Buffer>>>();
      auto outstanding = std::make_shared<size_t>(0);
      auto finished = std::make_shared<bool>(false);

      const uint32_t k = info->code->k();
      auto finish_segment = [this, info, seg, out_off, result, remaining,
                             failed, collected, finished, msg, k]() {
        if (*finished) {
          return;
        }
        if (collected->size() < k) {
          return;  // wait for more sources
        }
        *finished = true;
        const auto& pr = rt_->simulator().params();
        const uint64_t decode_cost =
            static_cast<uint64_t>(pr.decode_byte_ns * k * seg.length);
        cpu().Execute(
            decode_cost,
            [this, info, seg, out_off, result, remaining, failed, collected,
             msg] {
          obs::ScopedOp decode_scope(hub(), msg.op_id);
          if (!IsAlive()) {
            return;
          }
          std::vector<std::pair<uint32_t, ByteSpan>> avail;
          for (const auto& [h_row, buf] : *collected) {
            avail.emplace_back(h_row, ByteSpan(buf));
          }
          auto data = info->code->rs().RecoverData(avail);
          if (!data.ok()) {
            *failed = true;
          } else {
            std::copy((*data)[seg.rs_block].begin(),
                      (*data)[seg.rs_block].end(),
                      result->begin() + out_off);
          }
          if (--*remaining == 0) {
            auto out = *failed ? nullptr : result;
            rt_->fabric().Send(id_, msg.requester,
                               kSmallMsgBytes + (out ? out->size() : 0),
                               [reply = msg.reply, out] { reply(out); });
          }
        });
        if (decode_cost > 0) {
          hub().tracer().Record("decode", obs::Category::kCoding, id_,
                                msg.op_id, cpu().busy_until() - decode_cost,
                                cpu().busy_until());
        }
      };

      uint32_t launched = 0;
      for (const auto& src : sources) {
        if (launched >= k) {
          break;
        }
        if (!src.is_parity) {
          const uint32_t src_shard = group * config_.s + src.node;
          if (src_shard == msg.shard) {
            continue;  // the block being recovered
          }
          const net::NodeId node = config_.CoordinatorOfShard(src_shard);
          if (config_.failed[node] || !rt_->fabric().alive(node)) {
            continue;
          }
          auto* peer = rt_->server(node);
          auto buf = std::make_shared<Buffer>();
          const MemgestId gid = info->id;
          const uint32_t shard_src = src_shard;
          const uint64_t off = src.offset;
          const uint32_t piece = static_cast<uint32_t>(seg.length);
          const uint32_t h_row = src.h_row;
          ++launched;
          ++*outstanding;
          rt_->fabric().Read(
              id_, node, piece,
              [peer, buf, gid, shard_src, off, piece] {
                *buf = peer->ReadRawForRecovery(gid, shard_src, off, piece);
              },
              [collected, h_row, buf, outstanding, finish_segment] {
                collected->emplace_back(h_row, std::move(*buf));
                --*outstanding;
                finish_segment();
              });
        } else {
          if (src.node == parity.parity_index) {
            // Local parity bytes: no network involved.
            Buffer local = ReadRawParity(info->id, group, src.offset,
                                         static_cast<uint32_t>(seg.length));
            collected->emplace_back(src.h_row, std::move(local));
            ++launched;
          } else {
            const net::NodeId node =
                config_.node_of_slot[config_.RedundantSlot(group, src.node)];
            if (config_.failed[node] || !rt_->fabric().alive(node)) {
              continue;
            }
            auto* peer = rt_->server(node);
            if (!peer->ParityUsable(info->id, group)) {
              continue;
            }
            auto buf = std::make_shared<Buffer>();
            const MemgestId gid = info->id;
            const uint64_t off = src.offset;
            const uint32_t piece = static_cast<uint32_t>(seg.length);
            const uint32_t h_row = src.h_row;
            ++launched;
            ++*outstanding;
            rt_->fabric().Read(
                id_, node, piece,
                [peer, buf, gid, group, off, piece] {
                  *buf = peer->ReadRawParity(gid, group, off, piece);
                },
                [collected, h_row, buf, outstanding, finish_segment] {
                  collected->emplace_back(h_row, std::move(*buf));
                  --*outstanding;
                  finish_segment();
                });
          }
        }
      }
      if (launched < k) {
        // Not enough live sources: the segment is unrecoverable.
        *failed = true;
        if (--*remaining == 0) {
          rt_->fabric().Send(id_, msg.requester, kSmallMsgBytes,
                             [reply = msg.reply] { reply(nullptr); });
        }
        continue;
      }
      finish_segment();  // covers the all-local case
    }
  });
}

void RingServer::RecoverAllData(std::function<void()> done) {
  // Collect every entry whose bytes are missing, across coordinator and
  // replica stores.
  struct StoreTask {
    const MemgestInfo* info;
    uint32_t shard;
    std::vector<std::pair<Key, Version>> entries;
  };
  auto tasks = std::make_shared<std::vector<StoreTask>>();
  auto parity_rebuilds = std::make_shared<
      std::vector<std::pair<const MemgestInfo*, uint32_t>>>();
  for (auto& [id, state] : memgests_) {
    if (rt_->options().background_data_recovery) {
      for (auto& [shard, store] : state.stores) {
        StoreTask task{state.info, shard, {}};
        store.meta.ForEach([&](const Key& key, const MetaEntry& entry) {
          if (!entry.data_present) {
            task.entries.emplace_back(key, entry.version);
          }
        });
        if (!task.entries.empty()) {
          tasks->push_back(std::move(task));
        }
      }
    }
    for (auto& [group, parity] : state.parity) {
      if (!parity.rebuilt) {
        parity_rebuilds->push_back({state.info, group});
      }
    }
  }
  auto remaining =
      std::make_shared<size_t>(tasks->size() + parity_rebuilds->size());
  if (*remaining == 0) {
    done();
    return;
  }
  auto step = [remaining, done = std::move(done)] {
    if (--*remaining == 0) {
      done();
    }
  };
  for (auto& task : *tasks) {
    RecoverStoreEntries(*task.info, task.shard, std::move(task.entries), 0,
                        step);
  }
  for (const auto& [info, group] : *parity_rebuilds) {
    RebuildParity(*info, group, step);
  }
}

void RingServer::RecoverStoreEntries(
    const MemgestInfo& info, uint32_t shard,
    std::vector<std::pair<Key, Version>> todo, size_t next,
    std::function<void()> done) {
  if (!IsAlive()) {
    return;
  }
  if (next >= todo.size()) {
    done();
    return;
  }
  const auto [key, version] = todo[next];
  const MemgestInfo* info_ptr = &info;
  EnsureDataPresent(info, shard, key, version,
                    [this, info_ptr, shard, todo = std::move(todo), next,
                     done = std::move(done)](Status) mutable {
                      RecoverStoreEntries(*info_ptr, shard, std::move(todo),
                                          next + 1, std::move(done));
                    });
}

void RingServer::RebuildParity(const MemgestInfo& info, uint32_t group,
                               std::function<void()> done) {
  MemgestState& state = StateOf(info);
  assert(state.parity.count(group) > 0);
  const uint32_t s = config_.s;
  const sim::SimTime rebuild_start = rt_->simulator().now();

  struct ShardSnapshot {
    std::shared_ptr<Buffer> bytes;
    uint64_t seq = 0;
    uint64_t extent = 0;
  };
  auto snaps = std::make_shared<std::vector<ShardSnapshot>>(s);
  auto remaining = std::make_shared<size_t>(s);
  const MemgestInfo* info_ptr = &info;

  std::function<void()> assemble = [this, info_ptr, group, snaps,
                                    rebuild_start, done = std::move(done)] {
    if (!IsAlive()) {
      return;
    }
    uint64_t total_bytes = 0;
    for (const auto& snap : *snaps) {
      total_bytes += snap.extent;
    }
    const auto& p = rt_->simulator().params();
    const uint64_t gf_cost =
        static_cast<uint64_t>(p.gf_byte_ns * total_bytes);
    cpu().Execute(
        p.server_base_ns + gf_cost,
        [this, info_ptr, group, snaps, rebuild_start, done] {
      if (!IsAlive()) {
        return;
      }
      MemgestState& st = StateOf(*info_ptr);
      ParityStore& par = st.parity.at(group);
      // The rebuild rewrites the entire strip in place.
      NoteAccess(RegionKind::kParityStrip, AccessKind::kWrite,
                 ScopeOf(info_ptr->id, group), 0, UINT64_MAX,
                 "parity_rebuild/strip");
      std::fill(par.mem.begin(), par.mem.end(), 0);
      // Collect every (coefficient, source, parity range) contribution
      // first, then fuse: segments from different shards that map to the
      // same parity range (same mini-stripe cell) are accumulated in one
      // multi-source pass so each parity cache line is touched once instead
      // of once per shard.
      struct Contribution {
        uint64_t parity_offset;
        uint64_t length;
        uint8_t coeff;
        const uint8_t* src;
      };
      std::vector<Contribution> contribs;
      uint64_t max_extent = 0;
      for (uint32_t sigma = 0; sigma < snaps->size(); ++sigma) {
        const auto& snap = (*snaps)[sigma];
        if (!snap.bytes || snap.bytes->empty()) {
          continue;
        }
        for (const auto& seg :
             info_ptr->map->MapDataRange(sigma, 0, snap.bytes->size())) {
          contribs.push_back(
              {seg.parity_offset, seg.length,
               info_ptr->code->rs().Coefficient(par.parity_index,
                                                seg.rs_block),
               snap.bytes->data() + seg.node_offset});
          max_extent = std::max(max_extent, seg.parity_offset + seg.length);
        }
      }
      par.EnsureSize(max_extent);
      std::sort(contribs.begin(), contribs.end(),
                [](const Contribution& a, const Contribution& b) {
                  return a.parity_offset != b.parity_offset
                             ? a.parity_offset < b.parity_offset
                             : a.length < b.length;
                });
      std::vector<uint8_t> coeffs;
      std::vector<const uint8_t*> srcs;
      for (size_t i = 0; i < contribs.size();) {
        size_t j = i;
        coeffs.clear();
        srcs.clear();
        while (j < contribs.size() &&
               contribs[j].parity_offset == contribs[i].parity_offset &&
               contribs[j].length == contribs[i].length) {
          coeffs.push_back(contribs[j].coeff);
          srcs.push_back(contribs[j].src);
          ++j;
        }
        gf::MulAddRegionMulti(
            coeffs, std::span<const uint8_t* const>(srcs),
            MutableByteSpan(par.mem.data() + contribs[i].parity_offset,
                            contribs[i].length));
        i = j;
      }
      par.rebuilt = true;
      // Drain updates queued during the rebuild. The write fence keeps the
      // parity exact: deltas already contained in a snapshot are skipped,
      // but their metadata and acknowledgment still flow.
      auto queued = std::move(par.queued);
      par.queued.clear();
      for (auto& upd : queued) {
        if (upd.seq > (*snaps)[upd.shard % config_.s].seq) {
          ApplyParityBytes(*info_ptr, upd);
        }
        MetaEntry entry;
        entry.version = upd.version;
        entry.addr = upd.addr;
        entry.len = upd.len;
        entry.region_len = upd.region_len;
        entry.tombstone = upd.tombstone;
        entry.data_present = true;
        par.shard_meta[upd.shard].Insert(upd.key, std::move(entry));
        Ack ack{upd.memgest, upd.shard, upd.key, upd.version,
                upd.parity_index};
        const net::NodeId coord = config_.CoordinatorOfShard(upd.shard);
        auto* peer = rt_->server(coord);
        rt_->fabric().Write(id_, coord, kAckBytes,
                            [peer, ack] { peer->ApplyAck(ack); }, nullptr);
      }
      hub().tracer().Record("parity_rebuild", obs::Category::kRecovery, id_,
                            0, rebuild_start, rt_->simulator().now());
      hub().metrics().Inc("recovery.parity_rebuilds", 1, id_, info_ptr->id,
                          obs::OpKind::kRecovery);
      hub().recorder().Record(obs::RecKind::kRecovery, "parity_rebuild", id_,
                              0, info_ptr->id);
      RING_LOG(kInfo) << "node " << id_ << " rebuilt parity for memgest "
                      << info_ptr->id;
      done();
    });
    if (gf_cost > 0) {
      hub().tracer().Record("parity_encode", obs::Category::kCoding, id_, 0,
                            cpu().busy_until() - gf_cost, cpu().busy_until());
    }
  };

  for (uint32_t sigma = 0; sigma < s; ++sigma) {
    const uint32_t shard = group * s + sigma;
    const net::NodeId node = config_.CoordinatorOfShard(shard);
    if (config_.failed[node] || !rt_->fabric().alive(node)) {
      (*snaps)[sigma] = ShardSnapshot{};
      if (--*remaining == 0) {
        assemble();
      }
      continue;
    }
    auto* peer = rt_->server(node);
    const uint64_t extent = peer->HeapExtent(info.id, shard);
    auto snap = std::make_shared<ShardSnapshot>();
    snap->extent = extent;
    snap->bytes = std::make_shared<Buffer>();
    const MemgestId gid = info.id;
    rt_->fabric().Read(
        id_, node, extent,
        [peer, snap, gid, shard, extent] {
          // Bytes and fence captured atomically at the source.
          *snap->bytes = peer->ReadRawForRecovery(
              gid, shard, 0, static_cast<uint32_t>(extent));
          snap->seq = peer->WriteSeq(gid, shard);
        },
        [snaps, snap, sigma, remaining, assemble] {
          (*snaps)[sigma] = *snap;
          if (--*remaining == 0) {
            assemble();
          }
        });
  }
}

void RingServer::NotifyRedundancyRecovered() {
  const int32_t my_slot = config_.slot_of_node[id_];
  if (my_slot < 0) {
    return;
  }
  for (auto& [gid, state] : memgests_) {
    const MemgestInfo* info = state.info;
    if (info == nullptr) {
      continue;
    }
    if (info->desc.kind == SchemeKind::kReplicated) {
      for (uint32_t shard = 0; shard < config_.num_shards(); ++shard) {
        const auto slots = rt_->registry().ReplicaSlots(*info, shard);
        const auto it = std::find(slots.begin(), slots.end(),
                                  static_cast<uint32_t>(my_slot));
        if (it == slots.end()) {
          continue;
        }
        RedundancyRecovered msg{gid, shard,
                                static_cast<uint32_t>(it - slots.begin())};
        const net::NodeId coord = config_.CoordinatorOfShard(shard);
        auto* peer = rt_->server(coord);
        rt_->fabric().Send(id_, coord, kSmallMsgBytes, [peer, msg] {
          peer->HandleRedundancyRecovered(msg);
        });
      }
    } else {
      for (const auto& [group, parity] : state.parity) {
        for (uint32_t sigma = 0; sigma < config_.s; ++sigma) {
          const uint32_t shard = group * config_.s + sigma;
          RedundancyRecovered msg{gid, shard, parity.parity_index};
          const net::NodeId coord = config_.CoordinatorOfShard(shard);
          auto* peer = rt_->server(coord);
          rt_->fabric().Send(id_, coord, kSmallMsgBytes, [peer, msg] {
            peer->HandleRedundancyRecovered(msg);
          });
        }
      }
    }
  }
}

void RingServer::HandleRedundancyRecovered(RedundancyRecovered msg) {
  if (!IsAlive()) {
    return;
  }
  cpu().Execute(rt_->simulator().params().server_base_ns, [this, msg] {
    if (!IsAlive() || !Coordinates(msg.shard)) {
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(msg.memgest);
    if (info == nullptr) {
      return;
    }
    MemgestState& state = StateOf(*info);
    ShardStore& store = StoreOf(state, msg.shard);
    // The recovered node now covers all durable bytes of this shard: count
    // it as an acknowledgment for every entry still waiting on it.
    std::vector<std::pair<Key, Version>> to_commit;
    const uint32_t bit = 1u << msg.ordinal;
    store.meta.ForEachMutable([&](const Key& key, MetaEntry& entry) {
      if (entry.committed || (entry.acks_pending & bit) == 0) {
        return;
      }
      entry.acks_pending &= ~bit;
      if (entry.acks_needed > 0 && --entry.acks_needed == 0) {
        to_commit.emplace_back(key, entry.version);
      }
    });
    for (const auto& [key, version] : to_commit) {
      CommitEntry(*info, msg.shard, key, version);
    }
  });
}

}  // namespace ring
