// Failure handling and recovery paths of RingServer (paper §5.5, §6.4):
// spare promotion, metadata fetch, volatile-hashtable rebuild, on-demand and
// background data recovery, parity reconstruction with write fencing.
#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/gf/gf256.h"
#include "src/ring/runtime.h"
#include "src/ring/server.h"

namespace ring {
namespace {
constexpr uint64_t kSmallMsgBytes = 64;
constexpr uint64_t kAckBytes = 48;
constexpr uint64_t kLogRecordBytes = 32;
// Re-send cadence for unanswered metadata fetches during a promotion (lossy
// links and partitions drop them; the promotion must not wedge).
constexpr sim::SimTime kMetaFetchRetryNs = 3 * sim::kMillisecond;

using analysis::AccessKind;
using analysis::RegionKind;

// Region-scope encoding; must match the definitions in server.cc (the
// helpers are TU-local there, so they are restated here).
uint64_t ScopeOf(MemgestId memgest, uint32_t sub) {
  return (static_cast<uint64_t>(memgest) << 32) | sub;
}
uint64_t ParityMetaScope(MemgestId memgest, uint32_t shard) {
  return ScopeOf(memgest, 0x80000000u | shard);
}
}  // namespace

void RingServer::OnConfig(const consensus::ClusterConfig& config) {
  const int32_t old_slot = config_.slot_of_node[id_];
  const bool was_rebalancing = config_.rebalancing();
  config_ = config;
  if (config.failed[id_]) {
    // The cluster considers this node dead (it may in fact be alive and
    // recovering). Stop serving; a later config that readmits it drives the
    // rejoin transition below.
    serving_ = false;
    excluded_ = true;
    return;
  }
  const bool readmitted = excluded_;
  excluded_ = false;
  const int32_t new_slot = config.slot_of_node[id_];
  if (new_slot == consensus::kSpareSlot) {
    if (!readmitted && config_.rebalancing() &&
        config_.Previous().SlotOfNode(id_) != consensus::kSpareSlot) {
      // Scale-in: our slot exists only in the previous shape. Keep serving
      // old-placement reads and sourcing migrations until the drain ends;
      // the CompleteRebalance config parks us in the spare pool below.
      return;
    }
    if (old_slot != consensus::kSpareSlot || readmitted || serving_) {
      // Demoted (our old slot was re-assigned while we were out),
      // readmitted into the spare pool after a crash, or a drained
      // scale-in just completed: whatever state we hold is stale. Start
      // over as a clean, non-serving spare.
      memgests_.clear();
      volatile_index_ = VolatileIndex();
      serving_ = false;
      is_spare_ = true;
    }
    return;
  }
  if (old_slot == consensus::kSpareSlot || readmitted) {
    is_spare_ = false;
    if (readmitted) {
      // Readmitted straight into a slot (typically our own old slot, when
      // no spare had been available to take it): the restart was
      // memory-less, so rebuild through the normal promotion path.
      memgests_.clear();
      volatile_index_ = VolatileIndex();
    }
    BeginPromotion(static_cast<uint32_t>(new_slot));
    return;
  }
  if (was_rebalancing && !config_.rebalancing()) {
    // Rebalance completed: every key has been handed to its new-shape owner,
    // so the previous shape's stores, parity strips and markers are garbage.
    PurgeStaleGeometries();
  }
}

void RingServer::Restart() {
  // Memory-less reboot: every byte of store state is gone. The node comes
  // back as a non-serving spare; membership readmission (and, if the
  // cluster re-promotes it, the normal recovery path) restores service.
  memgests_.clear();
  volatile_index_ = VolatileIndex();
  client_ops_.clear();
  client_ops_order_.clear();
  counters_ = Counters{};
  last_recovery_ns_ = 0;
  serving_ = false;
  is_spare_ = true;
  // Our view of the config is stale by construction: mark ourselves failed
  // and parked on the spare slot so the readmission config (which may hand
  // back our old slot) registers as a promotion edge in OnConfig.
  config_.failed[id_] = true;
  config_.slot_of_node[id_] = consensus::kSpareSlot;
  excluded_ = true;
}

void RingServer::BeginPromotion(uint32_t new_slot) {
  serving_ = false;
  const sim::SimTime start = rt_->simulator().now();
  RING_LOG(kInfo) << "node " << id_ << " promoting into slot " << new_slot;

  // Enumerate the metadata-fetch tasks implied by the slot's roles. During
  // a rebalance (§13) both shapes are live: the node recovers its roles
  // under the current geometry *and* under the previous one (old-placement
  // keys are still served there until migrated).
  struct Task {
    const MemgestInfo* info;
    uint32_t shard;
    bool as_parity;
    uint32_t geom;
  };
  auto tasks = std::make_shared<std::vector<Task>>();
  auto enumerate_shape = [&](uint32_t geom, int32_t my_slot) {
    if (my_slot == consensus::kSpareSlot) {
      return;  // this node has no role under that shape
    }
    const auto placement = PlacementFor(geom);
    if (!placement.has_value()) {
      return;
    }
    const uint32_t slot = static_cast<uint32_t>(my_slot);
    rt_->registry().ForEach([&](const MemgestInfo& info) {
      if (!info.desc.unreliable()) {
        // Coordinator of every shard whose rotation lands on this slot.
        for (uint32_t shard = 0; shard < placement->num_shards(); ++shard) {
          if (placement->SlotOfShard(shard) == slot) {
            tasks->push_back({&info, shard, false, geom});
          }
        }
      }
      if (info.desc.kind == SchemeKind::kReplicated) {
        for (uint32_t shard = 0; shard < placement->num_shards(); ++shard) {
          const auto slots = MemgestRegistry::ReplicaSlotsFor(
              info, shard, geom, config_.d);
          if (std::find(slots.begin(), slots.end(), slot) != slots.end()) {
            tasks->push_back({&info, shard, false, geom});
          }
        }
      } else {
        for (uint32_t group = 0; group < config_.groups; ++group) {
          const auto parity_slots = MemgestRegistry::ParitySlotsFor(
              info, group, geom, config_.d);
          const auto it =
              std::find(parity_slots.begin(), parity_slots.end(), slot);
          if (it == parity_slots.end()) {
            continue;
          }
          MemgestState& state = StateOf(info);
          ParityStore& parity = state.parity[GeomKey(geom, group)];
          parity.parity_index =
              static_cast<uint32_t>(it - parity_slots.begin());
          parity.rebuilt = false;
          for (uint32_t sigma = 0; sigma < geom; ++sigma) {
            tasks->push_back({&info, group * geom + sigma, true, geom});
          }
        }
      }
    });
  };
  enumerate_shape(config_.s, static_cast<int32_t>(new_slot));
  if (config_.rebalancing()) {
    const auto prev = PlacementFor(config_.prev_s);
    if (prev.has_value()) {
      enumerate_shape(config_.prev_s, prev->SlotOfNode(id_));
    }
  }

  auto remaining = std::make_shared<size_t>(tasks->size());
  auto finish = [this, start] {
    // All metadata is local: rebuild the volatile hashtable and start
    // serving; data recovery continues in the background (§5.5 step 6).
    uint64_t entries = 0;
    for (const auto& [id, state] : memgests_) {
      for (const auto& [shard, store] : state.stores) {
        entries += store.meta.entry_count();
      }
    }
    const auto& p = rt_->simulator().params();
    cpu().Execute(p.server_base_ns + entries * p.recovery_entry_ns,
                  [this, start] {
      if (!IsAlive()) {
        return;
      }
      RebuildVolatileIndex();
      serving_ = true;
      last_recovery_ns_ = rt_->simulator().now() - start;
      hub().tracer().Record("promotion", obs::Category::kRecovery, id_, 0,
                            start, rt_->simulator().now());
      hub().metrics().Observe("recovery.promotion_ns", last_recovery_ns_, id_,
                              obs::kNoMemgest, obs::OpKind::kRecovery);
      hub().recorder().Record(obs::RecKind::kRecovery, "promotion", id_, 0,
                              last_recovery_ns_);
      RING_LOG(kInfo) << "node " << id_ << " serving after "
                      << last_recovery_ns_ / 1000 << "us";
      RecoverAllData([this] { NotifyRedundancyRecovered(); });
    });
  };
  if (tasks->empty()) {
    finish();
    return;
  }
  for (const auto& task : *tasks) {
    FetchShardMetadata(*task.info, task.shard, task.as_parity, task.geom,
                       [remaining, finish] {
                         if (--*remaining == 0) {
                           finish();
                         }
                       });
  }
}

std::vector<int32_t> RingServer::AliveMetaSources(const MemgestInfo& info,
                                                  uint32_t shard,
                                                  uint32_t geom_s) const {
  const uint32_t geom = geom_s == 0 ? config_.s : geom_s;
  const auto placement = PlacementFor(geom);
  if (!placement.has_value()) {
    return {};
  }
  // Candidate holders of the shard's metadata, in preference order:
  // the coordinator itself, then replicas (Rep) or parity nodes (SRS).
  // All slot ids live in `geom`'s slot space.
  std::vector<uint32_t> candidates;
  candidates.push_back(placement->SlotOfShard(shard));
  if (info.desc.kind == SchemeKind::kReplicated) {
    for (uint32_t slot :
         MemgestRegistry::ReplicaSlotsFor(info, shard, geom, config_.d)) {
      candidates.push_back(slot);
    }
  } else {
    for (uint32_t slot : MemgestRegistry::ParitySlotsFor(
             info, placement->GroupOfShard(shard), geom, config_.d)) {
      candidates.push_back(slot);
    }
  }
  const int32_t my_slot = placement->SlotOfNode(id_);
  std::vector<int32_t> alive;
  for (uint32_t slot : candidates) {
    if (static_cast<int32_t>(slot) == my_slot) {
      continue;
    }
    const net::NodeId node = placement->NodeOfSlot(slot);
    if (!config_.failed[node] && rt_->fabric().alive(node)) {
      alive.push_back(static_cast<int32_t>(slot));
    }
  }
  // Replication commits on a quorum: any single survivor may be missing
  // committed writes, so recovery must union the metadata of every alive
  // holder. Parity nodes ack every update before commit — any one of them
  // has the complete table.
  if (info.desc.kind != SchemeKind::kReplicated && alive.size() > 1) {
    alive.resize(1);
  }
  if (rt_->options().test_bugs.single_source_recovery && alive.size() > 1) {
    // test_bugs: PR 5 bug 2 — trust the first alive holder alone; a holder
    // that missed a quorum-committed append loses that entry on promotion.
    alive.resize(1);
  }
  return alive;
}

void RingServer::FetchShardMetadata(const MemgestInfo& info, uint32_t shard,
                                    bool as_parity, uint32_t geom_s,
                                    std::function<void()> done) {
  const uint32_t geom = geom_s == 0 ? config_.s : geom_s;
  const std::vector<int32_t> sources = AliveMetaSources(info, shard, geom);
  const auto placement = PlacementFor(geom);
  if (sources.empty() || !placement.has_value()) {
    done();  // nothing recoverable (e.g. unreliable memgest)
    return;
  }
  auto remaining = std::make_shared<size_t>(sources.size());
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (const int32_t src_slot : sources) {
    const MemgestInfo* info_ptr = &info;
    // First response wins: the flag stops the retry timer and swallows both
    // chaos-duplicated replies and late originals after a re-send.
    auto responded = std::make_shared<bool>(false);
    auto reply = [this, info_ptr, shard, geom, as_parity, src_slot, remaining,
                  shared_done,
                  responded](std::shared_ptr<MetadataTable> table,
                             uint64_t wire_bytes) {
      (void)wire_bytes;
      if (*responded) {
        return;
      }
      *responded = true;
      const auto& p = rt_->simulator().params();
      cpu().Execute(table->entry_count() * p.recovery_entry_ns,
                    [this, info_ptr, shard, geom, as_parity, src_slot, table,
                     remaining, shared_done] {
        if (!IsAlive()) {
          return;
        }
        MemgestState& state = StateOf(*info_ptr);
        MetadataTable& target =
            as_parity
                ? state.parity.at(GeomKey(geom, shard / geom))
                      .shard_meta[shard]
                : StoreOf(state, shard, geom).meta;
        // Bulk re-population of the whole shard table on the promoted node.
        // Tables from multiple sources are unioned: quorum commit means a
        // write may survive on any single holder, so every survivor's view
        // contributes the entries the others missed.
        NoteAccess(RegionKind::kMetadata, AccessKind::kWrite,
                   as_parity ? ParityMetaScope(info_ptr->id, shard)
                             : ScopeOf(info_ptr->id, shard),
                   0, UINT64_MAX, "meta_fetch/install");
        uint64_t high_water = 0;
        uint64_t installed = 0;
        table->ForEach([&](const Key& key, const MetaEntry& src) {
          if (src.geom_s != 0 && src.geom_s != geom) {
            return;  // skewed source mixed in a foreign shape: not ours
          }
          if (target.Find(key, src.version) != nullptr) {
            return;  // another source already supplied this version
          }
          MetaEntry entry = src;
          // Surviving entries are durable: treat them as committed. Their
          // bytes are not local yet and must be copied from a node that
          // actually holds this entry.
          entry.committed = true;
          entry.acks_pending = 0;
          entry.acks_needed = 0;
          entry.waiters.clear();
          entry.backup_resend.clear();
          entry.data_present = entry.tombstone || entry.len == 0;
          entry.geom_s = geom;
          entry.moved_done = false;  // volatile: re-verified by the driver
          entry.recovery_src = src_slot;
          high_water = std::max(high_water, entry.addr + entry.region_len);
          target.Insert(key, std::move(entry));
          ++installed;
        });
        if (!as_parity) {
          // The allocator must never re-issue addresses of recovered
          // regions: new puts racing with background data recovery would
          // overwrite the surviving replica/parity copies they are
          // recovered from.
          ShardStore& store = StoreOf(state, shard, geom);
          store.next_addr = std::max(store.next_addr, high_water);
          store.EnsureSize(store.next_addr);
          store.write_seq += table->entry_count();  // fencing stays monotonic
        }
        state.log_len += installed;
        if (--*remaining == 0) {
          (*shared_done)();
        }
      });
    };
    SendMetaFetchAttempt(info, shard, geom, src_slot, responded,
                         std::move(reply));
  }
}

void RingServer::SendMetaFetchAttempt(
    const MemgestInfo& info, uint32_t shard, uint32_t geom, int32_t src_slot,
    std::shared_ptr<bool> responded,
    std::function<void(std::shared_ptr<MetadataTable>, uint64_t)> reply) {
  if (*responded || !IsAlive()) {
    return;
  }
  // Resolve the slot's holder fresh on every attempt: a promotion may have
  // re-pointed it to a different node since the last send.
  const auto placement = PlacementFor(geom);
  if (!placement.has_value()) {
    // The shape was retired mid-promotion (a rebalance completed): treat the
    // fetch as answered with nothing so the promotion can finish.
    *responded = true;
    reply(std::make_shared<MetadataTable>(), 0);
    return;
  }
  MetaFetch msg;
  msg.memgest = info.id;
  msg.shard = shard;
  msg.requester = id_;
  msg.geom_s = geom;
  msg.reply = reply;
  const net::NodeId src_node =
      placement->NodeOfSlot(static_cast<uint32_t>(src_slot));
  auto* peer = rt_->server(src_node);
  SendToNode(src_node, kSmallMsgBytes,
             [peer, msg = std::move(msg)]() mutable {
               peer->HandleMetaFetch(std::move(msg));
             });
  const MemgestInfo* info_ptr = &info;
  rt_->simulator().After(
      kMetaFetchRetryNs,
      [this, info_ptr, shard, geom, src_slot, responded,
       reply = std::move(reply)]() mutable {
        SendMetaFetchAttempt(*info_ptr, shard, geom, src_slot,
                             std::move(responded), std::move(reply));
      });
}

void RingServer::HandleMetaFetch(MetaFetch msg) {
  if (!IsAlive()) {
    return;
  }
  const auto& p = rt_->simulator().params();
  cpu().Execute(p.server_base_ns, [this, msg = std::move(msg)]() mutable {
    if (!IsAlive()) {
      return;
    }
    const uint32_t geom = msg.geom_s == 0 ? config_.s : msg.geom_s;
    auto it = memgests_.find(msg.memgest);
    auto table = std::make_shared<MetadataTable>();
    uint64_t log_bytes = 0;
    if (it != memgests_.end()) {
      const MemgestState& state = it->second;
      const MetadataTable* source = nullptr;
      uint64_t source_scope = 0;
      if (auto sit = state.stores.find(GeomKey(geom, msg.shard));
          sit != state.stores.end()) {
        source = &sit->second.meta;
        source_scope = ScopeOf(msg.memgest, msg.shard);
      } else if (auto git = state.parity.find(GeomKey(geom, msg.shard / geom));
                 git != state.parity.end()) {
        auto pit = git->second.shard_meta.find(msg.shard);
        if (pit != git->second.shard_meta.end()) {
          source = &pit->second;
          source_scope = ParityMetaScope(msg.memgest, msg.shard);
        }
      }
      if (source != nullptr) {
        // Whole-table snapshot read on the surviving source node.
        NoteAccess(RegionKind::kMetadata, AccessKind::kRead, source_scope, 0,
                   UINT64_MAX, "meta_fetch/snapshot");
        *table = *source;
      }
      log_bytes = state.log_len * kLogRecordBytes;
    }
    // Serialization cost on the source side.
    const uint64_t wire = table->ApproxBytes() + log_bytes + kSmallMsgBytes;
    cpu().Execute(table->entry_count() *
                      rt_->simulator().params().recovery_entry_ns / 2,
                  [this, msg = std::move(msg), table, wire]() mutable {
      rt_->fabric().Send(id_, msg.requester, wire,
                         [reply = std::move(msg.reply), table, wire] {
                           reply(table, wire);
                         });
    });
  });
}

void RingServer::RebuildVolatileIndex() {
  volatile_index_.Clear();
  if (config_.failed[id_]) {
    return;
  }
  // Walk every store (both shapes during a rebalance) and index the entries
  // of shards this node coordinates *under the store's own shape*: old-shape
  // keys are routed to their old-placement coordinator until migrated (§13).
  for (auto& [id, state] : memgests_) {
    for (auto& [store_key, store] : state.stores) {
      const uint32_t geom = store_key >> 16;
      const uint32_t shard = store_key & 0xffffu;
      const auto placement = PlacementFor(geom);
      const bool mine = placement.has_value() &&
                        placement->CoordinatorOfShard(shard) == id_;
      store.meta.ForEachMutable([&](const Key& key, MetaEntry& entry) {
        // The flag rides along in metadata-fetch snapshots, so entries of
        // shards this node does *not* coordinate must be re-marked as plain
        // mirrors — a stale true would fool the geometry purge later.
        entry.indexed = mine;
        if (mine) {
          volatile_index_.Add(key, entry.version, id);
        }
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Data recovery

void RingServer::EnsureDataPresent(const MemgestInfo& info, uint32_t shard,
                                   uint32_t geom_s, const Key& key,
                                   Version version,
                                   std::function<void(Status)> then) {
  const uint32_t geom = geom_s == 0 ? config_.s : geom_s;
  const auto placement = PlacementFor(geom);
  if (!placement.has_value()) {
    then(FailedPreconditionError("shape no longer live"));
    return;
  }
  MemgestState& state = StateOf(info);
  ShardStore& store = StoreOf(state, shard, geom);
  MetaEntry* entry = store.meta.Find(key, version);
  if (entry == nullptr) {
    then(NotFoundError("entry gone"));
    return;
  }
  if (entry->data_present) {
    then(OkStatus());
    return;
  }
  const uint64_t addr = entry->addr;
  const uint32_t len = entry->len;
  const MemgestInfo* info_ptr = &info;
  const uint64_t op_id = hub().current_op();
  const sim::SimTime recover_start = rt_->simulator().now();

  auto complete = [this, info_ptr, shard, geom, key, version, op_id,
                   recover_start,
                   then = std::move(then)](std::shared_ptr<Buffer> bytes) {
    obs::ScopedOp scope(hub(), op_id);
    hub().tracer().Record("block_recovery", obs::Category::kRecovery, id_,
                          op_id, recover_start, rt_->simulator().now());
    if (!IsAlive()) {
      return;
    }
    if (!bytes) {
      then(DataLossError("no live source for block recovery"));
      return;
    }
    MemgestState& st = StateOf(*info_ptr);
    ShardStore& sh = StoreOf(st, shard, geom);
    MetaEntry* e = sh.meta.Find(key, version);
    if (e == nullptr) {
      then(NotFoundError("entry gone during recovery"));
      return;
    }
    NoteAccess(RegionKind::kHeap, AccessKind::kWrite,
               ScopeOf(info_ptr->id, shard), e->addr,
               e->addr + bytes->size(), "recovery/block_install");
    sh.Write(e->addr, *bytes);
    e->data_present = true;
    ++counters_.blocks_recovered;
    hub().metrics().Inc("recovery.blocks", 1, id_, info_ptr->id,
                        obs::OpKind::kRecovery);
    hub().recorder().Record(obs::RecKind::kRecovery, "block_recovery", id_,
                            op_id, info_ptr->id, version);
    then(OkStatus());
  };

  if (info.desc.kind == SchemeKind::kReplicated) {
    // Copy over one-sided reads (§5.5) — first choice is the slot that
    // supplied this entry's metadata: with quorum commit other survivors
    // may never have applied the write, and their heap bytes at this
    // address would be stale.
    std::vector<uint32_t> candidates;
    if (entry->recovery_src >= 0) {
      candidates.push_back(static_cast<uint32_t>(entry->recovery_src));
    }
    candidates.push_back(placement->SlotOfShard(shard));  // the coordinator
    for (uint32_t slot :
         MemgestRegistry::ReplicaSlotsFor(info, shard, geom, config_.d)) {
      candidates.push_back(slot);
    }
    const int32_t my_slot = placement->SlotOfNode(id_);
    for (uint32_t slot : candidates) {
      if (static_cast<int32_t>(slot) == my_slot) {
        continue;
      }
      const net::NodeId node = placement->NodeOfSlot(slot);
      if (config_.failed[node] || !rt_->fabric().alive(node)) {
        continue;
      }
      auto* peer = rt_->server(node);
      auto bytes = std::make_shared<Buffer>();
      const MemgestId gid = info.id;
      rt_->fabric().Read(
          id_, node, len,
          [peer, bytes, gid, shard, geom, addr, len] {
            *bytes = peer->ReadRawForRecovery(gid, shard, addr, len, geom);
          },
          [complete, bytes]() mutable { complete(bytes); });
      return;
    }
    complete(nullptr);
    return;
  }

  // Erasure coded: ask a usable parity node to decode (§5.5). "The data node
  // sends a recovery request to the parity node responsible for the block."
  const uint32_t group = shard / geom;
  for (uint32_t slot :
       MemgestRegistry::ParitySlotsFor(info, group, geom, config_.d)) {
    const net::NodeId node = placement->NodeOfSlot(slot);
    if (config_.failed[node] || !rt_->fabric().alive(node)) {
      continue;
    }
    auto* peer = rt_->server(node);
    if (!peer->ParityUsable(info.id, group, geom)) {
      continue;
    }
    RecoverBlock msg;
    msg.memgest = info.id;
    msg.shard = shard;
    msg.addr = addr;
    msg.len = len;
    msg.requester = id_;
    msg.op_id = op_id;
    msg.geom_s = geom;
    msg.reply = complete;
    rt_->fabric().Send(id_, node, kSmallMsgBytes,
                       [peer, msg = std::move(msg)]() mutable {
                         peer->HandleRecoverBlock(std::move(msg));
                       });
    return;
  }
  complete(nullptr);
}

void RingServer::HandleRecoverBlock(RecoverBlock msg) {
  if (!IsAlive()) {
    return;
  }
  obs::ScopedOp scope(hub(), msg.op_id);
  const auto& p = rt_->simulator().params();
  cpu().Execute(p.server_base_ns, [this, msg = std::move(msg)]() mutable {
    obs::ScopedOp op_scope(hub(), msg.op_id);
    if (!IsAlive()) {
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(msg.memgest);
    const uint32_t geom = msg.geom_s == 0 ? config_.s : msg.geom_s;
    const uint32_t group = msg.shard / geom;
    const auto placement = PlacementFor(geom);
    const srs::SrsCode* code =
        info == nullptr ? nullptr : rt_->registry().CodeFor(*info, geom);
    const srs::SrsAddressMap* map =
        info == nullptr ? nullptr : rt_->registry().MapFor(*info, geom);
    if (info == nullptr || !placement.has_value() || code == nullptr ||
        map == nullptr || !ParityUsable(msg.memgest, group, geom)) {
      rt_->fabric().Send(id_, msg.requester, kSmallMsgBytes,
                         [reply = msg.reply] { reply(nullptr); });
      return;
    }
    MemgestState& state = StateOf(*info);
    ParityStore& parity = state.parity.at(GeomKey(geom, group));
    const auto segments = map->MapDataRange(msg.shard % geom, msg.addr, msg.len);
    auto result = std::make_shared<Buffer>(msg.len, 0);
    auto remaining = std::make_shared<size_t>(segments.size());
    auto failed = std::make_shared<bool>(false);

    // The block decodes segment by segment: each mini-stripe needs k source
    // chunks gathered from live data nodes (one-sided reads) plus local /
    // remote parity.
    uint64_t result_offset = 0;
    for (const auto& seg : segments) {
      const uint64_t out_off = result_offset;
      result_offset += seg.length;
      auto sources = map->DecodeSources(seg);
      auto collected = std::make_shared<
          std::vector<std::pair<uint32_t, Buffer>>>();
      auto outstanding = std::make_shared<size_t>(0);
      auto finished = std::make_shared<bool>(false);

      const uint32_t k = code->k();
      auto finish_segment = [this, code, seg, out_off, result, remaining,
                             failed, collected, finished, msg, k]() {
        if (*finished) {
          return;
        }
        if (collected->size() < k) {
          return;  // wait for more sources
        }
        *finished = true;
        const auto& pr = rt_->simulator().params();
        const uint64_t decode_cost =
            static_cast<uint64_t>(pr.decode_byte_ns * k * seg.length);
        cpu().Execute(
            decode_cost,
            [this, code, seg, out_off, result, remaining, failed, collected,
             msg] {
          obs::ScopedOp decode_scope(hub(), msg.op_id);
          if (!IsAlive()) {
            return;
          }
          std::vector<std::pair<uint32_t, ByteSpan>> avail;
          for (const auto& [h_row, buf] : *collected) {
            avail.emplace_back(h_row, ByteSpan(buf));
          }
          auto data = code->rs().RecoverData(avail);
          if (!data.ok()) {
            *failed = true;
          } else {
            std::copy((*data)[seg.rs_block].begin(),
                      (*data)[seg.rs_block].end(),
                      result->begin() + out_off);
          }
          if (--*remaining == 0) {
            auto out = *failed ? nullptr : result;
            rt_->fabric().Send(id_, msg.requester,
                               kSmallMsgBytes + (out ? out->size() : 0),
                               [reply = msg.reply, out] { reply(out); });
          }
        });
        if (decode_cost > 0) {
          hub().tracer().Record("decode", obs::Category::kCoding, id_,
                                msg.op_id, cpu().busy_until() - decode_cost,
                                cpu().busy_until());
        }
      };

      uint32_t launched = 0;
      for (const auto& src : sources) {
        if (launched >= k) {
          break;
        }
        if (!src.is_parity) {
          const uint32_t src_shard = group * geom + src.node;
          if (src_shard == msg.shard) {
            continue;  // the block being recovered
          }
          const net::NodeId node = placement->CoordinatorOfShard(src_shard);
          if (config_.failed[node] || !rt_->fabric().alive(node)) {
            continue;
          }
          auto* peer = rt_->server(node);
          auto buf = std::make_shared<Buffer>();
          const MemgestId gid = info->id;
          const uint32_t shard_src = src_shard;
          const uint64_t off = src.offset;
          const uint32_t piece = static_cast<uint32_t>(seg.length);
          const uint32_t h_row = src.h_row;
          ++launched;
          ++*outstanding;
          rt_->fabric().Read(
              id_, node, piece,
              [peer, buf, gid, shard_src, geom, off, piece] {
                *buf = peer->ReadRawForRecovery(gid, shard_src, off, piece,
                                                geom);
              },
              [collected, h_row, buf, outstanding, finish_segment] {
                collected->emplace_back(h_row, std::move(*buf));
                --*outstanding;
                finish_segment();
              });
        } else {
          if (src.node == parity.parity_index) {
            // Local parity bytes: no network involved.
            Buffer local = ReadRawParity(info->id, group, src.offset,
                                         static_cast<uint32_t>(seg.length),
                                         geom);
            collected->emplace_back(src.h_row, std::move(local));
            ++launched;
          } else {
            const net::NodeId node = placement->NodeOfSlot(
                placement->RedundantSlot(group, src.node));
            if (config_.failed[node] || !rt_->fabric().alive(node)) {
              continue;
            }
            auto* peer = rt_->server(node);
            if (!peer->ParityUsable(info->id, group, geom)) {
              continue;
            }
            auto buf = std::make_shared<Buffer>();
            const MemgestId gid = info->id;
            const uint64_t off = src.offset;
            const uint32_t piece = static_cast<uint32_t>(seg.length);
            const uint32_t h_row = src.h_row;
            ++launched;
            ++*outstanding;
            rt_->fabric().Read(
                id_, node, piece,
                [peer, buf, gid, group, geom, off, piece] {
                  *buf = peer->ReadRawParity(gid, group, off, piece, geom);
                },
                [collected, h_row, buf, outstanding, finish_segment] {
                  collected->emplace_back(h_row, std::move(*buf));
                  --*outstanding;
                  finish_segment();
                });
          }
        }
      }
      if (launched < k) {
        // Not enough live sources: the segment is unrecoverable.
        *failed = true;
        if (--*remaining == 0) {
          rt_->fabric().Send(id_, msg.requester, kSmallMsgBytes,
                             [reply = msg.reply] { reply(nullptr); });
        }
        continue;
      }
      finish_segment();  // covers the all-local case
    }
  });
}

void RingServer::RecoverAllData(std::function<void()> done) {
  // Collect every entry whose bytes are missing, across coordinator and
  // replica stores.
  struct StoreTask {
    const MemgestInfo* info;
    uint32_t shard;
    uint32_t geom;
    std::vector<std::pair<Key, Version>> entries;
  };
  auto tasks = std::make_shared<std::vector<StoreTask>>();
  auto parity_rebuilds = std::make_shared<
      std::vector<std::pair<const MemgestInfo*, uint32_t>>>();
  for (auto& [id, state] : memgests_) {
    if (rt_->options().background_data_recovery) {
      for (auto& [store_key, store] : state.stores) {
        StoreTask task{state.info, store_key & 0xffffu, store_key >> 16, {}};
        store.meta.ForEach([&](const Key& key, const MetaEntry& entry) {
          if (!entry.data_present) {
            task.entries.emplace_back(key, entry.version);
          }
        });
        if (!task.entries.empty()) {
          tasks->push_back(std::move(task));
        }
      }
    }
    for (auto& [pkey, parity] : state.parity) {
      if (!parity.rebuilt) {
        parity_rebuilds->push_back({state.info, pkey});
      }
    }
  }
  auto remaining =
      std::make_shared<size_t>(tasks->size() + parity_rebuilds->size());
  if (*remaining == 0) {
    done();
    return;
  }
  auto step = [remaining, done = std::move(done)] {
    if (--*remaining == 0) {
      done();
    }
  };
  for (auto& task : *tasks) {
    RecoverStoreEntries(*task.info, task.shard, task.geom,
                        std::move(task.entries), 0, step);
  }
  for (const auto& [info, pkey] : *parity_rebuilds) {
    RebuildParity(*info, pkey, step);
  }
}

void RingServer::RecoverStoreEntries(
    const MemgestInfo& info, uint32_t shard, uint32_t geom_s,
    std::vector<std::pair<Key, Version>> todo, size_t next,
    std::function<void()> done) {
  if (!IsAlive()) {
    return;
  }
  if (next >= todo.size()) {
    done();
    return;
  }
  const auto [key, version] = todo[next];
  const MemgestInfo* info_ptr = &info;
  EnsureDataPresent(info, shard, geom_s, key, version,
                    [this, info_ptr, shard, geom_s, todo = std::move(todo),
                     next, done = std::move(done)](Status) mutable {
                      RecoverStoreEntries(*info_ptr, shard, geom_s,
                                          std::move(todo), next + 1,
                                          std::move(done));
                    });
}

void RingServer::RebuildParity(const MemgestInfo& info, uint32_t pkey,
                               std::function<void()> done) {
  assert(StateOf(info).parity.count(pkey) > 0);
  const uint32_t geom = pkey >> 16;
  const uint32_t group = pkey & 0xffffu;
  const auto placement_now = PlacementFor(geom);
  if (!placement_now.has_value()) {
    done();  // shape retired mid-recovery; the store will be purged
    return;
  }
  const sim::SimTime rebuild_start = rt_->simulator().now();

  struct ShardSnapshot {
    std::shared_ptr<Buffer> bytes;
    uint64_t seq = 0;
    uint64_t extent = 0;
  };
  auto snaps = std::make_shared<std::vector<ShardSnapshot>>(geom);
  auto remaining = std::make_shared<size_t>(geom);
  const MemgestInfo* info_ptr = &info;

  std::function<void()> assemble = [this, info_ptr, geom, group, pkey, snaps,
                                    rebuild_start, done = std::move(done)] {
    if (!IsAlive()) {
      return;
    }
    uint64_t total_bytes = 0;
    for (const auto& snap : *snaps) {
      total_bytes += snap.extent;
    }
    const auto& p = rt_->simulator().params();
    const uint64_t gf_cost =
        static_cast<uint64_t>(p.gf_byte_ns * total_bytes);
    cpu().Execute(
        p.server_base_ns + gf_cost,
        [this, info_ptr, geom, group, pkey, snaps, rebuild_start, done] {
      if (!IsAlive()) {
        return;
      }
      const srs::SrsCode* code = rt_->registry().CodeFor(*info_ptr, geom);
      const srs::SrsAddressMap* map = rt_->registry().MapFor(*info_ptr, geom);
      const auto placement = PlacementFor(geom);
      if (code == nullptr || map == nullptr || !placement.has_value()) {
        done();  // shape retired mid-rebuild
        return;
      }
      MemgestState& st = StateOf(*info_ptr);
      ParityStore& par = st.parity.at(pkey);
      // The rebuild rewrites the entire strip in place.
      NoteAccess(RegionKind::kParityStrip, AccessKind::kWrite,
                 ScopeOf(info_ptr->id, group), 0, UINT64_MAX,
                 "parity_rebuild/strip");
      std::fill(par.mem.begin(), par.mem.end(), 0);
      // Collect every (coefficient, source, parity range) contribution
      // first, then fuse: segments from different shards that map to the
      // same parity range (same mini-stripe cell) are accumulated in one
      // multi-source pass so each parity cache line is touched once instead
      // of once per shard.
      struct Contribution {
        uint64_t parity_offset;
        uint64_t length;
        uint8_t coeff;
        const uint8_t* src;
      };
      std::vector<Contribution> contribs;
      uint64_t max_extent = 0;
      for (uint32_t sigma = 0; sigma < snaps->size(); ++sigma) {
        const auto& snap = (*snaps)[sigma];
        if (!snap.bytes || snap.bytes->empty()) {
          continue;
        }
        for (const auto& seg :
             map->MapDataRange(sigma, 0, snap.bytes->size())) {
          contribs.push_back(
              {seg.parity_offset, seg.length,
               code->rs().Coefficient(par.parity_index, seg.rs_block),
               snap.bytes->data() + seg.node_offset});
          max_extent = std::max(max_extent, seg.parity_offset + seg.length);
        }
      }
      par.EnsureSize(max_extent);
      std::sort(contribs.begin(), contribs.end(),
                [](const Contribution& a, const Contribution& b) {
                  return a.parity_offset != b.parity_offset
                             ? a.parity_offset < b.parity_offset
                             : a.length < b.length;
                });
      std::vector<uint8_t> coeffs;
      std::vector<const uint8_t*> srcs;
      for (size_t i = 0; i < contribs.size();) {
        size_t j = i;
        coeffs.clear();
        srcs.clear();
        while (j < contribs.size() &&
               contribs[j].parity_offset == contribs[i].parity_offset &&
               contribs[j].length == contribs[i].length) {
          coeffs.push_back(contribs[j].coeff);
          srcs.push_back(contribs[j].src);
          ++j;
        }
        gf::MulAddRegionMulti(
            coeffs, std::span<const uint8_t* const>(srcs),
            MutableByteSpan(par.mem.data() + contribs[i].parity_offset,
                            contribs[i].length));
        i = j;
      }
      par.rebuilt = true;
      // Drain updates queued during the rebuild. The write fence keeps the
      // parity exact: deltas already contained in a snapshot are skipped,
      // but their metadata and acknowledgment still flow.
      auto queued = std::move(par.queued);
      par.queued.clear();
      for (auto& upd : queued) {
        if (upd.seq > (*snaps)[upd.shard % geom].seq) {
          ApplyParityBytes(*info_ptr, upd);
        }
        MetaEntry entry;
        entry.version = upd.version;
        entry.addr = upd.addr;
        entry.len = upd.len;
        entry.region_len = upd.region_len;
        entry.tombstone = upd.tombstone;
        entry.data_present = true;
        entry.geom_s = geom;
        entry.moved = upd.moved;
        par.shard_meta[upd.shard].Insert(upd.key, std::move(entry));
        Ack ack{upd.memgest, upd.shard, upd.key, upd.version,
                upd.parity_index, geom};
        const net::NodeId coord = placement->CoordinatorOfShard(upd.shard);
        auto* peer = rt_->server(coord);
        rt_->fabric().Write(id_, coord, kAckBytes,
                            [peer, ack] { peer->ApplyAck(ack); }, nullptr);
      }
      hub().tracer().Record("parity_rebuild", obs::Category::kRecovery, id_,
                            0, rebuild_start, rt_->simulator().now());
      hub().metrics().Inc("recovery.parity_rebuilds", 1, id_, info_ptr->id,
                          obs::OpKind::kRecovery);
      hub().recorder().Record(obs::RecKind::kRecovery, "parity_rebuild", id_,
                              0, info_ptr->id);
      RING_LOG(kInfo) << "node " << id_ << " rebuilt parity for memgest "
                      << info_ptr->id;
      done();
    });
    if (gf_cost > 0) {
      hub().tracer().Record("parity_encode", obs::Category::kCoding, id_, 0,
                            cpu().busy_until() - gf_cost, cpu().busy_until());
    }
  };

  for (uint32_t sigma = 0; sigma < geom; ++sigma) {
    const uint32_t shard = group * geom + sigma;
    const net::NodeId node = placement_now->CoordinatorOfShard(shard);
    if (config_.failed[node] || !rt_->fabric().alive(node)) {
      (*snaps)[sigma] = ShardSnapshot{};
      if (--*remaining == 0) {
        assemble();
      }
      continue;
    }
    auto* peer = rt_->server(node);
    const uint64_t extent = peer->HeapExtent(info.id, shard, geom);
    auto snap = std::make_shared<ShardSnapshot>();
    snap->extent = extent;
    snap->bytes = std::make_shared<Buffer>();
    const MemgestId gid = info.id;
    rt_->fabric().Read(
        id_, node, extent,
        [peer, snap, gid, shard, geom, extent] {
          // Bytes and fence captured atomically at the source.
          *snap->bytes = peer->ReadRawForRecovery(
              gid, shard, 0, static_cast<uint32_t>(extent), geom);
          snap->seq = peer->WriteSeq(gid, shard, geom);
        },
        [snaps, snap, sigma, remaining, assemble] {
          (*snaps)[sigma] = *snap;
          if (--*remaining == 0) {
            assemble();
          }
        });
  }
}

void RingServer::NotifyRedundancyRecovered() {
  for (auto& [gid, state] : memgests_) {
    const MemgestInfo* info = state.info;
    if (info == nullptr) {
      continue;
    }
    if (info->desc.kind == SchemeKind::kReplicated) {
      // Announce under every shape this node has a replica role in.
      std::vector<uint32_t> shapes{config_.s};
      if (config_.rebalancing()) {
        shapes.push_back(config_.prev_s);
      }
      for (const uint32_t geom : shapes) {
        const auto placement = PlacementFor(geom);
        if (!placement.has_value()) {
          continue;
        }
        const int32_t my_slot = placement->SlotOfNode(id_);
        if (my_slot < 0) {
          continue;
        }
        for (uint32_t shard = 0; shard < placement->num_shards(); ++shard) {
          const auto slots = MemgestRegistry::ReplicaSlotsFor(
              *info, shard, geom, config_.d);
          const auto it = std::find(slots.begin(), slots.end(),
                                    static_cast<uint32_t>(my_slot));
          if (it == slots.end()) {
            continue;
          }
          RedundancyRecovered msg{gid, shard,
                                  static_cast<uint32_t>(it - slots.begin()),
                                  geom};
          const net::NodeId coord = placement->CoordinatorOfShard(shard);
          auto* peer = rt_->server(coord);
          rt_->fabric().Send(id_, coord, kSmallMsgBytes, [peer, msg] {
            peer->HandleRedundancyRecovered(msg);
          });
        }
      }
    } else {
      for (const auto& [pkey, parity] : state.parity) {
        const uint32_t geom = pkey >> 16;
        const uint32_t group = pkey & 0xffffu;
        const auto placement = PlacementFor(geom);
        if (!placement.has_value()) {
          continue;
        }
        for (uint32_t sigma = 0; sigma < geom; ++sigma) {
          const uint32_t shard = group * geom + sigma;
          RedundancyRecovered msg{gid, shard, parity.parity_index, geom};
          const net::NodeId coord = placement->CoordinatorOfShard(shard);
          auto* peer = rt_->server(coord);
          rt_->fabric().Send(id_, coord, kSmallMsgBytes, [peer, msg] {
            peer->HandleRedundancyRecovered(msg);
          });
        }
      }
    }
  }
}

void RingServer::HandleRedundancyRecovered(RedundancyRecovered msg) {
  if (!IsAlive()) {
    return;
  }
  cpu().Execute(rt_->simulator().params().server_base_ns, [this, msg] {
    if (!IsAlive()) {
      return;
    }
    const uint32_t geom = msg.geom_s == 0 ? config_.s : msg.geom_s;
    const auto placement = PlacementFor(geom);
    if (!placement.has_value() ||
        placement->CoordinatorOfShard(msg.shard) != id_) {
      return;
    }
    const MemgestInfo* info = rt_->registry().Get(msg.memgest);
    if (info == nullptr) {
      return;
    }
    MemgestState& state = StateOf(*info);
    ShardStore& store = StoreOf(state, msg.shard, geom);
    // The recovered node now covers all durable bytes of this shard: count
    // it as an acknowledgment for every entry still waiting on it.
    std::vector<std::pair<Key, Version>> to_commit;
    const uint32_t bit = 1u << msg.ordinal;
    store.meta.ForEachMutable([&](const Key& key, MetaEntry& entry) {
      if (entry.committed || (entry.acks_pending & bit) == 0) {
        return;
      }
      entry.acks_pending &= ~bit;
      if (entry.acks_needed > 0 && --entry.acks_needed == 0) {
        to_commit.emplace_back(key, entry.version);
      }
    });
    for (const auto& [key, version] : to_commit) {
      CommitEntry(*info, msg.shard, key, version, geom);
    }
  });
}

}  // namespace ring
