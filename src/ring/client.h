// RingClient: the client-side library (paper §5 API).
//
// Clients map keys to coordinators with `h(key) mod s` and talk to them
// directly over the fabric. When a request times out (coordinator failure),
// the client re-sends it to every KVS node — the paper's multicast — and
// only the responsible node answers (§5.5).
#ifndef RING_SRC_RING_CLIENT_H_
#define RING_SRC_RING_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/ring/runtime.h"
#include "src/ring/server.h"

namespace ring {

class RingClient {
 public:
  // `index` selects one of the runtime's client endpoints.
  RingClient(RingRuntime* runtime, uint32_t index);

  net::NodeId node() const { return node_; }

  using PutCallback = std::function<void(Status, Version)>;
  using GetCallback = std::function<void(GetResult)>;
  using StatusCallback = std::function<void(Status)>;
  using AdminCallback = std::function<void(Result<MemgestId>)>;

  // Control-plane tap on the op issue path: (key, op, memgest, value bytes).
  // `memgest` is the put/move target (kDefaultMemgest when not applicable)
  // and `bytes` the value size (0 when unknown). Observers run at issue time
  // in zero simulated time and must not call back into the client.
  using AccessObserver =
      std::function<void(const Key&, obs::OpKind, MemgestId, uint64_t)>;
  void set_access_observer(AccessObserver observer) {
    access_observer_ = std::move(observer);
  }

  // put(key, object[, memgestID]) — paper §5.
  void Put(const Key& key, std::shared_ptr<Buffer> value,
           MemgestId memgest, PutCallback cb);
  void Put(const Key& key, std::shared_ptr<Buffer> value, PutCallback cb) {
    Put(key, std::move(value), kDefaultMemgest, std::move(cb));
  }
  void Get(const Key& key, GetCallback cb);
  void Move(const Key& key, MemgestId dst, PutCallback cb);
  void Delete(const Key& key, StatusCallback cb);

  // Storage scheme management (leader-processed).
  void CreateMemgest(const MemgestDescriptor& desc, AdminCallback cb);
  void DeleteMemgest(MemgestId id, AdminCallback cb);
  void SetDefaultMemgest(MemgestId id, AdminCallback cb);
  void GetMemgestDescriptor(
      MemgestId id, std::function<void(Result<MemgestDescriptor>)> cb);

  // ---- statistics ----
  uint64_t completed() const { return completed_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t hedges() const { return hedges_; }
  // Requests in flight (issued, not yet answered).
  size_t outstanding() const { return outstanding_.size(); }
  // Re-reads the cluster configuration (normally done lazily on retry;
  // benches call it after a controlled failover so measurements exclude the
  // stale-routing discovery timeout).
  void RefreshConfigNow() { RefreshConfig(); }
  // Per-operation latencies in microseconds, measured NIC-to-NIC (request
  // posted -> reply delivered), matching the paper's measurement point.
  Samples& latencies() { return latencies_; }
  void ResetStats() {
    completed_ = 0;
    timeouts_ = 0;
    latencies_.Clear();
  }

 private:
  struct Outstanding {
    bool done = false;
    uint32_t retries = 0;
    // Absolute give-up time (0: bounded by the retry count only).
    sim::SimTime deadline = 0;
    // Previous backoff wait; seeds the decorrelated-jitter draw.
    uint64_t prev_wait = 0;
    std::function<void(bool broadcast)> send;
    std::function<void()> fail;
  };

  sim::CpuWorker& cpu() { return rt_->fabric().cpu(node_); }
  uint32_t ShardFor(const Key& key) const;
  net::NodeId CoordinatorFor(const Key& key) const;
  void RefreshConfig();
  // Registers the request, sends it, and arms the retry timer. Hedgeable
  // requests (side-effect-free gets) may additionally multicast early when
  // client_hedge_delay_ns is set.
  void Launch(uint64_t req_id, std::function<void(bool)> send,
              std::function<void()> fail, bool hedgeable = false);
  void CheckTimeout(uint64_t req_id);
  // Next retry wait: flat once, then decorrelated jitter up to the cap.
  uint64_t NextRetryWait(Outstanding* o);
  // Wraps a user callback: completes the request, records latency, and
  // closes the operation's end-to-end trace span.
  template <typename Fn>
  auto Complete(uint64_t req_id, sim::SimTime start, const char* opname,
                obs::OpKind kind, MemgestId memgest, Fn cb);
  // Trace id for one of this client's requests.
  uint64_t OpId(uint64_t req_id) const {
    return obs::MakeOpId(node_, static_cast<uint32_t>(req_id));
  }

  void NotifyObserver(const Key& key, obs::OpKind op, MemgestId memgest,
                      uint64_t bytes) {
    if (access_observer_) {
      access_observer_(key, op, memgest, bytes);
    }
  }

  RingRuntime* rt_;
  net::NodeId node_;
  AccessObserver access_observer_;
  consensus::ClusterConfig config_;
  uint64_t next_req_ = 1;
  // Keyed find/emplace/erase only (never iterated): deterministic despite
  // the unordered layout, and O(1) on the per-request hot path.
  std::unordered_map<uint64_t, Outstanding> outstanding_;
  uint64_t completed_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t hedges_ = 0;
  // Private backoff-jitter stream: client retry spacing must not perturb
  // (or be perturbed by) the simulator's global rng.
  Rng rng_;
  Samples latencies_;
};

}  // namespace ring

#endif  // RING_SRC_RING_CLIENT_H_
