// RingCluster: the top-level convenience facade — one simulated deployment
// plus synchronous wrappers that drive the simulator until an operation
// completes. This is the entry point examples and tests use.
#ifndef RING_SRC_RING_CLUSTER_H_
#define RING_SRC_RING_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ring/client.h"
#include "src/ring/runtime.h"

namespace ring {

class RingCluster {
 public:
  explicit RingCluster(RingOptions options = {});

  RingRuntime& runtime() { return *runtime_; }
  sim::Simulator& simulator() { return runtime_->simulator(); }
  RingClient& client(uint32_t i = 0) { return *clients_[i]; }
  RingServer& server(net::NodeId id) { return *runtime_->server(id); }
  uint32_t s() const { return runtime_->options().s; }

  // ---- synchronous wrappers (drive the simulation until completion) ----
  Result<MemgestId> CreateMemgest(const MemgestDescriptor& desc);
  Status SetDefaultMemgest(MemgestId id);
  Status DeleteMemgest(MemgestId id);
  Result<MemgestDescriptor> GetMemgestDescriptor(MemgestId id);

  Status Put(const Key& key, const Buffer& value,
             MemgestId memgest = kDefaultMemgest, uint32_t client = 0);
  Status Put(const Key& key, const std::string& value,
             MemgestId memgest = kDefaultMemgest, uint32_t client = 0) {
    return Put(key, ToBuffer(value), memgest, client);
  }
  Result<Buffer> Get(const Key& key, uint32_t client = 0);
  Status Move(const Key& key, MemgestId dst, uint32_t client = 0);
  Status Delete(const Key& key, uint32_t client = 0);

  // Advances simulated time.
  void RunFor(sim::SimTime duration);

  // Fail-stop a node; detection via heartbeats (`force_detect` skips the
  // timeout, as the paper's recovery measurements do).
  void KillNode(net::NodeId node, bool force_detect = false);

  // Crash-recovery: brings a killed node back memory-less; it petitions the
  // cluster for readmission and rebuilds via the spare/recovery path.
  void RestartNode(net::NodeId node) { runtime_->RestartNode(node); }

  // Runs the simulation until `done` returns true (or the event budget is
  // exhausted). Returns true on success.
  bool RunUntilDone(const std::function<bool()>& done,
                    uint64_t max_events = 200'000'000);

 private:
  std::unique_ptr<RingRuntime> runtime_;
  std::vector<std::unique_ptr<RingClient>> clients_;
};

}  // namespace ring

#endif  // RING_SRC_RING_CLUSTER_H_
