// Model-checker introspection (src/mc): a canonical digest of a server's
// committed state, and the wedged-write probe. Kept out of server.cc so the
// hot protocol paths and the checker-only code evolve independently.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ring/server.h"

namespace ring {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(uint64_t& h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
}

void HashU64(uint64_t& h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }

// One committed entry, flattened to a sortable canonical form. Heap
// addresses are deliberately absent: allocation order differs between
// equivalent interleavings while the visible value does not.
struct DigestTuple {
  MemgestId gid;
  uint32_t store_key;
  Key key;
  Version version;
  bool tombstone;
  uint64_t value_hash;

  bool operator<(const DigestTuple& o) const {
    if (gid != o.gid) return gid < o.gid;
    if (store_key != o.store_key) return store_key < o.store_key;
    if (key != o.key) return key < o.key;
    return version < o.version;
  }
};

}  // namespace

uint64_t RingServer::McStateDigest() const {
  std::vector<DigestTuple> tuples;
  for (const auto& [gid, state] : memgests_) {
    for (const auto& [store_key, store] : state.stores) {
      store.meta.ForEach([&](const Key& key, const MetaEntry& e) {
        if (!e.committed || e.moved) {
          return;  // only durable, visible state enters the fingerprint
        }
        uint64_t vh = kFnvOffset;
        if (e.data_present && !e.tombstone) {
          const ByteSpan bytes = store.Read(e.addr, e.len);
          HashBytes(vh, bytes.data(), bytes.size());
        }
        tuples.push_back(DigestTuple{gid, store_key, key, e.version,
                                     e.tombstone, vh});
      });
    }
  }
  std::sort(tuples.begin(), tuples.end());
  uint64_t h = kFnvOffset;
  HashU64(h, tuples.size());
  for (const DigestTuple& t : tuples) {
    HashU64(h, t.gid);
    HashU64(h, t.store_key);
    HashBytes(h, t.key.data(), t.key.size());
    HashU64(h, t.version);
    HashU64(h, t.tombstone ? 1 : 0);
    HashU64(h, t.value_hash);
  }
  return h;
}

uint64_t RingServer::PendingWrites() const {
  uint64_t pending = 0;
  for (const auto& [gid, state] : memgests_) {
    for (const auto& [store_key, store] : state.stores) {
      store.meta.ForEach([&](const Key&, const MetaEntry& e) {
        if (!e.committed && e.acks_pending != 0) {
          ++pending;
        }
      });
    }
  }
  return pending;
}

}  // namespace ring
