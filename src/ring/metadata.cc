#include "src/ring/metadata.h"

#include <algorithm>

namespace ring {

std::string MemgestDescriptor::ToString() const {
  if (kind == SchemeKind::kReplicated) {
    return "Rep(" + std::to_string(r) + ")";
  }
  return "SRS(" + std::to_string(k) + "," + std::to_string(m) + ")";
}

MetaEntry* MetadataTable::Find(const Key& key, Version version) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return nullptr;
  }
  auto vit = it->second.find(version);
  return vit == it->second.end() ? nullptr : &vit->second;
}

const MetaEntry* MetadataTable::Find(const Key& key, Version version) const {
  return const_cast<MetadataTable*>(this)->Find(key, version);
}

MetaEntry* MetadataTable::Highest(const Key& key) {
  auto it = table_.find(key);
  if (it == table_.end() || it->second.empty()) {
    return nullptr;
  }
  return &it->second.rbegin()->second;
}

MetaEntry& MetadataTable::Insert(const Key& key, MetaEntry entry) {
  auto& versions = table_[key];
  const uint64_t version = entry.version;
  auto [it, inserted] = versions.insert_or_assign(version, std::move(entry));
  if (inserted) {
    ++entry_count_;
  }
  return it->second;
}

void MetadataTable::Erase(const Key& key, Version version) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return;
  }
  if (it->second.erase(version) > 0) {
    --entry_count_;
  }
  if (it->second.empty()) {
    table_.erase(it);
  }
}

void MetadataTable::ForEach(
    const std::function<void(const Key&, const MetaEntry&)>& fn) const {
  // Reviewed: visit order is a pure function of the deterministic
  // insert/erase sequence (std::hash is seed-free), so identical simulated
  // runs iterate identically.
  // ring-lint: ok(unordered-iter)
  for (const auto& [key, versions] : table_) {
    for (const auto& [version, entry] : versions) {
      fn(key, entry);
    }
  }
}

void MetadataTable::ForEachMutable(
    const std::function<void(const Key&, MetaEntry&)>& fn) {
  // ring-lint: ok(unordered-iter) same argument as ForEach above.
  for (auto& [key, versions] : table_) {
    for (auto& [version, entry] : versions) {
      fn(key, entry);
    }
  }
}

std::vector<Version> MetadataTable::VersionsOf(const Key& key) const {
  std::vector<Version> out;
  auto it = table_.find(key);
  if (it != table_.end()) {
    for (const auto& [version, entry] : it->second) {
      out.push_back(version);
    }
  }
  return out;
}

void MetadataTable::Clear() {
  table_.clear();
  entry_count_ = 0;
}

std::optional<VolatileIndex::Ref> VolatileIndex::Highest(
    const Key& key) const {
  auto it = index_.find(key);
  if (it == index_.end() || it->second.empty()) {
    return std::nullopt;
  }
  return it->second.front();
}

Version VolatileIndex::NextVersion(const Key& key) const {
  auto ref = Highest(key);
  return ref ? ref->version + 1 : 1;
}

void VolatileIndex::Add(const Key& key, Version version, MemgestId memgest) {
  auto& refs = index_[key];
  const Ref ref{version, memgest};
  // Insert keeping descending order by version.
  auto pos = std::lower_bound(
      refs.begin(), refs.end(), version,
      [](const Ref& a, Version v) { return a.version > v; });
  if (pos != refs.end() && pos->version == version) {
    *pos = ref;  // idempotent re-add (e.g. during recovery)
    return;
  }
  refs.insert(pos, ref);
}

void VolatileIndex::Remove(const Key& key, Version version) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return;
  }
  auto& refs = it->second;
  refs.erase(std::remove_if(refs.begin(), refs.end(),
                            [version](const Ref& r) {
                              return r.version == version;
                            }),
             refs.end());
  if (refs.empty()) {
    index_.erase(it);
  }
}

std::vector<VolatileIndex::Ref> VolatileIndex::Refs(const Key& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? std::vector<Ref>{} : it->second;
}

}  // namespace ring
