#include "src/ring/cluster.h"

namespace ring {

RingCluster::RingCluster(RingOptions options)
    : runtime_(std::make_unique<RingRuntime>(options)) {
  for (uint32_t i = 0; i < options.clients; ++i) {
    clients_.push_back(std::make_unique<RingClient>(runtime_.get(), i));
  }
}

bool RingCluster::RunUntilDone(const std::function<bool()>& done,
                               uint64_t max_events) {
  auto& queue = runtime_->simulator().queue();
  const uint64_t start = queue.executed();
  while (!done()) {
    if (queue.executed() - start > max_events || !queue.RunNext()) {
      return false;
    }
  }
  return true;
}

Result<MemgestId> RingCluster::CreateMemgest(const MemgestDescriptor& desc) {
  Result<MemgestId> result = InternalError("createMemgest did not complete");
  bool done = false;
  client(0).CreateMemgest(desc, [&](Result<MemgestId> r) {
    result = std::move(r);
    done = true;
  });
  RunUntilDone([&] { return done; });
  return result;
}

Status RingCluster::SetDefaultMemgest(MemgestId id) {
  Status status = InternalError("setDefaultMemgest did not complete");
  bool done = false;
  client(0).SetDefaultMemgest(id, [&](Result<MemgestId> r) {
    status = r.ok() ? OkStatus() : r.status();
    done = true;
  });
  RunUntilDone([&] { return done; });
  return status;
}

Status RingCluster::DeleteMemgest(MemgestId id) {
  Status status = InternalError("deleteMemgest did not complete");
  bool done = false;
  client(0).DeleteMemgest(id, [&](Result<MemgestId> r) {
    status = r.ok() ? OkStatus() : r.status();
    done = true;
  });
  RunUntilDone([&] { return done; });
  return status;
}

Result<MemgestDescriptor> RingCluster::GetMemgestDescriptor(MemgestId id) {
  Result<MemgestDescriptor> result =
      InternalError("getMemgestDescriptor did not complete");
  bool done = false;
  client(0).GetMemgestDescriptor(id, [&](Result<MemgestDescriptor> r) {
    result = std::move(r);
    done = true;
  });
  RunUntilDone([&] { return done; });
  return result;
}

Status RingCluster::Put(const Key& key, const Buffer& value,
                        MemgestId memgest, uint32_t client_index) {
  Status status = InternalError("put did not complete");
  bool done = false;
  client(client_index)
      .Put(key, std::make_shared<Buffer>(value), memgest,
           [&](Status s, Version) {
             status = std::move(s);
             done = true;
           });
  RunUntilDone([&] { return done; });
  return status;
}

Result<Buffer> RingCluster::Get(const Key& key, uint32_t client_index) {
  Result<Buffer> result = InternalError("get did not complete");
  bool done = false;
  client(client_index).Get(key, [&](GetResult r) {
    if (r.status.ok()) {
      result = r.data ? *r.data : Buffer{};
    } else {
      result = r.status;
    }
    done = true;
  });
  RunUntilDone([&] { return done; });
  return result;
}

Status RingCluster::Move(const Key& key, MemgestId dst,
                         uint32_t client_index) {
  Status status = InternalError("move did not complete");
  bool done = false;
  client(client_index).Move(key, dst, [&](Status s, Version) {
    status = std::move(s);
    done = true;
  });
  RunUntilDone([&] { return done; });
  return status;
}

Status RingCluster::Delete(const Key& key, uint32_t client_index) {
  Status status = InternalError("delete did not complete");
  bool done = false;
  client(client_index).Delete(key, [&](Status s) {
    status = std::move(s);
    done = true;
  });
  RunUntilDone([&] { return done; });
  return status;
}

void RingCluster::RunFor(sim::SimTime duration) {
  runtime_->simulator().RunUntil(runtime_->simulator().now() + duration);
}

void RingCluster::KillNode(net::NodeId node, bool force_detect) {
  if (force_detect) {
    runtime_->membership().ForceDetect(node);
  } else {
    runtime_->membership().InjectFailure(node);
  }
}

}  // namespace ring
