// Time-series layer: samples registered metrics into fixed-width sim-time
// windows — counter deltas for counters, compact per-window log2 histograms
// for latencies — from which per-window SLIs (goodput, error rate, p50/p99,
// availability) are derived. Memory is bounded by construction: each tracked
// series is a fixed ring of `capacity_windows` slots (older windows are
// overwritten), and at most `max_series` distinct {name,node,memgest,op}
// series are materialised (excess series are counted, not stored).
//
// The layer is fed by Metrics (counter/histogram recording forwards here
// after the usual registry update) and consults the hub clock only while
// enabled; it never schedules events and never touches the simulation RNG,
// so enabling it cannot perturb the simulation.
#ifndef RING_SRC_OBS_TIMESERIES_H_
#define RING_SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace ring::obs {

// Metric names the SLI derivation is built on. The client records one
// ops_ok/op_errors increment and one op_latency_ns sample per completed
// operation (gets carry memgest == kNoMemgest; a memgest-filtered SLI query
// therefore only sees puts/deletes/moves for that memgest).
inline constexpr char kSliOpsOk[] = "client.ops_ok";
inline constexpr char kSliOpErrors[] = "client.op_errors";
inline constexpr char kSliOpLatencyNs[] = "client.op_latency_ns";

class TimeSeries {
 public:
  struct Options {
    uint64_t window_ns = 1'000'000;  // 1 ms of sim time per window
    size_t capacity_windows = 512;   // ring depth per series
    size_t max_series = 256;         // cap on distinct materialised series
  };

  // Compact per-window log2 histogram (same bucket layout as Histogram,
  // narrower counters: one window never sees > 4e9 samples).
  struct WindowHist {
    uint32_t buckets[Histogram::kBuckets] = {};
    uint32_t count = 0;
    uint64_t sum = 0;

    void Observe(uint64_t value);
    void MergeFrom(const WindowHist& other);
    void Clear();
    // Geometric-midpoint percentile estimate (see Histogram::ApproxPercentile
    // for the error bound); 0 for an empty window.
    uint64_t Percentile(double p) const;
  };

  // One tracked metric key: a ring of `capacity` windows. Window w lives in
  // slot w % capacity; [first, last] is the retained (non-evicted) range.
  struct Series {
    bool is_hist = false;
    bool any = false;       // false until the first event lands
    uint64_t first = 0;     // oldest retained window index
    uint64_t last = 0;      // newest written window index
    size_t capacity = 0;
    std::vector<uint64_t> counts;   // counter-delta slots (!is_hist)
    std::vector<WindowHist> hists;  // latency slots (is_hist)

    // 0 / nullptr outside the retained range.
    uint64_t CountAt(uint64_t w) const;
    const WindowHist* HistAt(uint64_t w) const;
  };

  // One derived SLI row (one window, aggregated across nodes).
  struct SliWindow {
    uint64_t window = 0;    // index; window start = window * window_ns
    uint64_t start_ns = 0;
    uint64_t ops_ok = 0;
    uint64_t ops_err = 0;
    double goodput_per_sec = 0.0;
    double error_rate = 0.0;  // err / (ok + err), 0 when idle
    uint64_t p50_ns = 0;
    uint64_t p99_ns = 0;
    bool available = true;
  };

  struct SliOptions {
    uint32_t memgest = kNoMemgest;  // kNoMemgest = all memgests
    OpKind op = OpKind::kNone;      // kNone = all op kinds
    uint64_t from_ns = 0;
    uint64_t until_ns = UINT64_MAX;
    // A window is available iff ops_ok >= max(1, fraction * baseline) where
    // baseline is the median ops_ok over non-empty windows in range —
    // deterministic and scale-free. min_ok_threshold > 0 overrides with an
    // absolute per-window floor.
    double availability_fraction = 0.5;
    uint64_t min_ok_threshold = 0;
  };

  // Configure before Enable; rejected (no-op) once series exist.
  void Configure(const Options& options);
  const Options& options() const { return options_; }
  uint64_t window_ns() const { return options_.window_ns; }

  bool enabled() const { return enabled_; }
  void Enable(bool on) { enabled_ = on; }
  void SetClock(std::function<uint64_t()> clock);

  // Register metric names to window. Untracked names are ignored at record
  // time. TrackSliDefaults registers the client SLI trio plus the protocol
  // anomaly counters the post-mortem report cares about.
  void TrackCounter(const char* name);
  void TrackLatency(const char* name);
  void TrackSliDefaults();

  // Recording entry points, called by Metrics after its own update.
  void OnCounter(const MetricKey& key, uint64_t delta);
  void OnSample(const MetricKey& key, uint64_t value);

  // Series dropped because max_series was reached.
  uint64_t dropped_series() const { return dropped_series_; }
  const std::map<MetricKey, Series>& series() const { return series_; }

  // Derived per-window SLIs over the retained (and requested) range,
  // aggregated across nodes; empty when no SLI series exist.
  std::vector<SliWindow> Slis(const SliOptions& opt) const;

  void Clear();

 private:
  Series* Resolve(const MetricKey& key, bool is_hist);
  // Slot for window w, evicting/zeroing as the ring advances; nullptr when
  // w predates the retained range.
  template <typename SlotFn>
  bool Advance(Series& s, uint64_t w, SlotFn&& clear_slot);

  bool enabled_ = false;
  Options options_;
  std::function<uint64_t()> clock_;
  std::set<std::string, std::less<>> tracked_counters_;
  std::set<std::string, std::less<>> tracked_latencies_;
  std::map<MetricKey, Series> series_;
  uint64_t dropped_series_ = 0;
};

}  // namespace ring::obs

#endif  // RING_SRC_OBS_TIMESERIES_H_
