// Export layer: machine-readable renderings of the metrics registry and the
// time-series layer — Prometheus-style text exposition for scrape-shaped
// tooling, and JSON with a stable key schema {name, node, memgest, op} for
// scripts and CI (null for dimensions that do not apply).
#ifndef RING_SRC_OBS_EXPORT_H_
#define RING_SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"

namespace ring::obs {

// Prometheus text exposition (metric names sanitised to [a-zA-Z0-9_] and
// prefixed "ring_"; counters get a _total suffix, histograms the standard
// _bucket/_sum/_count triple with cumulative le labels).
std::string PrometheusText(const Metrics& metrics);

// {"counters":[{"name":...,"node":...,"memgest":...,"op":...,"value":...}],
//  "gauges":[...], "histograms":[... + count/sum/min/max/mean/p50/p99],
//  "link_bytes":[{"src":...,"dst":...,"bytes":...}]}
std::string StatsJson(const Metrics& metrics);

// Full windowed dump: every retained series (counter deltas / per-window
// latency digests) plus the derived SLI rows for `sli_options`.
std::string TimeSeriesJson(const TimeSeries& timeseries,
                           const TimeSeries::SliOptions& sli_options = {});

}  // namespace ring::obs

#endif  // RING_SRC_OBS_EXPORT_H_
