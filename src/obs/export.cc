#include "src/obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace ring::obs {

namespace {

std::string PromName(const char* name) {
  std::string out = "ring_";
  for (const char* p = name; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    out += (std::isalnum(c) != 0) ? *p : '_';
  }
  return out;
}

// {node="7",memgest="1",op="put"} — only the dimensions that apply.
std::string PromLabels(const MetricKey& key, const char* extra = nullptr) {
  std::ostringstream os;
  bool open = false;
  auto sep = [&] {
    os << (open ? "," : "{");
    open = true;
  };
  if (key.node != kNoNode) {
    sep();
    os << "node=\"" << key.node << "\"";
  }
  if (key.memgest != kNoMemgest) {
    sep();
    os << "memgest=\"" << key.memgest << "\"";
  }
  if (key.op != OpKind::kNone) {
    sep();
    os << "op=\"" << OpKindName(key.op) << "\"";
  }
  if (extra != nullptr) {
    sep();
    os << extra;
  }
  if (open) {
    os << "}";
  }
  return os.str();
}

void PromType(std::ostringstream& os, std::string& last,
              const std::string& name, const char* type) {
  if (name != last) {
    os << "# TYPE " << name << " " << type << "\n";
    last = name;
  }
}

// JSON helpers: the key schema is stable — always all four dimensions, with
// null where a dimension does not apply.
void JsonKey(std::ostringstream& os, const MetricKey& key) {
  os << "\"name\":\"" << key.name << "\",\"node\":";
  if (key.node == kNoNode) {
    os << "null";
  } else {
    os << key.node;
  }
  os << ",\"memgest\":";
  if (key.memgest == kNoMemgest) {
    os << "null";
  } else {
    os << key.memgest;
  }
  os << ",\"op\":";
  if (key.op == OpKind::kNone) {
    os << "null";
  } else {
    os << "\"" << OpKindName(key.op) << "\"";
  }
}

std::string JsonDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string PrometheusText(const Metrics& metrics) {
  std::ostringstream os;
  std::string last;
  for (const auto& [key, value] : metrics.counters()) {
    const std::string name = PromName(key.name) + "_total";
    PromType(os, last, name, "counter");
    os << name << PromLabels(key) << " " << value << "\n";
  }
  for (const auto& [key, value] : metrics.gauges()) {
    const std::string name = PromName(key.name);
    PromType(os, last, name, "gauge");
    os << name << PromLabels(key) << " " << value << "\n";
  }
  for (const auto& [key, h] : metrics.histograms()) {
    const std::string name = PromName(key.name);
    PromType(os, last, name, "histogram");
    uint64_t cumulative = 0;
    int last_nonzero = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket(b) != 0) {
        last_nonzero = b;
      }
    }
    for (int b = 0; b <= last_nonzero; ++b) {
      cumulative += h.bucket(b);
      char le[64];
      // Inclusive upper bound of bucket b: 0, then 2^b - 1.
      std::snprintf(le, sizeof(le), "le=\"%" PRIu64 "\"",
                    b == 0 ? 0 : (Histogram::BucketLowerBound(b + 1) - 1));
      os << name << "_bucket" << PromLabels(key, le) << " " << cumulative
         << "\n";
    }
    os << name << "_bucket" << PromLabels(key, "le=\"+Inf\"") << " "
       << h.count() << "\n";
    os << name << "_sum" << PromLabels(key) << " " << h.sum() << "\n";
    os << name << "_count" << PromLabels(key) << " " << h.count() << "\n";
  }
  if (!metrics.link_bytes().empty()) {
    PromType(os, last, "ring_link_bytes_total", "counter");
    for (const auto& [link, bytes] : metrics.link_bytes()) {
      os << "ring_link_bytes_total{src=\"" << link.first << "\",dst=\""
         << link.second << "\"} " << bytes << "\n";
    }
  }
  return os.str();
}

std::string StatsJson(const Metrics& metrics) {
  std::ostringstream os;
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, value] : metrics.counters()) {
    os << (first ? "" : ",") << "{";
    JsonKey(os, key);
    os << ",\"value\":" << value << "}";
    first = false;
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& [key, value] : metrics.gauges()) {
    os << (first ? "" : ",") << "{";
    JsonKey(os, key);
    os << ",\"value\":" << value << "}";
    first = false;
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& [key, h] : metrics.histograms()) {
    os << (first ? "" : ",") << "{";
    JsonKey(os, key);
    os << ",\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"min\":" << h.min() << ",\"max\":" << h.max()
       << ",\"mean\":" << JsonDouble(h.Mean())
       << ",\"p50\":" << h.ApproxPercentile(50)
       << ",\"p99\":" << h.ApproxPercentile(99) << "}";
    first = false;
  }
  os << "],\"link_bytes\":[";
  first = true;
  for (const auto& [link, bytes] : metrics.link_bytes()) {
    os << (first ? "" : ",") << "{\"src\":" << link.first
       << ",\"dst\":" << link.second << ",\"bytes\":" << bytes << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string TimeSeriesJson(const TimeSeries& timeseries,
                           const TimeSeries::SliOptions& sli_options) {
  std::ostringstream os;
  os << "{\"window_ns\":" << timeseries.window_ns()
     << ",\"dropped_series\":" << timeseries.dropped_series()
     << ",\"series\":[";
  bool first = true;
  for (const auto& [key, s] : timeseries.series()) {
    if (!s.any) {
      continue;
    }
    os << (first ? "" : ",") << "{";
    JsonKey(os, key);
    os << ",\"type\":\"" << (s.is_hist ? "latency" : "counter")
       << "\",\"first_window\":" << s.first;
    if (s.is_hist) {
      os << ",\"windows\":[";
      bool fw = true;
      for (uint64_t w = s.first; w <= s.last; ++w) {
        const TimeSeries::WindowHist* h = s.HistAt(w);
        os << (fw ? "" : ",") << "{\"w\":" << w << ",\"count\":" << h->count
           << ",\"sum\":" << h->sum << ",\"p50\":" << h->Percentile(50)
           << ",\"p99\":" << h->Percentile(99) << "}";
        fw = false;
      }
      os << "]";
    } else {
      os << ",\"values\":[";
      for (uint64_t w = s.first; w <= s.last; ++w) {
        os << (w == s.first ? "" : ",") << s.CountAt(w);
      }
      os << "]";
    }
    os << "}";
    first = false;
  }
  os << "],\"slis\":[";
  first = true;
  for (const TimeSeries::SliWindow& row : timeseries.Slis(sli_options)) {
    os << (first ? "" : ",") << "{\"window\":" << row.window
       << ",\"start_ns\":" << row.start_ns << ",\"ops_ok\":" << row.ops_ok
       << ",\"ops_err\":" << row.ops_err
       << ",\"goodput_per_sec\":" << JsonDouble(row.goodput_per_sec)
       << ",\"error_rate\":" << JsonDouble(row.error_rate)
       << ",\"p50_ns\":" << row.p50_ns << ",\"p99_ns\":" << row.p99_ns
       << ",\"available\":" << (row.available ? "true" : "false") << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

}  // namespace ring::obs
