// Metrics registry: counters, gauges and fixed-bucket log2 histograms keyed
// by {metric name, node, memgest, op}, plus a per-link byte matrix for the
// fabric. All recording calls are no-ops (one branch, zero allocation) while
// the registry is disabled, so instrumentation can stay compiled into every
// hot path. Values are plain simulated-time quantities; the registry never
// schedules events and never perturbs the simulation.
#ifndef RING_SRC_OBS_METRICS_H_
#define RING_SRC_OBS_METRICS_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <utility>

namespace ring::obs {

class TimeSeries;

// Operation dimension of a metric key.
enum class OpKind : uint8_t {
  kNone = 0,
  kPut,
  kGet,
  kMove,
  kDelete,
  kAdmin,
  kRecovery,
};

const char* OpKindName(OpKind op);

// Sentinels for "dimension not applicable".
inline constexpr uint32_t kNoNode = 0xFFFFFFFFu;
inline constexpr uint32_t kNoMemgest = 0xFFFFFFFFu;

// {name, node, memgest, op}. Names must be string literals (or otherwise
// outlive the registry); ordering compares the characters, not the pointer,
// so equal literals from different translation units collapse into one key.
struct MetricKey {
  const char* name = "";
  uint32_t node = kNoNode;
  uint32_t memgest = kNoMemgest;
  OpKind op = OpKind::kNone;

  bool operator<(const MetricKey& o) const {
    const int c = std::strcmp(name, o.name);
    if (c != 0) {
      return c < 0;
    }
    if (node != o.node) {
      return node < o.node;
    }
    if (memgest != o.memgest) {
      return memgest < o.memgest;
    }
    return op < o.op;
  }
};

// Fixed-bucket log2 histogram: bucket 0 holds the value 0, bucket b >= 1
// holds values in [2^(b-1), 2^b - 1]. 65 buckets cover the full uint64
// range (bucket 64 is [2^63, 2^64 - 1]), so there is no overflow bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  // Bucket index a value lands in.
  static int BucketOf(uint64_t value);
  // Smallest value belonging to bucket `b` (0 for b == 0).
  static uint64_t BucketLowerBound(int b);
  // Geometric mean of bucket `b`'s bounds (0 for b == 0), the midpoint used
  // for percentile reporting: a value v in bucket b satisfies
  // v in [2^(b-1), 2^b), so the estimate m = sqrt(lo * hi) ~ 2^(b-1)*sqrt(2)
  // is within a factor sqrt(2) of v either way — relative error <= ~41.4%,
  // half the worst case of reporting a bucket bound (factor 2).
  static uint64_t BucketMidpoint(int b);

  void Observe(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  uint64_t bucket(int b) const { return buckets_[b]; }
  // Geometric midpoint (see BucketMidpoint) of the bucket containing the
  // p-th percentile (p in [0,100]); a log2-resolution estimate accurate to
  // within a factor sqrt(2) of the true quantile's bucket value.
  uint64_t ApproxPercentile(double p) const;

  // Exact bucket/sum/count/min/max merge of another histogram.
  void MergeFrom(const Histogram& other);

  void Clear();

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

class Metrics {
 public:
  bool enabled() const { return enabled_; }
  void Enable(bool on) { enabled_ = on; }

  // Optional time-series sink: counter increments and histogram samples are
  // forwarded (as deltas / raw samples) after the registry update, so
  // windowed views stay correct across Clear(). The sink must outlive the
  // registry or be detached with nullptr.
  void AttachTimeSeries(TimeSeries* ts) { timeseries_ = ts; }

  // ---- recording (no-ops while disabled) ----
  void Inc(const char* name, uint64_t delta, uint32_t node = kNoNode,
           uint32_t memgest = kNoMemgest, OpKind op = OpKind::kNone) {
    if (!enabled_) {
      return;
    }
    const MetricKey key{name, node, memgest, op};
    counters_[key] += delta;
    if (timeseries_ != nullptr) {
      ForwardCounter(key, delta);
    }
  }
  void SetGauge(const char* name, int64_t value, uint32_t node = kNoNode,
                uint32_t memgest = kNoMemgest, OpKind op = OpKind::kNone) {
    if (!enabled_) {
      return;
    }
    gauges_[MetricKey{name, node, memgest, op}] = value;
  }
  void Observe(const char* name, uint64_t value, uint32_t node = kNoNode,
               uint32_t memgest = kNoMemgest, OpKind op = OpKind::kNone) {
    if (!enabled_) {
      return;
    }
    const MetricKey key{name, node, memgest, op};
    histograms_[key].Observe(value);
    if (timeseries_ != nullptr) {
      ForwardSample(key, value);
    }
  }
  // Bytes-on-wire accounting for one fabric link src -> dst.
  void CountLink(uint32_t src, uint32_t dst, uint64_t bytes) {
    if (!enabled_) {
      return;
    }
    link_bytes_[{src, dst}] += bytes;
  }

  // ---- queries ----
  uint64_t CounterValue(const char* name, uint32_t node = kNoNode,
                        uint32_t memgest = kNoMemgest,
                        OpKind op = OpKind::kNone) const;
  // Sum of a counter over every {node, memgest, op} key it was recorded
  // under (cluster-wide aggregation).
  uint64_t CounterTotal(const char* name) const;
  int64_t GaugeValue(const char* name, uint32_t node = kNoNode,
                     uint32_t memgest = kNoMemgest,
                     OpKind op = OpKind::kNone) const;
  const Histogram* FindHistogram(const char* name, uint32_t node = kNoNode,
                                 uint32_t memgest = kNoMemgest,
                                 OpKind op = OpKind::kNone) const;
  // Merge of a histogram over every key it was recorded under.
  Histogram AggregateHistogram(const char* name) const;
  uint64_t LinkBytes(uint32_t src, uint32_t dst) const;

  const std::map<MetricKey, uint64_t>& counters() const { return counters_; }
  const std::map<MetricKey, int64_t>& gauges() const { return gauges_; }
  const std::map<MetricKey, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::pair<uint32_t, uint32_t>, uint64_t>& link_bytes()
      const {
    return link_bytes_;
  }

  // Flat human-readable dump of everything recorded.
  std::string Summary() const;

  void Clear();

 private:
  // Out-of-line so this header does not need the TimeSeries definition.
  void ForwardCounter(const MetricKey& key, uint64_t delta);
  void ForwardSample(const MetricKey& key, uint64_t value);

  bool enabled_ = false;
  TimeSeries* timeseries_ = nullptr;
  std::map<MetricKey, uint64_t> counters_;
  std::map<MetricKey, int64_t> gauges_;
  std::map<MetricKey, Histogram> histograms_;
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> link_bytes_;
};

}  // namespace ring::obs

#endif  // RING_SRC_OBS_METRICS_H_
