#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace ring::obs {

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kOp:
      return "op";
    case Category::kNetwork:
      return "network";
    case Category::kCpu:
      return "cpu";
    case Category::kCoding:
      return "coding";
    case Category::kQueue:
      return "queue";
    case Category::kQuorum:
      return "quorum";
    case Category::kRecovery:
      return "recovery";
    case Category::kFault:
      return "fault";
    case Category::kOther:
      return "other";
  }
  return "?";
}

namespace {

// Attribution priority for the breakdown sweep: when several spans cover the
// same instant, the most specific mechanism wins. Quorum/recovery/other
// spans attribute to the wait bucket (priority 0) — what they overlap is
// covered by the cpu/network spans of the remote work they wait on.
int Priority(Category c) {
  switch (c) {
    case Category::kCoding:
      return 4;
    case Category::kCpu:
      return 3;
    case Category::kNetwork:
      return 2;
    case Category::kQueue:
      return 1;
    default:
      return 0;
  }
}

void AddToBucket(OpBreakdown& b, int priority, uint64_t ns) {
  switch (priority) {
    case 4:
      b.coding_ns += ns;
      break;
    case 3:
      b.cpu_ns += ns;
      break;
    case 2:
      b.network_ns += ns;
      break;
    case 1:
      b.queue_ns += ns;
      break;
    default:
      b.wait_ns += ns;
      break;
  }
}

}  // namespace

std::vector<OpBreakdown> Tracer::OpBreakdowns() const {
  std::unordered_map<uint64_t, std::vector<const Span*>> by_op;
  for (const Span& span : spans_) {
    if (span.category != Category::kOp && span.op_id != 0) {
      by_op[span.op_id].push_back(&span);
    }
  }
  std::vector<OpBreakdown> out;
  for (const Span& op : spans_) {
    if (op.category != Category::kOp) {
      continue;
    }
    OpBreakdown b;
    b.name = op.name;
    b.op_id = op.op_id;
    b.node = op.node;
    b.start = op.start;
    b.end = op.end;

    // Boundary sweep over the op's tagged spans, clipped to [start, end]:
    // each inter-boundary interval is attributed to the highest-priority
    // active category (wait when none is active).
    struct Boundary {
      uint64_t t;
      int priority;
      int delta;  // +1 open, -1 close
    };
    std::vector<Boundary> bounds;
    if (const auto it = by_op.find(op.op_id); it != by_op.end()) {
      bounds.reserve(it->second.size() * 2);
      for (const Span* s : it->second) {
        const uint64_t lo = std::max(s->start, op.start);
        const uint64_t hi = std::min(s->end, op.end);
        if (lo >= hi) {
          continue;
        }
        const int pr = Priority(s->category);
        bounds.push_back({lo, pr, +1});
        bounds.push_back({hi, pr, -1});
      }
    }
    std::sort(bounds.begin(), bounds.end(),
              [](const Boundary& a, const Boundary& c) { return a.t < c.t; });
    int active[5] = {};
    int top = 0;
    uint64_t prev = op.start;
    size_t i = 0;
    while (i < bounds.size()) {
      const uint64_t t = bounds[i].t;
      if (t > prev) {
        AddToBucket(b, top, t - prev);
        prev = t;
      }
      while (i < bounds.size() && bounds[i].t == t) {
        active[bounds[i].priority] += bounds[i].delta;
        ++i;
      }
      top = 0;
      for (int pr = 4; pr >= 1; --pr) {
        if (active[pr] > 0) {
          top = pr;
          break;
        }
      }
    }
    if (op.end > prev) {
      AddToBucket(b, top, op.end - prev);
    }
    out.push_back(b);
  }
  return out;
}

BreakdownMean MeanBreakdown(const std::vector<OpBreakdown>& breakdowns,
                            const char* name_filter) {
  BreakdownMean m;
  uint64_t coding = 0, cpu = 0, network = 0, queue = 0, wait = 0, total = 0;
  for (const OpBreakdown& b : breakdowns) {
    if (name_filter != nullptr && std::strcmp(b.name, name_filter) != 0) {
      continue;
    }
    ++m.ops;
    coding += b.coding_ns;
    cpu += b.cpu_ns;
    network += b.network_ns;
    queue += b.queue_ns;
    wait += b.wait_ns;
    total += b.total_ns();
  }
  if (m.ops == 0) {
    return m;
  }
  const double scale = 1.0 / (1000.0 * static_cast<double>(m.ops));
  m.coding_us = static_cast<double>(coding) * scale;
  m.cpu_us = static_cast<double>(cpu) * scale;
  m.network_us = static_cast<double>(network) * scale;
  m.queue_us = static_cast<double>(queue) * scale;
  m.wait_us = static_cast<double>(wait) * scale;
  m.total_us = static_cast<double>(total) * scale;
  return m;
}

std::string Tracer::ChromeTraceJson() const {
  // Breakdowns attached to op-span B events, keyed by op_id (one op span per
  // operation by construction).
  std::unordered_map<uint64_t, OpBreakdown> breakdowns;
  for (const OpBreakdown& b : OpBreakdowns()) {
    breakdowns[b.op_id] = b;
  }

  // One B and one E event per span, except zero-duration fault spans, which
  // export as a single global instant event ("ph":"i") so injected faults
  // render as markers across the whole timeline. Ordering at equal
  // timestamps: closing spans first (rank 0), then opening spans and
  // instants (rank 1), then the E of zero-duration spans (rank 2, so a
  // marker's E follows its own B).
  struct Event {
    uint64_t t;
    int rank;
    uint64_t seq;
    const Span* span;
    char ph;  // 'B', 'E' or 'i'
  };
  std::vector<Event> events;
  events.reserve(spans_.size() * 2);
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (s.category == Category::kFault && s.end == s.start) {
      events.push_back({s.start, 1, i, &s, 'i'});
      continue;
    }
    events.push_back({s.start, 1, i, &s, 'B'});
    events.push_back({s.end, s.end == s.start ? 2 : 0, i, &s, 'E'});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) {
      return a.t < b.t;
    }
    if (a.rank != b.rank) {
      return a.rank < b.rank;
    }
    return a.seq < b.seq;
  });

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[512];
  bool first = true;
  for (const Event& e : events) {
    const Span& s = *e.span;
    if (!first) {
      os << ",";
    }
    first = false;
    const double ts_us = static_cast<double>(e.t) / 1000.0;
    if (e.ph == 'i') {
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                    "\"s\":\"g\",\"ts\":%.3f,\"pid\":0,\"tid\":%u",
                    s.name, CategoryName(s.category), ts_us, s.node);
      os << buf;
      if (s.op_id != 0) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"op_id\":%" PRIu64 "}",
                      s.op_id);
        os << buf;
      }
      os << "}";
    } else if (e.ph == 'B') {
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\","
                    "\"ts\":%.3f,\"pid\":0,\"tid\":%u",
                    s.name, CategoryName(s.category), ts_us, s.node);
      os << buf;
      if (s.category == Category::kOp) {
        const auto it = breakdowns.find(s.op_id);
        if (it != breakdowns.end()) {
          const OpBreakdown& b = it->second;
          std::snprintf(
              buf, sizeof(buf),
              ",\"args\":{\"op_id\":%" PRIu64 ",\"network_ns\":%" PRIu64
              ",\"cpu_ns\":%" PRIu64 ",\"coding_ns\":%" PRIu64
              ",\"queue_ns\":%" PRIu64 ",\"wait_ns\":%" PRIu64
              ",\"total_ns\":%" PRIu64 "}",
              b.op_id, b.network_ns, b.cpu_ns, b.coding_ns, b.queue_ns,
              b.wait_ns, b.total_ns());
          os << buf;
        }
      } else if (s.op_id != 0) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"op_id\":%" PRIu64 "}",
                      s.op_id);
        os << buf;
      }
      os << "}";
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\n{\"ph\":\"E\",\"ts\":%.3f,\"pid\":0,\"tid\":%u}",
                    ts_us, s.node);
      os << buf;
    }
  }
  os << "\n]}\n";
  return os.str();
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << ChromeTraceJson();
  return static_cast<bool>(out);
}

std::string Tracer::Summary() const {
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
  };
  std::map<std::pair<std::string, Category>, Agg> by_name;
  for (const Span& s : spans_) {
    Agg& a = by_name[{s.name, s.category}];
    ++a.count;
    a.total_ns += s.end - s.start;
  }
  std::vector<std::pair<std::pair<std::string, Category>, Agg>> rows(
      by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-20s %-10s %10s %14s %12s\n", "span",
                "category", "count", "total_us", "mean_us");
  os << line;
  for (const auto& [key, a] : rows) {
    std::snprintf(line, sizeof(line), "%-20s %-10s %10" PRIu64 " %14.1f %12.2f\n",
                  key.first.c_str(), CategoryName(key.second), a.count,
                  static_cast<double>(a.total_ns) / 1000.0,
                  static_cast<double>(a.total_ns) / 1000.0 /
                      static_cast<double>(a.count));
    os << line;
  }
  if (dropped_ > 0) {
    std::snprintf(line, sizeof(line),
                  "(%" PRIu64 " spans dropped at capacity %zu)\n", dropped_,
                  capacity_);
    os << line;
  }
  return os.str();
}

}  // namespace ring::obs
