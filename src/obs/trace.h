// Span tracer over simulated time.
//
// Records {start, end, category, node, op_id} spans (zero allocation and a
// single branch while disabled) and exports them as
//   - Chrome trace_event JSON (loadable in chrome://tracing / Perfetto),
//   - a flat text summary per {span name, category},
//   - exact per-operation latency breakdowns: every nanosecond of an op span
//     is attributed to exactly one of {coding, cpu, network, queueing, wait}
//     by a priority sweep over the spans tagged with the same op_id, so the
//     five buckets always sum to the op's end-to-end latency.
//
// The tracer only records; it never schedules events, so enabling it cannot
// perturb simulated time.
#ifndef RING_SRC_OBS_TRACE_H_
#define RING_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ring::obs {

enum class Category : uint8_t {
  kOp = 0,    // end-to-end client operation (put/get/move/delete)
  kNetwork,   // wire serialization + flight
  kCpu,       // per-node single-threaded CPU busy time
  kCoding,    // GF/RS/SRS encode, delta, decode work (subset of CPU time)
  kQueue,     // CPU run-queue or NIC egress wait
  kQuorum,    // coordinator waiting for replication/parity acknowledgments
  kRecovery,  // promotion, parity rebuild, on-demand block recovery
  kFault,     // injected fault events (chaos schedules, src/fault)
  kOther,     // markers (write-ahead, commit) and uncategorized work
};

const char* CategoryName(Category c);

struct Span {
  uint64_t start = 0;  // simulated ns
  uint64_t end = 0;    // simulated ns, >= start
  uint64_t op_id = 0;  // 0 = not attributable to one client operation
  uint32_t node = 0;   // fabric node the span executed on
  Category category = Category::kOther;
  const char* name = "";  // static string
};

// Exact decomposition of one op span; the five buckets partition
// [start, end], so they always sum to end - start.
struct OpBreakdown {
  const char* name = "";
  uint64_t op_id = 0;
  uint32_t node = 0;
  uint64_t start = 0;
  uint64_t end = 0;
  uint64_t coding_ns = 0;
  uint64_t cpu_ns = 0;
  uint64_t network_ns = 0;
  uint64_t queue_ns = 0;
  uint64_t wait_ns = 0;  // quorum waits, remote-only intervals, idle gaps
  uint64_t total_ns() const { return end - start; }
};

// Mean of a set of breakdowns (optionally filtered by op-span name).
struct BreakdownMean {
  uint64_t ops = 0;
  double coding_us = 0;
  double cpu_us = 0;
  double network_us = 0;
  double queue_us = 0;
  double wait_us = 0;
  double total_us = 0;
};
BreakdownMean MeanBreakdown(const std::vector<OpBreakdown>& breakdowns,
                            const char* name_filter = nullptr);

class Tracer {
 public:
  bool enabled() const { return enabled_; }
  void Enable(bool on) { enabled_ = on; }

  // Record a complete span. `name` must be a string literal (or otherwise
  // outlive the tracer). No-op while disabled or once `capacity` spans have
  // been recorded (dropped spans are counted).
  void Record(const char* name, Category category, uint32_t node,
              uint64_t op_id, uint64_t start, uint64_t end) {
    if (!enabled_) {
      return;
    }
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    spans_.push_back(Span{start, end < start ? start : end, op_id, node,
                          category, name});
  }

  const std::vector<Span>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  // Chrome trace_event JSON ("ts" in microseconds). Every span becomes a
  // balanced B/E pair on thread `node`; op spans carry their breakdown in
  // the B event's args, in nanoseconds.
  std::string ChromeTraceJson() const;
  // Writes ChromeTraceJson() to `path`; returns false on I/O error.
  bool WriteChromeTrace(const std::string& path) const;

  // Per {name, category} totals, sorted by total time.
  std::string Summary() const;

  // One breakdown per recorded op-category span.
  std::vector<OpBreakdown> OpBreakdowns() const;

  void Clear() {
    spans_.clear();
    dropped_ = 0;
  }

 private:
  bool enabled_ = false;
  size_t capacity_ = 4u << 20;  // ~4M spans; bounds bench memory use
  uint64_t dropped_ = 0;
  std::vector<Span> spans_;
};

}  // namespace ring::obs

#endif  // RING_SRC_OBS_TRACE_H_
