#include "src/obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

namespace ring::obs {

std::string SliTable(const std::vector<TimeSeries::SliWindow>& rows) {
  std::ostringstream os;
  os << "      t_ms       ok      err    goodput/s    err%     p50_us     "
        "p99_us  avail\n";
  char line[160];
  for (const TimeSeries::SliWindow& row : rows) {
    std::snprintf(line, sizeof(line),
                  "  %8.1f %8" PRIu64 " %8" PRIu64
                  " %12.0f %6.1f%% %10.1f %10.1f  %s\n",
                  static_cast<double>(row.start_ns) / 1e6, row.ops_ok,
                  row.ops_err, row.goodput_per_sec, row.error_rate * 100.0,
                  static_cast<double>(row.p50_ns) / 1e3,
                  static_cast<double>(row.p99_ns) / 1e3,
                  row.available ? "ok" : "DIP");
    os << line;
  }
  return os.str();
}

std::vector<Dip> FindDips(const std::vector<TimeSeries::SliWindow>& rows,
                          uint64_t window_ns) {
  std::vector<Dip> dips;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].available) {
      continue;
    }
    Dip dip;
    dip.first_window = rows[i].window;
    dip.start_ns = rows[i].start_ns;
    size_t j = i;
    while (j + 1 < rows.size() && !rows[j + 1].available) {
      ++j;
    }
    dip.last_window = rows[j].window;
    dip.end_ns = rows[j].start_ns + window_ns;
    dip.recovered = j + 1 < rows.size();  // an available window follows
    dips.push_back(dip);
    i = j;
  }
  return dips;
}

std::string PostMortemReport(const TimeSeries& timeseries,
                             const FlightRecorder& recorder,
                             const ReportOptions& options) {
  std::ostringstream os;
  const uint64_t wn = timeseries.window_ns();
  char line[192];

  os << "== fault timeline ==\n";
  const std::vector<RecEvent> all =
      recorder.Between(0, UINT64_MAX);
  std::vector<RecEvent> faults;
  std::map<std::string, uint64_t> net_counts;
  for (const RecEvent& e : all) {
    if (e.kind == RecKind::kFault) {
      faults.push_back(e);
    } else if (e.kind == RecKind::kNet) {
      ++net_counts[e.name];
    }
  }
  if (faults.empty()) {
    os << "  (no fault events recorded)\n";
  } else {
    os << FlightRecorder::Format(faults);
  }
  if (!net_counts.empty()) {
    os << "  injected at the fabric:";
    for (const auto& [name, n] : net_counts) {
      os << " " << name << "=" << n;
    }
    os << "\n";
  }

  const std::vector<TimeSeries::SliWindow> rows =
      timeseries.Slis(options.sli);
  os << "\n== windowed SLIs (window " << wn / 1000 << "us) ==\n";
  if (rows.empty()) {
    os << "  (no SLI series recorded — enable the time-series layer and "
          "drive client traffic)\n";
  } else {
    os << SliTable(rows);
  }

  const std::vector<Dip> dips = FindDips(rows, wn);
  os << "\n== availability dips ==\n";
  if (dips.empty()) {
    os << "  (none: acked-op rate never fell below the threshold)\n";
  }
  for (size_t d = 0; d < dips.size(); ++d) {
    const Dip& dip = dips[d];
    std::snprintf(line, sizeof(line),
                  "  dip %zu: [%.1fms, %.1fms) duration %.1fms — %s\n", d + 1,
                  static_cast<double>(dip.start_ns) / 1e6,
                  static_cast<double>(dip.end_ns) / 1e6,
                  static_cast<double>(dip.end_ns - dip.start_ns) / 1e6,
                  dip.recovered ? "recovered" : "NOT recovered by end of run");
    os << line;
    const uint64_t lookback = options.dip_lookback_windows * wn;
    const uint64_t from =
        dip.start_ns > lookback ? dip.start_ns - lookback : 0;
    std::vector<RecEvent> context = recorder.Between(from, dip.end_ns + wn);
    const size_t cap = options.dip_context_events;
    if (context.size() > cap) {
      std::snprintf(line, sizeof(line),
                    "  flight recorder (first %zu of %zu events around the "
                    "dip):\n",
                    cap, context.size());
      os << line;
      context.resize(cap);
    } else if (!context.empty()) {
      os << "  flight recorder (events around the dip):\n";
    } else {
      os << "  flight recorder: (no events in the dip window — recorder off "
            "or overwritten)\n";
    }
    os << FlightRecorder::Format(context);
  }

  uint64_t unavailable = 0;
  uint64_t longest_ns = 0;
  for (const Dip& dip : dips) {
    unavailable += dip.last_window - dip.first_window + 1;
    longest_ns = std::max(longest_ns, dip.end_ns - dip.start_ns);
  }
  os << "\n== summary ==\n";
  std::snprintf(line, sizeof(line),
                "  windows %zu, unavailable %" PRIu64
                " (%.1fms total, longest dip %.1fms)\n",
                rows.size(), unavailable,
                static_cast<double>(unavailable * wn) / 1e6,
                static_cast<double>(longest_ns) / 1e6);
  os << line;
  std::snprintf(line, sizeof(line),
                "  recorder: %" PRIu64 " events recorded, %zu retained%s\n",
                recorder.total_recorded(), recorder.size(),
                recorder.enabled() ? "" : " (recorder disabled)");
  os << line;
  if (timeseries.dropped_series() > 0) {
    std::snprintf(line, sizeof(line),
                  "  time-series: %" PRIu64
                  " series dropped at the max_series cap\n",
                  timeseries.dropped_series());
    os << line;
  }
  return os.str();
}

}  // namespace ring::obs
