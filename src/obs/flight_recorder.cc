#include "src/obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>

namespace ring::obs {

const char* RecKindName(RecKind kind) {
  switch (kind) {
    case RecKind::kPhase:
      return "phase";
    case RecKind::kQuorum:
      return "quorum";
    case RecKind::kRetransmit:
      return "retransmit";
    case RecKind::kDedup:
      return "dedup";
    case RecKind::kRestart:
      return "restart";
    case RecKind::kRecovery:
      return "recovery";
    case RecKind::kFault:
      return "fault";
    case RecKind::kNet:
      return "net";
    case RecKind::kPolicy:
      return "policy";
    case RecKind::kClient:
      return "client";
  }
  return "?";
}

void FlightRecorder::Enable(bool on) {
  if (on && ring_.size() != capacity_) {
    ring_.assign(capacity_, RecEvent{});
    total_ = 0;
  }
  enabled_ = on;
}

void FlightRecorder::set_capacity(size_t capacity) {
  if (capacity == 0 || capacity == capacity_) {
    return;
  }
  capacity_ = capacity;
  if (!ring_.empty()) {
    ring_.assign(capacity_, RecEvent{});
    total_ = 0;
  }
}

std::vector<RecEvent> FlightRecorder::Tail(size_t n) const {
  const size_t have = size();
  const size_t take = n < have ? n : have;
  std::vector<RecEvent> out;
  out.reserve(take);
  for (size_t i = have - take; i < have; ++i) {
    // Oldest retained event lives at total_ - have.
    out.push_back(ring_[(total_ - have + i) % capacity_]);
  }
  return out;
}

std::vector<RecEvent> FlightRecorder::Between(uint64_t from_ns,
                                              uint64_t until_ns) const {
  const size_t have = size();
  std::vector<RecEvent> out;
  for (size_t i = 0; i < have; ++i) {
    const RecEvent& e = ring_[(total_ - have + i) % capacity_];
    if (e.t_ns >= from_ns && e.t_ns <= until_ns) {
      out.push_back(e);
    }
  }
  return out;
}

std::string FlightRecorder::Format(const std::vector<RecEvent>& events) {
  std::string out;
  char line[192];
  for (const RecEvent& e : events) {
    std::snprintf(line, sizeof(line),
                  "  %12.3fus %-10s %-22s node=%-3u op=%016" PRIx64
                  " a=%" PRIu64 " b=%" PRIu64 "\n",
                  static_cast<double>(e.t_ns) / 1e3, RecKindName(e.kind),
                  e.name, e.node, e.op_id, e.a, e.b);
    out += line;
  }
  return out;
}

std::string FlightRecorder::Dump(size_t n) const { return Format(Tail(n)); }

void FlightRecorder::Clear() {
  total_ = 0;
  if (!ring_.empty()) {
    ring_.assign(capacity_, RecEvent{});
  }
}

}  // namespace ring::obs
