// Post-mortem report: renders a chaos run as a human-readable timeline —
// injected faults (from the flight recorder's kFault events), the windowed
// SLIs around them, each availability dip with the recorder events that
// surround it, and a recovery summary. Built entirely from obs-layer state,
// so it needs no dependency on the fault injector itself.
#ifndef RING_SRC_OBS_REPORT_H_
#define RING_SRC_OBS_REPORT_H_

#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/timeseries.h"

namespace ring::obs {

struct ReportOptions {
  TimeSeries::SliOptions sli;
  // Flight-recorder events shown around each availability dip.
  size_t dip_context_events = 12;
  // Recorder context reaches this many windows before a dip's first window
  // (the causing fault usually lands just before the SLI degrades).
  uint64_t dip_lookback_windows = 2;
};

// Fixed-width table of SLI rows: one line per window with goodput, error
// rate, p50/p99 and an ok/DIP availability column.
std::string SliTable(const std::vector<TimeSeries::SliWindow>& rows);

// A contiguous run of unavailable windows.
struct Dip {
  uint64_t first_window = 0;
  uint64_t last_window = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  // exclusive end of the last unavailable window
  bool recovered = false;
};

std::vector<Dip> FindDips(const std::vector<TimeSeries::SliWindow>& rows,
                          uint64_t window_ns);

std::string PostMortemReport(const TimeSeries& timeseries,
                             const FlightRecorder& recorder,
                             const ReportOptions& options = {});

}  // namespace ring::obs

#endif  // RING_SRC_OBS_REPORT_H_
