#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/obs/timeseries.h"

namespace ring::obs {

const char* OpKindName(OpKind op) {
  switch (op) {
    case OpKind::kNone:
      return "-";
    case OpKind::kPut:
      return "put";
    case OpKind::kGet:
      return "get";
    case OpKind::kMove:
      return "move";
    case OpKind::kDelete:
      return "delete";
    case OpKind::kAdmin:
      return "admin";
    case OpKind::kRecovery:
      return "recovery";
  }
  return "?";
}

int Histogram::BucketOf(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  // Bucket b >= 1 holds [2^(b-1), 2^b - 1]: b = floor(log2(value)) + 1.
  return 64 - __builtin_clzll(value);
}

uint64_t Histogram::BucketLowerBound(int b) {
  if (b <= 0) {
    return 0;
  }
  return 1ULL << (b - 1);
}

uint64_t Histogram::BucketMidpoint(int b) {
  if (b <= 0) {
    return 0;
  }
  const double lo = static_cast<double>(BucketLowerBound(b));
  const double hi = 2.0 * lo - 1.0;  // inclusive upper bound
  return static_cast<uint64_t>(std::sqrt(lo * hi));
}

void Histogram::Observe(uint64_t value) {
  ++buckets_[BucketOf(value)];
  sum_ += value;
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  ++count_;
}

uint64_t Histogram::ApproxPercentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const uint64_t rank = static_cast<uint64_t>(
      clamped / 100.0 * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      return BucketMidpoint(b);
    }
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b] += other.buckets_[b];
  }
  sum_ += other.sum_;
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  count_ += other.count_;
}

void Histogram::Clear() {
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
  count_ = sum_ = min_ = max_ = 0;
}

uint64_t Metrics::CounterValue(const char* name, uint32_t node,
                               uint32_t memgest, OpKind op) const {
  const auto it = counters_.find(MetricKey{name, node, memgest, op});
  return it == counters_.end() ? 0 : it->second;
}

uint64_t Metrics::CounterTotal(const char* name) const {
  uint64_t total = 0;
  for (const auto& [key, value] : counters_) {
    if (std::strcmp(key.name, name) == 0) {
      total += value;
    }
  }
  return total;
}

int64_t Metrics::GaugeValue(const char* name, uint32_t node, uint32_t memgest,
                            OpKind op) const {
  const auto it = gauges_.find(MetricKey{name, node, memgest, op});
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* Metrics::FindHistogram(const char* name, uint32_t node,
                                        uint32_t memgest, OpKind op) const {
  const auto it = histograms_.find(MetricKey{name, node, memgest, op});
  return it == histograms_.end() ? nullptr : &it->second;
}

Histogram Metrics::AggregateHistogram(const char* name) const {
  Histogram out;
  for (const auto& [key, h] : histograms_) {
    if (std::strcmp(key.name, name) != 0 || h.count() == 0) {
      continue;
    }
    out.MergeFrom(h);
  }
  return out;
}

uint64_t Metrics::LinkBytes(uint32_t src, uint32_t dst) const {
  const auto it = link_bytes_.find({src, dst});
  return it == link_bytes_.end() ? 0 : it->second;
}

namespace {

std::string KeyLabel(const MetricKey& key) {
  std::ostringstream os;
  os << key.name;
  bool brack = false;
  auto open = [&] {
    os << (brack ? "," : "{");
    brack = true;
  };
  if (key.node != kNoNode) {
    open();
    os << "node=" << key.node;
  }
  if (key.memgest != kNoMemgest) {
    open();
    os << "memgest=" << key.memgest;
  }
  if (key.op != OpKind::kNone) {
    open();
    os << "op=" << OpKindName(key.op);
  }
  if (brack) {
    os << "}";
  }
  return os.str();
}

}  // namespace

std::string Metrics::Summary() const {
  std::ostringstream os;
  char line[256];
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [key, value] : counters_) {
      std::snprintf(line, sizeof(line), "  %-48s %20" PRIu64 "\n",
                    KeyLabel(key).c_str(), value);
      os << line;
    }
  }
  if (!gauges_.empty()) {
    os << "gauges:\n";
    for (const auto& [key, value] : gauges_) {
      std::snprintf(line, sizeof(line), "  %-48s %20" PRId64 "\n",
                    KeyLabel(key).c_str(), value);
      os << line;
    }
  }
  if (!histograms_.empty()) {
    os << "histograms:\n";
    for (const auto& [key, h] : histograms_) {
      std::snprintf(line, sizeof(line),
                    "  %-48s count %-10" PRIu64 " mean %-12.1f p50~%-12" PRIu64
                    " p99~%-12" PRIu64 " max %" PRIu64 "\n",
                    KeyLabel(key).c_str(), h.count(), h.Mean(),
                    h.ApproxPercentile(50), h.ApproxPercentile(99), h.max());
      os << line;
    }
  }
  if (!link_bytes_.empty()) {
    os << "link bytes (src -> dst):\n";
    for (const auto& [link, bytes] : link_bytes_) {
      std::snprintf(line, sizeof(line), "  %3u -> %-3u %20" PRIu64 "\n",
                    link.first, link.second, bytes);
      os << line;
    }
  }
  return os.str();
}

void Metrics::ForwardCounter(const MetricKey& key, uint64_t delta) {
  timeseries_->OnCounter(key, delta);
}

void Metrics::ForwardSample(const MetricKey& key, uint64_t value) {
  timeseries_->OnSample(key, value);
}

void Metrics::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  link_bytes_.clear();
}

}  // namespace ring::obs
