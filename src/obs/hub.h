// Hub: per-simulation bundle of the metrics registry and the span tracer,
// plus the "current operation" context used to stitch distributed traces.
//
// The simulator is single-threaded, so the current op is a plain member set
// by ScopedOp around handler bodies. Context does not survive scheduled
// events automatically — code that defers work through CpuWorker::Execute or
// Fabric::Send must re-establish it from the op_id carried in the message.
#ifndef RING_SRC_OBS_HUB_H_
#define RING_SRC_OBS_HUB_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

namespace ring::obs {

// Globally unique operation id: issuing client node in the high 32 bits,
// client-local request id in the low 32. Never 0 for a real operation.
inline uint64_t MakeOpId(uint32_t client_node, uint32_t req_id) {
  return (static_cast<uint64_t>(client_node + 1) << 32) | req_id;
}

class Hub {
 public:
  Hub() { metrics_.AttachTimeSeries(&timeseries_); }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  TimeSeries& timeseries() { return timeseries_; }
  const TimeSeries& timeseries() const { return timeseries_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  void EnableMetrics(bool on) { metrics_.Enable(on); }
  void EnableTracing(bool on) { tracer_.Enable(on); }
  // The time-series layer is fed by Metrics, so enabling it also enables
  // the registry (windowing without recording would see nothing).
  void EnableTimeSeries(bool on) {
    timeseries_.Enable(on);
    if (on) {
      metrics_.Enable(true);
    }
  }
  void EnableRecorder(bool on) { recorder_.Enable(on); }
  bool metrics_enabled() const { return metrics_.enabled(); }
  bool tracing_enabled() const { return tracer_.enabled(); }
  bool timeseries_enabled() const { return timeseries_.enabled(); }
  bool recorder_enabled() const { return recorder_.enabled(); }

  // Sim-time source for the windowing layer and the flight recorder;
  // installed once by the simulator that owns this hub.
  void SetClock(std::function<uint64_t()> clock) {
    timeseries_.SetClock(clock);
    recorder_.SetClock(std::move(clock));
  }

  uint64_t current_op() const { return current_op_; }
  void set_current_op(uint64_t op_id) { current_op_ = op_id; }

 private:
  Metrics metrics_;
  Tracer tracer_;
  TimeSeries timeseries_;
  FlightRecorder recorder_;
  uint64_t current_op_ = 0;
};

// RAII guard establishing the current op for the dynamic extent of a handler
// body. Restores the previous op on destruction, so nested scopes (client op
// enclosing a fabric delivery) behave.
class ScopedOp {
 public:
  ScopedOp(Hub& hub, uint64_t op_id) : hub_(hub), prev_(hub.current_op()) {
    hub_.set_current_op(op_id);
  }
  ~ScopedOp() { hub_.set_current_op(prev_); }
  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  Hub& hub_;
  uint64_t prev_;
};

}  // namespace ring::obs

#endif  // RING_SRC_OBS_HUB_H_
