#include "src/obs/timeseries.h"

#include <algorithm>
#include <cstring>

namespace ring::obs {

void TimeSeries::WindowHist::Observe(uint64_t value) {
  ++buckets[Histogram::BucketOf(value)];
  ++count;
  sum += value;
}

void TimeSeries::WindowHist::MergeFrom(const WindowHist& other) {
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
}

void TimeSeries::WindowHist::Clear() {
  std::memset(buckets, 0, sizeof(buckets));
  count = 0;
  sum = 0;
}

uint64_t TimeSeries::WindowHist::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const uint64_t rank = static_cast<uint64_t>(
      clamped / 100.0 * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) {
      return Histogram::BucketMidpoint(b);
    }
  }
  return Histogram::BucketMidpoint(Histogram::kBuckets - 1);
}

void TimeSeries::Configure(const Options& options) {
  if (!series_.empty()) {
    return;
  }
  options_ = options;
  if (options_.window_ns == 0) {
    options_.window_ns = 1;
  }
  if (options_.capacity_windows == 0) {
    options_.capacity_windows = 1;
  }
  if (options_.max_series == 0) {
    options_.max_series = 1;
  }
}

void TimeSeries::SetClock(std::function<uint64_t()> clock) {
  clock_ = std::move(clock);
}

void TimeSeries::TrackCounter(const char* name) {
  tracked_counters_.insert(name);
}

void TimeSeries::TrackLatency(const char* name) {
  tracked_latencies_.insert(name);
}

void TimeSeries::TrackSliDefaults() {
  TrackCounter(kSliOpsOk);
  TrackCounter(kSliOpErrors);
  TrackCounter("client.ops");
  TrackCounter("client.unavailable");
  TrackCounter("client.hedges");
  TrackCounter("server.retransmits");
  TrackCounter("server.op_restarts");
  TrackCounter("server.resent_replies");
  // Elastic rebalance (§13): per-window migration traffic, so an SLI table
  // shows the background drain next to any foreground blip it causes.
  TrackCounter("rebalance.bytes");
  TrackCounter("rebalance.keys_moved");
  TrackLatency(kSliOpLatencyNs);
}

TimeSeries::Series* TimeSeries::Resolve(const MetricKey& key, bool is_hist) {
  const auto it = series_.find(key);
  if (it != series_.end()) {
    return it->second.is_hist == is_hist ? &it->second : nullptr;
  }
  if (series_.size() >= options_.max_series) {
    ++dropped_series_;
    return nullptr;
  }
  Series s;
  s.is_hist = is_hist;
  s.capacity = options_.capacity_windows;
  if (is_hist) {
    s.hists.assign(s.capacity, WindowHist{});
  } else {
    s.counts.assign(s.capacity, 0);
  }
  return &series_.emplace(key, std::move(s)).first->second;
}

template <typename SlotFn>
bool TimeSeries::Advance(Series& s, uint64_t w, SlotFn&& clear_slot) {
  if (!s.any) {
    s.any = true;
    s.first = s.last = w;
    clear_slot(w % s.capacity);
    return true;
  }
  if (w < s.first) {
    return false;  // predates the retained range (clock is monotonic, so
                   // this only happens for events older than the ring)
  }
  if (w <= s.last) {
    return true;
  }
  // Zero every skipped window's slot; a jump past a full ring only clears
  // the `capacity` slots that remain addressable.
  uint64_t start = s.last + 1;
  if (w >= start + s.capacity) {
    start = w + 1 - s.capacity;
  }
  for (uint64_t i = start; i <= w; ++i) {
    clear_slot(i % s.capacity);
  }
  s.last = w;
  if (s.last - s.first >= s.capacity) {
    s.first = s.last + 1 - s.capacity;
  }
  return true;
}

void TimeSeries::OnCounter(const MetricKey& key, uint64_t delta) {
  if (!enabled_ || !clock_) {
    return;
  }
  if (tracked_counters_.find(key.name) == tracked_counters_.end()) {
    return;
  }
  Series* s = Resolve(key, /*is_hist=*/false);
  if (s == nullptr) {
    return;
  }
  const uint64_t w = clock_() / options_.window_ns;
  if (!Advance(*s, w, [s](size_t slot) { s->counts[slot] = 0; })) {
    return;
  }
  s->counts[w % s->capacity] += delta;
}

void TimeSeries::OnSample(const MetricKey& key, uint64_t value) {
  if (!enabled_ || !clock_) {
    return;
  }
  if (tracked_latencies_.find(key.name) == tracked_latencies_.end()) {
    return;
  }
  Series* s = Resolve(key, /*is_hist=*/true);
  if (s == nullptr) {
    return;
  }
  const uint64_t w = clock_() / options_.window_ns;
  if (!Advance(*s, w, [s](size_t slot) { s->hists[slot].Clear(); })) {
    return;
  }
  s->hists[w % s->capacity].Observe(value);
}

uint64_t TimeSeries::Series::CountAt(uint64_t w) const {
  if (!any || is_hist || w < first || w > last) {
    return 0;
  }
  return counts[w % capacity];
}

const TimeSeries::WindowHist* TimeSeries::Series::HistAt(uint64_t w) const {
  if (!any || !is_hist || w < first || w > last) {
    return nullptr;
  }
  return &hists[w % capacity];
}

std::vector<TimeSeries::SliWindow> TimeSeries::Slis(
    const SliOptions& opt) const {
  const uint64_t wn = options_.window_ns;
  const auto match = [&opt](const MetricKey& k) {
    if (opt.memgest != kNoMemgest && k.memgest != opt.memgest) {
      return false;
    }
    return opt.op == OpKind::kNone || k.op == opt.op;
  };
  std::vector<const Series*> ok_series;
  std::vector<const Series*> err_series;
  std::vector<const Series*> lat_series;
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  for (const auto& [key, s] : series_) {
    if (!s.any || !match(key)) {
      continue;
    }
    if (std::strcmp(key.name, kSliOpsOk) == 0) {
      ok_series.push_back(&s);
    } else if (std::strcmp(key.name, kSliOpErrors) == 0) {
      err_series.push_back(&s);
    } else if (std::strcmp(key.name, kSliOpLatencyNs) == 0) {
      lat_series.push_back(&s);
    } else {
      continue;
    }
    lo = std::min(lo, s.first);
    hi = std::max(hi, s.last);
  }
  if (ok_series.empty() && err_series.empty() && lat_series.empty()) {
    return {};
  }
  lo = std::max(lo, opt.from_ns / wn);
  if (opt.until_ns != UINT64_MAX) {
    hi = std::min(hi, opt.until_ns / wn);
  }
  if (hi < lo) {
    return {};
  }

  std::vector<SliWindow> out;
  out.reserve(hi - lo + 1);
  for (uint64_t w = lo; w <= hi; ++w) {
    SliWindow row;
    row.window = w;
    row.start_ns = w * wn;
    for (const Series* s : ok_series) {
      row.ops_ok += s->CountAt(w);
    }
    for (const Series* s : err_series) {
      row.ops_err += s->CountAt(w);
    }
    WindowHist merged;
    for (const Series* s : lat_series) {
      if (const WindowHist* h = s->HistAt(w)) {
        merged.MergeFrom(*h);
      }
    }
    row.p50_ns = merged.Percentile(50);
    row.p99_ns = merged.Percentile(99);
    row.goodput_per_sec =
        static_cast<double>(row.ops_ok) / (static_cast<double>(wn) * 1e-9);
    const uint64_t total = row.ops_ok + row.ops_err;
    row.error_rate =
        total == 0 ? 0.0
                   : static_cast<double>(row.ops_err) /
                         static_cast<double>(total);
    out.push_back(row);
  }

  // Availability: compare each window's acked-op count against a threshold
  // derived from the median non-empty window (or an absolute floor).
  uint64_t threshold = opt.min_ok_threshold;
  if (threshold == 0) {
    std::vector<uint64_t> active;
    for (const SliWindow& row : out) {
      if (row.ops_ok + row.ops_err > 0) {
        active.push_back(row.ops_ok);
      }
    }
    if (!active.empty()) {
      const size_t mid = active.size() / 2;
      std::nth_element(active.begin(), active.begin() + mid, active.end());
      const double scaled =
          opt.availability_fraction * static_cast<double>(active[mid]);
      threshold = std::max<uint64_t>(1, static_cast<uint64_t>(scaled));
    }
  }
  if (threshold > 0) {
    for (SliWindow& row : out) {
      row.available = row.ops_ok >= threshold;
    }
  }
  return out;
}

void TimeSeries::Clear() {
  series_.clear();
  dropped_series_ = 0;
}

}  // namespace ring::obs
