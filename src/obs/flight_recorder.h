// Flight recorder: a fixed-capacity overwrite ring of recent structured
// events (op phase transitions, quorum waits, retransmits, dedup hits,
// recovery steps) that the fault injector also publishes into, so every
// protocol anomaly in the ring is causally adjacent to the fault that
// triggered it. Recording is a branch plus a few stores while enabled and a
// single branch while disabled; the recorder never allocates after Enable,
// never schedules events, and never touches the simulation RNG, so it is
// zero-perturbation by construction.
//
// Event names must be string literals (the ring stores the pointer).
#ifndef RING_SRC_OBS_FLIGHT_RECORDER_H_
#define RING_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ring::obs {

// Coarse event taxonomy; the name carries the specific step.
enum class RecKind : uint8_t {
  kPhase = 0,    // op phase transitions (commit, apply, reply)
  kQuorum,       // quorum waits / deferred reads
  kRetransmit,   // timer-driven resends
  kDedup,        // duplicate-request hits answered from the op cache
  kRestart,      // validate-and-retry op restarts
  kRecovery,     // promotion, block recovery, parity rebuild steps
  kFault,        // injector actions (crash/recover/partition/pause/...)
  kNet,          // injected message drop/dup/delay at the fabric
  kPolicy,       // autotier move decisions and completions
  kClient,       // client-side retries, failures, budget exhaustion
};

const char* RecKindName(RecKind kind);

struct RecEvent {
  uint64_t t_ns = 0;    // sim time the event was recorded
  uint64_t op_id = 0;   // MakeOpId(...) when known, 0 otherwise
  uint64_t a = 0;       // event-specific detail (e.g. peer node, memgest)
  uint64_t b = 0;       // second detail slot
  uint32_t node = 0;    // node the event happened on
  RecKind kind = RecKind::kPhase;
  const char* name = "";  // static string naming the specific step
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  bool enabled() const { return enabled_; }
  // Enabling allocates the ring storage once; disabling keeps the contents
  // (so a post-mortem can still read the tail after the run).
  void Enable(bool on);
  // Must be called before Enable; capacity 0 is rejected (keeps previous).
  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  // Clock supplying sim-time ns; only consulted from Record while enabled.
  void SetClock(std::function<uint64_t()> clock) { clock_ = std::move(clock); }

  void Record(RecKind kind, const char* name, uint32_t node, uint64_t op_id,
              uint64_t a = 0, uint64_t b = 0) {
    if (!enabled_) {
      return;
    }
    RecEvent& e = ring_[total_ % capacity_];
    e.t_ns = clock_ ? clock_() : 0;
    e.op_id = op_id;
    e.a = a;
    e.b = b;
    e.node = node;
    e.kind = kind;
    e.name = name;
    ++total_;
  }

  // Events currently retained (min(total, capacity)).
  size_t size() const { return total_ < capacity_ ? total_ : capacity_; }
  // Events ever recorded, including overwritten ones.
  uint64_t total_recorded() const { return total_; }

  // Last `n` retained events in chronological order.
  std::vector<RecEvent> Tail(size_t n) const;
  // Retained events with t_ns in [from_ns, until_ns], chronological.
  std::vector<RecEvent> Between(uint64_t from_ns, uint64_t until_ns) const;

  // One event per line: "t_us kind name node=N op=... a=... b=...".
  static std::string Format(const std::vector<RecEvent>& events);
  // Format(Tail(n)) convenience.
  std::string Dump(size_t n) const;

  void Clear();

 private:
  bool enabled_ = false;
  size_t capacity_ = kDefaultCapacity;
  uint64_t total_ = 0;
  std::vector<RecEvent> ring_;
  std::function<uint64_t()> clock_;
};

}  // namespace ring::obs

#endif  // RING_SRC_OBS_FLIGHT_RECORDER_H_
