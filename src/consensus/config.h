// Cluster configuration: the replicated "who does what" record (paper §5.5).
//
// A Ring deployment has s coordinator slots (one per key shard), d redundant
// slots (replica / parity homes), and n spare nodes. The configuration maps
// logical slots to physical nodes; failures are handled by the leader
// re-pointing a slot at a spare and replicating the new epoch.
//
// Elastic membership (§13): the group can grow or shrink online. A resize is
// a two-phase epoch-bumped transition: BeginAddServer/BeginRemoveServer
// switches the cluster to the new shape while retaining the previous shape
// in prev_s/prev_node_of_slot so unmigrated keys keep being served at their
// old placement, and CompleteRebalance clears the previous shape once the
// background rebalance has drained. While rebalancing() both placements are
// live; a static cluster pays exactly one prev_s != 0 branch.
#ifndef RING_SRC_CONSENSUS_CONFIG_H_
#define RING_SRC_CONSENSUS_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/fabric.h"

namespace ring::consensus {

inline constexpr int32_t kSpareSlot = -1;

// One concrete cluster shape: everything key placement depends on. Borrowed
// view into a ClusterConfig (does not own node_of_slot) — resolve and use it
// within one event; never capture it in a closure that outlives the config.
struct Placement {
  uint32_t s = 0;
  uint32_t d = 0;
  uint32_t groups = 1;
  const std::vector<net::NodeId>* nodes = nullptr;

  uint32_t num_slots() const { return s + d; }
  uint32_t num_shards() const { return groups * s; }
  uint32_t GroupOfShard(uint32_t shard) const { return shard / s; }
  uint32_t SlotOfShard(uint32_t shard) const {
    return (shard % s + shard / s) % num_slots();
  }
  uint32_t RedundantSlot(uint32_t group, uint32_t j) const {
    return (s + j + group) % num_slots();
  }
  net::NodeId NodeOfSlot(uint32_t slot) const { return (*nodes)[slot]; }
  net::NodeId CoordinatorOfShard(uint32_t shard) const {
    return NodeOfSlot(SlotOfShard(shard));
  }
  // Slot the node occupies under this shape, or kSpareSlot.
  int32_t SlotOfNode(net::NodeId node) const {
    for (uint32_t slot = 0; slot < nodes->size(); ++slot) {
      if ((*nodes)[slot] == node) {
        return static_cast<int32_t>(slot);
      }
    }
    return kSpareSlot;
  }
};

struct ClusterConfig {
  uint64_t epoch = 0;
  uint32_t s = 0;       // coordinator slots per memgest group
  uint32_t d = 0;       // redundant slots
  uint32_t groups = 1;  // rotated memgest groups (paper §5.4 balancing)
  net::NodeId leader = 0;
  // slot -> physical node, size s + d.
  std::vector<net::NodeId> node_of_slot;
  // physical node -> slot or kSpareSlot; dead nodes keep their last slot
  // until reassigned.
  std::vector<int32_t> slot_of_node;
  // physical nodes known to have failed (never reused).
  std::vector<bool> failed;
  // Live spare free-list, ascending node id; maintained by every mutator so
  // FindSpare is O(1) instead of a scan over all nodes.
  std::vector<net::NodeId> spares;
  // Rebalance transition: the shape before the in-flight resize. prev_s == 0
  // means no resize is in flight (the static-cluster fast path).
  uint32_t prev_s = 0;
  std::vector<net::NodeId> prev_node_of_slot;

  static ClusterConfig Initial(uint32_t s, uint32_t d, uint32_t num_nodes,
                               uint32_t groups = 1);

  uint32_t num_slots() const { return s + d; }
  uint32_t num_nodes() const {
    return static_cast<uint32_t>(slot_of_node.size());
  }

  // Key sharding spans all groups: shard ids are 0 .. groups*s - 1; shard
  // (g*s + sigma) is the sigma-th coordinator of group g. Group g's layout
  // is the base layout rotated by g over the s+d slots, which spreads
  // coordinator, replica and parity roles evenly (§5.4).
  uint32_t num_shards() const { return groups * s; }
  uint32_t GroupOfShard(uint32_t shard) const { return shard / s; }
  uint32_t SlotOfShard(uint32_t shard) const {
    return (shard % s + shard / s) % num_slots();
  }
  // The j-th redundant slot of group g (parity homes).
  uint32_t RedundantSlot(uint32_t group, uint32_t j) const {
    return (s + j + group) % num_slots();
  }

  // True when the node's slot coordinates at least one shard (some group's
  // rotation lands on it).
  bool IsCoordinator(net::NodeId node) const {
    const int32_t slot = slot_of_node[node];
    return slot >= 0 && !failed[node] &&
           !ShardsOfSlot(static_cast<uint32_t>(slot)).empty();
  }
  // True when `node` currently coordinates `shard`.
  bool CoordinatesShard(net::NodeId node, uint32_t shard) const {
    const int32_t slot = slot_of_node[node];
    return slot >= 0 && !failed[node] &&
           static_cast<uint32_t>(slot) == SlotOfShard(shard);
  }
  // Shards a slot coordinates (one per group whose rotation lands on it).
  std::vector<uint32_t> ShardsOfSlot(uint32_t slot) const;

  net::NodeId CoordinatorOfShard(uint32_t shard) const {
    return node_of_slot[SlotOfShard(shard)];
  }
  net::NodeId NodeOfSlot(uint32_t slot) const { return node_of_slot[slot]; }

  // First live spare, or -1 when the pool is exhausted. O(1) off the
  // maintained free-list.
  int32_t FindSpare() const {
    return spares.empty() ? -1 : static_cast<int32_t>(spares.front());
  }

  // Re-point victim's slot to `spare` and bump the epoch. During a rebalance
  // the victim is also replaced wherever it appears in the previous shape,
  // so old-placement routing follows the promotion.
  void Promote(net::NodeId victim, net::NodeId spare);

  // Mark a node failed (keeps its slot assignment; promotion re-homes it)
  // and bump the epoch.
  void MarkFailed(net::NodeId node);
  // Re-admit a crashed-and-recovered node into the cluster (it rejoins as a
  // spare unless it still holds its slot) and bump the epoch.
  void Readmit(net::NodeId node);

  // --- Elastic membership ---------------------------------------------------
  // True while a resize transition is in flight (both shapes live).
  bool rebalancing() const { return prev_s != 0; }
  // Current / previous shapes as placement views. Previous() is only
  // meaningful while rebalancing().
  Placement Current() const { return {s, d, groups, &node_of_slot}; }
  Placement Previous() const { return {prev_s, d, groups, &prev_node_of_slot}; }

  // Grow s -> s+1: `node` (a live spare) becomes the new coordinator slot s
  // (inserted before the redundant slots, so redundant slots keep their
  // nodes). Records the old shape and bumps the epoch. Returns false if a
  // resize is already in flight or the node is not a live spare.
  bool BeginAddServer(net::NodeId node);
  // Shrink s -> s-1: coordinator slot `slot` leaves the shape. The leaving
  // node keeps serving the old placement during the transition and returns
  // to the spare pool at CompleteRebalance. Returns false if a resize is in
  // flight, the slot is not a coordinator slot, or s == 1.
  bool BeginRemoveServer(uint32_t slot);
  // End the transition: forget the previous shape, return any node that left
  // the shape to the spare pool, bump the epoch.
  void CompleteRebalance();

  // Structural invariants: slot_of_node/node_of_slot mutually inverse,
  // spare free-list exactly the live unslotted nodes, shapes sized to s/d.
  // Returns true when they hold; fills `why` with the first violation.
  bool CheckInvariants(std::string* why = nullptr) const;

 private:
  void AddSpare(net::NodeId node);
  void RemoveSpare(net::NodeId node);
};

}  // namespace ring::consensus

#endif  // RING_SRC_CONSENSUS_CONFIG_H_
