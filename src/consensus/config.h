// Cluster configuration: the replicated "who does what" record (paper §5.5).
//
// A Ring deployment has s coordinator slots (one per key shard), d redundant
// slots (replica / parity homes), and n spare nodes. The configuration maps
// logical slots to physical nodes; failures are handled by the leader
// re-pointing a slot at a spare and replicating the new epoch.
#ifndef RING_SRC_CONSENSUS_CONFIG_H_
#define RING_SRC_CONSENSUS_CONFIG_H_

#include <cstdint>
#include <vector>

#include "src/net/fabric.h"

namespace ring::consensus {

inline constexpr int32_t kSpareSlot = -1;

struct ClusterConfig {
  uint64_t epoch = 0;
  uint32_t s = 0;       // coordinator slots per memgest group
  uint32_t d = 0;       // redundant slots
  uint32_t groups = 1;  // rotated memgest groups (paper §5.4 balancing)
  net::NodeId leader = 0;
  // slot -> physical node, size s + d.
  std::vector<net::NodeId> node_of_slot;
  // physical node -> slot or kSpareSlot; dead nodes keep their last slot
  // until reassigned.
  std::vector<int32_t> slot_of_node;
  // physical nodes known to have failed (never reused).
  std::vector<bool> failed;

  static ClusterConfig Initial(uint32_t s, uint32_t d, uint32_t num_nodes,
                               uint32_t groups = 1);

  uint32_t num_slots() const { return s + d; }
  uint32_t num_nodes() const {
    return static_cast<uint32_t>(slot_of_node.size());
  }

  // Key sharding spans all groups: shard ids are 0 .. groups*s - 1; shard
  // (g*s + sigma) is the sigma-th coordinator of group g. Group g's layout
  // is the base layout rotated by g over the s+d slots, which spreads
  // coordinator, replica and parity roles evenly (§5.4).
  uint32_t num_shards() const { return groups * s; }
  uint32_t GroupOfShard(uint32_t shard) const { return shard / s; }
  uint32_t SlotOfShard(uint32_t shard) const {
    return (shard % s + shard / s) % num_slots();
  }
  // The j-th redundant slot of group g (parity homes).
  uint32_t RedundantSlot(uint32_t group, uint32_t j) const {
    return (s + j + group) % num_slots();
  }

  // True when the node's slot coordinates at least one shard (some group's
  // rotation lands on it).
  bool IsCoordinator(net::NodeId node) const {
    const int32_t slot = slot_of_node[node];
    return slot >= 0 && !failed[node] &&
           !ShardsOfSlot(static_cast<uint32_t>(slot)).empty();
  }
  // True when `node` currently coordinates `shard`.
  bool CoordinatesShard(net::NodeId node, uint32_t shard) const {
    const int32_t slot = slot_of_node[node];
    return slot >= 0 && !failed[node] &&
           static_cast<uint32_t>(slot) == SlotOfShard(shard);
  }
  // Shards a slot coordinates (one per group whose rotation lands on it).
  std::vector<uint32_t> ShardsOfSlot(uint32_t slot) const;

  net::NodeId CoordinatorOfShard(uint32_t shard) const {
    return node_of_slot[SlotOfShard(shard)];
  }
  net::NodeId NodeOfSlot(uint32_t slot) const { return node_of_slot[slot]; }

  // First live spare, or -1 when the pool is exhausted.
  int32_t FindSpare() const;

  // Re-point victim's slot to `spare` and bump the epoch.
  void Promote(net::NodeId victim, net::NodeId spare);
};

}  // namespace ring::consensus

#endif  // RING_SRC_CONSENSUS_CONFIG_H_
