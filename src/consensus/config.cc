#include "src/consensus/config.h"

#include <cassert>

namespace ring::consensus {

ClusterConfig ClusterConfig::Initial(uint32_t s, uint32_t d,
                                     uint32_t num_nodes, uint32_t groups) {
  assert(num_nodes >= s + d);
  assert(groups >= 1);
  ClusterConfig c;
  c.epoch = 1;
  c.s = s;
  c.d = d;
  c.groups = groups;
  c.leader = 0;
  c.node_of_slot.resize(s + d);
  c.slot_of_node.assign(num_nodes, kSpareSlot);
  c.failed.assign(num_nodes, false);
  for (uint32_t slot = 0; slot < s + d; ++slot) {
    c.node_of_slot[slot] = slot;
    c.slot_of_node[slot] = static_cast<int32_t>(slot);
  }
  return c;
}

std::vector<uint32_t> ClusterConfig::ShardsOfSlot(uint32_t slot) const {
  std::vector<uint32_t> out;
  for (uint32_t shard = 0; shard < num_shards(); ++shard) {
    if (SlotOfShard(shard) == slot) {
      out.push_back(shard);
    }
  }
  return out;
}

int32_t ClusterConfig::FindSpare() const {
  for (uint32_t n = 0; n < slot_of_node.size(); ++n) {
    if (slot_of_node[n] == kSpareSlot && !failed[n]) {
      return static_cast<int32_t>(n);
    }
  }
  return -1;
}

void ClusterConfig::Promote(net::NodeId victim, net::NodeId spare) {
  assert(slot_of_node[victim] != kSpareSlot);
  assert(slot_of_node[spare] == kSpareSlot && !failed[spare]);
  const int32_t slot = slot_of_node[victim];
  failed[victim] = true;
  slot_of_node[victim] = kSpareSlot;
  slot_of_node[spare] = slot;
  node_of_slot[slot] = spare;
  ++epoch;
}

}  // namespace ring::consensus
