#include "src/consensus/config.h"

#include <algorithm>
#include <cassert>

namespace ring::consensus {

ClusterConfig ClusterConfig::Initial(uint32_t s, uint32_t d,
                                     uint32_t num_nodes, uint32_t groups) {
  assert(num_nodes >= s + d);
  assert(groups >= 1);
  ClusterConfig c;
  c.epoch = 1;
  c.s = s;
  c.d = d;
  c.groups = groups;
  c.leader = 0;
  c.node_of_slot.resize(s + d);
  c.slot_of_node.assign(num_nodes, kSpareSlot);
  c.failed.assign(num_nodes, false);
  for (uint32_t slot = 0; slot < s + d; ++slot) {
    c.node_of_slot[slot] = slot;
    c.slot_of_node[slot] = static_cast<int32_t>(slot);
  }
  for (uint32_t n = s + d; n < num_nodes; ++n) {
    c.spares.push_back(n);
  }
  return c;
}

std::vector<uint32_t> ClusterConfig::ShardsOfSlot(uint32_t slot) const {
  std::vector<uint32_t> out;
  for (uint32_t shard = 0; shard < num_shards(); ++shard) {
    if (SlotOfShard(shard) == slot) {
      out.push_back(shard);
    }
  }
  return out;
}

void ClusterConfig::AddSpare(net::NodeId node) {
  const auto it = std::lower_bound(spares.begin(), spares.end(), node);
  if (it == spares.end() || *it != node) {
    spares.insert(it, node);
  }
}

void ClusterConfig::RemoveSpare(net::NodeId node) {
  const auto it = std::lower_bound(spares.begin(), spares.end(), node);
  if (it != spares.end() && *it == node) {
    spares.erase(it);
  }
}

void ClusterConfig::Promote(net::NodeId victim, net::NodeId spare) {
  assert(slot_of_node[spare] == kSpareSlot && !failed[spare]);
  const int32_t slot = slot_of_node[victim];
  failed[victim] = true;
  RemoveSpare(victim);
  RemoveSpare(spare);
  if (slot != kSpareSlot) {
    slot_of_node[victim] = kSpareSlot;
    slot_of_node[spare] = slot;
    node_of_slot[static_cast<uint32_t>(slot)] = spare;
  }
  // Old-placement routing follows the promotion: unmigrated keys served at
  // the previous shape must find the replacement node, and the replacement
  // recovers the victim's previous-shape data too.
  if (rebalancing()) {
    for (net::NodeId& n : prev_node_of_slot) {
      if (n == victim) {
        n = spare;
      }
    }
  }
  ++epoch;
}

void ClusterConfig::MarkFailed(net::NodeId node) {
  if (failed[node]) {
    return;
  }
  failed[node] = true;
  RemoveSpare(node);
  ++epoch;
}

void ClusterConfig::Readmit(net::NodeId node) {
  failed[node] = false;
  if (slot_of_node[node] == kSpareSlot) {
    // Not in the current shape; it may still back the previous shape of an
    // in-flight resize (a shrink's leaving node that crashed and rejoined
    // memory-less keeps its old-placement duties but is not a usable spare).
    bool in_prev = false;
    if (rebalancing()) {
      for (const net::NodeId n : prev_node_of_slot) {
        in_prev |= n == node;
      }
    }
    if (!in_prev) {
      AddSpare(node);
    }
  }
  ++epoch;
}

bool ClusterConfig::BeginAddServer(net::NodeId node) {
  if (rebalancing() || node >= num_nodes() || failed[node] ||
      slot_of_node[node] != kSpareSlot) {
    return false;
  }
  prev_s = s;
  prev_node_of_slot = node_of_slot;
  // Insert the new coordinator slot at index s: coordinator slots 0..s-1
  // keep their nodes and the redundant slots shift to s+1..s+d without
  // changing theirs.
  node_of_slot.insert(node_of_slot.begin() + s, node);
  s += 1;
  for (uint32_t slot = 0; slot < num_slots(); ++slot) {
    slot_of_node[node_of_slot[slot]] = static_cast<int32_t>(slot);
  }
  RemoveSpare(node);
  ++epoch;
  return true;
}

bool ClusterConfig::BeginRemoveServer(uint32_t slot) {
  if (rebalancing() || s <= 1 || slot >= s) {
    return false;
  }
  prev_s = s;
  prev_node_of_slot = node_of_slot;
  const net::NodeId leaving = node_of_slot[slot];
  node_of_slot.erase(node_of_slot.begin() + slot);
  s -= 1;
  // The leaving node serves the previous shape until the rebalance drains;
  // it joins the spare pool in CompleteRebalance, not here.
  slot_of_node[leaving] = kSpareSlot;
  for (uint32_t sl = 0; sl < num_slots(); ++sl) {
    slot_of_node[node_of_slot[sl]] = static_cast<int32_t>(sl);
  }
  ++epoch;
  return true;
}

void ClusterConfig::CompleteRebalance() {
  if (!rebalancing()) {
    return;
  }
  prev_s = 0;
  prev_node_of_slot.clear();
  // Anyone live without a slot is a spare again (a shrink's leaving node).
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (slot_of_node[n] == kSpareSlot && !failed[n]) {
      AddSpare(n);
    }
  }
  ++epoch;
}

bool ClusterConfig::CheckInvariants(std::string* why) const {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) {
      *why = message;
    }
    return false;
  };
  if (node_of_slot.size() != num_slots()) {
    return fail("node_of_slot size != s + d");
  }
  if (slot_of_node.size() != failed.size()) {
    return fail("slot_of_node size != failed size");
  }
  for (uint32_t slot = 0; slot < num_slots(); ++slot) {
    const net::NodeId node = node_of_slot[slot];
    if (node >= num_nodes()) {
      return fail("node_of_slot[" + std::to_string(slot) + "] out of range");
    }
    if (slot_of_node[node] != static_cast<int32_t>(slot)) {
      return fail("slot " + std::to_string(slot) + " -> node " +
                  std::to_string(node) + " not mirrored in slot_of_node");
    }
  }
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    const int32_t slot = slot_of_node[n];
    if (slot == kSpareSlot) {
      continue;
    }
    if (slot < 0 || static_cast<uint32_t>(slot) >= num_slots() ||
        node_of_slot[static_cast<uint32_t>(slot)] != n) {
      return fail("slot_of_node[" + std::to_string(n) +
                  "] not mirrored in node_of_slot");
    }
  }
  // The spare free-list holds exactly the live unslotted nodes that are not
  // backing the previous shape of an in-flight resize.
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    bool in_prev = false;
    if (rebalancing()) {
      for (const net::NodeId p : prev_node_of_slot) {
        in_prev |= p == n;
      }
    }
    const bool should_be_spare =
        slot_of_node[n] == kSpareSlot && !failed[n] && !in_prev;
    const bool listed =
        std::binary_search(spares.begin(), spares.end(), n);
    if (should_be_spare != listed) {
      return fail("spare free-list " +
                  std::string(listed ? "lists" : "misses") + " node " +
                  std::to_string(n));
    }
  }
  if (!std::is_sorted(spares.begin(), spares.end())) {
    return fail("spare free-list not sorted");
  }
  if (rebalancing() && prev_node_of_slot.size() != prev_s + d) {
    return fail("prev_node_of_slot size != prev_s + d");
  }
  return true;
}

}  // namespace ring::consensus
