// Membership, failure detection, leader election, and configuration
// replication (paper §5.5).
//
// Simplified DARE-style replicated state machine: the leader broadcasts
// heartbeats and collects heartbeats from every node; a node silent for
// `failure_timeout` is declared failed, a spare is promoted into its slot
// and the new configuration epoch is replicated to all live nodes (majority
// acknowledged). If the leader dies, the live node with the lowest id takes
// over after a ranked timeout and replicates a new epoch.
#ifndef RING_SRC_CONSENSUS_MEMBERSHIP_H_
#define RING_SRC_CONSENSUS_MEMBERSHIP_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/consensus/config.h"
#include "src/net/fabric.h"

namespace ring::consensus {

class MembershipGroup {
 public:
  // Callback type: a node learned a new committed configuration.
  using ConfigCallback =
      std::function<void(net::NodeId self, const ClusterConfig& config)>;

  // `num_members` bounds the membership to the first nodes of the fabric
  // (s + d KVS slots plus spares); higher node ids are clients and take no
  // part in heartbeats or configuration. Defaults to every fabric node.
  MembershipGroup(net::Fabric* fabric, uint32_t s, uint32_t d,
                  uint32_t num_members = 0, uint32_t groups = 1);

  uint32_t num_members() const {
    return static_cast<uint32_t>(agents_.size());
  }

  // Begins heartbeat traffic. Call once after wiring callbacks.
  void Start();

  // The configuration as currently known by `node`.
  const ClusterConfig& ConfigView(net::NodeId node) const {
    return agents_[node]->config;
  }

  // Invoked on each node when it receives a newer configuration.
  void SetOnConfig(ConfigCallback cb) { on_config_ = std::move(cb); }

  // Fail-stop injection: kills the node on the fabric. Detection happens via
  // missed heartbeats.
  void InjectFailure(net::NodeId victim);

  // Crash-recovery: `node` restarted memory-less (fabric already revived).
  // It marks itself failed in its own stale view and petitions the cluster
  // for readmission each tick until a leader broadcasts a config that
  // includes it again — as a spare when its old slot was re-assigned, or
  // re-promoted into its own slot (walking the normal spare-recovery path)
  // when no spare had been available.
  void Rejoin(net::NodeId node);

  // Gray-failure resume: resets `node`'s failure-detection timers so the
  // stall it just experienced is not misread as everyone else's silence.
  void NoteResumed(net::NodeId node);

  // Benchmark aid: makes the leader handle `victim`'s death immediately,
  // bypassing the heartbeat timeout (Fig. 12 measures recovery from the
  // moment of detection).
  void ForceDetect(net::NodeId victim);

  // Elastic membership (§13): applied on the current leader's agent as an
  // epoch-bumped transition and replicated through the normal config
  // broadcast; followers that miss it catch up via heartbeat anti-entropy.
  // Return false when the precondition fails (a resize already in flight,
  // node not a live spare, slot not a coordinator slot, no live leader).
  bool BeginAddServer(net::NodeId node);
  bool BeginRemoveServer(uint32_t slot);
  bool CompleteRebalance();

  net::NodeId CurrentLeader() const;

  uint64_t config_changes() const { return config_changes_; }

 private:
  struct Agent {
    net::NodeId id;
    ClusterConfig config;
    // Leader state: last heartbeat time per node.
    std::vector<sim::SimTime> last_seen;
    sim::SimTime last_leader_seen = 0;
    bool is_leader = false;
    // Whether this node's heartbeat-tick chain is scheduled. The chain dies
    // with the node; Rejoin restarts it exactly once.
    bool ticking = false;
  };

  void HeartbeatTick(net::NodeId node);
  void HandleJoinRequest(net::NodeId member, net::NodeId node,
                         uint64_t petition_epoch);
  void LeaderCheck(net::NodeId node);
  void FollowerCheck(net::NodeId node);
  void TakeOver(net::NodeId node);
  void HandleNodeFailure(net::NodeId leader, net::NodeId victim);
  void BroadcastConfig(net::NodeId leader);
  void ApplyConfig(net::NodeId node, const ClusterConfig& config);

  net::Fabric* fabric_;
  std::vector<std::unique_ptr<Agent>> agents_;
  ConfigCallback on_config_;
  uint64_t config_changes_ = 0;
  bool started_ = false;
};

}  // namespace ring::consensus

#endif  // RING_SRC_CONSENSUS_MEMBERSHIP_H_
