#include "src/consensus/membership.h"

#include <cassert>

#include "src/common/logging.h"

namespace ring::consensus {
namespace {
// Small control-plane message sizes (bytes on the wire).
constexpr uint64_t kHeartbeatBytes = 32;
constexpr uint64_t kConfigBytes = 256;
constexpr uint64_t kMicrosecondStagger = 1000;  // ns
}  // namespace

MembershipGroup::MembershipGroup(net::Fabric* fabric, uint32_t s, uint32_t d,
                                 uint32_t num_members, uint32_t groups)
    : fabric_(fabric) {
  const uint32_t n =
      num_members == 0 ? fabric->num_nodes() : num_members;
  const ClusterConfig initial = ClusterConfig::Initial(s, d, n, groups);
  agents_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto agent = std::make_unique<Agent>();
    agent->id = i;
    agent->config = initial;
    agent->last_seen.assign(n, 0);
    agent->is_leader = (i == initial.leader);
    agents_.push_back(std::move(agent));
  }
}

void MembershipGroup::Start() {
  assert(!started_);
  started_ = true;
  auto* simulator = fabric_->simulator();
  for (auto& agent : agents_) {
    const net::NodeId id = agent->id;
    agent->last_leader_seen = simulator->now();
    for (net::NodeId peer = 0; peer < num_members(); ++peer) {
      agent->last_seen[peer] = simulator->now();
    }
    // Phase-staggered ticks: simultaneous election checks would let two
    // ranked candidates promote themselves in the same instant before
    // either's config broadcast lands.
    simulator->After(simulator->params().heartbeat_period_ns +
                         id * 200 * kMicrosecondStagger,
                     [this, id] { HeartbeatTick(id); });
  }
}

void MembershipGroup::HeartbeatTick(net::NodeId node) {
  if (!fabric_->alive(node)) {
    return;  // dead nodes stop ticking
  }
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  if (agent.is_leader) {
    // Leader broadcasts liveness and checks followers.
    for (net::NodeId peer = 0; peer < num_members(); ++peer) {
      if (peer == node || agent.config.failed[peer]) {
        continue;
      }
      fabric_->Send(node, peer, kHeartbeatBytes, [this, peer, node] {
        agents_[peer]->last_leader_seen = fabric_->simulator()->now();
        (void)node;
      });
    }
    LeaderCheck(node);
  } else {
    // Follower heartbeats to its view of the leader and watches for leader
    // silence.
    const net::NodeId leader = agent.config.leader;
    fabric_->Send(node, leader, kHeartbeatBytes, [this, leader, node] {
      agents_[leader]->last_seen[node] = fabric_->simulator()->now();
    });
    FollowerCheck(node);
  }
  simulator->After(simulator->params().heartbeat_period_ns,
                   [this, node] { HeartbeatTick(node); });
}

void MembershipGroup::LeaderCheck(net::NodeId node) {
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  const uint64_t timeout = simulator->params().failure_timeout_ns;
  for (net::NodeId peer = 0; peer < num_members(); ++peer) {
    if (peer == node || agent.config.failed[peer]) {
      continue;
    }
    if (simulator->now() - agent.last_seen[peer] > timeout) {
      HandleNodeFailure(node, peer);
    }
  }
}

void MembershipGroup::FollowerCheck(net::NodeId node) {
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  // Ranked election timeout: lower node ids preempt higher ones, so exactly
  // one candidate promotes itself in the common case.
  const uint64_t timeout =
      simulator->params().failure_timeout_ns +
      node * (simulator->params().heartbeat_period_ns / 2);
  if (simulator->now() - agent.last_leader_seen <= timeout) {
    return;
  }
  TakeOver(node);
}

// The leader is silent (or known dead): this node assumes leadership. Only
// safe to call when no live lower-id node exists in `node`'s view (they
// would have preempted it already).
void MembershipGroup::TakeOver(net::NodeId node) {
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  const net::NodeId old_leader = agent.config.leader;
  agent.config.failed[old_leader] = true;
  // If the dead leader held a slot, promote a spare into it.
  if (agent.config.slot_of_node[old_leader] != kSpareSlot) {
    const int32_t spare = agent.config.FindSpare();
    if (spare >= 0) {
      agent.config.Promote(old_leader, static_cast<net::NodeId>(spare));
    } else {
      ++agent.config.epoch;
    }
  } else {
    ++agent.config.epoch;
  }
  agent.config.leader = node;
  agent.is_leader = true;
  for (net::NodeId peer = 0; peer < num_members(); ++peer) {
    agent.last_seen[peer] = simulator->now();
  }
  RING_LOG(kInfo) << "node " << node << " takes leadership (epoch "
                  << agent.config.epoch << ")";
  BroadcastConfig(node);
}

void MembershipGroup::HandleNodeFailure(net::NodeId leader,
                                        net::NodeId victim) {
  Agent& agent = *agents_[leader];
  if (agent.config.failed[victim]) {
    return;
  }
  if (agent.config.slot_of_node[victim] == kSpareSlot) {
    // A spare died: just record it.
    agent.config.failed[victim] = true;
    ++agent.config.epoch;
  } else {
    const int32_t spare = agent.config.FindSpare();
    if (spare < 0) {
      RING_LOG(kWarn) << "no spare available for failed node " << victim;
      agent.config.failed[victim] = true;
      ++agent.config.epoch;
    } else {
      agent.config.Promote(victim, static_cast<net::NodeId>(spare));
      RING_LOG(kInfo) << "leader " << leader << " promotes spare " << spare
                      << " for failed node " << victim;
    }
  }
  ++config_changes_;
  BroadcastConfig(leader);
}

void MembershipGroup::BroadcastConfig(net::NodeId leader) {
  const ClusterConfig config = agents_[leader]->config;  // snapshot
  ApplyConfig(leader, config);
  for (net::NodeId peer = 0; peer < num_members(); ++peer) {
    if (peer == leader || config.failed[peer]) {
      continue;
    }
    fabric_->Send(leader, peer, kConfigBytes,
                  [this, peer, config] { ApplyConfig(peer, config); });
  }
}

void MembershipGroup::ApplyConfig(net::NodeId node,
                                  const ClusterConfig& config) {
  Agent& agent = *agents_[node];
  const bool newer =
      config.epoch > agent.config.epoch ||
      (config.epoch == agent.config.epoch &&
       config.leader < agent.config.leader);  // tie-break: lowest leader wins
  if (!newer && node != config.leader) {
    return;  // stale
  }
  agent.config = config;
  agent.is_leader = (config.leader == node);
  agent.last_leader_seen = fabric_->simulator()->now();
  if (on_config_) {
    on_config_(node, agent.config);
  }
}

void MembershipGroup::InjectFailure(net::NodeId victim) {
  fabric_->Kill(victim);
}

void MembershipGroup::ForceDetect(net::NodeId victim) {
  fabric_->Kill(victim);
  net::NodeId leader = CurrentLeader();
  if (leader == victim) {
    // The victim led the cluster: the lowest live member detects the death
    // and takes over immediately (the election outcome, without waiting for
    // the ranked timeout).
    for (net::NodeId n = 0; n < num_members(); ++n) {
      if (n != victim && fabric_->alive(n) && !agents_[n]->config.failed[n]) {
        TakeOver(n);
        return;
      }
    }
    return;
  }
  HandleNodeFailure(leader, victim);
}

net::NodeId MembershipGroup::CurrentLeader() const {
  // The authoritative leader is the live agent that believes it leads with
  // the highest epoch.
  net::NodeId best = 0;
  uint64_t best_epoch = 0;
  for (const auto& agent : agents_) {
    if (agent->is_leader && fabric_->alive(agent->id) &&
        agent->config.epoch >= best_epoch) {
      best = agent->id;
      best_epoch = agent->config.epoch;
    }
  }
  return best;
}

}  // namespace consensus
