#include "src/consensus/membership.h"

#include <cassert>

#include "src/common/logging.h"

namespace ring::consensus {
namespace {
// Small control-plane message sizes (bytes on the wire).
constexpr uint64_t kHeartbeatBytes = 32;
constexpr uint64_t kConfigBytes = 256;
constexpr uint64_t kMicrosecondStagger = 1000;  // ns
}  // namespace

MembershipGroup::MembershipGroup(net::Fabric* fabric, uint32_t s, uint32_t d,
                                 uint32_t num_members, uint32_t groups)
    : fabric_(fabric) {
  const uint32_t n =
      num_members == 0 ? fabric->num_nodes() : num_members;
  const ClusterConfig initial = ClusterConfig::Initial(s, d, n, groups);
  agents_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto agent = std::make_unique<Agent>();
    agent->id = i;
    agent->config = initial;
    agent->last_seen.assign(n, 0);
    agent->is_leader = (i == initial.leader);
    agents_.push_back(std::move(agent));
  }
}

void MembershipGroup::Start() {
  assert(!started_);
  started_ = true;
  auto* simulator = fabric_->simulator();
  for (auto& agent : agents_) {
    const net::NodeId id = agent->id;
    agent->last_leader_seen = simulator->now();
    for (net::NodeId peer = 0; peer < num_members(); ++peer) {
      agent->last_seen[peer] = simulator->now();
    }
    // Phase-staggered ticks: simultaneous election checks would let two
    // ranked candidates promote themselves in the same instant before
    // either's config broadcast lands.
    agent->ticking = true;
    simulator->After(simulator->params().heartbeat_period_ns +
                         id * 200 * kMicrosecondStagger,
                     [this, id] { HeartbeatTick(id); });
  }
}

void MembershipGroup::HeartbeatTick(net::NodeId node) {
  if (!fabric_->alive(node)) {
    agents_[node]->ticking = false;
    return;  // dead nodes stop ticking (Rejoin restarts the chain)
  }
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  if (fabric_->paused(node)) {
    // Gray failure: the wedged process neither sends nor checks anything,
    // but its timer survives the stall and resumes firing afterwards.
    simulator->After(simulator->params().heartbeat_period_ns,
                     [this, node] { HeartbeatTick(node); });
    return;
  }
  if (agent.config.failed[node]) {
    // Excluded from the cluster (restarted after a crash, or a gray failure
    // that outlived the detection window): a failed node must neither elect
    // nor be elected. Petition every member for readmission instead — only
    // an actual leader acts, and repeating each tick survives chaos-dropped
    // petitions. The epoch makes duplicated petitions harmless: once the
    // readmission bumps the epoch, stale copies are ignored.
    const uint64_t petition_epoch = agent.config.epoch;
    for (net::NodeId peer = 0; peer < num_members(); ++peer) {
      if (peer == node) {
        continue;
      }
      fabric_->Send(node, peer, kHeartbeatBytes,
                    [this, peer, node, petition_epoch] {
                      HandleJoinRequest(peer, node, petition_epoch);
                    });
    }
  } else if (agent.is_leader) {
    // Leader broadcasts liveness and checks followers.
    const uint64_t sender_epoch = agent.config.epoch;
    for (net::NodeId peer = 0; peer < num_members(); ++peer) {
      if (peer == node || agent.config.failed[peer]) {
        continue;
      }
      fabric_->Send(node, peer, kHeartbeatBytes,
                    [this, peer, node, sender_epoch] {
        Agent& receiver = *agents_[peer];
        if (receiver.config.epoch > sender_epoch &&
            receiver.config.leader != node) {
          // Deposed leader still heartbeating on a stale view (it was
          // paused through an election): push the newer config instead of
          // letting its heartbeats suppress anyone's failure detection.
          const ClusterConfig snapshot = receiver.config;
          fabric_->Send(peer, node, kConfigBytes, [this, node, snapshot] {
            ApplyConfig(node, snapshot);
          });
          return;
        }
        receiver.last_leader_seen = fabric_->simulator()->now();
      });
    }
    LeaderCheck(node);
  } else {
    // Follower heartbeats to its view of the leader and watches for leader
    // silence.
    const net::NodeId leader = agent.config.leader;
    const uint64_t sender_epoch = agent.config.epoch;
    fabric_->Send(node, leader, kHeartbeatBytes,
                  [this, leader, node, sender_epoch] {
      Agent& receiver = *agents_[leader];
      receiver.last_seen[node] = fabric_->simulator()->now();
      if (receiver.config.epoch > sender_epoch) {
        // Anti-entropy: the follower missed a config broadcast (lossy or
        // partitioned link); repair it from the heartbeat exchange.
        const ClusterConfig snapshot = receiver.config;
        fabric_->Send(leader, node, kConfigBytes, [this, node, snapshot] {
          ApplyConfig(node, snapshot);
        });
      }
    });
    FollowerCheck(node);
  }
  simulator->After(simulator->params().heartbeat_period_ns,
                   [this, node] { HeartbeatTick(node); });
}

void MembershipGroup::HandleJoinRequest(net::NodeId member, net::NodeId node,
                                        uint64_t petition_epoch) {
  Agent& agent = *agents_[member];
  if (!agent.is_leader || node >= num_members()) {
    return;  // only the leader readmits; stale petitions die here
  }
  if (!agent.config.failed[node]) {
    if (petition_epoch < agent.config.epoch) {
      // A chaos-duplicated (or long-delayed) petition from before the
      // readmission: acting on it would spuriously re-fail the node.
      return;
    }
    const int32_t slot = agent.config.slot_of_node[node];
    if (slot != kSpareSlot && agent.config.node_of_slot[slot] == node) {
      // Crash + restart inside one detection window: the cluster never saw
      // the death. Process the failure first so the memory-less node is
      // re-integrated through the promotion path rather than silently
      // serving from an empty store.
      HandleNodeFailure(member, node);
    } else {
      return;  // already a live member: duplicate petition
    }
  }
  agent.config.Readmit(node);
  agent.last_seen[node] = fabric_->simulator()->now();
  ++config_changes_;
  RING_LOG(kInfo) << "leader " << member << " readmits node " << node
                  << (agent.config.slot_of_node[node] == kSpareSlot
                          ? " as a spare"
                          : " into its old slot");
  BroadcastConfig(member);
}

void MembershipGroup::Rejoin(net::NodeId node) {
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  // Memory-less restart: the process rebooted knowing only its id and its
  // boot-time view; it marks itself failed in that view (it must not vote or
  // lead) and petitions for readmission from its tick loop.
  agent.is_leader = false;
  agent.config.failed[node] = true;
  agent.last_leader_seen = simulator->now();
  for (net::NodeId peer = 0; peer < num_members(); ++peer) {
    agent.last_seen[peer] = simulator->now();
  }
  if (!agent.ticking) {
    agent.ticking = true;
    simulator->After(simulator->params().heartbeat_period_ns,
                     [this, node] { HeartbeatTick(node); });
  }
}

void MembershipGroup::NoteResumed(net::NodeId node) {
  if (node >= num_members()) {
    return;
  }
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  // The node stalled, not its peers: restart every detection clock so it
  // does not instantly declare the world dead (or elect itself) based on
  // silence it caused.
  agent.last_leader_seen = simulator->now();
  for (net::NodeId peer = 0; peer < num_members(); ++peer) {
    agent.last_seen[peer] = simulator->now();
  }
}

void MembershipGroup::LeaderCheck(net::NodeId node) {
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  const uint64_t timeout = simulator->params().failure_timeout_ns;
  for (net::NodeId peer = 0; peer < num_members(); ++peer) {
    if (peer == node || agent.config.failed[peer]) {
      continue;
    }
    if (simulator->now() - agent.last_seen[peer] > timeout) {
      HandleNodeFailure(node, peer);
    }
  }
}

void MembershipGroup::FollowerCheck(net::NodeId node) {
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  // Ranked election timeout: lower node ids preempt higher ones, so exactly
  // one candidate promotes itself in the common case.
  const uint64_t timeout =
      simulator->params().failure_timeout_ns +
      node * (simulator->params().heartbeat_period_ns / 2);
  if (simulator->now() - agent.last_leader_seen <= timeout) {
    return;
  }
  TakeOver(node);
}

// The leader is silent (or known dead): this node assumes leadership. Only
// safe to call when no live lower-id node exists in `node`'s view (they
// would have preempted it already).
void MembershipGroup::TakeOver(net::NodeId node) {
  Agent& agent = *agents_[node];
  auto* simulator = fabric_->simulator();
  const net::NodeId old_leader = agent.config.leader;
  // If the dead leader held a slot (or still backs the previous shape of an
  // in-flight resize), promote a spare into it.
  const int32_t spare = agent.config.FindSpare();
  if (!agent.config.failed[old_leader] &&
      agent.config.slot_of_node[old_leader] != kSpareSlot && spare >= 0) {
    agent.config.Promote(old_leader, static_cast<net::NodeId>(spare));
  } else if (!agent.config.failed[old_leader]) {
    agent.config.MarkFailed(old_leader);
  } else {
    ++agent.config.epoch;
  }
  agent.config.leader = node;
  agent.is_leader = true;
  for (net::NodeId peer = 0; peer < num_members(); ++peer) {
    agent.last_seen[peer] = simulator->now();
  }
  RING_LOG(kInfo) << "node " << node << " takes leadership (epoch "
                  << agent.config.epoch << ")";
  BroadcastConfig(node);
}

void MembershipGroup::HandleNodeFailure(net::NodeId leader,
                                        net::NodeId victim) {
  Agent& agent = *agents_[leader];
  if (agent.config.failed[victim]) {
    return;
  }
  // During a resize the victim may hold no current slot yet still back the
  // previous shape (a shrink's leaving node); that also needs a promotion so
  // unmigrated keys keep a live old-placement home.
  bool in_prev = false;
  if (agent.config.rebalancing()) {
    for (const net::NodeId n : agent.config.prev_node_of_slot) {
      in_prev |= n == victim;
    }
  }
  if (agent.config.slot_of_node[victim] == kSpareSlot && !in_prev) {
    // A spare died: just record it.
    agent.config.MarkFailed(victim);
  } else {
    const int32_t spare = agent.config.FindSpare();
    if (spare < 0) {
      RING_LOG(kWarn) << "no spare available for failed node " << victim;
      agent.config.MarkFailed(victim);
    } else {
      agent.config.Promote(victim, static_cast<net::NodeId>(spare));
      RING_LOG(kInfo) << "leader " << leader << " promotes spare " << spare
                      << " for failed node " << victim;
    }
  }
  ++config_changes_;
  BroadcastConfig(leader);
}

void MembershipGroup::BroadcastConfig(net::NodeId leader) {
  const ClusterConfig config = agents_[leader]->config;  // snapshot
  ApplyConfig(leader, config);
  for (net::NodeId peer = 0; peer < num_members(); ++peer) {
    if (peer == leader || config.failed[peer]) {
      continue;
    }
    fabric_->Send(leader, peer, kConfigBytes,
                  [this, peer, config] { ApplyConfig(peer, config); });
  }
}

void MembershipGroup::ApplyConfig(net::NodeId node,
                                  const ClusterConfig& config) {
  Agent& agent = *agents_[node];
  const bool newer =
      config.epoch > agent.config.epoch ||
      (config.epoch == agent.config.epoch &&
       config.leader < agent.config.leader);  // tie-break: lowest leader wins
  if (!newer && node != config.leader) {
    return;  // stale
  }
  agent.config = config;
  agent.is_leader = (config.leader == node);
  agent.last_leader_seen = fabric_->simulator()->now();
  if (on_config_) {
    on_config_(node, agent.config);
  }
}

void MembershipGroup::InjectFailure(net::NodeId victim) {
  fabric_->Kill(victim);
}

void MembershipGroup::ForceDetect(net::NodeId victim) {
  fabric_->Kill(victim);
  net::NodeId leader = CurrentLeader();
  if (leader == victim) {
    // The victim led the cluster: the lowest live member detects the death
    // and takes over immediately (the election outcome, without waiting for
    // the ranked timeout).
    for (net::NodeId n = 0; n < num_members(); ++n) {
      if (n != victim && fabric_->alive(n) && !agents_[n]->config.failed[n]) {
        TakeOver(n);
        return;
      }
    }
    return;
  }
  HandleNodeFailure(leader, victim);
}

bool MembershipGroup::BeginAddServer(net::NodeId node) {
  const net::NodeId leader = CurrentLeader();
  Agent& agent = *agents_[leader];
  if (!fabric_->alive(leader) || !agent.is_leader ||
      !agent.config.BeginAddServer(node)) {
    return false;
  }
  RING_LOG(kInfo) << "leader " << leader << " grows the group: node " << node
                  << " becomes coordinator slot " << (agent.config.s - 1)
                  << " (epoch " << agent.config.epoch << ")";
  ++config_changes_;
  BroadcastConfig(leader);
  return true;
}

bool MembershipGroup::BeginRemoveServer(uint32_t slot) {
  const net::NodeId leader = CurrentLeader();
  Agent& agent = *agents_[leader];
  if (!fabric_->alive(leader) || !agent.is_leader ||
      !agent.config.BeginRemoveServer(slot)) {
    return false;
  }
  RING_LOG(kInfo) << "leader " << leader << " shrinks the group: slot "
                  << slot << " leaves (epoch " << agent.config.epoch << ")";
  ++config_changes_;
  BroadcastConfig(leader);
  return true;
}

bool MembershipGroup::CompleteRebalance() {
  const net::NodeId leader = CurrentLeader();
  Agent& agent = *agents_[leader];
  if (!fabric_->alive(leader) || !agent.is_leader ||
      !agent.config.rebalancing()) {
    return false;
  }
  agent.config.CompleteRebalance();
  RING_LOG(kInfo) << "leader " << leader << " completes the rebalance (epoch "
                  << agent.config.epoch << ")";
  ++config_changes_;
  BroadcastConfig(leader);
  return true;
}

net::NodeId MembershipGroup::CurrentLeader() const {
  // The authoritative leader is the live agent that believes it leads with
  // the highest epoch.
  net::NodeId best = 0;
  uint64_t best_epoch = 0;
  for (const auto& agent : agents_) {
    if (agent->is_leader && fabric_->alive(agent->id) &&
        agent->config.epoch >= best_epoch) {
      best = agent->id;
      best_epoch = agent->config.epoch;
    }
  }
  return best;
}

}  // namespace consensus
