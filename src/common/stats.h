// Descriptive statistics used by the benchmark harnesses: the paper reports
// medians and 90th percentiles over repeated measurements.
#ifndef RING_SRC_COMMON_STATS_H_
#define RING_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace ring {

// Accumulates samples; percentile queries sort a private copy lazily and
// cache it, so back-to-back Percentile(50)/Percentile(90) calls sort once.
class Samples {
 public:
  void Add(double v) {
    values_.push_back(v);
    sorted_valid_ = false;
  }
  void Clear() {
    values_.clear();
    sorted_.clear();
    sorted_valid_ = false;
  }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  double Stddev() const;
  // Percentile in [0,100] with linear interpolation. Precondition: !empty().
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  const std::vector<double>& Sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace ring

#endif  // RING_SRC_COMMON_STATS_H_
