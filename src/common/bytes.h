// Byte-buffer helpers shared by the coding and KVS layers.
#ifndef RING_SRC_COMMON_BYTES_H_
#define RING_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ring {

using Buffer = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;
using MutableByteSpan = std::span<uint8_t>;

// Deterministic pseudo-random buffer of the given size (content depends only
// on `seed` and `size`); used by tests and workload value generation.
Buffer MakePatternBuffer(size_t size, uint64_t seed);

// Buffer <-> string convenience for human-readable examples.
inline Buffer ToBuffer(const std::string& s) {
  return Buffer(s.begin(), s.end());
}
inline std::string ToString(ByteSpan b) {
  return std::string(b.begin(), b.end());
}

}  // namespace ring

#endif  // RING_SRC_COMMON_BYTES_H_
