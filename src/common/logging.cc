#include "src/common/logging.h"

#include <cstdio>

namespace ring {
namespace {
LogLevel g_level = LogLevel::kNone;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {
void EmitLog(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}
}  // namespace internal

}  // namespace ring
