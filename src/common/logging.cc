#include "src/common/logging.h"

#include <cstdio>

namespace ring {
namespace {
LogLevel g_level = LogLevel::kNone;
thread_local uint64_t tl_sim_time_ns = 0;
thread_local int32_t tl_node = kLogNoNode;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetLogSimTime(uint64_t sim_time_ns) { tl_sim_time_ns = sim_time_ns; }
void SetLogNode(int32_t node) { tl_node = node; }

namespace internal {
void EmitLog(LogLevel level, const std::string& message) {
  if (tl_node != kLogNoNode) {
    std::fprintf(stderr, "[%s %12.3fus n%d] %s\n", LevelTag(level),
                 static_cast<double>(tl_sim_time_ns) / 1000.0, tl_node,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s %12.3fus] %s\n", LevelTag(level),
                 static_cast<double>(tl_sim_time_ns) / 1000.0,
                 message.c_str());
  }
}
}  // namespace internal

}  // namespace ring
