// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (workload generators,
// failure injection, Markov-model sampling checks) draws from Rng so that
// whole experiments are reproducible bit-for-bit from a seed.
#ifndef RING_SRC_COMMON_RNG_H_
#define RING_SRC_COMMON_RNG_H_

#include <cstdint>

namespace ring {

// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64. Small, fast,
// and high quality; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform in [0, 2^64).
  uint64_t NextU64();

  // Uniform in [0, bound). Precondition: bound > 0. Uses Lemire's unbiased
  // multiply-shift rejection method.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed with the given rate (mean 1/rate).
  double NextExponential(double rate);

  // Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace ring

#endif  // RING_SRC_COMMON_RNG_H_
