// Minimal leveled logging. Off by default so benchmark output stays clean;
// tests and examples can raise the level.
#ifndef RING_SRC_COMMON_LOGGING_H_
#define RING_SRC_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace ring {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

// Global threshold; messages above it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Simulation context prefixed onto every log line, so debug logs from a
// deterministic run correlate with traces. The simulator sets the time
// before dispatching each event; handlers set the node. Thread-local, so
// tests running simulations in parallel don't interleave contexts.
void SetLogSimTime(uint64_t sim_time_ns);
// Pass kLogNoNode to clear.
inline constexpr int32_t kLogNoNode = -1;
void SetLogNode(int32_t node);

namespace internal {
void EmitLog(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { EmitLog(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ring

#define RING_LOG(level)                                    \
  if (static_cast<int>(::ring::GetLogLevel()) >=           \
      static_cast<int>(::ring::LogLevel::level))           \
  ::ring::internal::LogLine(::ring::LogLevel::level)

#endif  // RING_SRC_COMMON_LOGGING_H_
