// Key hashing for the key-to-node mapping `i = h(key) mod s` (paper §5.1).
#ifndef RING_SRC_COMMON_HASH_H_
#define RING_SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace ring {

// 64-bit FNV-1a over the key bytes followed by a splitmix64 finalizer. The
// finalizer matters: `mod s` for small s exposes the weak low bits of plain
// FNV-1a, and shard balance (paper §5.1, §5.4) depends on a well-mixed hash.
uint64_t HashKey(std::string_view key);

// Shard for a key in a group with `s` coordinator shards.
inline uint32_t KeyShard(std::string_view key, uint32_t s) {
  return static_cast<uint32_t>(HashKey(key) % s);
}

}  // namespace ring

#endif  // RING_SRC_COMMON_HASH_H_
