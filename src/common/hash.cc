#include "src/common/hash.h"

namespace ring {

uint64_t HashKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer to mix low bits.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace ring
