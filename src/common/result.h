// Result<T>: value-or-Status, the return type of fallible functions that
// produce a value. Modeled after absl::StatusOr / std::expected.
#ifndef RING_SRC_COMMON_RESULT_H_
#define RING_SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace ring {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from a non-OK Status keeps call
  // sites terse: `return value;` / `return NotFoundError(...);`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `rexpr` (a Result<T>), returns its status on error, otherwise
// binds the value to `lhs`.
#define RING_ASSIGN_OR_RETURN(lhs, rexpr)         \
  auto RING_CONCAT_(result_, __LINE__) = (rexpr); \
  if (!RING_CONCAT_(result_, __LINE__).ok())      \
    return RING_CONCAT_(result_, __LINE__).status(); \
  lhs = std::move(RING_CONCAT_(result_, __LINE__)).value()

#define RING_CONCAT_INNER_(a, b) a##b
#define RING_CONCAT_(a, b) RING_CONCAT_INNER_(a, b)

}  // namespace ring

#endif  // RING_SRC_COMMON_RESULT_H_
