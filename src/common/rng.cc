#include "src/common/rng.h"

#include <cmath>

namespace ring {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection to remove bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double rate) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / rate;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace ring
