// Status: lightweight error propagation without exceptions.
//
// Ring follows the os-systems convention of explicit error values on all
// fallible paths. A Status is cheap to copy in the common (OK) case; error
// statuses carry a code and a human-readable message.
#ifndef RING_SRC_COMMON_STATUS_H_
#define RING_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ring {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kTimeout,
  kDataLoss,
  kInternal,
  kUnimplemented,
};

// Returns a stable, lowercase name for a status code (e.g. "not_found").
std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring absl::*Error.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status TimeoutError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

// Propagates a non-OK status to the caller.
#define RING_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::ring::Status _status = (expr);          \
    if (!_status.ok()) return _status;        \
  } while (false)

}  // namespace ring

#endif  // RING_SRC_COMMON_STATUS_H_
