#include "src/common/status.h"

namespace ring {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status TimeoutError(std::string message) {
  return Status(StatusCode::kTimeout, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

}  // namespace ring
