#include "src/common/bytes.h"

namespace ring {

Buffer MakePatternBuffer(size_t size, uint64_t seed) {
  Buffer out(size);
  uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < size; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    out[i] = static_cast<uint8_t>(z ^ (z >> 31));
  }
  return out;
}

}  // namespace ring
