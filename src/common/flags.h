// Minimal command-line flag parsing for the tools and harnesses.
//
// Supports `--name=value`, `--name value` and boolean `--name` /
// `--no-name`. Unknown flags fail parsing with a usage string.
#ifndef RING_SRC_COMMON_FLAGS_H_
#define RING_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace ring {

class FlagSet {
 public:
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  FlagSet& DefineString(const std::string& name, std::string default_value,
                        std::string help);
  FlagSet& DefineInt(const std::string& name, int64_t default_value,
                     std::string help);
  FlagSet& DefineDouble(const std::string& name, double default_value,
                        std::string help);
  FlagSet& DefineBool(const std::string& name, bool default_value,
                      std::string help);

  // Parses argv; positional (non-flag) arguments are collected in
  // positional(). Fails on unknown flags or malformed values.
  Status Parse(int argc, const char* const* argv);
  // Parse from a pre-split vector (testing).
  Status Parse(const std::vector<std::string>& args);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Formatted flag reference.
  std::string Usage() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    Kind kind;
    std::string value;  // canonical textual value
    std::string default_value;
    std::string help;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ring

#endif  // RING_SRC_COMMON_FLAGS_H_
