#include "src/common/flags.h"

#include <cassert>
#include <sstream>

namespace ring {
namespace {

bool ParseBoolText(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

FlagSet& FlagSet::DefineString(const std::string& name,
                               std::string default_value, std::string help) {
  flags_[name] = Flag{Kind::kString, default_value, std::move(default_value),
                      std::move(help)};
  return *this;
}

FlagSet& FlagSet::DefineInt(const std::string& name, int64_t default_value,
                            std::string help) {
  const std::string text = std::to_string(default_value);
  flags_[name] = Flag{Kind::kInt, text, text, std::move(help)};
  return *this;
}

FlagSet& FlagSet::DefineDouble(const std::string& name, double default_value,
                               std::string help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Kind::kDouble, os.str(), os.str(), std::move(help)};
  return *this;
}

FlagSet& FlagSet::DefineBool(const std::string& name, bool default_value,
                             std::string help) {
  const std::string text = default_value ? "true" : "false";
  flags_[name] = Flag{Kind::kBool, text, text, std::move(help)};
  return *this;
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return InvalidArgumentError("unknown flag --" + name + "\n" + Usage());
  }
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kString:
      break;
    case Kind::kInt: {
      size_t pos = 0;
      try {
        (void)std::stoll(value, &pos);
      } catch (...) {
        pos = 0;
      }
      if (pos != value.size() || value.empty()) {
        return InvalidArgumentError("--" + name + " expects an integer, got '" +
                                    value + "'");
      }
      break;
    }
    case Kind::kDouble: {
      size_t pos = 0;
      try {
        (void)std::stod(value, &pos);
      } catch (...) {
        pos = 0;
      }
      if (pos != value.size() || value.empty()) {
        return InvalidArgumentError("--" + name + " expects a number, got '" +
                                    value + "'");
      }
      break;
    }
    case Kind::kBool: {
      bool parsed;
      if (!ParseBoolText(value, &parsed)) {
        return InvalidArgumentError("--" + name + " expects a boolean, got '" +
                                    value + "'");
      }
      break;
    }
  }
  flag.value = value;
  return OkStatus();
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  return Parse(args);
}

Status FlagSet::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      RING_RETURN_IF_ERROR(SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // `--no-name` for booleans.
    if (body.rfind("no-", 0) == 0) {
      const std::string name = body.substr(3);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        it->second.value = "false";
        continue;
      }
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + body + "\n" + Usage());
    }
    if (it->second.kind == Kind::kBool) {
      it->second.value = "true";
      continue;
    }
    // `--name value`
    if (i + 1 >= args.size()) {
      return InvalidArgumentError("--" + body + " expects a value");
    }
    RING_RETURN_IF_ERROR(SetValue(body, args[++i]));
  }
  return OkStatus();
}

std::string FlagSet::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && "undefined flag");
  return it->second.value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::stoll(GetString(name));
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::stod(GetString(name));
}

bool FlagSet::GetBool(const std::string& name) const {
  bool out = false;
  const bool ok = ParseBoolText(GetString(name), &out);
  assert(ok && "non-boolean value in boolean flag");
  (void)ok;
  return out;
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")  "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace ring
