#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ring {

double Samples::Min() const {
  assert(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::Max() const {
  assert(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::Mean() const {
  assert(!values_.empty());
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double Samples::Stddev() const {
  assert(!values_.empty());
  const double mean = Mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

const std::vector<double>& Samples::Sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double Samples::Percentile(double p) const {
  assert(!values_.empty());
  const std::vector<double>& sorted = Sorted();
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace ring
