#include "src/workload/drivers.h"

#include "src/common/bytes.h"

namespace ring::workload {

Samples ClosedLoopDriver::MeasurePutLatency(MemgestId memgest,
                                            size_t value_size, int reps,
                                            int key_count) {
  Samples out;
  auto& client = cluster_->client(client_);
  const Buffer value = MakePatternBuffer(value_size, value_size);
  for (int i = 0; i < reps; ++i) {
    const Key key = "lat-" + std::to_string(i % key_count);
    client.ResetStats();
    if (!cluster_->Put(key, value, memgest, client_).ok()) {
      continue;
    }
    if (!client.latencies().empty()) {
      out.Add(client.latencies().values().back());
    }
  }
  return out;
}

Samples ClosedLoopDriver::MeasureGetLatency(MemgestId memgest,
                                            size_t value_size, int reps,
                                            int key_count) {
  Samples out;
  auto& client = cluster_->client(client_);
  const Buffer value = MakePatternBuffer(value_size, value_size);
  for (int i = 0; i < key_count; ++i) {
    (void)cluster_->Put("lat-" + std::to_string(i), value, memgest, client_);
  }
  for (int i = 0; i < reps; ++i) {
    const Key key = "lat-" + std::to_string(i % key_count);
    client.ResetStats();
    if (!cluster_->Get(key, client_).ok()) {
      continue;
    }
    if (!client.latencies().empty()) {
      out.Add(client.latencies().values().back());
    }
  }
  return out;
}

Samples ClosedLoopDriver::MeasureMoveLatency(MemgestId src, MemgestId dst,
                                             size_t value_size, int reps) {
  Samples out;
  auto& client = cluster_->client(client_);
  const Buffer value = MakePatternBuffer(value_size, value_size);
  for (int i = 0; i < reps; ++i) {
    const Key key = "mv-" + std::to_string(i % 16);
    if (!cluster_->Put(key, value, src, client_).ok()) {
      continue;
    }
    client.ResetStats();
    if (!cluster_->Move(key, dst, client_).ok()) {
      continue;
    }
    if (!client.latencies().empty()) {
      out.Add(client.latencies().values().back());
    }
  }
  return out;
}

OpenLoopDriver::OpenLoopDriver(RingCluster* cluster, uint32_t client_index,
                               Options options)
    : cluster_(cluster),
      client_(client_index),
      options_(options),
      workload_(options.spec, options.seed),
      value_(std::make_shared<Buffer>(
          MakePatternBuffer(options.spec.value_len, options.seed))),
      rate_(options.rate_per_sec) {}

void OpenLoopDriver::Start() {
  running_ = true;
  next_issue_ = cluster_->simulator().now();
  ScheduleNext();
}

void OpenLoopDriver::ScheduleNext() {
  if (!running_) {
    return;
  }
  next_issue_ += static_cast<sim::SimTime>(1e9 / rate_);
  cluster_->simulator().At(next_issue_, [this] {
    IssueOne();
    ScheduleNext();
  });
}

void OpenLoopDriver::IssueOne() {
  if (!running_) {
    return;
  }
  auto& client = cluster_->client(client_);
  if (client.outstanding() >= options_.max_outstanding) {
    ++dropped_;  // request window full: flow control sheds load
    return;
  }
  const Op op = workload_.Next(HotspotOffset(cluster_->simulator().now(),
                                             options_.hotspot_period_ns,
                                             options_.hotspot_shift));
  ++issued_;
  if (op.kind == OpKind::kGet) {
    client.Get(op.key, [this](GetResult r) {
      if (r.status.ok() || r.status.code() == StatusCode::kNotFound) {
        ++completed_;
      } else {
        ++errors_;
      }
    });
  } else {
    client.Put(op.key, value_, options_.memgest, [this](Status s, Version) {
      if (s.ok()) {
        ++completed_;
      } else {
        ++errors_;
      }
    });
  }
}

uint64_t Preload(RingCluster* cluster, const YcsbSpec& spec,
                 MemgestId memgest, uint64_t seed) {
  YcsbWorkload workload(spec, seed);
  const Buffer value = MakePatternBuffer(spec.value_len, seed);
  for (uint64_t rank = 0; rank < spec.num_keys; ++rank) {
    (void)cluster->Put(workload.KeyOf(rank), value, memgest);
  }
  return spec.num_keys;
}

}  // namespace ring::workload
