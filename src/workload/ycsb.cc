#include "src/workload/ycsb.h"

#include <cstdio>

namespace ring::workload {

YcsbWorkload::YcsbWorkload(YcsbSpec spec, uint64_t seed)
    : spec_(spec),
      rng_(seed),
      zipf_(spec.num_keys, spec.zipf_theta),
      uniform_(spec.num_keys) {}

std::string YcsbWorkload::KeyOf(uint64_t rank) const {
  // Fixed-width decimal key, `key_len` bytes (paper: 8-byte keys).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*llu", spec_.key_len,
                static_cast<unsigned long long>(rank % 100000000ULL));
  return std::string(buf, spec_.key_len);
}

Op YcsbWorkload::Next(uint64_t rank_offset) {
  const uint64_t rank =
      spec_.zipfian ? zipf_.Next(rng_) : uniform_.Next(rng_);
  const OpKind kind =
      rng_.NextDouble() < spec_.get_fraction ? OpKind::kGet : OpKind::kPut;
  return Op{kind, KeyOf((rank + rank_offset) % spec_.num_keys)};
}

}  // namespace ring::workload
