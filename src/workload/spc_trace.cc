#include "src/workload/spc_trace.h"

#include <sstream>
#include <unordered_set>

#include "src/common/rng.h"

namespace ring::workload {
namespace {

// Trace profiles. The paper (§6.2) describes Financial1/2 as "put-heavy OLTP
// applications running at a large financial institution" and WebSearch1-3 as
// "get dominant I/O traces from a popular search engine"; the numbers below
// follow the published SPC summaries under that framing.
struct Profile {
  const char* name;
  double write_fraction;
  uint32_t avg_size;        // bytes (multiple of 512)
  uint64_t footprint;       // bytes
  double duration_sec;
};

constexpr Profile kProfiles[] = {
    {"Financial1", 0.77, 3584, 17ULL << 30, 43800},
    {"Financial2", 0.82, 2560, 9ULL << 30, 41700},
    {"WebSearch1", 0.01, 15360, 16ULL << 30, 35000},
    {"WebSearch2", 0.01, 15360, 32ULL << 30, 44200},
    {"WebSearch3", 0.01, 15360, 32ULL << 30, 43500},
};

const Profile* FindProfile(const std::string& name) {
  for (const auto& p : kProfiles) {
    if (name == p.name) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace

Result<std::vector<SpcRecord>> ParseSpcTrace(std::istream& in) {
  std::vector<SpcRecord> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    SpcRecord rec;
    char opcode = 0;
    std::istringstream ls(line);
    std::string field;
    auto next = [&](std::string& f) {
      return static_cast<bool>(std::getline(ls, f, ','));
    };
    std::string asu, lba, size, op, ts;
    if (!next(asu) || !next(lba) || !next(size) || !next(op) || !next(ts)) {
      return InvalidArgumentError("malformed SPC record at line " +
                                  std::to_string(line_no));
    }
    try {
      rec.asu = static_cast<uint32_t>(std::stoul(asu));
      rec.lba = std::stoull(lba);
      rec.size = static_cast<uint32_t>(std::stoul(size));
      opcode = op.empty() ? 0 : op[0];
      rec.timestamp = std::stod(ts);
    } catch (...) {
      return InvalidArgumentError("unparseable SPC record at line " +
                                  std::to_string(line_no));
    }
    if (opcode == 'r' || opcode == 'R') {
      rec.opcode = 'R';
    } else if (opcode == 'w' || opcode == 'W') {
      rec.opcode = 'W';
    } else {
      return InvalidArgumentError("bad opcode at line " +
                                  std::to_string(line_no));
    }
    out.push_back(rec);
  }
  return out;
}

std::string FormatSpcTrace(const std::vector<SpcRecord>& records) {
  std::ostringstream os;
  for (const auto& r : records) {
    os << r.asu << "," << r.lba << "," << r.size << "," << r.opcode << ","
       << r.timestamp << "\n";
  }
  return os.str();
}

TraceAggregates Aggregate(const std::string& name,
                          const std::vector<SpcRecord>& records) {
  TraceAggregates agg;
  agg.name = name;
  std::unordered_set<uint64_t> pages;
  for (const auto& r : records) {
    if (r.opcode == 'R') {
      ++agg.reads;
      agg.read_bytes += r.size;
    } else {
      ++agg.writes;
      agg.written_bytes += r.size;
    }
    // Footprint at 4 KiB granularity.
    const uint64_t first = r.lba * 512 / 4096;
    const uint64_t last = (r.lba * 512 + (r.size ? r.size - 1 : 0)) / 4096;
    for (uint64_t p = first; p <= last; ++p) {
      pages.insert(p);
    }
    agg.duration_sec = std::max(agg.duration_sec, r.timestamp);
  }
  agg.footprint_bytes = pages.size() * 4096;
  return agg;
}

std::vector<SpcRecord> SyntheticTrace(const std::string& name,
                                      uint64_t num_ops, uint64_t seed) {
  const Profile* profile = FindProfile(name);
  if (profile == nullptr) {
    return {};
  }
  Rng rng(seed ^ std::hash<std::string>{}(name));
  std::vector<SpcRecord> out;
  out.reserve(num_ops);
  const uint64_t footprint_blocks = profile->footprint / 512;
  for (uint64_t i = 0; i < num_ops; ++i) {
    SpcRecord rec;
    rec.asu = static_cast<uint32_t>(rng.NextBelow(4));
    // Sizes: exponential-ish around the average, rounded to 512 B.
    const double scale = rng.NextExponential(1.0);
    uint64_t size =
        static_cast<uint64_t>(profile->avg_size * std::min(scale, 4.0));
    size = std::max<uint64_t>(512, (size / 512) * 512);
    rec.size = static_cast<uint32_t>(size);
    rec.lba = rng.NextBelow(footprint_blocks);
    rec.opcode =
        rng.NextBernoulli(profile->write_fraction) ? 'W' : 'R';
    rec.timestamp =
        profile->duration_sec * static_cast<double>(i) / num_ops;
    out.push_back(rec);
  }
  return out;
}

std::vector<TraceAggregates> PaperTraceAggregates() {
  std::vector<TraceAggregates> out;
  for (const auto& profile : kProfiles) {
    // Aggregates computed directly from the profile: op counts at a
    // representative 5M-op scale (normalization removes the scale).
    TraceAggregates agg;
    agg.name = profile.name;
    const uint64_t ops = 5'000'000;
    agg.writes = static_cast<uint64_t>(ops * profile.write_fraction);
    agg.reads = ops - agg.writes;
    agg.written_bytes = agg.writes * profile.avg_size;
    agg.read_bytes = agg.reads * profile.avg_size;
    agg.footprint_bytes = profile.footprint;
    agg.duration_sec = profile.duration_sec;
    out.push_back(agg);
  }
  return out;
}

}  // namespace ring::workload
