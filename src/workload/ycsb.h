// YCSB-style workload specification and operation stream (paper §6.3:
// Zipfian key distribution, 8 B keys, 1 KiB values, configurable get:put
// ratio).
#ifndef RING_SRC_WORKLOAD_YCSB_H_
#define RING_SRC_WORKLOAD_YCSB_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/workload/zipf.h"

namespace ring::workload {

enum class OpKind { kGet, kPut };

struct Op {
  OpKind kind;
  std::string key;
};

struct YcsbSpec {
  uint64_t num_keys = 100'000;
  uint32_t key_len = 8;      // paper: 8-byte keys
  uint32_t value_len = 1024; // paper: 1 KiB values
  double get_fraction = 0.5; // (get:put) ratio
  double zipf_theta = 0.99;  // YCSB default skew
  bool zipfian = true;
};

// Deterministic operation stream over the spec.
class YcsbWorkload {
 public:
  YcsbWorkload(YcsbSpec spec, uint64_t seed);

  Op Next() { return Next(0); }
  // Same stream with the popularity ranking rotated by `rank_offset`: the
  // Zipf head lands on rank `rank_offset` instead of rank 0. Drivers use
  // this to march a hotspot across the key space over time (hot→cold
  // transitions for tiering experiments) without changing the key set.
  Op Next(uint64_t rank_offset);
  const YcsbSpec& spec() const { return spec_; }

  // The fixed-width key string of a rank (shared with loaders).
  std::string KeyOf(uint64_t rank) const;

 private:
  YcsbSpec spec_;
  Rng rng_;
  ZipfGenerator zipf_;
  UniformGenerator uniform_;
};

}  // namespace ring::workload

#endif  // RING_SRC_WORKLOAD_YCSB_H_
