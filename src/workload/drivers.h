// Benchmark drivers: closed-loop latency measurement and open-loop
// throughput generation against a RingCluster (paper §6 methodology).
#ifndef RING_SRC_WORKLOAD_DRIVERS_H_
#define RING_SRC_WORKLOAD_DRIVERS_H_

#include <memory>

#include "src/common/stats.h"
#include "src/ring/cluster.h"
#include "src/workload/ycsb.h"

namespace ring::workload {

// Rotating-hotspot rank offset at simulated time `now`: the Zipf head sits
// on rank `phase * shift` where the phase advances every `period_ns`. With
// period 0 the hotspot is static (offset 0). Deterministic in sim time, so
// benches replaying the same schedule see identical hot→cold transitions.
inline uint64_t HotspotOffset(sim::SimTime now, sim::SimTime period_ns,
                              uint64_t shift) {
  return period_ns == 0 ? 0 : (now / period_ns) * shift;
}

// One operation at a time, N repetitions; the paper's latency methodology
// ("each measurement is repeated 5000 times, the figure reports the median
// and the 90th percentile").
class ClosedLoopDriver {
 public:
  ClosedLoopDriver(RingCluster* cluster, uint32_t client_index = 0)
      : cluster_(cluster), client_(client_index) {}

  // Put latency for `reps` puts of `value_size` bytes into `memgest`,
  // cycling over `key_count` distinct keys.
  Samples MeasurePutLatency(MemgestId memgest, size_t value_size, int reps,
                            int key_count = 16);
  // Get latency over keys previously written with `value_size` bytes.
  Samples MeasureGetLatency(MemgestId memgest, size_t value_size, int reps,
                            int key_count = 16);
  // Latency of move(key, dst) for objects of `value_size` bytes initially
  // stored in `src`. Each rep re-puts the key into `src` first (not timed).
  Samples MeasureMoveLatency(MemgestId src, MemgestId dst, size_t value_size,
                             int reps);

 private:
  RingCluster* cluster_;
  uint32_t client_;
};

// Rate-driven generator with a bounded request window (open loop with flow
// control): issues YCSB operations at `rate` per second; ops beyond the
// window are counted as dropped — the system's completion rate is the
// throughput (Figs. 9, 11).
class OpenLoopDriver {
 public:
  struct Options {
    double rate_per_sec = 100'000;
    uint32_t max_outstanding = 128;
    MemgestId memgest = kDefaultMemgest;
    YcsbSpec spec;
    uint64_t seed = 7;
    // Time-varying Zipf hotspot: every `hotspot_period_ns` the popularity
    // ranking rotates by `hotspot_shift` keys (0 = static distribution).
    sim::SimTime hotspot_period_ns = 0;
    uint64_t hotspot_shift = 0;
  };

  OpenLoopDriver(RingCluster* cluster, uint32_t client_index,
                 Options options);

  void Start();
  void Stop() { running_ = false; }
  void SetRate(double rate_per_sec) { rate_ = rate_per_sec; }

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t errors() const { return errors_; }

 private:
  void ScheduleNext();
  void IssueOne();

  RingCluster* cluster_;
  uint32_t client_;
  Options options_;
  YcsbWorkload workload_;
  std::shared_ptr<Buffer> value_;  // shared payload (server copies anyway)
  double rate_;
  bool running_ = false;
  sim::SimTime next_issue_ = 0;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t errors_ = 0;
};

// Writes every key of the spec once (sequential blocking puts); returns the
// number of keys loaded.
uint64_t Preload(RingCluster* cluster, const YcsbSpec& spec,
                 MemgestId memgest, uint64_t seed = 3);

}  // namespace ring::workload

#endif  // RING_SRC_WORKLOAD_DRIVERS_H_
