// Zipfian key-popularity distribution (YCSB's generator; paper §6.3 uses the
// YCSB Zipfian workload where "some keys are hot and some keys are cold").
#ifndef RING_SRC_WORKLOAD_ZIPF_H_
#define RING_SRC_WORKLOAD_ZIPF_H_

#include <cstdint>

#include "src/common/rng.h"

namespace ring::workload {

// Gray et al.'s rejection-free Zipfian generator as used by YCSB: item ranks
// in [0, n) with P(rank) proportional to 1 / (rank+1)^theta.
class ZipfGenerator {
 public:
  // theta in [0, 1): 0 = uniform-ish, 0.99 = YCSB default (heavily skewed).
  ZipfGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

// Uniform key distribution (for comparisons / non-skewed workloads).
class UniformGenerator {
 public:
  explicit UniformGenerator(uint64_t n) : n_(n) {}
  uint64_t Next(Rng& rng) { return rng.NextBelow(n_); }

 private:
  uint64_t n_;
};

}  // namespace ring::workload

#endif  // RING_SRC_WORKLOAD_ZIPF_H_
