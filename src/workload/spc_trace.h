// Storage Performance Council (SPC) I/O traces (paper §6.2, Fig. 10).
//
// The paper prices five public SPC traces: Financial1/2 (write-heavy OLTP at
// a large financial institution) and WebSearch1/2/3 (read-dominated search
// engine I/O). The original trace files are not redistributable, so this
// module provides BOTH:
//   - a parser for the real SPC trace file format (CSV:
//     "ASU,LBA,Size,Opcode,Timestamp[,extra]"), and
//   - synthetic generators whose aggregate op mix, sizes, and footprints
//     match the published characteristics of those five traces — the Fig. 10
//     experiment depends only on these aggregates.
#ifndef RING_SRC_WORKLOAD_SPC_TRACE_H_
#define RING_SRC_WORKLOAD_SPC_TRACE_H_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace ring::workload {

struct SpcRecord {
  uint32_t asu = 0;        // application storage unit
  uint64_t lba = 0;        // logical block address
  uint32_t size = 0;       // bytes
  char opcode = 'R';       // 'R' or 'W'
  double timestamp = 0.0;  // seconds
};

// What the pricing model consumes.
struct TraceAggregates {
  std::string name;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;
  uint64_t footprint_bytes = 0;  // distinct bytes addressed (capacity)
  double duration_sec = 0.0;

  double write_fraction() const {
    const uint64_t total = reads + writes;
    return total == 0 ? 0.0 : static_cast<double>(writes) / total;
  }
};

// Parses SPC-format lines; tolerates blank lines and trailing fields. Fails
// on malformed records.
Result<std::vector<SpcRecord>> ParseSpcTrace(std::istream& in);

// Serializes records back to the SPC CSV format (round-trip testing and
// export of the synthetic traces).
std::string FormatSpcTrace(const std::vector<SpcRecord>& records);

// Aggregates any record stream (footprint = sum of distinct 4 KiB pages).
TraceAggregates Aggregate(const std::string& name,
                          const std::vector<SpcRecord>& records);

// The five paper traces, synthesized at `scale` ops (default small enough
// for tests; the pricing figure is scale-invariant because it normalizes).
// Profiles (public SPC characteristics):
//   Financial1: ~77% writes, ~3.5 KiB avg request, ~17 GiB footprint
//   Financial2: ~82% reads... (read-mostly OLTP cache-miss trace, small ops)
//   WebSearch1/2/3: ~99% reads, ~15 KiB avg request, tens of GiB footprint
std::vector<SpcRecord> SyntheticTrace(const std::string& name,
                                      uint64_t num_ops, uint64_t seed = 1);

// Aggregates of the five paper traces at a representative scale, in the
// paper's order: Financial1, Financial2, WebSearch1, WebSearch2, WebSearch3.
std::vector<TraceAggregates> PaperTraceAggregates();

}  // namespace ring::workload

#endif  // RING_SRC_WORKLOAD_SPC_TRACE_H_
