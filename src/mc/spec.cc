#include "src/mc/spec.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace ring::mc {

namespace {

const char* OpKindName(McOp::Kind kind) {
  switch (kind) {
    case McOp::Kind::kPut:
      return "put";
    case McOp::Kind::kGet:
      return "get";
    case McOp::Kind::kDelete:
      return "del";
  }
  return "?";
}

bool ParseOpKind(const std::string& s, McOp::Kind* out) {
  if (s == "put") {
    *out = McOp::Kind::kPut;
  } else if (s == "get") {
    *out = McOp::Kind::kGet;
  } else if (s == "del") {
    *out = McOp::Kind::kDelete;
  } else {
    return false;
  }
  return true;
}

bool ParseDecisionKind(const std::string& s, McDecision::Kind* out) {
  if (s == "deliver") {
    *out = McDecision::Kind::kDeliver;
  } else if (s == "drop") {
    *out = McDecision::Kind::kDrop;
  } else if (s == "crash") {
    *out = McDecision::Kind::kCrash;
  } else if (s == "recover") {
    *out = McDecision::Kind::kRecover;
  } else {
    return false;
  }
  return true;
}

// "key=value" tokens on config-style lines.
bool SplitKv(const std::string& tok, std::string* k, std::string* v) {
  const size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  *k = tok.substr(0, eq);
  *v = tok.substr(eq + 1);
  return true;
}

uint64_t ParseU64(const std::string& v) {
  return std::strtoull(v.c_str(), nullptr, 0);
}

}  // namespace

const char* McDecisionKindName(McDecision::Kind kind) {
  switch (kind) {
    case McDecision::Kind::kDeliver:
      return "deliver";
    case McDecision::Kind::kDrop:
      return "drop";
    case McDecision::Kind::kCrash:
      return "crash";
    case McDecision::Kind::kRecover:
      return "recover";
  }
  return "?";
}

std::string ScheduleSpec::ToString() const {
  std::ostringstream os;
  os << "mc-spec v1\n";
  os << "config s=" << config.s << " d=" << config.d
     << " spares=" << config.spares << " clients=" << config.clients
     << " seed=" << config.seed << " scheme=" << config.scheme << "\n";
  os << "bounds reorder_window_ns=" << config.reorder_window_ns
     << " max_steps=" << config.max_steps << " max_drops=" << config.max_drops
     << " max_crashes=" << config.max_crashes
     << " quiesce_ns=" << config.quiesce_ns
     << " write_retransmit_ns=" << config.write_retransmit_ns << "\n";
  for (uint32_t node : config.crash_nodes) {
    os << "crashable node=" << node << "\n";
  }
  if (config.bug_no_write_retransmit) {
    os << "bug no_write_retransmit\n";
  }
  if (config.bug_single_source_recovery) {
    os << "bug single_source_recovery\n";
  }
  if (config.bug_no_gc_revalidate) {
    os << "bug no_gc_revalidate\n";
  }
  for (const McOp& op : config.ops) {
    os << "op " << OpKindName(op.kind) << " key=" << op.key;
    if (op.kind == McOp::Kind::kPut) {
      os << " size=" << op.value_size << " nonce=" << op.nonce;
    }
    os << " at=" << op.at_ns << " client=" << op.client << "\n";
  }
  for (const McDecision& d : decisions) {
    os << "step " << d.step << " " << McDecisionKindName(d.kind);
    if (d.kind == McDecision::Kind::kDeliver ||
        d.kind == McDecision::Kind::kDrop) {
      os << " tag=" << d.tag;
    } else {
      os << " node=" << d.node;
    }
    os << "\n";
  }
  if (!expect_violation.empty() || expect_digest != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, expect_digest);
    os << "expect violation="
       << (expect_violation.empty() ? "none" : expect_violation)
       << " digest=" << buf << "\n";
  }
  return os.str();
}

Result<ScheduleSpec> ScheduleSpec::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "mc-spec v1") {
    return InvalidArgumentError("mc-spec: missing 'mc-spec v1' header");
  }
  ScheduleSpec spec;
  spec.config.ops.clear();
  uint32_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    const std::string at_line = " at line " + std::to_string(lineno);
    if (word == "config" || word == "bounds") {
      std::string tok, k, v;
      while (ls >> tok) {
        if (!SplitKv(tok, &k, &v)) {
          return InvalidArgumentError("mc-spec: bad token '" + tok + "'" +
                                      at_line);
        }
        if (k == "s") {
          spec.config.s = static_cast<uint32_t>(ParseU64(v));
        } else if (k == "d") {
          spec.config.d = static_cast<uint32_t>(ParseU64(v));
        } else if (k == "spares") {
          spec.config.spares = static_cast<uint32_t>(ParseU64(v));
        } else if (k == "clients") {
          spec.config.clients = static_cast<uint32_t>(ParseU64(v));
        } else if (k == "seed") {
          spec.config.seed = ParseU64(v);
        } else if (k == "scheme") {
          spec.config.scheme = v;
        } else if (k == "reorder_window_ns") {
          spec.config.reorder_window_ns = ParseU64(v);
        } else if (k == "max_steps") {
          spec.config.max_steps = static_cast<uint32_t>(ParseU64(v));
        } else if (k == "max_drops") {
          spec.config.max_drops = static_cast<uint32_t>(ParseU64(v));
        } else if (k == "max_crashes") {
          spec.config.max_crashes = static_cast<uint32_t>(ParseU64(v));
        } else if (k == "quiesce_ns") {
          spec.config.quiesce_ns = ParseU64(v);
        } else if (k == "write_retransmit_ns") {
          spec.config.write_retransmit_ns = ParseU64(v);
        } else {
          return InvalidArgumentError("mc-spec: unknown key '" + k + "'" +
                                      at_line);
        }
      }
    } else if (word == "crashable") {
      std::string tok, k, v;
      if (!(ls >> tok) || !SplitKv(tok, &k, &v) || k != "node") {
        return InvalidArgumentError("mc-spec: bad crashable line" + at_line);
      }
      spec.config.crash_nodes.push_back(static_cast<uint32_t>(ParseU64(v)));
    } else if (word == "bug") {
      std::string name;
      ls >> name;
      if (name == "no_write_retransmit") {
        spec.config.bug_no_write_retransmit = true;
      } else if (name == "single_source_recovery") {
        spec.config.bug_single_source_recovery = true;
      } else if (name == "no_gc_revalidate") {
        spec.config.bug_no_gc_revalidate = true;
      } else {
        return InvalidArgumentError("mc-spec: unknown bug '" + name + "'" +
                                    at_line);
      }
    } else if (word == "op") {
      McOp op;
      std::string kind;
      ls >> kind;
      if (!ParseOpKind(kind, &op.kind)) {
        return InvalidArgumentError("mc-spec: unknown op '" + kind + "'" +
                                    at_line);
      }
      std::string tok, k, v;
      while (ls >> tok) {
        if (!SplitKv(tok, &k, &v)) {
          return InvalidArgumentError("mc-spec: bad token '" + tok + "'" +
                                      at_line);
        }
        if (k == "key") {
          op.key = v;
        } else if (k == "size") {
          op.value_size = static_cast<uint32_t>(ParseU64(v));
        } else if (k == "nonce") {
          op.nonce = ParseU64(v);
        } else if (k == "at") {
          op.at_ns = ParseU64(v);
        } else if (k == "client") {
          op.client = static_cast<uint32_t>(ParseU64(v));
        } else {
          return InvalidArgumentError("mc-spec: unknown op key '" + k + "'" +
                                      at_line);
        }
      }
      spec.config.ops.push_back(std::move(op));
    } else if (word == "step") {
      McDecision d;
      std::string kind;
      ls >> d.step >> kind;
      if (!ParseDecisionKind(kind, &d.kind)) {
        return InvalidArgumentError("mc-spec: unknown decision '" + kind +
                                    "'" + at_line);
      }
      std::string tok, k, v;
      while (ls >> tok) {
        if (!SplitKv(tok, &k, &v)) {
          return InvalidArgumentError("mc-spec: bad token '" + tok + "'" +
                                      at_line);
        }
        if (k == "tag") {
          d.tag = ParseU64(v);
        } else if (k == "node") {
          d.node = static_cast<uint32_t>(ParseU64(v));
        } else {
          return InvalidArgumentError("mc-spec: unknown step key '" + k +
                                      "'" + at_line);
        }
      }
      if (!spec.decisions.empty() && spec.decisions.back().step >= d.step) {
        return InvalidArgumentError("mc-spec: steps out of order" + at_line);
      }
      spec.decisions.push_back(d);
    } else if (word == "expect") {
      std::string tok, k, v;
      while (ls >> tok) {
        if (!SplitKv(tok, &k, &v)) {
          return InvalidArgumentError("mc-spec: bad token '" + tok + "'" +
                                      at_line);
        }
        if (k == "violation") {
          spec.expect_violation = v == "none" ? "" : v;
        } else if (k == "digest") {
          spec.expect_digest = ParseU64(v);
        } else {
          return InvalidArgumentError("mc-spec: unknown expect key '" + k +
                                      "'" + at_line);
        }
      }
    } else {
      return InvalidArgumentError("mc-spec: unknown directive '" + word +
                                  "'" + at_line);
    }
  }
  return spec;
}

}  // namespace ring::mc
