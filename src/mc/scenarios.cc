#include "src/mc/scenarios.h"

#include "src/mc/harness.h"

namespace ring::mc {
namespace {

McOp Put(const std::string& key, uint64_t nonce, uint64_t at_ns,
         uint32_t client, uint32_t size = 64) {
  McOp op;
  op.kind = McOp::Kind::kPut;
  op.key = key;
  op.nonce = nonce;
  op.at_ns = at_ns;
  op.client = client;
  op.value_size = size;
  return op;
}

McOp Get(const std::string& key, uint64_t at_ns, uint32_t client) {
  McOp op;
  op.kind = McOp::Kind::kGet;
  op.key = key;
  op.at_ns = at_ns;
  op.client = client;
  return op;
}

// Bug 1: a dropped backup append wedged the write forever — the coordinator
// never retransmitted. One put, one allowed message drop; the wedged-write
// oracle is armed by a finite retransmit interval.
McScenario WedgedWrite(bool bug) {
  McScenario sc;
  sc.name = "wedged-write";
  sc.violation = kViolationWedgedWrite;
  sc.description =
      "dropped backup append wedges the write without retransmission";
  McConfig& c = sc.config;
  c.s = 1;
  c.d = 1;
  c.spares = 0;
  c.clients = 1;
  c.seed = 1;
  c.scheme = "rep2";
  c.reorder_window_ns = 3000;
  c.max_steps = 64;
  c.max_drops = 1;
  c.quiesce_ns = 25'000'000;
  c.write_retransmit_ns = 100'000;
  c.ops.push_back(Put("k", 1, 0, 0));
  c.bug_no_write_retransmit = bug;
  return sc;
}

// Bug 2: rep-3 commits on a 2/3 quorum, but recovery trusted the first
// alive metadata source. Drop the straggler append, crash the coordinator:
// the spare rebuilds from the replica that never saw the write.
McScenario SingleSourceRecovery(bool bug) {
  McScenario sc;
  sc.name = "single-source-recovery";
  sc.violation = kViolationDurability;
  sc.description =
      "quorum-committed write lost when recovery trusts one metadata source";
  McConfig& c = sc.config;
  c.s = 1;
  c.d = 2;
  c.spares = 1;
  c.clients = 1;
  c.seed = 1;
  c.scheme = "rep3";
  c.reorder_window_ns = 3000;
  c.max_steps = 64;
  c.max_drops = 1;
  c.max_crashes = 1;
  c.crash_nodes = {0};
  c.quiesce_ns = 12'000'000;
  c.ops.push_back(Put("k", 1, 0, 0));
  c.bug_single_source_recovery = bug;
  return sc;
}

// Bug 3: get/GC TOCTOU. A get defers on an uncommitted big overwrite (v2)
// and captures its heap address when v2 commits; a later small overwrite
// (v3) commits and frees v2's region; a big put of another key — already
// charging on the same CPU shard — reuses the region via first-fit before
// the queued copy reads it. The default schedule (k2's request delivered
// before v3's) is clean; the violation needs the explorer to flip that
// delivery race, so rediscovery genuinely exercises schedule search.
McScenario GcRevalidate(bool bug) {
  McScenario sc;
  sc.name = "gc-revalidate";
  sc.violation = kViolationCorruptRead;
  sc.description =
      "get copies a GC'd heap region reused by a concurrent write";
  McConfig& c = sc.config;
  c.s = 1;
  c.d = 1;
  c.spares = 0;
  c.clients = 4;
  c.seed = 1;
  c.scheme = "rep2";
  c.reorder_window_ns = 6000;
  c.max_steps = 96;
  c.ops.push_back(Put("k1", 1, 0, 3, 64));
  c.ops.push_back(Put("k1", 2, 100'000, 1, 400'000));
  c.ops.push_back(Get("k1", 610'000, 0));
  c.ops.push_back(Put("k1", 3, 703'500, 2, 64));
  c.ops.push_back(Put("k2", 4, 223'000, 3, 400'000));
  c.bug_no_gc_revalidate = bug;
  return sc;
}

}  // namespace

std::vector<McScenario> PresetScenarios(bool inject_bug) {
  return {WedgedWrite(inject_bug), SingleSourceRecovery(inject_bug),
          GcRevalidate(inject_bug)};
}

Result<McScenario> PresetScenario(const std::string& name, bool inject_bug) {
  for (McScenario& sc : PresetScenarios(inject_bug)) {
    if (sc.name == name) {
      return sc;
    }
  }
  std::string known;
  for (const McScenario& sc : PresetScenarios(false)) {
    known += (known.empty() ? "" : ", ") + sc.name;
  }
  return InvalidArgumentError("unknown scenario '" + name + "' (known: " +
                              known + ")");
}

}  // namespace ring::mc
