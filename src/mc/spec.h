// ring-mc schedule specs: the serializable description of one model-checked
// execution — cluster/workload configuration, the schedule decisions that
// deviate from the default run, and the expected outcome.
//
// A spec is the checker's counterexample format: when exploration finds an
// oracle violation, the shrunk decision list plus the config is everything
// needed to reproduce it (`ringctl mc --replay <file>`). The text format is
// line-oriented and versioned ("mc-spec v1") so specs survive as CI
// artifacts and regression fixtures.
#ifndef RING_SRC_MC_SPEC_H_
#define RING_SRC_MC_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace ring::mc {

// Scripted client operation. The model checker's workloads are fully
// scripted (no RNG draws after setup) so a trace is a pure function of the
// spec: op issue times are fixed, and every nondeterminism left is the
// delivery schedule the explorer controls.
struct McOp {
  enum class Kind : uint8_t { kPut, kGet, kDelete };
  Kind kind = Kind::kPut;
  std::string key;
  uint32_t value_size = 64;  // put payload bytes (pattern-filled from nonce)
  uint64_t nonce = 0;        // distinguishes successive puts of one key
  uint64_t at_ns = 0;        // issue time
  uint32_t client = 0;       // issuing client endpoint
};

// Cluster + workload + schedule-space bounds for one exploration.
struct McConfig {
  // Cluster shape (RingOptions subset).
  uint32_t s = 2;
  uint32_t d = 1;
  uint32_t spares = 0;
  uint32_t clients = 1;
  uint64_t seed = 1;
  // Storage scheme of the single memgest the workload writes: "repN",
  // "fsyncN" (full-sync replication) or "srsKM" (e.g. "srs32").
  std::string scheme = "rep2";

  std::vector<McOp> ops;

  // Schedule-space bounds.
  uint64_t reorder_window_ns = 3000;  // how far a delivery may jump the queue
  uint32_t max_steps = 64;            // branchable choice points per trace
  uint32_t max_drops = 0;             // message-loss deviations per trace
  uint32_t max_crashes = 0;           // crash deviations per trace
  std::vector<uint32_t> crash_nodes;  // nodes the explorer may crash
  uint64_t quiesce_ns = 2'000'000;    // settle time before the final sweep
  // Override SimParams::write_retransmit_ns (0 keeps the sim default).
  uint64_t write_retransmit_ns = 0;

  // PR 5 regression bugs (RingOptions::TestOnlyBugs).
  bool bug_no_write_retransmit = false;
  bool bug_single_source_recovery = false;
  bool bug_no_gc_revalidate = false;

  uint32_t num_server_nodes() const { return s + d + spares; }
};

// One schedule decision at a choice step. Steps count ScheduleController::
// Choose calls; tags identify deliveries (stable across runs that share a
// decision prefix, because tag assignment follows registration order).
struct McDecision {
  enum class Kind : uint8_t { kDeliver, kDrop, kCrash, kRecover };
  Kind kind = Kind::kDeliver;
  uint32_t step = 0;
  uint64_t tag = 0;   // kDeliver / kDrop
  uint32_t node = 0;  // kCrash / kRecover

  bool operator==(const McDecision& o) const {
    return kind == o.kind && step == o.step && tag == o.tag && node == o.node;
  }
};

// A replayable schedule: config + the sparse list of decisions that deviate
// from the default schedule (any step without an entry delivers the frontier
// candidate). `expect_*` record the outcome the spec should reproduce.
struct ScheduleSpec {
  McConfig config;
  std::vector<McDecision> decisions;  // sorted by step, at most one per step
  std::string expect_violation;       // oracle name; empty = clean run
  uint64_t expect_digest = 0;         // final cluster state digest

  std::string ToString() const;
  static Result<ScheduleSpec> Parse(const std::string& text);
};

const char* McDecisionKindName(McDecision::Kind kind);

}  // namespace ring::mc

#endif  // RING_SRC_MC_SPEC_H_
