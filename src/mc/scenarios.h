// Preset model-checking scenarios: the PR 5 regression bugs as bounded
// schedule-space configs. Shared by tests/mc_test.cc and `ringctl mc` so the
// CLI, CI and the unit tests explore the identical spaces.
//
// Each scenario names one seed-era bug re-introducible behind
// RingOptions::TestOnlyBugs. With `inject_bug` the exploration must find the
// violation; without it the same bounded space must be violation-free.
#ifndef RING_SRC_MC_SCENARIOS_H_
#define RING_SRC_MC_SCENARIOS_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/mc/spec.h"

namespace ring::mc {

struct McScenario {
  std::string name;            // CLI handle (`ringctl mc --scenario=<name>`)
  std::string violation;       // oracle the injected bug must trip
  std::string description;     // one line for --help / logs
  McConfig config;             // bounded space, bug flag already applied
};

// All preset scenarios, with the named bug injected or not.
std::vector<McScenario> PresetScenarios(bool inject_bug);

// A single preset by name.
Result<McScenario> PresetScenario(const std::string& name, bool inject_bug);

}  // namespace ring::mc

#endif  // RING_SRC_MC_SCENARIOS_H_
