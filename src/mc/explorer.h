// Explorer: schedule-space search over TraceRunner executions.
//
// Two nested enumerations:
//   - Outer: fault skeletons. Starting from the fault-free schedule, each
//     explored trace proposes mutations — drop one deliverable message, or
//     crash one crashable node, at one observed choice point — within the
//     config's max_drops/max_crashes budgets. Skeletons are processed
//     breadth-first by fault count and deduplicated two ways: exact plan
//     identity, and the state fingerprint reached right after the skeleton's
//     last fault (committed stores + alive bits + in-flight multiset) — two
//     fault prefixes that land in the same state explore the same subtree.
//   - Inner: delivery interleavings under one skeleton, via stateless DFS
//     with dynamic partial-order reduction. After each run, every pair of
//     delivery steps (i, j) with i < j is checked for a race: same
//     destination and not causally ordered (the message clock of j does not
//     happen-after the destination clock at i, per src/analysis vector
//     clocks). A race adds j's delivery to the backtrack set at i; sleep
//     sets prune re-exploration of commuted prefixes. Naive mode (dpor off)
//     instead backtracks into every candidate — full enumeration of the
//     same bounded schedule space, kept as the ground truth the DPOR
//     equivalence test compares against.
//
// A violating trace is minimized (MinimizeSpec) to its deviating decisions
// — the steps where it departs from the default schedule — by greedy
// re-replayed removal, then packaged as a replayable ScheduleSpec.
#ifndef RING_SRC_MC_EXPLORER_H_
#define RING_SRC_MC_EXPLORER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/mc/harness.h"
#include "src/mc/spec.h"

namespace ring::mc {

struct ExplorerOptions {
  bool dpor = true;        // false: naive full enumeration (ground truth)
  bool sleep_sets = true;  // only meaningful with dpor
  bool state_dedup = true; // skeleton-level state-fingerprint dedup
  uint64_t max_traces = 20'000;  // global run budget
  bool stop_on_violation = true;
};

struct ExploreResult {
  bool found = false;
  std::string violation;         // oracle name, when found
  std::string violation_detail;
  ScheduleSpec counterexample;   // minimized, replayable; valid when found
  uint64_t traces = 0;           // runs executed
  uint64_t skeletons = 0;        // fault skeletons whose subtree was explored
  uint64_t dedup_hits = 0;       // skeletons skipped by state fingerprint
  uint64_t diverged_runs = 0;    // plans whose tags did not apply
  // Final-state digests of every completed run. DPOR's guarantee (and the
  // mc_test equivalence check): identical to naive enumeration's set.
  std::set<uint64_t> fingerprints;
};

class Explorer {
 public:
  Explorer(McConfig config, ExplorerOptions options);

  ExploreResult Explore();

 private:
  // One choice point on the current DFS trail.
  struct Node {
    std::vector<uint64_t> candidates;
    McDecision decision;  // what the most recent run did here
    bool fixed = false;   // skeleton-dictated: never branched
    uint32_t dst = 0;
    analysis::VectorClock msg_clock;
    analysis::VectorClock delivered;
    std::map<uint64_t, uint32_t> sleep;  // at entry (tag -> dst)
    std::set<uint64_t> backtrack;
    std::set<uint64_t> done;
  };

  TraceResult RunPlan(const std::vector<McDecision>& plan,
                      const std::map<uint64_t, uint32_t>& sleep,
                      uint32_t fingerprint_at_step);
  // Folds a finished run into the result (fingerprints, violation); returns
  // true when exploration should stop.
  bool Observe(const TraceResult& res);
  // Rebuilds trail state from `res`, keeping nodes [0, keep) untouched.
  void SyncStack(std::vector<Node>* stack, const TraceResult& res,
                 size_t keep, const std::vector<McDecision>& skeleton);
  void UpdateBacktracks(std::vector<Node>* stack, size_t from);
  // DFS over delivery interleavings under one fault skeleton. Returns true
  // when exploration should stop.
  bool ExploreSkeleton(const std::vector<McDecision>& skeleton);
  // Enqueues fault mutations of `res` (observed under `skeleton`).
  void ProposeMutations(const TraceResult& res,
                        const std::vector<McDecision>& skeleton);
  void Enqueue(std::vector<McDecision> skeleton);
  bool BudgetLeft() const { return result_.traces < options_.max_traces; }

  McConfig config_;
  ExplorerOptions options_;
  ExploreResult result_;
  std::deque<std::vector<McDecision>> queue_;
  std::set<std::string> seen_skeletons_;  // exact plan dedup
  // (drops used, crashes used, state fingerprint) -> explored.
  std::set<std::string> seen_states_;
  std::map<uint64_t, uint32_t> tag_dst_;  // every tag ever observed -> dst
};

// Greedy shrink of a violating run's dense decision list down to the sparse
// deviations that still reproduce `violation`. Deterministic: same input,
// same minimized spec.
ScheduleSpec MinimizeSpec(const McConfig& config,
                          const std::vector<McDecision>& dense,
                          const std::string& violation);

// Replays a spec (decisions forced, no sleep steering). The caller checks
// TraceResult::violation / final_digest against the spec's expectations.
TraceResult Replay(const ScheduleSpec& spec);

}  // namespace ring::mc

#endif  // RING_SRC_MC_EXPLORER_H_
