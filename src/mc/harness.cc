#include "src/mc/harness.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/ring/cluster.h"

namespace ring::mc {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashMix(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
}

// Deterministic put payload: recognizable pattern keyed by (key, nonce), so
// a corrupt read shows *whose* bytes leaked in.
Buffer EncodeValue(const Key& key, uint64_t nonce, size_t size) {
  Buffer out = MakePatternBuffer(size, HashKey(key) ^ nonce);
  const std::string tag = key + "#" + std::to_string(nonce) + ";";
  for (size_t i = 0; i < tag.size() && i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(tag[i]);
  }
  return out;
}

Result<MemgestDescriptor> ParseScheme(const std::string& scheme) {
  auto digits = [&](size_t at) -> uint32_t {
    return at < scheme.size() && scheme[at] >= '0' && scheme[at] <= '9'
               ? static_cast<uint32_t>(scheme[at] - '0')
               : 0;
  };
  if (scheme.rfind("rep", 0) == 0 && scheme.size() == 4) {
    return MemgestDescriptor::Replicated(digits(3), "mc");
  }
  if (scheme.rfind("fsync", 0) == 0 && scheme.size() == 6) {
    return MemgestDescriptor::FullSyncReplicated(digits(5), "mc");
  }
  if (scheme.rfind("srs", 0) == 0 && scheme.size() == 5) {
    return MemgestDescriptor::ErasureCoded(digits(3), digits(4), "mc");
  }
  return InvalidArgumentError("mc: unknown scheme '" + scheme + "'");
}

}  // namespace

struct TraceRunner::Impl : public sim::ScheduleController,
                           public net::DeliveryTagger {
  McConfig config;
  Options opts;
  std::map<uint32_t, McDecision> plan;  // step -> decision

  RingCluster* cluster = nullptr;
  std::vector<analysis::VectorClock> clocks;
  std::map<uint64_t, McTagMeta> tags;
  std::set<uint64_t> consumed;         // delivered or dropped tags
  uint64_t frontier_ns = 0;            // scheduler time at the latest choice
  std::map<uint64_t, uint32_t> sleep;  // tag -> dst
  uint64_t next_tag = 1;
  uint32_t step = 0;

  struct KeyTruth {
    std::map<Version, Buffer> acked;
    Version highest_read = 0;
    bool deleted = false;
  };
  std::map<Key, KeyTruth> truth;
  int outstanding = 0;

  TraceResult result;

  // ---- DeliveryTagger ----
  uint64_t OnDelivery(net::NodeId issuer, net::NodeId dst,
                      uint8_t kind) override {
    const uint64_t tag = next_tag++;
    McTagMeta meta;
    meta.issuer = issuer;
    meta.dst = dst;
    meta.kind = kind;
    if (issuer < clocks.size()) {
      meta.msg_clock = clocks[issuer];
    }
    tags.emplace(tag, std::move(meta));
    return tag;
  }

  // ---- ScheduleController ----
  Decision Choose(const std::vector<sim::DeliveryChoice>& raw) override {
    // RC-FIFO filter: a delivery is only schedulable when no earlier-posted
    // delivery of the same (issuer, dst) pair is also pending — reliable
    // connections never reorder one flow, so neither may the explorer.
    std::vector<size_t> keep;
    keep.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      const McTagMeta& m = tags.at(raw[i].tag);
      bool head = true;
      for (size_t j = 0; j < raw.size(); ++j) {
        if (raw[j].tag < raw[i].tag) {
          const McTagMeta& o = tags.at(raw[j].tag);
          if (o.issuer == m.issuer && o.dst == m.dst) {
            head = false;
            break;
          }
        }
      }
      if (head) {
        keep.push_back(i);
      }
    }
    std::vector<uint64_t> cands;
    cands.reserve(keep.size());
    for (size_t i : keep) {
      cands.push_back(raw[i].tag);
    }
    const uint32_t this_step = step++;
    frontier_ns = raw.empty() ? frontier_ns : raw.front().time;
    for (uint64_t t : cands) {
      HashMix(result.schedule_hash, t);
    }
    if (this_step == opts.fingerprint_at_step) {
      result.state_fingerprint = StateFingerprint();
    }

    McDecision done;
    done.step = this_step;
    size_t chosen = static_cast<size_t>(-1);
    bool drop = false;
    const auto planned = plan.find(this_step);
    if (planned != plan.end()) {
      const McDecision& d = planned->second;
      if (d.kind == McDecision::Kind::kCrash ||
          d.kind == McDecision::Kind::kRecover) {
        if (d.kind == McDecision::Kind::kCrash) {
          cluster->KillNode(d.node, /*force_detect=*/true);
        } else {
          cluster->RestartNode(d.node);
        }
        done.kind = d.kind;
        done.node = d.node;
        Record(cands, done, nullptr);
        Decision out;
        out.action = Decision::Action::kRescan;
        return out;
      }
      const auto pos = std::find(cands.begin(), cands.end(), d.tag);
      if (pos != cands.end()) {
        chosen = static_cast<size_t>(pos - cands.begin());
        drop = d.kind == McDecision::Kind::kDrop;
      } else {
        result.diverged = true;  // plan refers to a delivery this run lacks
      }
    }
    if (chosen == static_cast<size_t>(-1)) {
      // Default policy: the earliest non-sleeping candidate (a sleeping one
      // leads into an already-explored subtree). Beyond the recorded window
      // sleep steering is off, so a replay of the recorded prefix — which
      // carries no sleep set — reproduces the tail byte-identically.
      chosen = 0;
      if (this_step < config.max_steps) {
        for (size_t i = 0; i < cands.size(); ++i) {
          if (sleep.find(cands[i]) == sleep.end()) {
            chosen = i;
            break;
          }
        }
      }
    }

    const uint64_t tag = cands[chosen];
    const McTagMeta& meta = tags.at(tag);
    done.kind = drop ? McDecision::Kind::kDrop : McDecision::Kind::kDeliver;
    done.tag = tag;
    Decision out;
    out.index = keep[chosen];
    consumed.insert(tag);
    if (drop) {
      out.action = Decision::Action::kDrop;
      Record(cands, done, nullptr);
      return out;
    }
    out.action = Decision::Action::kDeliver;
    // Happens-before bookkeeping: the delivery joins the message's causal
    // past into the destination and advances its clock.
    if (meta.dst < clocks.size()) {
      clocks[meta.dst].MergeFrom(meta.msg_clock);
      clocks[meta.dst].Tick(meta.dst);
    }
    Record(cands, done, &meta);
    // Wake sleeping deliveries this one is dependent with: their subtree is
    // no longer guaranteed explored once a same-destination event ran.
    for (auto it = sleep.begin(); it != sleep.end();) {
      it = it->second == meta.dst ? sleep.erase(it) : std::next(it);
    }
    return out;
  }

  void Record(const std::vector<uint64_t>& cands, const McDecision& done,
              const McTagMeta* meta) {
    HashMix(result.schedule_hash, static_cast<uint64_t>(done.kind));
    HashMix(result.schedule_hash, done.tag);
    HashMix(result.schedule_hash, done.node);
    if (!opts.record || result.trail.size() >= config.max_steps) {
      return;
    }
    McStepRecord rec;
    rec.candidates = cands;
    rec.time_ns = frontier_ns;
    rec.decision = done;
    if (meta != nullptr) {
      rec.dst = meta->dst;
      rec.msg_clock = meta->msg_clock;
      rec.delivered = clocks[meta->dst];
    }
    rec.sleep.reserve(sleep.size());
    for (const auto& [t, dst] : sleep) {
      rec.sleep.push_back(t);
    }
    result.trail.push_back(std::move(rec));
  }

  void Violate(const char* name, std::string detail) {
    if (result.violation.empty()) {
      result.violation = name;
      result.violation_detail = std::move(detail);
    }
  }

  void CheckRead(const Key& key, Version floor, const GetResult& r) {
    if (!r.status.ok()) {
      return;  // clean failure under schedule stress is legal mid-run
    }
    KeyTruth& t = truth[key];
    const auto it = t.acked.find(r.version);
    if (it != t.acked.end() && *r.data != it->second) {
      Violate(kViolationCorruptRead,
              key + " v" + std::to_string(r.version) + " bytes mismatch");
    }
    if (r.version < floor) {
      Violate(kViolationTimeTravel,
              key + " v" + std::to_string(r.version) + " after v" +
                  std::to_string(floor));
    }
    t.highest_read = std::max(t.highest_read, r.version);
  }

  void Issue(const McOp& op, MemgestId gid) {
    switch (op.kind) {
      case McOp::Kind::kPut: {
        Buffer value = EncodeValue(op.key, op.nonce, op.value_size);
        ++outstanding;
        cluster->client(op.client).Put(
            op.key, std::make_shared<Buffer>(value), gid,
            [this, key = op.key, value](Status s, Version v) {
              --outstanding;
              if (!s.ok()) {
                return;
              }
              auto [it, fresh] = truth[key].acked.emplace(v, value);
              if (!fresh && it->second != value) {
                Violate(kViolationVersionReuse,
                        key + " v" + std::to_string(v) + " acked twice");
              }
            });
        return;
      }
      case McOp::Kind::kGet: {
        ++outstanding;
        const Version floor = truth[op.key].highest_read;
        cluster->client(op.client).Get(
            op.key, [this, key = op.key, floor](GetResult r) {
              --outstanding;
              CheckRead(key, floor, r);
            });
        return;
      }
      case McOp::Kind::kDelete: {
        ++outstanding;
        cluster->client(op.client).Delete(op.key,
                                          [this, key = op.key](Status s) {
                                            --outstanding;
                                            if (s.ok()) {
                                              truth[key].deleted = true;
                                            }
                                          });
        return;
      }
    }
  }

  void FinalSweep() {
    for (auto& [key, t] : truth) {
      if (t.acked.empty() || t.deleted) {
        continue;
      }
      bool got = false;
      GetResult r;
      cluster->client(0).Get(key, [&](GetResult g) {
        r = std::move(g);
        got = true;
      });
      if (!cluster->RunUntilDone([&] { return got; }, 4'000'000)) {
        result.completed = false;
        return;
      }
      const Version top = t.acked.rbegin()->first;
      if (!r.status.ok()) {
        // Only a *definitive* miss is data loss. kUnavailable / kTimeout
        // mean the cluster never answered — under unrepaired message loss
        // that is an expected liveness failure, not a safety violation.
        if (r.status.code() == StatusCode::kNotFound ||
            r.status.code() == StatusCode::kDataLoss) {
          Violate(kViolationDurability,
                  key + " acked v" + std::to_string(top) +
                      " unreadable: " + r.status.message());
        }
        continue;
      }
      if (r.version < top) {
        Violate(kViolationDurability,
                key + " regressed to v" + std::to_string(r.version) +
                    " (acked v" + std::to_string(top) + ")");
        continue;
      }
      const auto it = t.acked.find(r.version);
      if (it != t.acked.end() && *r.data != it->second) {
        Violate(kViolationCorruptRead,
                key + " v" + std::to_string(r.version) +
                    " bytes mismatch in final sweep");
      }
    }
  }

  uint64_t Digest() {
    uint64_t h = kFnvOffset;
    for (uint32_t n = 0; n < config.num_server_nodes(); ++n) {
      const bool alive = cluster->runtime().fabric().alive(n);
      HashMix(h, alive ? 1 : 0);
      HashMix(h, alive ? cluster->server(n).McStateDigest() : 0);
    }
    return h;
  }

  // Committed state plus the in-flight delivery multiset: two schedule
  // prefixes that reach the same fingerprint lead into the same subtree, so
  // the explorer only descends from one of them.
  uint64_t StateFingerprint() {
    uint64_t h = Digest();
    std::vector<uint64_t> inflight;
    for (const auto& [t, meta] : tags) {
      if (consumed.find(t) == consumed.end()) {
        inflight.push_back((uint64_t{meta.issuer} << 40) |
                           (uint64_t{meta.dst} << 8) | meta.kind);
      }
    }
    std::sort(inflight.begin(), inflight.end());
    HashMix(h, inflight.size());
    for (uint64_t v : inflight) {
      HashMix(h, v);
    }
    return h;
  }

  TraceResult Run() {
    result.schedule_hash = kFnvOffset;
    for (const McDecision& d : opts.plan) {
      plan.emplace(d.step, d);
    }
    sleep = opts.sleep;

    RingOptions options;
    options.s = config.s;
    options.d = config.d;
    options.spares = config.spares;
    options.clients = config.clients;
    options.seed = config.seed;
    if (config.write_retransmit_ns != 0) {
      options.params.write_retransmit_ns = config.write_retransmit_ns;
    }
    options.test_bugs.no_write_retransmit = config.bug_no_write_retransmit;
    options.test_bugs.single_source_recovery =
        config.bug_single_source_recovery;
    options.test_bugs.no_gc_revalidate = config.bug_no_gc_revalidate;

    RingCluster cl(options);
    cluster = &cl;
    clocks.assign(config.num_server_nodes() + config.clients,
                  analysis::VectorClock());

    const Result<MemgestDescriptor> desc = ParseScheme(config.scheme);
    if (!desc.ok()) {
      Violate("config-error", desc.status().message());
      return std::move(result);
    }
    // Admin traffic runs under the default schedule: the memgest exists
    // before the first choice point, identically in every run.
    const Result<MemgestId> gid = cl.CreateMemgest(*desc);
    if (!gid.ok()) {
      Violate("config-error", gid.status().message());
      return std::move(result);
    }

    cl.runtime().fabric().set_mc_tagger(this);
    cl.simulator().queue().set_controller(this, config.reorder_window_ns);

    const sim::SimTime base = cl.simulator().now();
    sim::SimTime workload_end = base;
    for (const McOp& op : config.ops) {
      workload_end = std::max(workload_end, base + op.at_ns);
      cl.simulator().At(base + op.at_ns,
                        [this, op, g = *gid] { Issue(op, g); });
    }
    result.completed = cl.RunUntilDone(
        [&] {
          return outstanding == 0 && cl.simulator().now() >= workload_end;
        },
        6'000'000);
    cl.RunFor(config.quiesce_ns);
    if (result.completed) {
      FinalSweep();
    }
    // Wedged-write oracle: with retransmission configured on, no write may
    // still be waiting on redundancy acks after full quiescence. (With it
    // off, a lost append legitimately parks a write forever.)
    if (result.violation.empty() && result.completed &&
        cl.simulator().params().write_retransmit_ns != 0) {
      uint64_t wedged = 0;
      for (uint32_t n = 0; n < config.num_server_nodes(); ++n) {
        if (cl.runtime().fabric().alive(n)) {
          wedged += cl.server(n).PendingWrites();
        }
      }
      if (wedged != 0) {
        Violate(kViolationWedgedWrite,
                std::to_string(wedged) + " write(s) still pending acks");
      }
    }
    result.final_digest = Digest();
    result.steps = step;
    result.tags = std::move(tags);
    // The cluster (and its queue, with this controller installed) dies with
    // this scope; parked tagged deliveries are freed by the destructors.
    cluster = nullptr;
    return std::move(result);
  }
};

TraceRunner::TraceRunner(const McConfig& config, Options options)
    : impl_(new Impl) {
  impl_->config = config;
  impl_->opts = std::move(options);
}

TraceRunner::~TraceRunner() { delete impl_; }

TraceResult TraceRunner::Run() { return impl_->Run(); }

}  // namespace ring::mc
