// TraceRunner: executes one schedule of the model-checked protocol.
//
// A run builds a fresh RingCluster from the spec's McConfig, installs itself
// as both the fabric's DeliveryTagger (assigning stable tags to every parked
// delivery) and the event queue's ScheduleController (deciding which frontier
// delivery runs next), then drives the scripted workload to quiescence and a
// final read-back sweep. Along the way it
//   - maintains per-node vector clocks (src/analysis) so the explorer can
//     compute which deliveries were concurrent (the DPOR independence
//     relation),
//   - records the trail of choice points (candidates, decision, clocks,
//     sleep set at entry),
//   - checks the chaos_fuzz oracles: version-reuse, corrupt reads, read
//     monotonicity, final durability/read-your-writes, and wedged writes.
//
// Determinism contract: two runs with the same config and plan produce the
// same tag assignment, the same trail, the same violation, and the same
// final state digest — the property replay and shrinking rest on.
#ifndef RING_SRC_MC_HARNESS_H_
#define RING_SRC_MC_HARNESS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/vector_clock.h"
#include "src/mc/spec.h"

namespace ring::mc {

// Registration metadata of one tagged delivery.
struct McTagMeta {
  uint32_t issuer = 0;
  uint32_t dst = 0;
  uint8_t kind = 0;  // net::Fabric Pending kind, opaque to the explorer
  // The issuer's clock when the message was posted: the delivery's
  // happens-before predecessor set.
  analysis::VectorClock msg_clock;
};

// One recorded choice point.
struct McStepRecord {
  std::vector<uint64_t> candidates;  // deliverable tags, frontier first
  uint64_t time_ns = 0;              // frontier (scheduler) time at the choice
  McDecision decision;               // what this run did here
  uint32_t dst = 0;                  // kDeliver: destination node
  analysis::VectorClock msg_clock;   // kDeliver: clock the message carried
  analysis::VectorClock delivered;   // kDeliver: dst clock after delivery
  std::vector<uint64_t> sleep;       // sleep set at entry (tags)
};

// Everything one run produced.
struct TraceResult {
  std::vector<McStepRecord> trail;  // first config.max_steps choice points
  uint64_t steps = 0;               // total choice points (incl. unrecorded)
  uint64_t schedule_hash = 0;       // hash of the full decision sequence
  uint64_t final_digest = 0;        // committed state + alive bits
  // State fingerprint captured at Options::fingerprint_at_step (committed
  // stores + alive bits + in-flight delivery multiset): the explorer's
  // dedup key for "have I explored from an equivalent state before".
  uint64_t state_fingerprint = 0;
  std::string violation;            // first oracle violated; empty = clean
  std::string violation_detail;
  bool diverged = false;   // a planned decision did not apply (tag missing)
  bool completed = false;  // ran to the final sweep within the event budget
  std::map<uint64_t, McTagMeta> tags;  // every registered delivery
};

class TraceRunner {
 public:
  struct Options {
    // Sparse plan: at most one decision per step, sorted by step. Steps
    // without an entry take the default (earliest non-sleeping candidate).
    std::vector<McDecision> plan;
    // Sleep set seeding the run (tag -> destination node, needed to wake
    // sleepers when a dependent delivery executes before they re-register).
    std::map<uint64_t, uint32_t> sleep;
    // Record the trail (replays that only need the outcome can skip it).
    bool record = true;
    // Compute TraceResult::state_fingerprint at entry to this choice step
    // (UINT32_MAX: never).
    uint32_t fingerprint_at_step = 0xFFFFFFFFu;
  };

  TraceRunner(const McConfig& config, Options options);
  ~TraceRunner();

  // Runs the schedule to completion. One-shot: call once per TraceRunner.
  TraceResult Run();

 private:
  struct Impl;
  Impl* impl_;
};

// Violation oracle names (TraceResult::violation values).
inline constexpr char kViolationDurability[] = "durability";
inline constexpr char kViolationCorruptRead[] = "corrupt-read";
inline constexpr char kViolationVersionReuse[] = "version-reuse";
inline constexpr char kViolationTimeTravel[] = "time-travel";
inline constexpr char kViolationWedgedWrite[] = "wedged-write";

}  // namespace ring::mc

#endif  // RING_SRC_MC_HARNESS_H_
