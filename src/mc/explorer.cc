#include "src/mc/explorer.h"

#include <algorithm>
#include <string>
#include <utility>

namespace ring::mc {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

std::string PlanKey(const std::vector<McDecision>& plan) {
  std::string key;
  for (const McDecision& d : plan) {
    key += std::to_string(static_cast<int>(d.kind)) + ":" +
           std::to_string(d.step) + ":" + std::to_string(d.tag) + ":" +
           std::to_string(d.node) + ";";
  }
  return key;
}

}  // namespace

Explorer::Explorer(McConfig config, ExplorerOptions options)
    : config_(std::move(config)), options_(options) {
  if (!options_.dpor) {
    options_.sleep_sets = false;  // sleep sets presume DPOR's backtrack sets
  }
}

TraceResult Explorer::RunPlan(const std::vector<McDecision>& plan,
                              const std::map<uint64_t, uint32_t>& sleep,
                              uint32_t fingerprint_at_step) {
  TraceRunner::Options opts;
  opts.plan = plan;
  opts.sleep = sleep;
  opts.record = true;
  opts.fingerprint_at_step = fingerprint_at_step;
  TraceResult res = TraceRunner(config_, opts).Run();
  ++result_.traces;
  for (const auto& [tag, meta] : res.tags) {
    tag_dst_.emplace(tag, meta.dst);
  }
  return res;
}

bool Explorer::Observe(const TraceResult& res) {
  if (res.diverged) {
    ++result_.diverged_runs;
  }
  if (res.completed) {
    result_.fingerprints.insert(res.final_digest);
  }
  if (!res.violation.empty() && res.violation != "config-error" &&
      !result_.found) {
    result_.found = true;
    result_.violation = res.violation;
    result_.violation_detail = res.violation_detail;
    std::vector<McDecision> dense;
    dense.reserve(res.trail.size());
    for (const McStepRecord& r : res.trail) {
      dense.push_back(r.decision);
    }
    result_.counterexample = MinimizeSpec(config_, dense, res.violation);
    if (options_.stop_on_violation) {
      return true;
    }
  }
  return !BudgetLeft();
}

void Explorer::SyncStack(std::vector<Node>* stack, const TraceResult& res,
                         size_t keep, const std::vector<McDecision>& skeleton) {
  std::set<uint32_t> fixed_steps;
  for (const McDecision& d : skeleton) {
    fixed_steps.insert(d.step);
  }
  if (stack->size() > keep + 1) {
    stack->resize(keep + 1);  // discard the abandoned subtree
  }
  const size_t limit = res.trail.size();
  if (stack->size() > limit) {
    stack->resize(limit);
  }
  for (size_t i = keep; i < limit; ++i) {
    const McStepRecord& r = res.trail[i];
    if (i < stack->size()) {
      // The branch point itself: refresh what this run observed, keep the
      // accumulated backtrack/done sets and the entry sleep set.
      Node& n = (*stack)[i];
      n.candidates = r.candidates;
      n.decision = r.decision;
      n.dst = r.dst;
      n.msg_clock = r.msg_clock;
      n.delivered = r.delivered;
    } else {
      Node n;
      n.candidates = r.candidates;
      n.decision = r.decision;
      n.dst = r.dst;
      n.msg_clock = r.msg_clock;
      n.delivered = r.delivered;
      for (uint64_t t : r.sleep) {
        const auto it = tag_dst_.find(t);
        n.sleep.emplace(t, it == tag_dst_.end() ? 0 : it->second);
      }
      stack->push_back(std::move(n));
    }
    Node& n = (*stack)[i];
    n.fixed = fixed_steps.count(r.decision.step) != 0;
    if (n.decision.kind == McDecision::Kind::kDeliver) {
      n.done.insert(n.decision.tag);
    }
  }
}

void Explorer::UpdateBacktracks(std::vector<Node>* stack, size_t from) {
  std::vector<Node>& s = *stack;
  if (!options_.dpor) {
    // Naive ground truth: branch into every candidate everywhere.
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i].fixed || s[i].decision.kind != McDecision::Kind::kDeliver) {
        continue;
      }
      s[i].backtrack.insert(s[i].candidates.begin(), s[i].candidates.end());
    }
    return;
  }
  const size_t first_j = from > 1 ? from : 1;
  for (size_t j = first_j; j < s.size(); ++j) {
    if (s[j].decision.kind != McDecision::Kind::kDeliver) {
      continue;
    }
    const uint64_t tag_j = s[j].decision.tag;
    // Latest i racing with j: same destination, causally concurrent (j's
    // message was not sent because of i's delivery), and j's delivery was
    // already a schedulable alternative at i.
    for (size_t i = j; i-- > 0;) {
      if (s[i].fixed || s[i].decision.kind != McDecision::Kind::kDeliver) {
        continue;
      }
      if (s[i].dst != s[j].dst) {
        continue;
      }
      if (analysis::VectorClock::Leq(s[i].delivered, s[j].msg_clock)) {
        continue;  // i's delivery happens-before j's send: ordered, no race
      }
      if (tag_j == s[i].decision.tag) {
        continue;
      }
      if (std::find(s[i].candidates.begin(), s[i].candidates.end(), tag_j) ==
          s[i].candidates.end()) {
        continue;  // j's delivery was outside the window at i
      }
      s[i].backtrack.insert(tag_j);
      break;
    }
  }
}

bool Explorer::ExploreSkeleton(const std::vector<McDecision>& skeleton) {
  uint32_t drops = 0;
  uint32_t crashes = 0;
  for (const McDecision& d : skeleton) {
    drops += d.kind == McDecision::Kind::kDrop ? 1 : 0;
    crashes += d.kind == McDecision::Kind::kCrash ? 1 : 0;
  }
  const bool fingerprint = options_.state_dedup && !skeleton.empty();
  TraceResult first =
      RunPlan(skeleton, {},
              fingerprint ? skeleton.back().step + 1 : 0xFFFFFFFFu);
  if (Observe(first)) {
    return true;
  }
  if (fingerprint) {
    const std::string key = std::to_string(drops) + ":" +
                            std::to_string(crashes) + ":" +
                            std::to_string(first.state_fingerprint);
    if (!seen_states_.insert(key).second) {
      ++result_.dedup_hits;  // an equivalent fault prefix was explored
      return false;
    }
  }
  ++result_.skeletons;
  ProposeMutations(first, skeleton);
  if (first.diverged || first.trail.empty()) {
    return false;  // stale skeleton tags; the trail is not analyzable
  }

  std::vector<Node> stack;
  SyncStack(&stack, first, 0, skeleton);
  UpdateBacktracks(&stack, 0);
  while (BudgetLeft()) {
    // Deepest step with an unexplored backtrack alternative.
    size_t k = kNone;
    uint64_t b = 0;
    for (size_t i = stack.size(); i-- > 0;) {
      const Node& n = stack[i];
      if (n.fixed || n.decision.kind != McDecision::Kind::kDeliver) {
        continue;
      }
      for (uint64_t t : n.backtrack) {
        if (n.done.count(t) != 0) {
          continue;
        }
        if (options_.sleep_sets && n.sleep.count(t) != 0) {
          continue;
        }
        k = i;
        b = t;
        break;
      }
      if (k != kNone) {
        break;
      }
    }
    if (k == kNone) {
      return false;  // subtree exhausted
    }
    stack[k].done.insert(b);
    // The branch starts with explored siblings asleep: their subtrees only
    // reopen if a dependent delivery wakes them.
    std::map<uint64_t, uint32_t> sl;
    if (options_.sleep_sets) {
      sl = stack[k].sleep;
      for (uint64_t t : stack[k].done) {
        if (t != b) {
          const auto it = tag_dst_.find(t);
          sl.emplace(t, it == tag_dst_.end() ? 0 : it->second);
        }
      }
    }
    std::vector<McDecision> plan;
    plan.reserve(k + 1 + skeleton.size());
    for (size_t i = 0; i < k; ++i) {
      plan.push_back(stack[i].decision);
    }
    McDecision dd;
    dd.kind = McDecision::Kind::kDeliver;
    dd.step = static_cast<uint32_t>(k);
    dd.tag = b;
    plan.push_back(dd);
    for (const McDecision& d : skeleton) {
      if (d.step > k) {
        plan.push_back(d);
      }
    }
    TraceResult res = RunPlan(plan, sl, 0xFFFFFFFFu);
    if (Observe(res)) {
      return true;
    }
    if (res.diverged || res.trail.size() <= k) {
      continue;  // prefix did not reproduce; nothing to analyze
    }
    SyncStack(&stack, res, k, skeleton);
    UpdateBacktracks(&stack, k);
  }
  return false;
}

void Explorer::ProposeMutations(const TraceResult& res,
                                const std::vector<McDecision>& skeleton) {
  uint32_t drops = 0;
  uint32_t crashes = 0;
  for (const McDecision& d : skeleton) {
    drops += d.kind == McDecision::Kind::kDrop ? 1 : 0;
    crashes += d.kind == McDecision::Kind::kCrash ? 1 : 0;
  }
  const uint32_t servers = config_.num_server_nodes();
  std::vector<McDecision> prefix;
  for (size_t s = 0; s < res.trail.size(); ++s) {
    const McStepRecord& r = res.trail[s];
    if (drops < config_.max_drops) {
      for (uint64_t c : r.candidates) {
        const auto it = res.tags.find(c);
        if (it == res.tags.end() || it->second.issuer >= servers ||
            it->second.dst >= servers) {
          continue;  // only server<->server traffic is droppable
        }
        std::vector<McDecision> next = prefix;
        McDecision d;
        d.kind = McDecision::Kind::kDrop;
        d.step = static_cast<uint32_t>(s);
        d.tag = c;
        next.push_back(d);
        Enqueue(std::move(next));
      }
    }
    if (crashes < config_.max_crashes) {
      for (uint32_t node : config_.crash_nodes) {
        std::vector<McDecision> next = prefix;
        McDecision d;
        d.kind = McDecision::Kind::kCrash;
        d.step = static_cast<uint32_t>(s);
        d.node = node;
        next.push_back(d);
        Enqueue(std::move(next));
      }
    }
    prefix.push_back(r.decision);
  }
}

void Explorer::Enqueue(std::vector<McDecision> skeleton) {
  if (seen_skeletons_.insert(PlanKey(skeleton)).second) {
    queue_.push_back(std::move(skeleton));
  }
}

ExploreResult Explorer::Explore() {
  Enqueue({});
  while (!queue_.empty() && BudgetLeft()) {
    std::vector<McDecision> skel = std::move(queue_.front());
    queue_.pop_front();
    if (ExploreSkeleton(skel)) {
      break;
    }
  }
  return std::move(result_);
}

ScheduleSpec MinimizeSpec(const McConfig& config,
                          const std::vector<McDecision>& dense,
                          const std::string& violation) {
  const auto run = [&config](const std::vector<McDecision>& decisions) {
    TraceRunner::Options opts;
    opts.plan = decisions;
    opts.record = true;
    return TraceRunner(config, opts).Run();
  };

  // Seed the shrink with the deviations only: a forced decision that merely
  // repeats the default schedule is dead weight.
  TraceResult ref = run(dense);
  std::vector<McDecision> devs;
  if (ref.violation == violation) {
    for (const McDecision& d : dense) {
      if (d.kind == McDecision::Kind::kDeliver && d.step < ref.trail.size()) {
        const McStepRecord& r = ref.trail[d.step];
        if (!r.candidates.empty() && r.candidates[0] == d.tag) {
          continue;
        }
      }
      devs.push_back(d);
    }
  } else {
    devs = dense;  // determinism slipped; keep the full schedule
  }

  // Greedy leftmost removal to a fixpoint. Deterministic: the scan order
  // and the replays it consults are both fixed functions of the input.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < devs.size(); ++i) {
      std::vector<McDecision> cand = devs;
      cand.erase(cand.begin() + static_cast<ptrdiff_t>(i));
      if (run(cand).violation == violation) {
        devs = std::move(cand);
        changed = true;
        break;
      }
    }
  }

  const TraceResult fin = run(devs);
  ScheduleSpec spec;
  spec.config = config;
  spec.decisions = std::move(devs);
  spec.expect_violation = violation;
  spec.expect_digest = fin.final_digest;
  return spec;
}

TraceResult Replay(const ScheduleSpec& spec) {
  TraceRunner::Options opts;
  opts.plan = spec.decisions;
  opts.record = true;
  return TraceRunner(spec.config, opts).Run();
}

}  // namespace ring::mc
