// Cauchy Reed-Solomon bitmatrix encoding (Blomer et al.; Jerasure's
// "cauchy" family).
//
// The GF(2^8) generator matrix is expanded into a bitmatrix: each field
// element e becomes the 8x8 binary matrix of y -> e*y over GF(2)^8. Encoding
// then needs only XORs of block slices — no multiplication tables on the hot
// path — which is how high-throughput erasure coders trade a denser schedule
// for cheaper ops. Because the bitmatrix represents exactly the same linear
// map as RsCode's generator, its parity output is byte-identical, and
// decoding can reuse RsCode unchanged.
#ifndef RING_SRC_RS_CRS_BITMATRIX_H_
#define RING_SRC_RS_CRS_BITMATRIX_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/rs/rs_code.h"

namespace ring::rs {

class CrsBitmatrix {
 public:
  // Builds the bitmatrix expansion of `code`'s generator. The word size is
  // fixed at w = 8 (GF(2^8)).
  static CrsBitmatrix FromCode(const RsCode& code);

  uint32_t k() const { return k_; }
  uint32_t m() const { return m_; }

  // Bit (row, col) of the m*8 x k*8 bitmatrix; row r of parity packet
  // (r / 8, r % 8), column c of data packet (c / 8, c % 8).
  bool Bit(uint32_t row, uint32_t col) const {
    return bits_[row * k_ * 8 + col] != 0;
  }
  // Number of set bits — the XOR count of the schedule (density).
  size_t Ones() const;

  // XOR-only encode. Every data block must have the same size, a multiple
  // of 8 bytes (w packets per block). Returns m parity blocks, identical to
  // RsCode::Encode on the same input.
  std::vector<Buffer> Encode(const std::vector<ByteSpan>& data) const;

 private:
  CrsBitmatrix(uint32_t k, uint32_t m, std::vector<uint8_t> bits)
      : k_(k), m_(m), bits_(std::move(bits)) {}

  uint32_t k_;
  uint32_t m_;
  std::vector<uint8_t> bits_;  // (m*8) x (k*8), row-major, 0/1
};

}  // namespace ring::rs

#endif  // RING_SRC_RS_CRS_BITMATRIX_H_
