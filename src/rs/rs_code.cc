#include "src/rs/rs_code.h"

#include <algorithm>
#include <cassert>

#include "src/gf/gf256.h"

namespace ring::rs {

Result<RsCode> RsCode::Create(uint32_t k, uint32_t m) {
  if (k < 1 || k + m > 255) {
    return InvalidArgumentError("RS(k,m) requires 1 <= k and k+m <= 255");
  }
  // Normalized Cauchy generator: g[i][j] = 1 / (x_i XOR y_j) with
  // x_i = i (parities) and y_j = m + j (data) — disjoint point sets, so all
  // denominators are nonzero. Every square submatrix of a Cauchy matrix is
  // nonsingular; row/column scaling (which preserves that property) makes
  // row 0 and column 0 all ones, so parity 0 is the XOR of the data blocks.
  gf::Matrix g(m, k);
  if (m == 0) {
    gf::Matrix h0 = gf::Matrix::Identity(k);
    return RsCode(k, m, std::move(h0), std::move(g));
  }
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = 0; j < k; ++j) {
      g.Set(i, j, gf::Inv(static_cast<uint8_t>(i ^ (m + j))));
    }
  }
  for (uint32_t i = 0; i < m; ++i) {
    const uint8_t r = gf::Inv(g.At(i, 0));  // make column 0 all ones
    for (uint32_t j = 0; j < k; ++j) {
      g.Set(i, j, gf::Mul(r, g.At(i, j)));
    }
  }
  for (uint32_t j = 0; j < k; ++j) {
    const uint8_t c = gf::Inv(g.At(0, j));  // make row 0 all ones
    for (uint32_t i = 0; i < m; ++i) {
      g.Set(i, j, gf::Mul(c, g.At(i, j)));
    }
  }
  gf::Matrix h = gf::Matrix::Identity(k).VStack(g);
  return RsCode(k, m, std::move(h), std::move(g));
}

std::vector<Buffer> RsCode::Encode(const std::vector<ByteSpan>& data) const {
  const size_t block_size = data.empty() ? 0 : data[0].size();
  std::vector<Buffer> parity(m_, Buffer(block_size, 0));
  std::vector<MutableByteSpan> spans(parity.begin(), parity.end());
  EncodeInto(data, spans);
  return parity;
}

void RsCode::EncodeInto(const std::vector<ByteSpan>& data,
                        std::span<MutableByteSpan> parity) const {
  assert(data.size() == k_);
  assert(parity.size() == m_);
  std::vector<const uint8_t*> srcs(k_);
  for (uint32_t i = 0; i < k_; ++i) {
    assert(data[i].size() == (data.empty() ? 0 : data[0].size()));
    srcs[i] = data[i].data();
  }
  for (uint32_t j = 0; j < m_; ++j) {
    assert(parity[j].size() == (data.empty() ? 0 : data[0].size()));
    gf::EncodeRegion(std::span<const uint8_t>(g_.Row(j), k_),
                     std::span<const uint8_t* const>(srcs), parity[j]);
  }
}

void RsCode::ApplyParityDelta(uint32_t parity_index, uint32_t data_index,
                              ByteSpan delta, MutableByteSpan parity) const {
  assert(parity_index < m_ && data_index < k_);
  assert(delta.size() == parity.size());
  gf::MulAddRegion(g_.At(parity_index, data_index), delta, parity);
}

Result<std::vector<Buffer>> RsCode::RecoverData(
    const std::vector<std::pair<uint32_t, ByteSpan>>& available) const {
  if (available.size() < k_) {
    return DataLossError("fewer than k blocks available");
  }
  const size_t block_size = available[0].second.size();
  for (const auto& [idx, bytes] : available) {
    if (idx >= k_ + m_) {
      return InvalidArgumentError("block index out of range");
    }
    if (bytes.size() != block_size) {
      return InvalidArgumentError("block sizes disagree");
    }
  }
  // Prefer surviving data blocks (identity rows make the decode matrix
  // sparser), then parity blocks, taking k in total.
  std::vector<std::pair<uint32_t, ByteSpan>> chosen(available.begin(),
                                                    available.end());
  std::sort(chosen.begin(), chosen.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  chosen.resize(k_);

  std::vector<size_t> rows(k_);
  for (uint32_t i = 0; i < k_; ++i) {
    rows[i] = chosen[i].first;
  }
  auto decode = h_.SelectRows(rows).Inverse();
  if (!decode.ok()) {
    return InternalError("decode matrix singular (violates MDS property)");
  }
  std::vector<const uint8_t*> srcs(k_);
  for (uint32_t i = 0; i < k_; ++i) {
    srcs[i] = chosen[i].second.data();
  }
  // Fused decode: one pass over the k sources per output block. Decode rows
  // for surviving data blocks are unit vectors, so the zero-coefficient skip
  // reduces those outputs to a single memcpy-equivalent accumulate.
  std::vector<Buffer> out(k_, Buffer(block_size, 0));
  for (uint32_t d = 0; d < k_; ++d) {
    gf::MulAddRegionMulti(std::span<const uint8_t>(decode.value().Row(d), k_),
                          std::span<const uint8_t* const>(srcs), out[d]);
  }
  return out;
}

Result<std::vector<Buffer>> RsCode::RecoverBlocks(
    const std::vector<std::pair<uint32_t, ByteSpan>>& available,
    const std::vector<uint32_t>& wanted) const {
  RING_ASSIGN_OR_RETURN(std::vector<Buffer> data, RecoverData(available));
  const size_t block_size = data.empty() ? 0 : data[0].size();
  std::vector<const uint8_t*> srcs(k_);
  for (uint32_t i = 0; i < k_; ++i) {
    srcs[i] = data[i].data();
  }
  std::vector<Buffer> out;
  out.reserve(wanted.size());
  for (uint32_t w : wanted) {
    if (w < k_) {
      out.push_back(data[w]);
    } else if (w < k_ + m_) {
      Buffer p(block_size);
      gf::EncodeRegion(std::span<const uint8_t>(g_.Row(w - k_), k_),
                       std::span<const uint8_t* const>(srcs), p);
      out.push_back(std::move(p));
    } else {
      return InvalidArgumentError("wanted block index out of range");
    }
  }
  return out;
}

bool RsCode::CanRecover(const std::vector<uint32_t>& lost) const {
  return lost.size() <= m_;
}

}  // namespace ring::rs
