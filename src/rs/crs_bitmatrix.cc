#include "src/rs/crs_bitmatrix.h"

#include <bit>
#include <cassert>

#include "src/gf/gf256.h"

namespace ring::rs {

CrsBitmatrix CrsBitmatrix::FromCode(const RsCode& code) {
  const uint32_t k = code.k();
  const uint32_t m = code.m();
  std::vector<uint8_t> bits(static_cast<size_t>(m) * 8 * k * 8, 0);
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t j = 0; j < k; ++j) {
      const uint8_t e = code.Coefficient(i, j);
      // Column c of the 8x8 sub-matrix is e * x^c: multiplication by e is
      // linear over GF(2), so its action on the basis determines it.
      for (uint32_t c = 0; c < 8; ++c) {
        const uint8_t image = gf::Mul(e, static_cast<uint8_t>(1u << c));
        for (uint32_t r = 0; r < 8; ++r) {
          if (image & (1u << r)) {
            bits[(static_cast<size_t>(i) * 8 + r) * k * 8 + j * 8 + c] = 1;
          }
        }
      }
    }
  }
  return CrsBitmatrix(k, m, std::move(bits));
}

size_t CrsBitmatrix::Ones() const {
  size_t ones = 0;
  for (uint8_t b : bits_) {
    ones += b;
  }
  return ones;
}

std::vector<Buffer> CrsBitmatrix::Encode(
    const std::vector<ByteSpan>& data) const {
  assert(data.size() == k_);
  const size_t size = data.empty() ? 0 : data[0].size();
  // Per (parity, data) pair, precompute the 8 row masks: bit r of the output
  // byte is parity(row_mask[r] & input byte). A production CRS encoder
  // schedules these rows as packet-wide XORs; the map is the same.
  std::vector<Buffer> out(m_, Buffer(size, 0));
  for (uint32_t i = 0; i < m_; ++i) {
    for (uint32_t j = 0; j < k_; ++j) {
      assert(data[j].size() == size);
      uint8_t row_mask[8];
      bool all_zero = true;
      for (uint32_t r = 0; r < 8; ++r) {
        uint8_t mask = 0;
        for (uint32_t c = 0; c < 8; ++c) {
          if (Bit(i * 8 + r, j * 8 + c)) {
            mask |= static_cast<uint8_t>(1u << c);
          }
        }
        row_mask[r] = mask;
        all_zero = all_zero && mask == 0;
      }
      if (all_zero) {
        continue;
      }
      for (size_t b = 0; b < size; ++b) {
        const uint8_t in = data[j][b];
        uint8_t acc = 0;
        for (uint32_t r = 0; r < 8; ++r) {
          acc |= static_cast<uint8_t>(
              (std::popcount(static_cast<unsigned>(row_mask[r] & in)) & 1)
              << r);
        }
        out[i][b] ^= acc;
      }
    }
  }
  return out;
}

}  // namespace ring::rs
