// Systematic Reed-Solomon RS(k,m) over GF(2^8).
//
// Implements the coding operations of paper §3.2:
//  - encode: m parity blocks from k data blocks via H = [I; G] (Eqn. 1),
//  - recover: any k of the k+m blocks reconstruct everything,
//  - delta update: parity_j ^= g[j][i] * (old_i XOR new_i).
//
// The generator G is a normalized Cauchy matrix: every square submatrix of a
// Cauchy matrix is nonsingular, which makes [I; G] MDS (any k of the k+m
// rows are linearly independent — a mixed selection of identity and parity
// rows reduces to a Cauchy minor). Row/column scaling normalizes the first
// parity row and first column to all ones, so parity block 0 is the plain
// XOR of the data blocks (as in the paper's Eqn. 4 example).
#ifndef RING_SRC_RS_RS_CODE_H_
#define RING_SRC_RS_RS_CODE_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/matrix/matrix.h"

namespace ring::rs {

class RsCode {
 public:
  // Valid parameters: 1 <= k, 0 <= m, k + m <= 255.
  static Result<RsCode> Create(uint32_t k, uint32_t m);

  uint32_t k() const { return k_; }
  uint32_t m() const { return m_; }

  // The (k+m) x k coding matrix H = [I; G].
  const gf::Matrix& coding_matrix() const { return h_; }
  // The m x k generator (parity) part G.
  const gf::Matrix& generator() const { return g_; }
  // Coefficient g[parity][data] applied to data block `data` when computing
  // parity block `parity`.
  uint8_t Coefficient(uint32_t parity, uint32_t data) const {
    return g_.At(parity, data);
  }

  // Computes the m parity blocks for k equally-sized data blocks.
  // `data.size() == k`; all blocks share one size. Returns m blocks.
  std::vector<Buffer> Encode(const std::vector<ByteSpan>& data) const;

  // Fused, allocation-free encode into caller-owned parity buffers
  // (`parity.size() == m`, each block data[0].size() bytes). Each parity
  // block is produced in one pass over all k sources per cache-resident
  // output region (gf::EncodeRegion) instead of k full-buffer sweeps; zero
  // generator coefficients are skipped. Parity buffers may hold garbage on
  // entry; they are overwritten.
  void EncodeInto(const std::vector<ByteSpan>& data,
                  std::span<MutableByteSpan> parity) const;

  // In-place delta update of one parity block: parity ^= g[parity_idx][data_idx] * delta.
  void ApplyParityDelta(uint32_t parity_index, uint32_t data_index,
                        ByteSpan delta, MutableByteSpan parity) const;

  // Reconstructs the full set of k data blocks from any k available blocks.
  // `available` holds (block_index, bytes) pairs where block indices are in
  // [0, k+m): 0..k-1 are data blocks, k..k+m-1 parity blocks. Fails when
  // fewer than k blocks are supplied or sizes disagree.
  Result<std::vector<Buffer>> RecoverData(
      const std::vector<std::pair<uint32_t, ByteSpan>>& available) const;

  // Reconstructs exactly the requested blocks (data or parity indices) from
  // the available ones. Convenience wrapper over RecoverData + re-encode.
  Result<std::vector<Buffer>> RecoverBlocks(
      const std::vector<std::pair<uint32_t, ByteSpan>>& available,
      const std::vector<uint32_t>& wanted) const;

  // True when the erasure pattern (set of lost block indices) is decodable,
  // i.e. at least k blocks survive. For MDS codes that is the exact rule.
  bool CanRecover(const std::vector<uint32_t>& lost) const;

 private:
  RsCode(uint32_t k, uint32_t m, gf::Matrix h, gf::Matrix g)
      : k_(k), m_(m), h_(std::move(h)), g_(std::move(g)) {}

  uint32_t k_;
  uint32_t m_;
  gf::Matrix h_;  // (k+m) x k
  gf::Matrix g_;  // m x k
};

}  // namespace ring::rs

#endif  // RING_SRC_RS_RS_CODE_H_
