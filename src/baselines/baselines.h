// Comparator systems for Figs. 7c and 9 (paper §6.1, §6.3).
//
// Each baseline is a small message-level model running on the same
// simulated fabric as Ring, reproducing the *structure* that drives the
// paper's comparison:
//   - memcached: single cache server over kernel TCP, no replication.
//   - DARE: strongly-consistent in-memory replication; the leader updates
//     follower logs with one-sided RDMA writes (no remote CPU) and commits
//     on a majority.
//   - RAMCloud: in-memory leader, puts replicated to disk-backed backups
//     (buffered log writes on the paper's HDDs dominate the latency).
//   - Cocytus: erasure-coded (RS(3,2)) KVS over kernel TCP with
//     primary-backup metadata; per-op overhead calibrated to the latencies
//     reported in the Cocytus paper, which §6.1 quotes.
#ifndef RING_SRC_BASELINES_BASELINES_H_
#define RING_SRC_BASELINES_BASELINES_H_

#include <memory>
#include <string>

#include "src/common/stats.h"
#include "src/net/fabric.h"
#include "src/sim/simulator.h"

namespace ring::baselines {

class BaselineSystem {
 public:
  virtual ~BaselineSystem() = default;

  virtual std::string name() const = 0;
  // Median request latencies in microseconds for `value_size`-byte objects,
  // measured over `reps` closed-loop operations.
  virtual Samples MeasurePutLatency(size_t value_size, int reps) = 0;
  virtual Samples MeasureGetLatency(size_t value_size, int reps) = 0;
  // Saturated put throughput (requests/second) for 1 KiB values — the
  // horizontal reference lines of Fig. 9.
  virtual double MaxPutThroughput() const = 0;
};

std::unique_ptr<BaselineSystem> MakeMemcached(uint64_t seed = 1);
std::unique_ptr<BaselineSystem> MakeDare(uint32_t replication = 3,
                                         uint64_t seed = 1);
std::unique_ptr<BaselineSystem> MakeRamcloud(uint32_t backups = 2,
                                             uint64_t seed = 1);
std::unique_ptr<BaselineSystem> MakeCocytus(uint64_t seed = 1);

}  // namespace ring::baselines

#endif  // RING_SRC_BASELINES_BASELINES_H_
