#include "src/baselines/baselines.h"

#include <functional>

namespace ring::baselines {
namespace {

constexpr uint64_t kHeaderBytes = 64;

// Shared scaffolding: a private simulator + fabric, client at the last node,
// and a closed-loop measurement loop.
class MiniSystem : public BaselineSystem {
 public:
  MiniSystem(uint32_t servers, uint64_t seed) : sim_(seed) {
    fabric_ = std::make_unique<net::Fabric>(&sim_, servers + 1);
    client_ = servers;
  }

  Samples MeasurePutLatency(size_t value_size, int reps) override {
    return Measure(value_size, reps, /*is_put=*/true);
  }
  Samples MeasureGetLatency(size_t value_size, int reps) override {
    return Measure(value_size, reps, /*is_put=*/false);
  }

 protected:
  // One operation; calls `done` at the client when the reply arrives.
  virtual void RunOp(bool is_put, size_t value_size,
                     std::function<void()> done) = 0;

  Samples Measure(size_t value_size, int reps, bool is_put) {
    Samples out;
    for (int i = 0; i < reps; ++i) {
      const sim::SimTime start = sim_.now();
      bool done = false;
      RunOp(is_put, value_size, [&] { done = true; });
      while (!done && sim_.queue().RunNext()) {
      }
      out.Add(static_cast<double>(sim_.now() - start) / 1000.0);
    }
    return out;
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Fabric> fabric_;
  net::NodeId client_;
};

// ---------------------------------------------------------------------------
// memcached: one cache server behind kernel TCP (§6.1: "memcached does not
// utilize RDMA ... about 55 us, 10x higher than the REP1 memgest").

class Memcached : public MiniSystem {
 public:
  explicit Memcached(uint64_t seed) : MiniSystem(1, seed) {
    auto& p = sim_.mutable_params();
    p.wire_latency_ns = p.tcp_latency_ns;      // kernel TCP stack
    p.link_bytes_per_ns = 1.25;                // 10 GbE
  }
  std::string name() const override { return "memcached"; }

  void RunOp(bool is_put, size_t value_size,
             std::function<void()> done) override {
    const auto& p = sim_.params();
    const uint64_t req = kHeaderBytes + (is_put ? value_size : 0);
    const uint64_t resp = kHeaderBytes + (is_put ? 0 : value_size);
    fabric_->Send(client_, 0, req, [this, resp, done, &p] {
      fabric_->cpu(0).Execute(p.server_base_ns, [this, resp, done] {
        fabric_->Send(0, client_, resp, done);
      });
    });
  }

  double MaxPutThroughput() const override {
    // Single-threaded server; kernel networking costs ~2.5 us/op of CPU on
    // top of request handling.
    return 1e9 / (sim_.params().server_base_ns + 2500.0);
  }
};

// ---------------------------------------------------------------------------
// DARE: leader-based in-memory replication over RDMA; log updates are
// one-sided writes, so followers' CPUs are idle (Poke & Hoefler 2015).

class Dare : public MiniSystem {
 public:
  Dare(uint32_t replication, uint64_t seed)
      : MiniSystem(replication, seed), r_(replication) {}
  std::string name() const override {
    return "Dare(r=" + std::to_string(r_) + ")";
  }

  void RunOp(bool is_put, size_t value_size,
             std::function<void()> done) override {
    const auto& p = sim_.params();
    const uint64_t req = kHeaderBytes + (is_put ? value_size : 0);
    const uint64_t resp = kHeaderBytes + (is_put ? 0 : value_size);
    fabric_->Send(client_, 0, req, [this, is_put, value_size, resp, done,
                                    &p] {
      fabric_->cpu(0).Execute(p.server_base_ns, [this, is_put, value_size,
                                                 resp, done, &p] {
        if (!is_put) {
          fabric_->Send(0, client_, resp, done);
          return;
        }
        // Replicate the log entry to r-1 followers with RDMA writes; commit
        // on the first (majority of r counting the leader when r = 3).
        const uint32_t majority_remote = r_ / 2;
        auto acks = std::make_shared<uint32_t>(0);
        auto sent = std::make_shared<bool>(false);
        for (uint32_t f = 1; f < r_; ++f) {
          fabric_->Write(0, f, kHeaderBytes + value_size, nullptr,
                         [this, acks, sent, majority_remote, resp, done] {
                           if (++*acks >= majority_remote && !*sent) {
                             *sent = true;
                             fabric_->Send(0, client_, resp, done);
                           }
                         });
        }
      });
    });
  }

  double MaxPutThroughput() const override {
    // Leader CPU bound: base handling plus r-1 posted writes.
    const auto& p = sim_.params();
    return 1e9 / (p.server_base_ns + p.server_recv_ns +
                  (r_ - 1) * p.post_send_ns + p.post_send_ns);
  }

 private:
  uint32_t r_;
};

// ---------------------------------------------------------------------------
// RAMCloud: in-memory leader with disk-backed replication. On the paper's
// HDD cluster a put waits for the backups' buffered log writes (§6.1:
// "median 45 us ... resulting from the fact that our cluster [is] equipped
// with HDDs").

class Ramcloud : public MiniSystem {
 public:
  Ramcloud(uint32_t backups, uint64_t seed)
      : MiniSystem(backups + 1, seed), backups_(backups) {}
  std::string name() const override {
    return "RAMCloud(" + std::to_string(backups_) + " backups)";
  }

  void RunOp(bool is_put, size_t value_size,
             std::function<void()> done) override {
    const auto& p = sim_.params();
    const uint64_t req = kHeaderBytes + (is_put ? value_size : 0);
    const uint64_t resp = kHeaderBytes + (is_put ? 0 : value_size);
    fabric_->Send(client_, 0, req, [this, is_put, value_size, resp, done,
                                    &p] {
      fabric_->cpu(0).Execute(p.server_base_ns, [this, is_put, value_size,
                                                 resp, done, &p] {
        if (!is_put) {
          fabric_->Send(0, client_, resp, done);
          return;
        }
        auto acks = std::make_shared<uint32_t>(0);
        for (uint32_t b = 1; b <= backups_; ++b) {
          fabric_->Send(0, b, kHeaderBytes + value_size,
                        [this, b, acks, resp, done, &p] {
            // Buffered log write to the backup's HDD before acking.
            fabric_->cpu(b).Execute(
                p.replica_base_ns + p.hdd_buffer_write_ns,
                [this, b, acks, resp, done] {
                  fabric_->Send(b, 0, kHeaderBytes,
                                [this, acks, resp, done] {
                    if (++*acks == backups_) {
                      fabric_->Send(0, client_, resp, done);
                    }
                  });
                });
          });
        }
      });
    });
  }

  double MaxPutThroughput() const override {
    const auto& p = sim_.params();
    return 1e9 / (p.server_base_ns + p.server_recv_ns +
                  backups_ * p.post_send_ns + p.post_send_ns);
  }

 private:
  uint32_t backups_;
};

// ---------------------------------------------------------------------------
// Cocytus: RS(3,2) erasure coding with primary-backup metadata over kernel
// TCP (Zhang et al., FAST'16). §6.1 quotes ~500 us gets and ~30x slower puts
// than Ring for 1 KiB at RS(3,2); the fixed per-op overhead below calibrates
// the model to those reported numbers (their deployment batches requests
// through a kernel TCP stack).

class Cocytus : public MiniSystem {
 public:
  explicit Cocytus(uint64_t seed) : MiniSystem(5, seed) {
    auto& p = sim_.mutable_params();
    p.wire_latency_ns = p.tcp_latency_ns;
    p.link_bytes_per_ns = 1.25;  // 10 GbE
  }
  std::string name() const override { return "Cocytus RS(3,2)"; }

  static constexpr uint64_t kBatchingOverheadNs = 400'000;

  void RunOp(bool is_put, size_t value_size,
             std::function<void()> done) override {
    const auto& p = sim_.params();
    const uint64_t req = kHeaderBytes + (is_put ? value_size : 0);
    const uint64_t resp = kHeaderBytes + (is_put ? 0 : value_size);
    fabric_->Send(client_, 0, req, [this, is_put, value_size, resp, done,
                                    &p] {
      fabric_->cpu(0).Execute(
          p.server_base_ns + kBatchingOverheadNs,
          [this, is_put, value_size, resp, done, &p] {
        if (!is_put) {
          fabric_->Send(0, client_, resp, done);
          return;
        }
        // Parity deltas to both parity nodes (3, 4) over TCP; commit when
        // both ack.
        auto acks = std::make_shared<uint32_t>(0);
        const uint64_t delta =
            kHeaderBytes + value_size +
            p.parity_update_metadata_bytes;
        for (uint32_t j = 3; j <= 4; ++j) {
          fabric_->Send(0, j, delta, [this, j, value_size, acks, resp, done,
                                      &p] {
            fabric_->cpu(j).Execute(
                p.parity_base_ns +
                    static_cast<uint64_t>(p.gf_byte_ns * value_size),
                [this, j, acks, resp, done] {
                  fabric_->Send(j, 0, kHeaderBytes,
                                [this, acks, resp, done] {
                    if (++*acks == 2) {
                      fabric_->Send(0, client_, resp, done);
                    }
                  });
                });
          });
        }
      });
    });
  }

  double MaxPutThroughput() const override {
    // FAST'16 reports ~220 K put/s for comparable configurations; the model
    // is CPU bound at the primary.
    const auto& p = sim_.params();
    return 1e9 / (p.server_base_ns + p.server_recv_ns + 2500.0);
  }
};

}  // namespace

std::unique_ptr<BaselineSystem> MakeMemcached(uint64_t seed) {
  return std::make_unique<Memcached>(seed);
}
std::unique_ptr<BaselineSystem> MakeDare(uint32_t replication,
                                         uint64_t seed) {
  return std::make_unique<Dare>(replication, seed);
}
std::unique_ptr<BaselineSystem> MakeRamcloud(uint32_t backups,
                                             uint64_t seed) {
  return std::make_unique<Ramcloud>(backups, seed);
}
std::unique_ptr<BaselineSystem> MakeCocytus(uint64_t seed) {
  return std::make_unique<Cocytus>(seed);
}

}  // namespace ring::baselines
