// ring-lint: command-line front end for the determinism lint
// (src/analysis/lint.h). Scans a repo checkout and prints findings as
// "file:line: [rule] message"; exit status 1 if anything fired.
//
//   ring-lint [repo-root]        defaults to the current directory
#include <cstdio>
#include <string>
#include <vector>

#include "src/analysis/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  if (argc > 1) {
    root = argv[1];
  }
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [repo-root]\n", argv[0]);
    return 2;
  }
  const std::vector<ring::analysis::LintFinding> findings =
      ring::analysis::LintTree(root);
  if (findings.empty()) {
    std::printf("ring-lint: clean\n");
    return 0;
  }
  std::fputs(ring::analysis::FormatFindings(findings).c_str(), stdout);
  std::fprintf(stderr, "ring-lint: %zu finding(s)\n", findings.size());
  return 1;
}
